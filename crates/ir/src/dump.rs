//! Human-readable IR listings for `sct hybrid --dump-ir` and debugging.

use crate::{CapSrc, CompiledProgram, Instr, SiteAction};
use std::fmt::Write;

/// Renders the whole compiled program: a header, every lambda template,
/// and every top-level form, with operands resolved against the pools
/// (constants as datum text, labels verbatim, call sites with their
/// baked-in enforcement decision).
pub fn dump(cp: &CompiledProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        ";; sct-ir v{}: {} instrs, {} templates, {} consts, {} sites ({} specialized){}",
        crate::CODEGEN_VERSION,
        cp.code.len(),
        cp.templates.len(),
        cp.consts.len(),
        cp.sites.len(),
        cp.specialized_sites(),
        if cp.planned { ", plan-directed" } else { "" },
    );
    let mut regions: Vec<(u32, String)> = Vec::new();
    for t in &cp.templates {
        let caps: Vec<String> = t
            .captures
            .iter()
            .map(|c| match c {
                CapSrc::Local(i) => format!("local {i}"),
                CapSrc::Capture(i) => format!("capture {i}"),
            })
            .collect();
        regions.push((
            t.entry,
            format!(
                "lambda {} ({}; params {}{}, frame {}, captures [{}])",
                t.def.id,
                t.def.describe(),
                t.def.params,
                if t.def.variadic { "+rest" } else { "" },
                t.frame_size,
                caps.join(", "),
            ),
        ));
    }
    for (i, top) in cp.top.iter().enumerate() {
        let what = match top.define {
            Some(g) => format!("define global {g}"),
            None => "expression".to_string(),
        };
        regions.push((
            top.entry,
            format!("top {i} ({what}, frame {})", top.frame_size),
        ));
    }
    regions.sort_by_key(|(entry, _)| *entry);
    let mut bounds: Vec<u32> = regions.iter().map(|(e, _)| *e).skip(1).collect();
    bounds.push(cp.code.len() as u32);
    for ((entry, header), end) in regions.iter().zip(bounds) {
        let _ = writeln!(out, "\n{header}:");
        for pc in *entry..end {
            let _ = writeln!(out, "{:6}  {}", pc, render(cp, cp.code[pc as usize]));
        }
    }
    out
}

fn render(cp: &CompiledProgram, i: Instr) -> String {
    match i {
        Instr::Const(ix) => format!("const         {}", cp.consts[ix as usize]),
        Instr::Void => "void".into(),
        Instr::LoadLocal(i) => format!("load-local    {i}"),
        Instr::LoadLocalChecked(i) => format!("load-local    {i} (checked)"),
        Instr::LoadLocalCell(i) => format!("load-cell     {i}"),
        Instr::LoadCapture(i) => format!("load-capture  {i}"),
        Instr::LoadCaptureCell(i) => format!("load-capture  {i} (cell)"),
        Instr::StoreLocal(i) => format!("store-local   {i}"),
        Instr::StoreLocalCell(i) => format!("store-cell    {i}"),
        Instr::StoreCaptureCell(i) => format!("store-capture {i} (cell)"),
        Instr::LoadGlobal(g) => format!("load-global   {g}"),
        Instr::StoreGlobal(g) => format!("store-global  {g}"),
        Instr::PrimVal(p) => format!("prim          {}", p.name()),
        Instr::MakeClosure(id) => format!(
            "make-closure  lambda {id} ({})",
            cp.templates[id as usize].def.describe()
        ),
        Instr::Jump(t) => format!("jump          {t}"),
        Instr::JumpIfFalse(t) => format!("jump-if-false {t}"),
        Instr::Pop => "pop".into(),
        Instr::PopLocal(i) => format!("pop-local     {i}"),
        Instr::PopLocalCell(i) => format!("pop-cell      {i} (fresh)"),
        Instr::InitLocalCell(i) => format!("init-cell     {i}"),
        Instr::ClearLocal(i) => format!("clear-local   {i}"),
        Instr::MakeCell(i) => format!("make-cell     {i}"),
        Instr::BoxLocal(i) => format!("box-local     {i}"),
        Instr::WrapTerm(l) => format!("wrap-term     {:?}", &cp.labels[l as usize]),
        Instr::CallPrim { prim, argc } => format!("call-prim     {} argc={argc}", prim.name()),
        Instr::Call { argc, site } => format!("call          argc={argc} {}", site_text(cp, site)),
        Instr::TailCall { argc, site } => {
            format!("tail-call     argc={argc} {}", site_text(cp, site))
        }
        Instr::Return => "return".into(),
        Instr::LoadLocal2(a, b) => format!("load-local2   {a} {b}"),
        Instr::LoadLocalCallPrim { local, prim, argc } => {
            format!("load-local+call-prim {local} {} argc={argc}", prim.name())
        }
        Instr::ConstCallPrim { cix, prim, argc } => format!(
            "const+call-prim {} {} argc={argc}",
            cp.consts[cix as usize],
            prim.name()
        ),
        Instr::CallPrimJumpIfFalse { prim, argc, target } => {
            format!(
                "call-prim+jump-if-false {} argc={argc} {target}",
                prim.name()
            )
        }
        Instr::LoadLocalReturn(i) => format!("load-local+return {i}"),
    }
}

fn site_text(cp: &CompiledProgram, site: u32) -> String {
    match &cp.sites[site as usize].action {
        // Every generic site owns a polymorphic inline cache in the
        // machine; the site index identifies it.
        SiteAction::Generic => format!("site=generic(pic {site})"),
        SiteAction::Skip { lambda } => format!("site=skip(lambda {lambda})"),
        SiteAction::Guarded { lambda, doms } => {
            let d: Vec<&str> = doms.iter().map(|d| d.label()).collect();
            format!("site=guarded(lambda {lambda} [{}])", d.join(" "))
        }
        SiteAction::Monitored { lambda } => format!("site=monitored(lambda {lambda})"),
    }
}

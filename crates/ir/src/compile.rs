//! The Expr → flat-IR compiler.
//!
//! Compilation is two walks per function plus a link step:
//!
//! 1. **Analysis** — one pre-pass over the function's whole subtree
//!    (crossing nested `lambda` boundaries) computes, for every binding
//!    form the function owns, which slots are *captured* by a nested
//!    lambda and which are *assigned* (`set!` anywhere in scope). A slot
//!    is assignment-converted to a shared cell iff it is captured and
//!    mutable (`set!` target, or any `letrec` binding — `letrec` inits
//!    assign after closures may already have captured the slot).
//! 2. **Codegen** — a second walk in the same order emits instructions,
//!    mapping `(depth, slot)` addresses onto flat frame indices (sibling
//!    scopes reuse slots via a watermark allocator) or capture indices
//!    (ordered exactly as [`LambdaDef::free`]). Call sites with a callee
//!    that is a statically bound, never-mutated global `define`d by a
//!    single `lambda` get the enforcement plan's decision baked in.
//! 3. **Link** — per-function blocks concatenate into one arena; jump
//!    targets are rebased and then jump-threaded (a branch to an
//!    unconditional jump lands directly at the final target, which is
//!    what flattens desugared `cond` chains). Finally the hottest
//!    adjacent instruction pairs — chosen from dispatch-pair profiles of
//!    the fig10 workloads — are fused into superinstructions: the fused
//!    variant replaces the *first* instruction of the pair and the second
//!    stays in place (the machine skips it), so jump targets into the
//!    second slot keep their original semantics with no remapping.
//!
//! Call sites are allocated one per application *expression* (deduplicated
//! only for statically bound globals, whose baked action is identical at
//! every site), so every [`SiteAction::Generic`] site owns a private
//! polymorphic inline cache in the machine (see [`crate::pic`]).

use crate::{
    CallSite, CapSrc, CompiledProgram, ConstIx, Instr, LabelIx, SiteAction, SiteIx, Template,
    TopCode,
};
use sct_core::plan::{Decision, EnforcementPlan, PlanDomain};
use sct_lang::ast::{Expr, GlobalIndex, LambdaDef, Program, TopForm, VarRef};
use sct_lang::Prim;
use std::collections::HashMap;
use std::rc::Rc;

/// Compiles a resolved program against an optional enforcement plan.
///
/// With `plan = None` every known-callee site is emitted as
/// [`SiteAction::Monitored`] (the probe-free monitored path) and
/// first-class sites as [`SiteAction::Generic`]; the instruction stream is
/// otherwise identical, so a plan changes *decisions*, never *shape*.
///
/// # Panics
///
/// Panics on internal invariant violations, and on one resource limit:
/// a single function whose *cumulative* nested `let`/`letrec` watermark
/// exceeds 65 535 flat slots (the IR's `u16` frame addressing, matching
/// the resolver's own `u16` per-frame slots). No hand-written program
/// approaches this; a generator that does should split the function.
pub fn compile(program: &Program, plan: Option<&EnforcementPlan>) -> CompiledProgram {
    compile_inner(program, plan, true)
}

/// As [`compile`] but skipping the superinstruction fusion pass.
///
/// The unfused stream is what dispatch-pair profiling runs over (see
/// `MachineConfig::profile_pairs` in `sct-interp`): measuring pair
/// frequencies on already-fused code would hide exactly the pairs the
/// fusion set was chosen from.
pub fn compile_unfused(program: &Program, plan: Option<&EnforcementPlan>) -> CompiledProgram {
    compile_inner(program, plan, false)
}

fn compile_inner(program: &Program, plan: Option<&EnforcementPlan>, fuse: bool) -> CompiledProgram {
    let mut b = Builder {
        consts: Vec::new(),
        const_ix: HashMap::new(),
        labels: Vec::new(),
        label_ix: HashMap::new(),
        sites: vec![CallSite {
            action: SiteAction::Generic,
        }],
        site_ix: HashMap::new(),
        templates: (0..program.lambda_count).map(|_| None).collect(),
        funcs: Vec::new(),
        global_actions: global_actions(program, plan),
    };
    let mut top = Vec::new();
    for form in &program.top_level {
        let (define, expr) = match form {
            TopForm::Define { index, expr } => (Some(*index), expr),
            TopForm::Expr(expr) => (None, expr),
        };
        let (block, frame_size) = compile_fn(&mut b, expr, None, Vec::new());
        b.funcs.push(FnBlock {
            code: block,
            owner: Owner::Top(top.len()),
        });
        top.push(TopCode {
            entry: 0, // patched at link
            frame_size,
            define,
        });
    }
    link(
        b,
        top,
        plan.is_some(),
        plan.map_or(0, EnforcementPlan::decisions_fingerprint),
        fuse,
    )
}

/// Shared state across every function compiled for one program.
struct Builder {
    consts: Vec<Rc<sct_sexpr::Datum>>,
    const_ix: HashMap<*const sct_sexpr::Datum, ConstIx>,
    labels: Vec<Rc<str>>,
    label_ix: HashMap<Rc<str>, LabelIx>,
    sites: Vec<CallSite>,
    site_ix: HashMap<GlobalIndex, SiteIx>,
    templates: Vec<Option<Template>>,
    funcs: Vec<FnBlock>,
    global_actions: HashMap<GlobalIndex, SiteAction>,
}

struct FnBlock {
    code: Vec<Instr>,
    owner: Owner,
}

enum Owner {
    Lambda(u32),
    Top(usize),
}

impl Builder {
    fn const_ix(&mut self, d: &Rc<sct_sexpr::Datum>) -> ConstIx {
        let key = Rc::as_ptr(d);
        if let Some(&ix) = self.const_ix.get(&key) {
            return ix;
        }
        let ix = self.consts.len() as ConstIx;
        self.consts.push(d.clone());
        self.const_ix.insert(key, ix);
        ix
    }

    fn label_ix(&mut self, label: &Rc<str>) -> LabelIx {
        if let Some(&ix) = self.label_ix.get(label) {
            return ix;
        }
        let ix = self.labels.len() as LabelIx;
        self.labels.push(label.clone());
        self.label_ix.insert(label.clone(), ix);
        ix
    }

    /// The call-site index for an application whose operator is `func`.
    /// Statically bound globals share one site per global (the baked
    /// action is identical everywhere); every other operator — first
    /// class, or a global that is rebound or not lambda-bound — gets a
    /// *fresh* `Generic` site so it owns a private inline cache.
    fn site_for(&mut self, func: &Expr) -> SiteIx {
        let Expr::Global(g) = func else {
            return self.fresh_generic();
        };
        let Some(action) = self.global_actions.get(g).cloned() else {
            return self.fresh_generic();
        };
        if let Some(&ix) = self.site_ix.get(g) {
            return ix;
        }
        let ix = self.sites.len() as SiteIx;
        self.sites.push(CallSite { action });
        self.site_ix.insert(*g, ix);
        ix
    }

    fn fresh_generic(&mut self) -> SiteIx {
        let ix = self.sites.len() as SiteIx;
        self.sites.push(CallSite {
            action: SiteAction::Generic,
        });
        ix
    }
}

/// Primitives the machine can complete without cooperation (everything but
/// `apply`, `contract`, and `terminating/c`, which re-enter application or
/// wrap values).
fn simple_prim(p: Prim) -> bool {
    !matches!(p, Prim::Apply | Prim::Contract | Prim::TerminatingC)
}

// ---------------------------------------------------------------------
// Call-site specialization input: which globals are statically bound.
// ---------------------------------------------------------------------

/// For every global that is defined exactly once, by a `lambda`, and never
/// `set!`, the [`SiteAction`] its call sites may bake in.
fn global_actions(
    program: &Program,
    plan: Option<&EnforcementPlan>,
) -> HashMap<GlobalIndex, SiteAction> {
    let mut out = HashMap::new();
    for (g, binding) in program.global_bindings().iter().enumerate() {
        let Some(lambda) = binding.static_lambda() else {
            continue;
        };
        let action = match plan.and_then(|p| p.decisions.iter().find(|d| d.lambda == lambda)) {
            Some(d) => match &d.decision {
                Decision::Static { guard } => {
                    if guard.iter().all(|&g| g == PlanDomain::Any) {
                        SiteAction::Skip { lambda }
                    } else {
                        SiteAction::Guarded {
                            lambda,
                            doms: Rc::from(guard.as_slice()),
                        }
                    }
                }
                // Refuted programs are rejected before running under the
                // hybrid regime; if such a program is executed anyway the
                // monitored path is the sound one.
                Decision::Monitor { .. } | Decision::Refuted { .. } => {
                    SiteAction::Monitored { lambda }
                }
            },
            None => SiteAction::Monitored { lambda },
        };
        out.insert(g as GlobalIndex, action);
    }
    out
}

// ---------------------------------------------------------------------
// Analysis: captured / assigned flags per owned binding form.
// ---------------------------------------------------------------------

#[derive(Default, Clone, Copy)]
struct Flag {
    captured: bool,
    assigned: bool,
}

struct AEntry {
    /// Index into the output when the frame belongs to the function under
    /// compilation (not separated from its root by a lambda boundary).
    owned: Option<usize>,
    /// Lambda-nesting level at which the frame was created.
    lam: u32,
}

struct Analysis {
    stack: Vec<AEntry>,
    out: Vec<Vec<Flag>>,
    lam: u32,
}

impl Analysis {
    fn mark(&mut self, v: VarRef, assigned: bool) {
        let d = v.depth as usize;
        if d >= self.stack.len() {
            // A free reference of the function under compilation; the
            // *enclosing* function's analysis flags the binding.
            return;
        }
        let e = &self.stack[self.stack.len() - 1 - d];
        if let Some(ix) = e.owned {
            let crossing = self.lam > e.lam;
            let f = &mut self.out[ix][v.slot as usize];
            if crossing {
                f.captured = true;
            }
            if assigned {
                f.assigned = true;
            }
        }
    }

    fn walk(&mut self, e: &Expr) {
        match e {
            Expr::Var(v) => self.mark(*v, false),
            Expr::SetLocal { var, value } => {
                self.mark(*var, true);
                self.walk(value);
            }
            Expr::Quote(_) | Expr::Global(_) | Expr::PrimRef(_) => {}
            Expr::Lambda(def) => {
                self.stack.push(AEntry {
                    owned: None,
                    lam: self.lam + 1,
                });
                self.lam += 1;
                self.walk(&def.body);
                self.lam -= 1;
                self.stack.pop();
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.walk(cond);
                self.walk(then_branch);
                self.walk(else_branch);
            }
            Expr::App { func, args } => {
                self.walk(func);
                args.iter().for_each(|a| self.walk(a));
            }
            Expr::Seq(exprs) => exprs.iter().for_each(|a| self.walk(a)),
            Expr::SetGlobal { value, .. } => self.walk(value),
            Expr::Let { inits, body } => {
                // Inits evaluate in the outer scope; the form's index is
                // allocated *after* them so nested owned forms inside the
                // inits number first — codegen allocates in the same order.
                inits.iter().for_each(|a| self.walk(a));
                let owned = (self.lam == 0).then(|| {
                    self.out.push(vec![Flag::default(); inits.len()]);
                    self.out.len() - 1
                });
                self.stack.push(AEntry {
                    owned,
                    lam: self.lam,
                });
                self.walk(body);
                self.stack.pop();
            }
            Expr::LetRec { inits, body } => {
                let owned = (self.lam == 0).then(|| {
                    self.out.push(vec![Flag::default(); inits.len()]);
                    self.out.len() - 1
                });
                self.stack.push(AEntry {
                    owned,
                    lam: self.lam,
                });
                inits.iter().for_each(|a| self.walk(a));
                self.walk(body);
                self.stack.pop();
            }
            Expr::TermC { body, .. } => self.walk(body),
        }
    }
}

// ---------------------------------------------------------------------
// Codegen.
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
struct SlotBind {
    flat: u16,
    /// Assignment-converted: the slot holds a shared cell.
    cell: bool,
    /// A `letrec` slot that may still hold `Undefined`: loads check.
    checked: bool,
}

struct Scope {
    binds: Vec<SlotBind>,
}

struct FnState {
    code: Vec<Instr>,
    scopes: Vec<Scope>,
    free: Vec<VarRef>,
    cap_cells: Vec<bool>,
    next_flat: u16,
    max_flat: u16,
    flags: Vec<Vec<Flag>>,
    form_ix: usize,
}

enum Loc {
    Local(SlotBind),
    Cap(u16, bool),
}

impl FnState {
    fn resolve(&self, v: VarRef) -> Loc {
        let d = v.depth as usize;
        if d < self.scopes.len() {
            Loc::Local(self.scopes[self.scopes.len() - 1 - d].binds[v.slot as usize])
        } else {
            let outer = VarRef {
                depth: (d - self.scopes.len()) as u16,
                slot: v.slot,
            };
            let i = self
                .free
                .iter()
                .position(|f| *f == outer)
                .expect("free reference missing from the lambda's free list");
            Loc::Cap(i as u16, self.cap_cells[i])
        }
    }

    fn alloc_slots(&mut self, n: usize) -> u16 {
        let base = self.next_flat;
        self.next_flat = base
            .checked_add(n as u16)
            .expect("frame exceeds 65535 slots");
        self.max_flat = self.max_flat.max(self.next_flat);
        base
    }

    fn take_flags(&mut self) -> Vec<Flag> {
        let f = std::mem::take(&mut self.flags[self.form_ix]);
        self.form_ix += 1;
        f
    }

    fn emit(&mut self, i: Instr) {
        self.code.push(i);
    }

    /// Emits a placeholder branch, returning its position for patching.
    fn emit_branch(&mut self, conditional: bool) -> usize {
        let pos = self.code.len();
        self.emit(if conditional {
            Instr::JumpIfFalse(u32::MAX)
        } else {
            Instr::Jump(u32::MAX)
        });
        pos
    }

    fn patch_here(&mut self, pos: usize) {
        let here = self.code.len() as u32;
        match &mut self.code[pos] {
            Instr::Jump(t) | Instr::JumpIfFalse(t) => *t = here,
            other => unreachable!("patching non-branch {other:?}"),
        }
    }
}

/// Compiles one function (a lambda body or a top-level form) into a
/// block with block-relative jump targets. Returns `(code, frame_size)`.
/// Lambdas additionally register a [`Template`] (entry patched at link).
fn compile_fn(
    b: &mut Builder,
    body: &Expr,
    root: Option<&Rc<LambdaDef>>,
    cap_cells: Vec<bool>,
) -> (Vec<Instr>, u16) {
    let root_slots = root.map_or(0, |def| def.frame_size());
    let mut analysis = Analysis {
        stack: Vec::new(),
        out: Vec::new(),
        lam: 0,
    };
    if root.is_some() {
        analysis.out.push(vec![Flag::default(); root_slots]);
        analysis.stack.push(AEntry {
            owned: Some(0),
            lam: 0,
        });
    }
    analysis.walk(body);

    let mut st = FnState {
        code: Vec::new(),
        scopes: Vec::new(),
        free: root.map_or_else(Vec::new, |def| def.free.clone()),
        cap_cells,
        next_flat: root_slots as u16,
        max_flat: root_slots as u16,
        flags: analysis.out,
        form_ix: 0,
    };
    if root.is_some() {
        let flags = st.take_flags();
        let binds: Vec<SlotBind> = flags
            .iter()
            .enumerate()
            .map(|(i, f)| SlotBind {
                flat: i as u16,
                cell: f.captured && f.assigned,
                checked: false,
            })
            .collect();
        // Prologue: assignment-converted parameters move into fresh cells.
        for bind in &binds {
            if bind.cell {
                st.emit(Instr::BoxLocal(bind.flat));
            }
        }
        st.scopes.push(Scope { binds });
    }
    gen(b, &mut st, body, true);
    st.emit(Instr::Return);
    debug_assert_eq!(st.form_ix, st.flags.len(), "analysis/codegen form drift");
    (st.code, st.max_flat)
}

fn gen(b: &mut Builder, st: &mut FnState, e: &Expr, tail: bool) {
    match e {
        Expr::Quote(d) => {
            let ix = b.const_ix(d);
            st.emit(Instr::Const(ix));
        }
        Expr::Var(v) => match st.resolve(*v) {
            Loc::Local(bind) => st.emit(if bind.cell {
                Instr::LoadLocalCell(bind.flat)
            } else if bind.checked {
                Instr::LoadLocalChecked(bind.flat)
            } else {
                Instr::LoadLocal(bind.flat)
            }),
            Loc::Cap(i, cell) => st.emit(if cell {
                Instr::LoadCaptureCell(i)
            } else {
                Instr::LoadCapture(i)
            }),
        },
        Expr::Global(g) => st.emit(Instr::LoadGlobal(*g)),
        Expr::PrimRef(p) => st.emit(Instr::PrimVal(*p)),
        Expr::Lambda(def) => {
            let mut caps = Vec::with_capacity(def.free.len());
            let mut cells = Vec::with_capacity(def.free.len());
            for fv in &def.free {
                match st.resolve(*fv) {
                    Loc::Local(bind) => {
                        debug_assert!(
                            !bind.checked,
                            "captured letrec slots are assignment-converted"
                        );
                        caps.push(CapSrc::Local(bind.flat));
                        cells.push(bind.cell);
                    }
                    Loc::Cap(i, cell) => {
                        caps.push(CapSrc::Capture(i));
                        cells.push(cell);
                    }
                }
            }
            let (code, frame_size) = compile_fn(b, &def.body, Some(def), cells);
            b.templates[def.id as usize] = Some(Template {
                def: def.clone(),
                entry: 0, // patched at link
                frame_size,
                captures: caps,
            });
            b.funcs.push(FnBlock {
                code,
                owner: Owner::Lambda(def.id),
            });
            st.emit(Instr::MakeClosure(def.id));
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            gen(b, st, cond, false);
            let to_else = st.emit_branch(true);
            gen(b, st, then_branch, tail);
            let to_end = st.emit_branch(false);
            st.patch_here(to_else);
            gen(b, st, else_branch, tail);
            st.patch_here(to_end);
        }
        Expr::App { func, args } => {
            if let Expr::PrimRef(p) = func.as_ref() {
                if simple_prim(*p) {
                    for a in args.iter() {
                        gen(b, st, a, false);
                    }
                    st.emit(Instr::CallPrim {
                        prim: *p,
                        argc: args.len() as u16,
                    });
                    if tail {
                        st.emit(Instr::Return);
                    }
                    return;
                }
            }
            let site = b.site_for(func);
            gen(b, st, func, false);
            for a in args.iter() {
                gen(b, st, a, false);
            }
            let argc = args.len() as u16;
            st.emit(if tail {
                Instr::TailCall { argc, site }
            } else {
                Instr::Call { argc, site }
            });
        }
        Expr::Seq(exprs) => {
            let (last, init) = exprs.split_last().expect("begin is non-empty");
            for a in init {
                gen(b, st, a, false);
                st.emit(Instr::Pop);
            }
            gen(b, st, last, tail);
        }
        Expr::SetLocal { var, value } => {
            gen(b, st, value, false);
            match st.resolve(*var) {
                Loc::Local(bind) => st.emit(if bind.cell {
                    Instr::StoreLocalCell(bind.flat)
                } else {
                    Instr::StoreLocal(bind.flat)
                }),
                Loc::Cap(i, cell) => {
                    debug_assert!(cell, "assigned captures are assignment-converted");
                    let _ = cell;
                    st.emit(Instr::StoreCaptureCell(i));
                }
            }
        }
        Expr::SetGlobal { index, value } => {
            gen(b, st, value, false);
            st.emit(Instr::StoreGlobal(*index));
        }
        Expr::Let { inits, body } => {
            for a in inits.iter() {
                gen(b, st, a, false);
            }
            let flags = st.take_flags();
            let base = st.alloc_slots(inits.len());
            let binds: Vec<SlotBind> = flags
                .iter()
                .enumerate()
                .map(|(i, f)| SlotBind {
                    flat: base + i as u16,
                    cell: f.captured && f.assigned,
                    checked: false,
                })
                .collect();
            for bind in binds.iter().rev() {
                st.emit(if bind.cell {
                    Instr::PopLocalCell(bind.flat)
                } else {
                    Instr::PopLocal(bind.flat)
                });
            }
            st.scopes.push(Scope { binds });
            gen(b, st, body, tail);
            st.scopes.pop();
            st.next_flat = base;
        }
        Expr::LetRec { inits, body } => {
            let flags = st.take_flags();
            let base = st.alloc_slots(inits.len());
            let binds: Vec<SlotBind> = flags
                .iter()
                .enumerate()
                .map(|(i, f)| SlotBind {
                    flat: base + i as u16,
                    // Any captured letrec binding is converted: its init
                    // assignment may happen after a sibling closure
                    // captured the slot.
                    cell: f.captured,
                    checked: !f.captured,
                })
                .collect();
            for bind in &binds {
                st.emit(if bind.cell {
                    Instr::MakeCell(bind.flat)
                } else {
                    Instr::ClearLocal(bind.flat)
                });
            }
            st.scopes.push(Scope {
                binds: binds.clone(),
            });
            for (i, a) in inits.iter().enumerate() {
                gen(b, st, a, false);
                st.emit(if binds[i].cell {
                    Instr::InitLocalCell(binds[i].flat)
                } else {
                    Instr::PopLocal(binds[i].flat)
                });
            }
            gen(b, st, body, tail);
            st.scopes.pop();
            st.next_flat = base;
        }
        Expr::TermC { body, label } => {
            gen(b, st, body, false);
            let ix = b.label_ix(label);
            st.emit(Instr::WrapTerm(ix));
        }
    }
}

// ---------------------------------------------------------------------
// Link: concatenate blocks, rebase branches, thread jump chains.
// ---------------------------------------------------------------------

fn link(
    b: Builder,
    mut top: Vec<TopCode>,
    planned: bool,
    plan_token: u64,
    fuse: bool,
) -> CompiledProgram {
    let mut templates: Vec<Template> = b
        .templates
        .into_iter()
        .map(|t| t.expect("every lambda id compiled"))
        .collect();
    let mut code: Vec<Instr> = Vec::with_capacity(b.funcs.iter().map(|f| f.code.len()).sum());
    for f in b.funcs {
        let base = code.len() as u32;
        match f.owner {
            Owner::Lambda(id) => templates[id as usize].entry = base,
            Owner::Top(i) => top[i].entry = base,
        }
        code.extend(f.code.into_iter().map(|i| match i {
            Instr::Jump(t) => Instr::Jump(t + base),
            Instr::JumpIfFalse(t) => Instr::JumpIfFalse(t + base),
            other => other,
        }));
    }
    // Jump threading: land branches directly on their final target.
    for i in 0..code.len() {
        let target = match code[i] {
            Instr::Jump(t) | Instr::JumpIfFalse(t) => t,
            _ => continue,
        };
        let mut t = target;
        let mut hops = 0;
        while let Instr::Jump(next) = code[t as usize] {
            if next == t || hops > 64 {
                break;
            }
            t = next;
            hops += 1;
        }
        if t != target {
            match &mut code[i] {
                Instr::Jump(x) | Instr::JumpIfFalse(x) => *x = t,
                _ => unreachable!(),
            }
        }
    }
    if fuse {
        fuse_pairs(&mut code);
    }
    CompiledProgram {
        code,
        consts: b.consts,
        labels: b.labels,
        templates,
        top,
        sites: b.sites,
        planned,
        plan_token,
    }
}

/// Superinstruction fusion, "pad with skip" style: the fused variant
/// replaces the first instruction of a hot adjacent pair; the second
/// instruction keeps its arena slot and the machine steps over it after
/// the fused handler runs. Control flow that *enters* at the second slot
/// executes the original instruction there, so no jump target needs
/// remapping and fusion can never change semantics — only dispatch count.
///
/// The pair set was chosen from dynamic dispatch-pair profiles of the
/// fig10 workloads (`MachineConfig::profile_pairs` over the unfused
/// stream); the interp-crate test `fused_pairs_cover_hot_profile` keeps
/// the choice honest. The scan is greedy left-to-right without overlap:
/// after a fusion the second slot is skipped as a further first operand.
fn fuse_pairs(code: &mut [Instr]) {
    let mut i = 0;
    while i + 1 < code.len() {
        let fused = match (code[i], code[i + 1]) {
            (Instr::LoadLocal(a), Instr::LoadLocal(b)) => Some(Instr::LoadLocal2(a, b)),
            (Instr::LoadLocal(local), Instr::CallPrim { prim, argc }) => {
                Some(Instr::LoadLocalCallPrim { local, prim, argc })
            }
            (Instr::Const(cix), Instr::CallPrim { prim, argc }) => {
                Some(Instr::ConstCallPrim { cix, prim, argc })
            }
            (Instr::CallPrim { prim, argc }, Instr::JumpIfFalse(target)) => {
                Some(Instr::CallPrimJumpIfFalse { prim, argc, target })
            }
            (Instr::LoadLocal(local), Instr::Return) => Some(Instr::LoadLocalReturn(local)),
            _ => None,
        };
        match fused {
            Some(f) => {
                code[i] = f;
                i += 2;
            }
            None => i += 1,
        }
    }
}

//! Plan-directed flat-IR compilation for λSCT.
//!
//! The tree-walking CEK machine pays for its generality on every step: it
//! clones `Rc<Expr>` nodes, pushes a continuation frame per argument, walks
//! `Rc<Frame>` environment chains on every variable, and re-decides at
//! every application whether the callee is statically discharged, guarded,
//! or monitored. This crate moves all of those decisions *offline* — the
//! offline-specialization move of size-change analysis in offline partial
//! evaluation, applied to the enforcement regime of the PLDI'19 paper:
//!
//! * resolved [`Expr`](sct_lang::ast::Expr) trees are flattened into one
//!   contiguous arena of fixed-size [`Instr`]uctions with jump-threaded
//!   `if`/`cond`;
//! * lexical `(depth, slot)` addresses become verified flat frame indices
//!   (one locals frame per activation, sibling scopes reuse slots);
//! * constants are pooled (deduplicated by quote-site identity, so `eq?`
//!   sharing semantics are preserved);
//! * closures become *flat*: each `lambda` carries a [`CapSrc`] list and an
//!   activation copies exactly the captured slots instead of chaining
//!   frames. Captured slots that are mutated (`set!`) or `letrec`-bound are
//!   assignment-converted to shared cells, so mutation and recursive
//!   binding semantics are unchanged;
//! * every call site is emitted with a baked-in [`SiteAction`] derived from
//!   the [`EnforcementPlan`](sct_core::plan::EnforcementPlan):
//!   [`SiteAction::Skip`] (statically discharged —
//!   zero monitor work, not even a fast-path probe), [`SiteAction::Guarded`]
//!   (inline domain guard, then skip), [`SiteAction::Monitored`] (the plan
//!   says monitor: the probe is elided because the compiler already knows
//!   it would miss), or [`SiteAction::Generic`] (first-class callee: full
//!   dynamic dispatch).
//!
//! The machine in `sct-interp` executes this IR as a dispatch loop while
//! keeping the CEK machine's continuation, blame, and size-change-table
//! semantics bit-for-bit (the differential oracle suite in the root crate
//! proves value, blame, and monitor-counter agreement over the whole
//! corpus).
//!
//! [`CODEGEN_VERSION`] identifies the compilation scheme; `sct-symbolic`
//! folds it into plan-cache digests so persisted enforcement decisions can
//! never be replayed against a machine whose baked-in call-site semantics
//! have drifted.

#![deny(missing_docs)]

mod compile;
mod dump;
pub mod pic;

pub use compile::{compile, compile_unfused};
pub use dump::dump;

use sct_core::plan::PlanDomain;
use sct_lang::ast::{GlobalIndex, LambdaDef, LambdaId};
use sct_lang::Prim;
use sct_sexpr::Datum;
use std::rc::Rc;

/// Version of the IR compilation scheme. Bump on any change to instruction
/// semantics, call-site specialization, or the capture/boxing rules —
/// `sct-symbolic` mixes it into every plan-cache digest, so a bump
/// invalidates persisted plans rather than letting them drive a machine
/// they were not planned for.
///
/// v2: every application expression owns a distinct call site (so each
/// `Generic` site carries its own polymorphic inline cache), and the
/// linker fuses hot adjacent instruction pairs into superinstructions.
pub const CODEGEN_VERSION: u32 = 2;

/// A flat local index within the current activation's frame.
pub type LocalIx = u16;

/// Index into [`CompiledProgram::consts`].
pub type ConstIx = u32;

/// Index into [`CompiledProgram::labels`].
pub type LabelIx = u32;

/// Index into [`CompiledProgram::sites`].
pub type SiteIx = u32;

/// One fixed-size IR instruction.
///
/// The operand stack holds plain values; the locals frame holds slot
/// entries (value or shared cell) managed by the machine.
/// Cell-addressed variants are emitted exactly for the slots the compiler
/// assignment-converted; the split keeps the common immutable path free of
/// indirection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Push constant `consts[i]` (materialized once per machine, shared
    /// per quote site — `eq?` semantics match the tree-walker's cache).
    Const(ConstIx),
    /// Push `Value::Void`.
    Void,
    /// Push local slot `i` (never `Undefined` by construction).
    LoadLocal(LocalIx),
    /// Push local slot `i`, erroring on `Undefined` (`letrec` slot read
    /// before initialization).
    LoadLocalChecked(LocalIx),
    /// Push the contents of the cell in local slot `i`, erroring on
    /// `Undefined`.
    LoadLocalCell(LocalIx),
    /// Push capture `i` of the current closure.
    LoadCapture(LocalIx),
    /// Push the contents of capture cell `i`, erroring on `Undefined`.
    LoadCaptureCell(LocalIx),
    /// `set!` a plain local: pop the value into slot `i`, push `Void`.
    StoreLocal(LocalIx),
    /// `set!` a cell local: pop the value into the cell at slot `i`, push
    /// `Void`.
    StoreLocalCell(LocalIx),
    /// `set!` a captured variable: pop the value into capture cell `i`,
    /// push `Void` (captured + assigned slots are always cells).
    StoreCaptureCell(LocalIx),
    /// Push global `g`, erroring when still undefined.
    LoadGlobal(GlobalIndex),
    /// `set!` a global: pop the value into global `g`, push `Void`.
    StoreGlobal(GlobalIndex),
    /// Push the primitive as a first-class value.
    PrimVal(Prim),
    /// Allocate a closure from [`CompiledProgram::templates`]`[id]`,
    /// copying the template's capture sources from the current activation.
    MakeClosure(LambdaId),
    /// Unconditional jump to an absolute arena index.
    Jump(u32),
    /// Pop the test; jump when it is `#f`.
    JumpIfFalse(u32),
    /// Pop and discard (sequencing).
    Pop,
    /// Pop into local slot `i` (`let` binding / `letrec` init; no `Void`).
    PopLocal(LocalIx),
    /// Pop into a *fresh* cell stored at slot `i` (`let` binding of an
    /// assignment-converted variable).
    PopLocalCell(LocalIx),
    /// Pop into the existing cell at slot `i` (`letrec` init of a captured
    /// binding).
    InitLocalCell(LocalIx),
    /// Store `Undefined` into slot `i` (`letrec` prologue; slots are
    /// reused across sibling scopes, so the pre-initialization sentinel
    /// must be re-established explicitly).
    ClearLocal(LocalIx),
    /// Replace slot `i` with a fresh cell holding `Undefined` (`letrec`
    /// prologue for captured bindings).
    MakeCell(LocalIx),
    /// Move the argument already bound in slot `i` into a fresh cell
    /// (function prologue for captured-and-assigned parameters).
    BoxLocal(LocalIx),
    /// Pop a value, wrap it per Figure 7 with blame label `labels[i]`.
    WrapTerm(LabelIx),
    /// Call a *simple* primitive (one that needs no machine cooperation):
    /// pop `argc` arguments, push the result. Not a monitored application.
    CallPrim {
        /// The primitive.
        prim: Prim,
        /// Argument count.
        argc: u16,
    },
    /// Apply: stack holds `[callee, arg1..argN]`; `site` carries the
    /// baked-in enforcement decision. Pushes a return frame.
    Call {
        /// Argument count.
        argc: u16,
        /// Call-site index.
        site: SiteIx,
    },
    /// As [`Instr::Call`] but in tail position: the caller's activation is
    /// replaced, keeping the continuation flat.
    TailCall {
        /// Argument count.
        argc: u16,
        /// Call-site index.
        site: SiteIx,
    },
    /// Pop the return value and unwind to the caller (or finish the
    /// current top-level form).
    Return,
    // ----- superinstructions (link-time fusion) ----------------------
    //
    // Each fused variant replaces the *first* instruction of a hot
    // adjacent pair; the second instruction stays in its arena slot and
    // the machine skips it (`pc += 1`) after executing the fused
    // handler. Jumps into the second slot therefore keep their original
    // semantics without any target remapping ("pad with skip").
    /// Fused `LoadLocal a; LoadLocal b`.
    LoadLocal2(LocalIx, LocalIx),
    /// Fused `LoadLocal i; CallPrim prim argc`.
    LoadLocalCallPrim {
        /// The local pushed first.
        local: LocalIx,
        /// The primitive.
        prim: Prim,
        /// Argument count.
        argc: u16,
    },
    /// Fused `Const i; CallPrim prim argc`.
    ConstCallPrim {
        /// The constant pushed first.
        cix: ConstIx,
        /// The primitive.
        prim: Prim,
        /// Argument count.
        argc: u16,
    },
    /// Fused `CallPrim prim argc; JumpIfFalse target`.
    CallPrimJumpIfFalse {
        /// The primitive.
        prim: Prim,
        /// Argument count.
        argc: u16,
        /// Branch target when the result is `#f`.
        target: u32,
    },
    /// Fused `LoadLocal i; Return`.
    LoadLocalReturn(LocalIx),
}

impl Instr {
    /// Short mnemonic for profiling output and dump listings.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::Const(_) => "const",
            Instr::Void => "void",
            Instr::LoadLocal(_) => "load-local",
            Instr::LoadLocalChecked(_) => "load-local-checked",
            Instr::LoadLocalCell(_) => "load-cell",
            Instr::LoadCapture(_) => "load-capture",
            Instr::LoadCaptureCell(_) => "load-capture-cell",
            Instr::StoreLocal(_) => "store-local",
            Instr::StoreLocalCell(_) => "store-cell",
            Instr::StoreCaptureCell(_) => "store-capture-cell",
            Instr::LoadGlobal(_) => "load-global",
            Instr::StoreGlobal(_) => "store-global",
            Instr::PrimVal(_) => "prim",
            Instr::MakeClosure(_) => "make-closure",
            Instr::Jump(_) => "jump",
            Instr::JumpIfFalse(_) => "jump-if-false",
            Instr::Pop => "pop",
            Instr::PopLocal(_) => "pop-local",
            Instr::PopLocalCell(_) => "pop-cell",
            Instr::InitLocalCell(_) => "init-cell",
            Instr::ClearLocal(_) => "clear-local",
            Instr::MakeCell(_) => "make-cell",
            Instr::BoxLocal(_) => "box-local",
            Instr::WrapTerm(_) => "wrap-term",
            Instr::CallPrim { .. } => "call-prim",
            Instr::Call { .. } => "call",
            Instr::TailCall { .. } => "tail-call",
            Instr::Return => "return",
            Instr::LoadLocal2(..) => "load-local2",
            Instr::LoadLocalCallPrim { .. } => "load-local+call-prim",
            Instr::ConstCallPrim { .. } => "const+call-prim",
            Instr::CallPrimJumpIfFalse { .. } => "call-prim+jump-if-false",
            Instr::LoadLocalReturn(_) => "load-local+return",
        }
    }
}

/// Where one captured slot of a closure template comes from, relative to
/// the activation that executes the `MakeClosure`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapSrc {
    /// Copy local slot `i` of the creating activation (a cell slot is
    /// copied as the shared cell).
    Local(LocalIx),
    /// Copy capture `i` of the creating closure.
    Capture(LocalIx),
}

/// The compile-time enforcement decision baked into a call site. Actions
/// other than [`SiteAction::Generic`] apply only when the runtime callee
/// is a closure of the expected λ (checked with one comparison); anything
/// else falls back to generic dispatch, so specialization can never
/// change behavior — only skip work the decision proves redundant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteAction {
    /// Callee unknown at compile time: full dynamic dispatch, including
    /// the per-λ fast-path probe.
    Generic,
    /// Callee statically bound to λ `lambda`, which the plan discharged
    /// unconditionally: no monitor work at all, not even the probe.
    Skip {
        /// The expected callee λ.
        lambda: LambdaId,
    },
    /// Callee statically bound to λ `lambda`, discharged under per-
    /// parameter domain assumptions: check the guard inline; in-domain
    /// calls skip the monitor, out-of-domain calls fall back to it.
    Guarded {
        /// The expected callee λ.
        lambda: LambdaId,
        /// One domain per parameter, in order.
        doms: Rc<[PlanDomain]>,
    },
    /// Callee statically bound to λ `lambda` and the plan (or its absence)
    /// keeps it monitored: the fast-path probe is elided because the
    /// compiler already knows it would miss.
    Monitored {
        /// The expected callee λ.
        lambda: LambdaId,
    },
}

/// One call site's baked-in metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The enforcement decision.
    pub action: SiteAction,
}

/// Compiled form of one `lambda`: entry point, frame shape, and capture
/// list (ordered exactly as [`LambdaDef::free`], which is what keeps flat
/// closure fingerprints identical to the tree-walker's).
#[derive(Debug, Clone)]
pub struct Template {
    /// The source lambda (arity, name, variadicity, free list).
    pub def: Rc<LambdaDef>,
    /// Absolute entry index into [`CompiledProgram::code`].
    pub entry: u32,
    /// Total locals the activation needs (parameters, rest list, and the
    /// high-water mark of nested `let`/`letrec` scopes).
    pub frame_size: u16,
    /// Capture sources, one per [`LambdaDef::free`] entry.
    pub captures: Vec<CapSrc>,
}

/// Compiled form of one top-level form.
#[derive(Debug, Clone)]
pub struct TopCode {
    /// Absolute entry index into [`CompiledProgram::code`].
    pub entry: u32,
    /// Locals the form's activation needs.
    pub frame_size: u16,
    /// `Some(g)` for `(define name e)` — the produced value is stored in
    /// global `g`; `None` for an expression form.
    pub define: Option<GlobalIndex>,
}

/// A whole program lowered to the flat IR: one contiguous instruction
/// arena plus the pools and tables its instructions index.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The instruction arena (every function and top form, concatenated).
    pub code: Vec<Instr>,
    /// Constant pool, deduplicated by quote-site identity.
    pub consts: Vec<Rc<Datum>>,
    /// Blame-label pool for `terminating/c` forms.
    pub labels: Vec<Rc<str>>,
    /// Lambda templates, indexed by [`LambdaId`].
    pub templates: Vec<Template>,
    /// Top-level forms in program order.
    pub top: Vec<TopCode>,
    /// Call-site table; site 0 is always [`SiteAction::Generic`].
    pub sites: Vec<CallSite>,
    /// Whether an enforcement plan was baked in at compilation time.
    pub planned: bool,
    /// Identity token of the plan the image was compiled against:
    /// `EnforcementPlan::decisions_fingerprint` for a planned compile,
    /// `0` for an unplanned one. The machine checks it against its
    /// configured plan, so an image baked from one plan can never be
    /// silently paired with another.
    pub plan_token: u64,
}

impl CompiledProgram {
    /// Number of call sites specialized beyond [`SiteAction::Generic`].
    pub fn specialized_sites(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| s.action != SiteAction::Generic)
            .count()
    }
}

//! Polymorphic inline caches for [`SiteAction::Generic`](crate::SiteAction::Generic)
//! call sites.
//!
//! A generic site cannot bake an enforcement decision in at compile time:
//! its callee is first class (a parameter, a `set!`-rebound global, a
//! closure pulled out of a data structure). Such a site still tends to
//! see very few distinct callees at run time, so the machine attaches a
//! small per-site cache keyed on the callee's λ id. After the first
//! observation of a callee, the cache stores the *resolved* fast path —
//! skip the monitor, check an inline domain guard, or monitor — so the
//! steady state replays one comparison instead of re-deriving the
//! decision from the enforcement plan.
//!
//! Every entry is stamped with the machine's current plan stamp (a mix of
//! the installed plan's decisions fingerprint and a global-`set!` epoch).
//! A changed plan or a rebound global therefore *invalidates* stale
//! entries — the next call re-resolves and overwrites — instead of
//! silently skipping enforcement that the new plan no longer discharges.

use sct_core::plan::PlanDomain;
use sct_lang::ast::LambdaId;
use std::rc::Rc;

/// Number of ways per site: callee λs cached before replacement starts.
/// Small on purpose — monomorphic and lightly polymorphic sites dominate,
/// and a megamorphic site degrades gracefully to round-robin replacement.
pub const PIC_WAYS: usize = 4;

/// The resolved fast path cached for one callee λ at one call site —
/// the specialization lattice of the plan-directed compiler, re-derived
/// dynamically: `Skip` ⊐ `Guard` ⊐ `Monitor`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PicAction {
    /// The plan discharged the λ unconditionally: no monitor work.
    Skip,
    /// The plan discharged the λ under per-parameter domain assumptions:
    /// evaluate the guard inline; in-domain calls skip the monitor.
    Guard(Rc<[PlanDomain]>),
    /// The λ stays monitored.
    Monitor,
}

/// One cached observation: callee, resolved action, and the plan stamp
/// the resolution is valid under.
#[derive(Debug, Clone)]
pub struct PicEntry {
    /// The observed callee λ.
    pub lambda: LambdaId,
    /// The fast path resolved for it.
    pub action: PicAction,
    /// Plan stamp at resolution time; a mismatch invalidates the entry.
    pub stamp: u64,
}

/// A polymorphic inline cache: up to [`PIC_WAYS`] entries plus a
/// round-robin replacement cursor.
#[derive(Debug, Clone, Default)]
pub struct Pic {
    ways: [Option<PicEntry>; PIC_WAYS],
    next: u8,
}

impl Pic {
    /// An empty cache.
    pub fn new() -> Pic {
        Pic::default()
    }

    /// The cached entry for `lambda`, stale or not (the caller compares
    /// the stamp and decides between hit and invalidation).
    pub fn lookup(&self, lambda: LambdaId) -> Option<&PicEntry> {
        self.ways.iter().flatten().find(|e| e.lambda == lambda)
    }

    /// Inserts (or refreshes) the entry for `entry.lambda`. An existing
    /// way for the same λ is overwritten in place; otherwise the first
    /// empty way fills; a full cache replaces round-robin.
    pub fn insert(&mut self, entry: PicEntry) {
        if let Some(slot) = self
            .ways
            .iter_mut()
            .find(|w| w.as_ref().is_some_and(|e| e.lambda == entry.lambda))
        {
            *slot = Some(entry);
            return;
        }
        if let Some(slot) = self.ways.iter_mut().find(|w| w.is_none()) {
            *slot = Some(entry);
            return;
        }
        let victim = self.next as usize % PIC_WAYS;
        self.ways[victim] = Some(entry);
        self.next = self.next.wrapping_add(1);
    }

    /// Number of filled ways.
    pub fn filled(&self) -> usize {
        self.ways.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(lambda: LambdaId, stamp: u64) -> PicEntry {
        PicEntry {
            lambda,
            action: PicAction::Skip,
            stamp,
        }
    }

    #[test]
    fn fill_then_overflow_round_robin() {
        let mut pic = Pic::new();
        for id in 0..PIC_WAYS as u32 {
            pic.insert(entry(id, 7));
        }
        assert_eq!(pic.filled(), PIC_WAYS);
        assert!(pic.lookup(0).is_some());
        // Overflow evicts one way but never grows past PIC_WAYS.
        pic.insert(entry(99, 7));
        assert_eq!(pic.filled(), PIC_WAYS);
        assert!(pic.lookup(99).is_some());
    }

    #[test]
    fn same_lambda_overwrites_in_place() {
        let mut pic = Pic::new();
        pic.insert(entry(3, 1));
        pic.insert(PicEntry {
            lambda: 3,
            action: PicAction::Monitor,
            stamp: 2,
        });
        assert_eq!(pic.filled(), 1);
        let e = pic.lookup(3).unwrap();
        assert_eq!(e.stamp, 2);
        assert_eq!(e.action, PicAction::Monitor);
    }
}

//! Deterministic failpoint injection for the serving + persistence stack.
//!
//! A *failpoint* is a named site in production code (`"cache.store.write"`,
//! `"serve.pool.job"`, …) that normally does nothing. Arming it — from a
//! test, the `SCT_FAULTS` environment variable, or `sct serve --faults` —
//! makes the site report an [`Action`] the caller then acts out: return an
//! injected I/O error, panic, stall, or tear a write. Chaos tests drive
//! the daemon with faults armed and assert the *invariants that must
//! survive them*: every request gets exactly one answer, degraded plans
//! are never `Static`, the cache self-heals.
//!
//! # Determinism
//!
//! A site fires according to its spec alone: an optional fire budget
//! (`*N` — fire on the first N hits, then disarm) and an optional seeded
//! probability (`@P` — fire on ~P/1000 of hits, decided by a hash of
//! `(seed, site, hit-index)`, not by a global RNG). Two runs with the same
//! spec, seed, and hit sequence inject exactly the same faults — there is
//! no wall-clock or thread-identity input. `Date`-free by construction.
//!
//! # Spec grammar
//!
//! ```text
//! spec   := entry (';' entry)*
//! entry  := 'seed' '=' u64
//!         | site '=' action ('*' count)? ('@' permille)?
//! action := 'error' | 'enospc' | 'torn' | 'panic' | 'stall-<millis>'
//! ```
//!
//! Example: `seed=3;cache.store.write=enospc@500;serve.pool.job=panic*1`
//! — ENOSPC on ~half of cache writes (deterministically chosen by seed 3),
//! and the first planning job panics.
//!
//! # Cost when disarmed
//!
//! [`check`] is one relaxed atomic load when nothing is armed. With the
//! `noop` cargo feature the registry is compiled out entirely and every
//! site is a constant [`Action::Pass`].
//!
//! # Examples
//!
//! ```
//! use sct_faults::{check, scoped, Action};
//!
//! assert_eq!(check("demo.site"), Action::Pass); // disarmed
//! {
//!     let _armed = scoped("demo.site=error*2").unwrap();
//!     assert_eq!(check("demo.site"), Action::Error);
//!     assert_eq!(check("demo.site"), Action::Error);
//!     assert_eq!(check("demo.site"), Action::Pass); // budget spent
//! }
//! assert_eq!(check("demo.site"), Action::Pass); // guard dropped
//! ```

#![deny(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What an armed failpoint tells its site to do. Sites interpret the
/// action in their own terms — a cache write maps [`Action::Error`] to a
/// swallowed `io::Error`, a worker loop maps [`Action::Panic`] to a real
/// `panic!` — so the injection exercises the *production* failure path,
/// not a test-only shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Not armed (or armed but not firing on this hit): do the real work.
    Pass,
    /// Fail with a generic injected error (sites map it to `io::Error`
    /// or an equivalent domain error).
    Error,
    /// Fail as if the disk were full (`ErrorKind::StorageFull`).
    Enospc,
    /// Corrupt the operation's payload — a write site publishes a
    /// truncated ("torn") entry instead of the full bytes.
    Torn,
    /// Panic at the site (`panic!("injected fault at <site>")`).
    Panic,
    /// Sleep for the given duration before doing the real work.
    Stall(Duration),
}

/// One armed site: the action, an optional remaining-fire budget, and an
/// optional per-hit probability in permille.
#[derive(Debug, Clone)]
struct Site {
    action: Action,
    /// `None` = unlimited; `Some(n)` = fire on at most n more hits.
    fires_left: Option<u64>,
    /// `None` = every hit; `Some(p)` = fire on ~p/1000 of hits, decided
    /// deterministically from (seed, site, hit index).
    permille: Option<u16>,
    /// Total hits observed (fired or not) — the deterministic index.
    hits: u64,
    /// Total fires (for test assertions via [`fired`]).
    fired: u64,
}

#[derive(Debug, Default)]
struct Registry {
    seed: u64,
    sites: HashMap<String, Site>,
}

/// Fast disarmed gate: flipped true while any site is armed.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: std::sync::OnceLock<Mutex<Registry>> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    // A panic *while holding* this lock can only come from an armed
    // Panic action evaluated outside it; registry state is plain data,
    // so recovering from poison is always safe.
    registry().lock().unwrap_or_else(|p| p.into_inner())
}

/// SplitMix64: the deterministic per-hit coin. Good avalanche, no state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn site_hash(site: &str) -> u64 {
    // FNV-1a: stable across platforms and runs (DefaultHasher is not
    // guaranteed stable, and determinism is this crate's contract).
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parses one action token (`error`, `enospc`, `torn`, `panic`,
/// `stall-<ms>`).
fn parse_action(token: &str) -> Result<Action, String> {
    match token {
        "error" => Ok(Action::Error),
        "enospc" => Ok(Action::Enospc),
        "torn" => Ok(Action::Torn),
        "panic" => Ok(Action::Panic),
        other => match other.strip_prefix("stall-") {
            Some(ms) => ms
                .parse::<u64>()
                .map(|ms| Action::Stall(Duration::from_millis(ms)))
                .map_err(|_| format!("bad stall duration in {other:?}")),
            None => Err(format!(
                "unknown action {other:?} (error|enospc|torn|panic|stall-<ms>)"
            )),
        },
    }
}

/// Arms failpoints from a spec string (see the module docs for the
/// grammar). Entries merge into the current registry: re-arming a site
/// replaces its previous entry, `seed=` replaces the seed.
///
/// # Errors
///
/// Returns a description of the first malformed entry; well-formed
/// entries before it are already armed.
pub fn arm(spec: &str) -> Result<(), String> {
    for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
        let (site, rhs) = entry
            .split_once('=')
            .ok_or_else(|| format!("missing '=' in failpoint entry {entry:?}"))?;
        let (site, rhs) = (site.trim(), rhs.trim());
        if site == "seed" {
            let seed = rhs
                .parse::<u64>()
                .map_err(|_| format!("bad seed {rhs:?}"))?;
            lock().seed = seed;
            continue;
        }
        // Split off @permille, then *count, then the action.
        let (rest, permille) = match rhs.split_once('@') {
            Some((r, p)) => (
                r,
                Some(
                    p.parse::<u16>()
                        .ok()
                        .filter(|p| *p <= 1000)
                        .ok_or_else(|| format!("bad permille {p:?} in {entry:?} (0..=1000)"))?,
                ),
            ),
            None => (rhs, None),
        };
        let (action_text, fires_left) = match rest.split_once('*') {
            Some((a, n)) => (
                a,
                Some(
                    n.parse::<u64>()
                        .map_err(|_| format!("bad fire count {n:?} in {entry:?}"))?,
                ),
            ),
            None => (rest, None),
        };
        let action = parse_action(action_text.trim())?;
        lock().sites.insert(
            site.to_string(),
            Site {
                action,
                fires_left,
                permille,
                hits: 0,
                fired: 0,
            },
        );
    }
    ANY_ARMED.store(!lock().sites.is_empty(), Ordering::Release);
    Ok(())
}

/// Arms failpoints from the `SCT_FAULTS` environment variable (and the
/// seed from `SCT_FAULTS_SEED`, overridable by an in-spec `seed=`).
/// Returns the armed spec when one was found.
///
/// # Errors
///
/// As [`arm`], for a malformed `SCT_FAULTS` value.
pub fn arm_from_env() -> Result<Option<String>, String> {
    if let Ok(seed) = std::env::var("SCT_FAULTS_SEED") {
        let seed = seed
            .parse::<u64>()
            .map_err(|_| format!("bad SCT_FAULTS_SEED {seed:?}"))?;
        lock().seed = seed;
    }
    match std::env::var("SCT_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            arm(&spec)?;
            Ok(Some(spec))
        }
        _ => Ok(None),
    }
}

/// Disarms every failpoint and resets the seed.
pub fn disarm_all() {
    let mut reg = lock();
    reg.sites.clear();
    reg.seed = 0;
    ANY_ARMED.store(false, Ordering::Release);
}

/// An RAII guard from [`scoped`]: disarms everything on drop.
#[derive(Debug)]
pub struct Armed(());

impl Drop for Armed {
    fn drop(&mut self) {
        disarm_all();
    }
}

/// Arms `spec` and returns a guard that disarms *all* failpoints when
/// dropped — the shape tests want. The registry is process-global, so
/// tests arming failpoints must serialize among themselves (a shared
/// `Mutex<()>` in the test module is the convention).
///
/// # Errors
///
/// As [`arm`]; nothing stays armed on error.
pub fn scoped(spec: &str) -> Result<Armed, String> {
    arm(spec).inspect_err(|_| disarm_all())?;
    Ok(Armed(()))
}

/// Evaluates the failpoint at `site`: [`Action::Pass`] unless the site is
/// armed *and* fires on this hit (budget not exhausted, probability coin
/// up). The returned action is for the caller to act out — [`check`]
/// itself never panics, stalls, or errors.
#[cfg(not(feature = "noop"))]
pub fn check(site: &str) -> Action {
    if !ANY_ARMED.load(Ordering::Acquire) {
        return Action::Pass;
    }
    let mut reg = lock();
    let seed = reg.seed;
    let Some(entry) = reg.sites.get_mut(site) else {
        return Action::Pass;
    };
    let hit = entry.hits;
    entry.hits += 1;
    if entry.fires_left == Some(0) {
        return Action::Pass;
    }
    if let Some(p) = entry.permille {
        let coin = splitmix64(seed ^ site_hash(site) ^ hit) % 1000;
        if coin >= u64::from(p) {
            return Action::Pass;
        }
    }
    if let Some(n) = &mut entry.fires_left {
        *n -= 1;
    }
    entry.fired += 1;
    entry.action
}

/// The `noop` build: every site is a constant pass.
#[cfg(feature = "noop")]
pub fn check(_site: &str) -> Action {
    Action::Pass
}

/// How many times `site` has fired (0 when never armed). Test aid.
pub fn fired(site: &str) -> u64 {
    lock().sites.get(site).map_or(0, |s| s.fired)
}

/// Maps the failpoint at `site` to an I/O result: [`Action::Error`]
/// becomes a generic injected `io::Error`, [`Action::Enospc`] an
/// out-of-space error; every other action (including [`Action::Torn`],
/// which only write sites can act out) passes. The convenience shape for
/// filesystem sites:
///
/// ```
/// # fn body() -> std::io::Result<()> { Ok(()) }
/// fn store() -> std::io::Result<()> {
///     sct_faults::io_check("cache.store.write")?;
///     body()
/// }
/// ```
///
/// # Errors
///
/// The injected error, when the site fires with an I/O-shaped action.
pub fn io_check(site: &str) -> std::io::Result<()> {
    match check(site) {
        Action::Error => Err(std::io::Error::other(format!("injected fault at {site}"))),
        Action::Enospc => Err(std::io::Error::new(
            std::io::ErrorKind::StorageFull,
            format!("injected ENOSPC at {site}"),
        )),
        Action::Panic => panic!("injected panic at {site}"),
        Action::Stall(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        Action::Pass | Action::Torn => Ok(()),
    }
}

/// Acts out the non-I/O actions at `site`: panics on [`Action::Panic`],
/// sleeps on [`Action::Stall`], ignores the rest. The convenience shape
/// for control-flow sites (worker loops, accept loops).
pub fn act(site: &str) {
    match check(site) {
        Action::Panic => panic!("injected panic at {site}"),
        Action::Stall(d) => std::thread::sleep(d),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The registry is process-global: tests must not interleave.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_is_pass() {
        let _s = serial();
        disarm_all();
        assert_eq!(check("nope"), Action::Pass);
        assert_eq!(fired("nope"), 0);
    }

    #[test]
    fn budget_limits_fires() {
        let _s = serial();
        let _g = scoped("a.b=error*2").unwrap();
        assert_eq!(check("a.b"), Action::Error);
        assert_eq!(check("a.b"), Action::Error);
        assert_eq!(check("a.b"), Action::Pass);
        assert_eq!(fired("a.b"), 2);
    }

    #[test]
    fn unrelated_sites_do_not_fire() {
        let _s = serial();
        let _g = scoped("a.b=panic").unwrap();
        assert_eq!(check("a.c"), Action::Pass);
    }

    #[test]
    fn probability_is_deterministic_in_seed_and_hit_index() {
        let _s = serial();
        let pattern = |seed: u64| -> Vec<bool> {
            let _g = scoped(&format!("seed={seed};p.q=error@400")).unwrap();
            (0..64).map(|_| check("p.q") == Action::Error).collect()
        };
        let a = pattern(7);
        let b = pattern(7);
        assert_eq!(a, b, "same seed must reproduce the same fire pattern");
        let c = pattern(8);
        assert_ne!(a, c, "a different seed must perturb the pattern");
        let rate = a.iter().filter(|f| **f).count();
        assert!((10..=40).contains(&rate), "~40% of 64, got {rate}");
    }

    #[test]
    fn stall_parses_with_duration() {
        let _s = serial();
        let _g = scoped("s.t=stall-25").unwrap();
        assert_eq!(check("s.t"), Action::Stall(Duration::from_millis(25)));
    }

    #[test]
    fn io_check_maps_enospc() {
        let _s = serial();
        let _g = scoped("d.e=enospc*1").unwrap();
        let err = io_check("d.e").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        assert!(io_check("d.e").is_ok());
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _s = serial();
        for bad in [
            "no-equals",
            "a.b=warp",
            "a.b=stall-xx",
            "a.b=error*x",
            "a.b=error@1001",
            "seed=minus",
        ] {
            assert!(scoped(bad).is_err(), "{bad:?} should be rejected");
        }
        assert_eq!(check("a.b"), Action::Pass, "nothing stays armed on error");
    }

    #[test]
    fn rearming_replaces_and_guard_disarms() {
        let _s = serial();
        {
            let _g = scoped("x.y=panic").unwrap();
            arm("x.y=error").unwrap();
            assert_eq!(check("x.y"), Action::Error);
        }
        assert_eq!(check("x.y"), Action::Pass);
    }
}

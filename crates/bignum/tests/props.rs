//! Property tests validating bignum arithmetic against `i128` reference
//! arithmetic and algebraic laws that hold beyond `i128` range.

use proptest::prelude::*;
use sct_bignum::{BigInt, Int};

fn big(n: i128) -> BigInt {
    n.to_string().parse().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let expect = a as i128 + b as i128;
        prop_assert_eq!(BigInt::from(a).add(&BigInt::from(b)), big(expect));
        prop_assert_eq!((&Int::from(a) + &Int::from(b)).to_string(), expect.to_string());
    }

    #[test]
    fn sub_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let expect = a as i128 - b as i128;
        prop_assert_eq!(BigInt::from(a).sub(&BigInt::from(b)), big(expect));
        prop_assert_eq!((&Int::from(a) - &Int::from(b)).to_string(), expect.to_string());
    }

    #[test]
    fn mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let expect = a as i128 * b as i128;
        prop_assert_eq!(BigInt::from(a).mul(&BigInt::from(b)), big(expect));
        prop_assert_eq!((&Int::from(a) * &Int::from(b)).to_string(), expect.to_string());
    }

    #[test]
    fn divrem_matches_i128(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |b| *b != 0)) {
        let (q, r) = BigInt::from(a).divrem(&BigInt::from(b));
        prop_assert_eq!(q, big(a as i128 / b as i128));
        prop_assert_eq!(r, big(a as i128 % b as i128));
    }

    #[test]
    fn divrem_reconstructs(a_str in "-?[1-9][0-9]{0,40}", b_str in "-?[1-9][0-9]{0,20}") {
        // a = q*b + r with |r| < |b| and sign(r) = sign(a), far beyond i128.
        let a: BigInt = a_str.parse().unwrap();
        let b: BigInt = b_str.parse().unwrap();
        let (q, r) = a.divrem(&b);
        prop_assert_eq!(q.mul(&b).add(&r), a.clone());
        prop_assert!(r.cmp_abs(&b) == std::cmp::Ordering::Less);
        prop_assert!(r.is_zero() || r.is_negative() == a.is_negative());
    }

    #[test]
    fn parse_display_roundtrip(s in "-?[1-9][0-9]{0,60}") {
        let b: BigInt = s.parse().unwrap();
        prop_assert_eq!(b.to_string(), s);
    }

    #[test]
    fn ordering_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(BigInt::from(a).cmp(&BigInt::from(b)), (a as i128).cmp(&(b as i128)));
        prop_assert_eq!(Int::from(a).cmp(&Int::from(b)), a.cmp(&b));
        prop_assert_eq!(
            Int::from(a).cmp_abs(&Int::from(b)),
            (a as i128).unsigned_abs().cmp(&(b as i128).unsigned_abs())
        );
    }

    #[test]
    fn associativity_beyond_i128(a_str in "[1-9][0-9]{30,50}", b in any::<i64>(), c in any::<i64>()) {
        let a: Int = a_str.parse().unwrap();
        let b = Int::from(b);
        let c = Int::from(c);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        // Distributivity.
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn modulo_in_divisor_range(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |b| *b != 0)) {
        let m = Int::from(a).checked_modulo(&Int::from(b)).unwrap();
        // Floored modulo: same sign as divisor (or zero), |m| < |b|.
        prop_assert!(m.is_zero() || m.is_negative() == (b < 0));
        prop_assert!(m.cmp_abs(&Int::from(b)) == std::cmp::Ordering::Less);
        // And congruent to a mod |b|.
        let diff = &Int::from(a) - &m;
        prop_assert!(diff.checked_remainder(&Int::from(b)).unwrap().is_zero());
    }
}

//! [`Int`]: a fixnum with automatic bignum promotion, mirroring Racket's
//! exact-integer tower.

use crate::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};
use std::rc::Rc;
use std::str::FromStr;

/// An exact integer: an `i64` fixnum that transparently promotes to a
/// heap-allocated [`BigInt`] on overflow and demotes when results fit again.
///
/// The canonical-form invariant — the `Big` representation is used only for
/// values outside `i64` — makes derived structural equality and hashing
/// correct.
///
/// # Examples
///
/// ```
/// use sct_bignum::Int;
///
/// let big = &Int::from(i64::MAX) + &Int::from(1i64);
/// assert_eq!(big.to_string(), "9223372036854775808");
/// assert_eq!((&big - &Int::from(1i64)), Int::from(i64::MAX));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Int {
    /// A fixnum.
    Small(i64),
    /// A bignum outside `i64` range (canonical-form invariant).
    Big(Rc<BigInt>),
}

impl Int {
    /// Zero.
    pub fn zero() -> Int {
        Int::Small(0)
    }

    /// One.
    pub fn one() -> Int {
        Int::Small(1)
    }

    /// Canonicalizes a [`BigInt`] into an [`Int`], demoting when it fits.
    pub fn from_big(b: BigInt) -> Int {
        match b.to_i64() {
            Some(n) => Int::Small(n),
            None => Int::Big(Rc::new(b)),
        }
    }

    /// Expands to a [`BigInt`] (allocates only for fixnums).
    pub fn to_big(&self) -> BigInt {
        match self {
            Int::Small(n) => BigInt::from(*n),
            Int::Big(b) => (**b).clone(),
        }
    }

    /// Returns the fixnum value when in range.
    pub fn to_i64(&self) -> Option<i64> {
        match self {
            Int::Small(n) => Some(*n),
            Int::Big(_) => None,
        }
    }

    /// True when zero.
    pub fn is_zero(&self) -> bool {
        matches!(self, Int::Small(0))
    }

    /// True when strictly negative.
    pub fn is_negative(&self) -> bool {
        match self {
            Int::Small(n) => *n < 0,
            Int::Big(b) => b.is_negative(),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Int {
        match self {
            Int::Small(n) => match n.checked_abs() {
                Some(a) => Int::Small(a),
                None => Int::from_big(BigInt::from(*n).abs()),
            },
            Int::Big(b) => Int::from_big(b.abs()),
        }
    }

    /// Compares absolute values: the measure of the paper's default
    /// well-founded order on integers (Figure 5).
    ///
    /// ```
    /// # use sct_bignum::Int;
    /// # use std::cmp::Ordering;
    /// assert_eq!(Int::from(-5i64).cmp_abs(&Int::from(3i64)), Ordering::Greater);
    /// ```
    pub fn cmp_abs(&self, other: &Int) -> Ordering {
        match (self, other) {
            (Int::Small(a), Int::Small(b)) => a.unsigned_abs().cmp(&b.unsigned_abs()),
            // A canonical Big always exceeds any fixnum in magnitude...
            (Int::Small(_), Int::Big(_)) => Ordering::Less,
            (Int::Big(_), Int::Small(_)) => Ordering::Greater,
            (Int::Big(a), Int::Big(b)) => a.cmp_abs(b),
        }
    }

    /// Truncating quotient (Scheme `quotient`); `None` on zero divisor.
    pub fn checked_quotient(&self, other: &Int) -> Option<Int> {
        if other.is_zero() {
            return None;
        }
        match (self, other) {
            (Int::Small(a), Int::Small(b)) => match a.checked_div(*b) {
                Some(q) => Some(Int::Small(q)),
                None => Some(Int::from_big(BigInt::from(*a).divrem(&BigInt::from(*b)).0)),
            },
            _ => Some(Int::from_big(self.to_big().divrem(&other.to_big()).0)),
        }
    }

    /// Truncating remainder (Scheme `remainder`); `None` on zero divisor.
    pub fn checked_remainder(&self, other: &Int) -> Option<Int> {
        if other.is_zero() {
            return None;
        }
        match (self, other) {
            (Int::Small(a), Int::Small(b)) => match a.checked_rem(*b) {
                Some(r) => Some(Int::Small(r)),
                None => Some(Int::Small(0)), // i64::MIN % -1 == 0
            },
            _ => Some(Int::from_big(self.to_big().divrem(&other.to_big()).1)),
        }
    }

    /// Flooring modulo (Scheme `modulo`); `None` on zero divisor.
    pub fn checked_modulo(&self, other: &Int) -> Option<Int> {
        let r = self.checked_remainder(other)?;
        if r.is_zero() || r.is_negative() == other.is_negative() {
            Some(r)
        } else {
            Some(&r + other)
        }
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &Int) -> Int {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = a.checked_remainder(&b).expect("nonzero divisor");
            a = b;
            b = r.abs();
        }
        a
    }
}

impl From<i64> for Int {
    fn from(n: i64) -> Int {
        Int::Small(n)
    }
}

impl From<i32> for Int {
    fn from(n: i32) -> Int {
        Int::Small(n as i64)
    }
}

impl From<BigInt> for Int {
    fn from(b: BigInt) -> Int {
        Int::from_big(b)
    }
}

impl FromStr for Int {
    type Err = crate::ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Ok(n) = s.parse::<i64>() {
            // Reject forms BigInt's parser would reject (e.g. "1_0").
            if s.parse::<BigInt>().is_ok() {
                return Ok(Int::Small(n));
            }
        }
        s.parse::<BigInt>().map(Int::from_big)
    }
}

impl Add for &Int {
    type Output = Int;

    fn add(self, rhs: &Int) -> Int {
        match (self, rhs) {
            (Int::Small(a), Int::Small(b)) => match a.checked_add(*b) {
                Some(s) => Int::Small(s),
                None => Int::from_big(BigInt::from(*a).add(&BigInt::from(*b))),
            },
            _ => Int::from_big(self.to_big().add(&rhs.to_big())),
        }
    }
}

impl Sub for &Int {
    type Output = Int;

    fn sub(self, rhs: &Int) -> Int {
        match (self, rhs) {
            (Int::Small(a), Int::Small(b)) => match a.checked_sub(*b) {
                Some(s) => Int::Small(s),
                None => Int::from_big(BigInt::from(*a).sub(&BigInt::from(*b))),
            },
            _ => Int::from_big(self.to_big().sub(&rhs.to_big())),
        }
    }
}

impl Mul for &Int {
    type Output = Int;

    fn mul(self, rhs: &Int) -> Int {
        match (self, rhs) {
            (Int::Small(a), Int::Small(b)) => match a.checked_mul(*b) {
                Some(s) => Int::Small(s),
                None => Int::from_big(BigInt::from(*a).mul(&BigInt::from(*b))),
            },
            _ => Int::from_big(self.to_big().mul(&rhs.to_big())),
        }
    }
}

impl Neg for &Int {
    type Output = Int;

    fn neg(self) -> Int {
        match self {
            Int::Small(n) => match n.checked_neg() {
                Some(m) => Int::Small(m),
                None => Int::from_big(BigInt::from(*n).neg()),
            },
            Int::Big(b) => Int::from_big(b.neg()),
        }
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Int::Small(a), Int::Small(b)) => a.cmp(b),
            // Canonical Big is out of i64 range, so its sign decides.
            (Int::Small(_), Int::Big(b)) => {
                if b.is_negative() {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (Int::Big(a), Int::Small(_)) => {
                if a.is_negative() {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (Int::Big(a), Int::Big(b)) => a.as_ref().cmp(b.as_ref()),
        }
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Int::Small(n) => write!(f, "{n}"),
            Int::Big(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(s: &str) -> Int {
        s.parse().unwrap()
    }

    #[test]
    fn canonical_form() {
        // Parsing a value in range gives Small even via the BigInt path.
        assert!(matches!(int("9223372036854775807"), Int::Small(_)));
        assert!(matches!(int("9223372036854775808"), Int::Big(_)));
        assert!(matches!(int("-9223372036854775808"), Int::Small(_)));
        assert!(matches!(int("-9223372036854775809"), Int::Big(_)));
    }

    #[test]
    fn overflow_promotes_and_demotes() {
        let max = Int::from(i64::MAX);
        let one = Int::one();
        let big = &max + &one;
        assert!(matches!(big, Int::Big(_)));
        let back = &big - &one;
        assert!(matches!(back, Int::Small(_)));
        assert_eq!(back, max);

        let min = Int::from(i64::MIN);
        assert!(matches!(-&min, Int::Big(_)));
        assert_eq!(&(-&min) + &min, Int::zero());
    }

    #[test]
    fn mixed_arithmetic() {
        let a = int("123456789012345678901234567890");
        let b = Int::from(-2i64);
        assert_eq!((&a * &b).to_string(), "-246913578024691357802469135780");
        assert_eq!(
            a.checked_quotient(&b).unwrap().to_string(),
            "-61728394506172839450617283945"
        );
        assert_eq!(&a + &(-&a), Int::zero());
    }

    #[test]
    fn division_conventions() {
        assert_eq!(
            Int::from(-7i64).checked_quotient(&Int::from(2i64)),
            Some(Int::from(-3i64))
        );
        assert_eq!(
            Int::from(-7i64).checked_remainder(&Int::from(2i64)),
            Some(Int::from(-1i64))
        );
        assert_eq!(
            Int::from(-7i64).checked_modulo(&Int::from(2i64)),
            Some(Int::from(1i64))
        );
        assert_eq!(
            Int::from(7i64).checked_modulo(&Int::from(-2i64)),
            Some(Int::from(-1i64))
        );
        assert_eq!(Int::from(1i64).checked_quotient(&Int::zero()), None);
        assert_eq!(Int::from(1i64).checked_remainder(&Int::zero()), None);
        assert_eq!(Int::from(1i64).checked_modulo(&Int::zero()), None);
        // i64::MIN / -1 overflows i64; must promote.
        let q = Int::from(i64::MIN)
            .checked_quotient(&Int::from(-1i64))
            .unwrap();
        assert_eq!(q.to_string(), "9223372036854775808");
    }

    #[test]
    fn ordering_across_reprs() {
        let big_pos = int("99999999999999999999");
        let big_neg = int("-99999999999999999999");
        assert!(big_neg < Int::from(0i64));
        assert!(Int::from(0i64) < big_pos);
        assert!(big_neg < big_pos);
        assert!(Int::from(i64::MAX) < big_pos);
    }

    #[test]
    fn abs_and_cmp_abs() {
        assert_eq!(Int::from(i64::MIN).abs().to_string(), "9223372036854775808");
        assert_eq!(Int::from(-3i64).cmp_abs(&Int::from(3i64)), Ordering::Equal);
        assert_eq!(
            int("-99999999999999999999").cmp_abs(&Int::from(5i64)),
            Ordering::Greater
        );
        assert_eq!(
            Int::from(5i64).cmp_abs(&int("99999999999999999999")),
            Ordering::Less
        );
    }

    #[test]
    fn gcd_works() {
        assert_eq!(Int::from(12i64).gcd(&Int::from(18i64)), Int::from(6i64));
        assert_eq!(Int::from(-12i64).gcd(&Int::from(18i64)), Int::from(6i64));
        assert_eq!(Int::from(0i64).gcd(&Int::from(5i64)), Int::from(5i64));
        assert_eq!(
            int("123456789012345678901234567890").gcd(&Int::from(9i64)),
            Int::from(9i64)
        );
    }
}

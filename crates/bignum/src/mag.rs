//! Magnitude (unsigned, little-endian base-2³² limb vector) arithmetic.
//!
//! All functions maintain the invariant that magnitudes have no trailing
//! zero limbs; the empty vector represents zero.

use std::cmp::Ordering;

pub(crate) const BASE_BITS: u32 = 32;

/// Drops trailing zero limbs in place.
pub(crate) fn normalize(mag: &mut Vec<u32>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

/// Compares two normalized magnitudes.
pub(crate) fn cmp(a: &[u32], b: &[u32]) -> Ordering {
    match a.len().cmp(&b.len()) {
        Ordering::Equal => {
            for (x, y) in a.iter().rev().zip(b.iter().rev()) {
                match x.cmp(y) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        }
        other => other,
    }
}

/// `a + b`.
pub(crate) fn add(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &limb) in long.iter().enumerate() {
        let s = limb as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
        out.push(s as u32);
        carry = s >> BASE_BITS;
    }
    if carry > 0 {
        out.push(carry as u32);
    }
    out
}

/// `a - b`; requires `a >= b`.
pub(crate) fn sub(a: &[u32], b: &[u32]) -> Vec<u32> {
    debug_assert!(cmp(a, b) != Ordering::Less, "mag::sub underflow");
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i64;
    for (i, &limb) in a.iter().enumerate() {
        let d = limb as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
        if d < 0 {
            out.push((d + (1i64 << BASE_BITS)) as u32);
            borrow = 1;
        } else {
            out.push(d as u32);
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0);
    normalize(&mut out);
    out
}

/// Schoolbook `a * b`.
pub(crate) fn mul(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &y) in b.iter().enumerate() {
            let t = out[i + j] as u64 + x as u64 * y as u64 + carry;
            out[i + j] = t as u32;
            carry = t >> BASE_BITS;
        }
        let mut k = i + b.len();
        while carry > 0 {
            let t = out[k] as u64 + carry;
            out[k] = t as u32;
            carry = t >> BASE_BITS;
            k += 1;
        }
    }
    normalize(&mut out);
    out
}

/// Divides by a single limb, returning (quotient, remainder).
pub(crate) fn divrem_limb(a: &[u32], d: u32) -> (Vec<u32>, u32) {
    debug_assert!(d != 0);
    let mut q = vec![0u32; a.len()];
    let mut rem = 0u64;
    for i in (0..a.len()).rev() {
        let cur = (rem << BASE_BITS) | a[i] as u64;
        q[i] = (cur / d as u64) as u32;
        rem = cur % d as u64;
    }
    normalize(&mut q);
    (q, rem as u32)
}

/// Index of the highest set bit (0-based); requires non-zero input.
fn bit_len(a: &[u32]) -> usize {
    debug_assert!(!a.is_empty());
    (a.len() - 1) * BASE_BITS as usize + (BASE_BITS - a.last().unwrap().leading_zeros()) as usize
}

fn get_bit(a: &[u32], i: usize) -> bool {
    let limb = i / BASE_BITS as usize;
    let off = i % BASE_BITS as usize;
    a.get(limb).is_some_and(|&w| (w >> off) & 1 == 1)
}

fn set_bit(a: &mut Vec<u32>, i: usize) {
    let limb = i / BASE_BITS as usize;
    let off = i % BASE_BITS as usize;
    if a.len() <= limb {
        a.resize(limb + 1, 0);
    }
    a[limb] |= 1 << off;
}

/// Shifts left by one bit in place and ORs in `low`.
fn shl1_or(a: &mut Vec<u32>, low: bool) {
    let mut carry = low as u32;
    for w in a.iter_mut() {
        let next = *w >> (BASE_BITS - 1);
        *w = (*w << 1) | carry;
        carry = next;
    }
    if carry != 0 {
        a.push(carry);
    }
}

/// General `a / b` via binary long division; returns (quotient, remainder).
///
/// O(bits(a) · limbs(b)) — acceptable because multi-limb divisors are rare in
/// the corpus (divisions are by small constants or near-fixnum values).
pub(crate) fn divrem(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
    assert!(!b.is_empty(), "division by zero magnitude");
    if cmp(a, b) == Ordering::Less {
        return (Vec::new(), a.to_vec());
    }
    if b.len() == 1 {
        let (q, r) = divrem_limb(a, b[0]);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }
    let n = bit_len(a);
    let mut q: Vec<u32> = Vec::new();
    let mut r: Vec<u32> = Vec::new();
    for i in (0..n).rev() {
        shl1_or(&mut r, get_bit(a, i));
        if cmp(&r, b) != Ordering::Less {
            r = sub(&r, b);
            set_bit(&mut q, i);
        }
    }
    normalize(&mut q);
    normalize(&mut r);
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_u128(mut n: u128) -> Vec<u32> {
        let mut v = Vec::new();
        while n > 0 {
            v.push(n as u32);
            n >>= 32;
        }
        v
    }

    fn to_u128(v: &[u32]) -> u128 {
        v.iter()
            .rev()
            .fold(0u128, |acc, &w| (acc << 32) | w as u128)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = from_u128(0xffff_ffff_ffff_ffff_ffff);
        let b = from_u128(0x1_0000_0001);
        let s = add(&a, &b);
        assert_eq!(to_u128(&s), 0xffff_ffff_ffff_ffff_ffff + 0x1_0000_0001);
        assert_eq!(to_u128(&sub(&s, &b)), to_u128(&a));
        assert_eq!(sub(&a, &a), Vec::<u32>::new());
    }

    #[test]
    fn mul_known() {
        let a = from_u128(0xffff_ffff);
        let b = from_u128(0xffff_ffff);
        assert_eq!(to_u128(&mul(&a, &b)), 0xffff_ffff * 0xffff_ffffu128);
        assert_eq!(mul(&a, &[]), Vec::<u32>::new());
    }

    #[test]
    fn divrem_limb_known() {
        let a = from_u128(1_000_000_000_000_000_000_000u128);
        let (q, r) = divrem_limb(&a, 7);
        assert_eq!(to_u128(&q), 1_000_000_000_000_000_000_000u128 / 7);
        assert_eq!(r as u128, 1_000_000_000_000_000_000_000u128 % 7);
    }

    #[test]
    fn divrem_general() {
        let a = from_u128(0xdead_beef_dead_beef_dead_beef_dead_beef);
        let b = from_u128(0x1234_5678_9abc_def0_1234);
        let (q, r) = divrem(&a, &b);
        let (qa, qb) = (to_u128(&a), to_u128(&b));
        assert_eq!(to_u128(&q), qa / qb);
        assert_eq!(to_u128(&r), qa % qb);
    }

    #[test]
    fn divrem_smaller_dividend() {
        let a = from_u128(5);
        let b = from_u128(0x1_0000_0000_0000);
        let (q, r) = divrem(&a, &b);
        assert!(q.is_empty());
        assert_eq!(to_u128(&r), 5);
    }

    #[test]
    fn cmp_orders() {
        assert_eq!(cmp(&from_u128(5), &from_u128(6)), Ordering::Less);
        assert_eq!(cmp(&from_u128(6), &from_u128(5)), Ordering::Greater);
        assert_eq!(
            cmp(&from_u128(1 << 40), &from_u128(1 << 40)),
            Ordering::Equal
        );
        assert_eq!(cmp(&[], &from_u128(1)), Ordering::Less);
    }
}

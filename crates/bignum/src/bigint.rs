//! Sign-magnitude arbitrary-precision integer.

use crate::mag;
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// The sign of a [`BigInt`]. Zero is always [`Sign::Plus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Negative.
    Minus,
    /// Zero or positive.
    Plus,
}

/// An arbitrary-precision signed integer.
///
/// Internally sign-magnitude with little-endian base-2³² limbs; the zero
/// value has an empty magnitude and positive sign, so equality is structural.
///
/// # Examples
///
/// ```
/// use sct_bignum::BigInt;
///
/// let a: BigInt = "123456789012345678901234567890".parse()?;
/// let b = BigInt::from(-42i64);
/// assert_eq!((&a * &b).to_string(), "-5185185138518518513851851851380");
/// # Ok::<(), sct_bignum::ParseBigIntError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: Vec<u32>,
}

impl BigInt {
    /// The zero value.
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Plus,
            mag: Vec::new(),
        }
    }

    fn from_mag(sign: Sign, mag: Vec<u32>) -> BigInt {
        if mag.is_empty() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// True when this is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// True when strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// The sign; zero reports [`Sign::Plus`].
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Negation.
    pub fn neg(&self) -> BigInt {
        if self.is_zero() {
            BigInt::zero()
        } else {
            BigInt {
                sign: if self.sign == Sign::Plus {
                    Sign::Minus
                } else {
                    Sign::Plus
                },
                mag: self.mag.clone(),
            }
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: Sign::Plus,
            mag: self.mag.clone(),
        }
    }

    /// Compares absolute values — the well-founded measure of the paper's
    /// default partial order on integers (Figure 5: `n1 ≺ n2` iff `|n1| < |n2|`).
    pub fn cmp_abs(&self, other: &BigInt) -> Ordering {
        mag::cmp(&self.mag, &other.mag)
    }

    /// `self + other`.
    pub fn add(&self, other: &BigInt) -> BigInt {
        if self.sign == other.sign {
            BigInt::from_mag(self.sign, mag::add(&self.mag, &other.mag))
        } else {
            match mag::cmp(&self.mag, &other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_mag(self.sign, mag::sub(&self.mag, &other.mag)),
                Ordering::Less => BigInt::from_mag(other.sign, mag::sub(&other.mag, &self.mag)),
            }
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.neg())
    }

    /// `self * other`.
    pub fn mul(&self, other: &BigInt) -> BigInt {
        let sign = if self.sign == other.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        BigInt::from_mag(sign, mag::mul(&self.mag, &other.mag))
    }

    /// Truncating division, Scheme's `quotient`/`remainder` convention:
    /// the quotient rounds toward zero and the remainder takes the sign of
    /// the dividend.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn divrem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        let (q, r) = mag::divrem(&self.mag, &other.mag);
        let q_sign = if self.sign == other.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        (BigInt::from_mag(q_sign, q), BigInt::from_mag(self.sign, r))
    }

    /// Flooring modulo, Scheme's `modulo`: the result takes the sign of the
    /// divisor.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn modulo(&self, other: &BigInt) -> BigInt {
        let (_, r) = self.divrem(other);
        if r.is_zero() || r.sign == other.sign {
            r
        } else {
            r.add(other)
        }
    }

    /// Converts to `i64` when in range.
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => {
                let v = self.mag[0] as i64;
                Some(if self.sign == Sign::Minus { -v } else { v })
            }
            2 => {
                let v = ((self.mag[1] as u64) << 32) | self.mag[0] as u64;
                match self.sign {
                    Sign::Plus if v <= i64::MAX as u64 => Some(v as i64),
                    Sign::Minus if v <= i64::MAX as u64 + 1 => Some((v as i64).wrapping_neg()),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Number of limbs; a cheap size proxy for tests.
    pub fn limb_count(&self) -> usize {
        self.mag.len()
    }
}

impl From<i64> for BigInt {
    fn from(n: i64) -> BigInt {
        let sign = if n < 0 { Sign::Minus } else { Sign::Plus };
        let mut u = n.unsigned_abs();
        let mut mag = Vec::new();
        while u > 0 {
            mag.push(u as u32);
            u >>= 32;
        }
        BigInt { sign, mag }
    }
}

impl From<i32> for BigInt {
    fn from(n: i32) -> BigInt {
        BigInt::from(n as i64)
    }
}

impl std::ops::Add for &BigInt {
    type Output = BigInt;

    fn add(self, rhs: &BigInt) -> BigInt {
        BigInt::add(self, rhs)
    }
}

impl std::ops::Sub for &BigInt {
    type Output = BigInt;

    fn sub(self, rhs: &BigInt) -> BigInt {
        BigInt::sub(self, rhs)
    }
}

impl std::ops::Mul for &BigInt {
    type Output = BigInt;

    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::mul(self, rhs)
    }
}

impl std::ops::Neg for &BigInt {
    type Output = BigInt;

    fn neg(self) -> BigInt {
        BigInt::neg(self)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => Ordering::Greater,
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => mag::cmp(&self.mag, &other.mag),
            (Sign::Minus, Sign::Minus) => mag::cmp(&other.mag, &self.mag),
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        if self.sign == Sign::Minus {
            f.write_str("-")?;
        }
        // Repeated division by 10^9 produces 9-digit chunks.
        let mut mag = self.mag.clone();
        let mut chunks: Vec<u32> = Vec::new();
        while !mag.is_empty() {
            let (q, r) = mag::divrem_limb(&mag, 1_000_000_000);
            chunks.push(r);
            mag = q;
        }
        write!(f, "{}", chunks.pop().unwrap())?;
        for c in chunks.iter().rev() {
            write!(f, "{c:09}")?;
        }
        Ok(())
    }
}

/// Error from parsing a [`BigInt`] out of text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    /// Lowercase description.
    pub message: String,
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    /// Parses an optionally-signed decimal integer.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Minus, rest),
            None => (Sign::Plus, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigIntError {
                message: format!("invalid integer literal {s:?}"),
            });
        }
        let mut mag: Vec<u32> = Vec::new();
        // Consume 9 digits at a time: mag = mag * 10^k + chunk.
        let bytes = digits.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(9);
            let chunk: u32 = digits[i..i + take].parse().unwrap();
            let scale = 10u32.pow(take as u32);
            // mag = mag * scale + chunk
            let mut carry = chunk as u64;
            for w in mag.iter_mut() {
                let t = *w as u64 * scale as u64 + carry;
                *w = t as u32;
                carry = t >> 32;
            }
            while carry > 0 {
                mag.push(carry as u32);
                carry >>= 32;
            }
            i += take;
        }
        mag::normalize(&mut mag);
        Ok(BigInt::from_mag(sign, mag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigInt {
        s.parse().unwrap()
    }

    #[test]
    fn from_i64_roundtrip() {
        for n in [
            0i64,
            1,
            -1,
            42,
            i64::MAX,
            i64::MIN,
            i64::MIN + 1,
            1 << 32,
            -(1 << 32),
        ] {
            let b = BigInt::from(n);
            assert_eq!(b.to_i64(), Some(n), "roundtrip {n}");
            assert_eq!(b.to_string(), n.to_string());
        }
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in [
            "0",
            "-1",
            "999999999",
            "1000000000",
            "123456789012345678901234567890",
            "-98765432109876543210987654321098765432109",
        ] {
            assert_eq!(big(s).to_string(), s);
        }
        assert_eq!(big("+7").to_string(), "7");
        assert_eq!(big("-0").to_string(), "0");
        assert_eq!(big("007").to_string(), "7");
        assert!("".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
        assert!("--2".parse::<BigInt>().is_err());
    }

    #[test]
    fn signed_arithmetic() {
        let a = big("100000000000000000000");
        let b = big("-3");
        assert_eq!(a.add(&b).to_string(), "99999999999999999997");
        assert_eq!(a.sub(&b).to_string(), "100000000000000000003");
        assert_eq!(a.mul(&b).to_string(), "-300000000000000000000");
        assert_eq!(b.mul(&b).to_string(), "9");
        assert_eq!(a.add(&a.neg()), BigInt::zero());
    }

    #[test]
    fn quotient_remainder_conventions() {
        // Scheme: quotient truncates toward zero, remainder follows the
        // dividend, modulo (floored) follows the divisor.
        for (a, b) in [(7i64, 2i64), (-7, 2), (7, -2), (-7, -2), (0, 5), (100, 7)] {
            let (q, r) = BigInt::from(a).divrem(&BigInt::from(b));
            assert_eq!(q.to_i64().unwrap(), a / b, "quotient {a}/{b}");
            assert_eq!(r.to_i64().unwrap(), a % b, "remainder {a}%{b}");
        }
        for (a, b, m) in [
            (-7i64, 2i64, 1i64),
            (7, -2, -1),
            (-7, -2, -1),
            (7, 2, 1),
            (6, 3, 0),
        ] {
            assert_eq!(
                BigInt::from(a).modulo(&BigInt::from(b)).to_i64().unwrap(),
                m
            );
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigInt::from(1i64).divrem(&BigInt::zero());
    }

    #[test]
    fn ordering() {
        assert!(big("-5") < big("3"));
        assert!(big("-5") < big("-3"));
        assert!(big("100000000000000000000") > big("99999999999999999999"));
        assert_eq!(big("12").cmp(&big("12")), Ordering::Equal);
    }

    #[test]
    fn abs_comparison() {
        assert_eq!(big("-7").cmp_abs(&big("5")), Ordering::Greater);
        assert_eq!(big("-5").cmp_abs(&big("7")), Ordering::Less);
        assert_eq!(big("-7").cmp_abs(&big("7")), Ordering::Equal);
    }

    #[test]
    fn big_factorial() {
        let mut fact = BigInt::from(1i64);
        for i in 1..=50i64 {
            fact = fact.mul(&BigInt::from(i));
        }
        assert_eq!(
            fact.to_string(),
            "30414093201713378043612608166064768844377641568960512000000000000"
        );
        // And dividing back down recovers 1.
        let mut back = fact.clone();
        for i in (1..=50i64).rev() {
            let (q, r) = back.divrem(&BigInt::from(i));
            assert!(r.is_zero());
            back = q;
        }
        assert_eq!(back.to_i64(), Some(1));
    }
}

//! Arbitrary-precision integer arithmetic for λSCT.
//!
//! The paper's implementation runs on Racket, whose numeric tower silently
//! promotes fixnums to bignums; the `factorial` benchmark of Figure 10 relies
//! on this (multiplying ever-larger bignums is the "significant work between
//! recursive calls" that makes monitoring overhead negligible). This crate is
//! the corresponding substrate: a sign-magnitude bignum ([`BigInt`]) plus a
//! fixnum/bignum sum type ([`Int`]) with automatic promotion and demotion,
//! exactly the arithmetic surface the interpreter's primitives need.
//!
//! # Examples
//!
//! ```
//! use sct_bignum::Int;
//!
//! let mut fact = Int::from(1i64);
//! for i in 1..=30i64 {
//!     fact = &fact * &Int::from(i);
//! }
//! assert_eq!(fact.to_string(), "265252859812191058636308480000000");
//! ```

mod bigint;
mod int;
mod mag;

pub use bigint::{BigInt, ParseBigIntError, Sign};
pub use int::Int;

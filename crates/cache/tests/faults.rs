//! `DiskCache` under injected disk faults: ENOSPC, failed renames, and
//! torn writes mid-store. The invariant ladder, in order of importance:
//! planning *never fails* because the disk did (it degrades to
//! storeless recompute), the counters record every degradation, and the
//! next clean run repairs the entry — the cache self-heals.

use sct_cache::DiskCache;
use sct_lang::compile_program;
use sct_symbolic::pipeline::{plan_program_incremental, DecisionStore, PlanCache, PlanConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The failpoint registry is process-global: these tests must not
/// interleave with each other.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|p| p.into_inner())
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sct-cache-faults-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

const SUM: &str = "(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))";

/// Plans SUM against `store`, returning (static-count, hits, misses).
fn plan_sum(store: &mut dyn DecisionStore) -> (usize, usize, usize) {
    let prog = compile_program(SUM).unwrap();
    let (plan, stats) =
        plan_program_incremental(&prog, &PlanConfig::default(), &mut PlanCache::new(), store);
    (plan.count("static"), stats.hits(), stats.misses())
}

#[test]
fn enospc_mid_store_degrades_to_storeless_planning() {
    let _s = serial();
    let dir = scratch("enospc");
    let mut cache = DiskCache::open(&dir).unwrap();
    {
        let _armed = sct_faults::scoped("cache.store.write=enospc").unwrap();
        // Planning succeeds — the full-disk store is swallowed.
        let (static_count, hits, misses) = plan_sum(&mut cache);
        assert_eq!((static_count, hits, misses), (1, 0, 1));
        let s = cache.stats();
        assert_eq!(s.write_errors, 1, "the reject must be recorded: {s:?}");
        assert_eq!(s.stores, 0, "{s:?}");
        assert_eq!(cache.entry_count(), 0, "nothing may reach the directory");
    }
    // Disk recovered: the next run re-verifies (still a miss — nothing
    // was persisted) and repairs the entry; the one after is a pure hit.
    let (_, hits, misses) = plan_sum(&mut cache);
    assert_eq!((hits, misses), (0, 1));
    assert_eq!(cache.stats().stores, 1);
    assert_eq!(cache.entry_count(), 1);
    let (_, hits, misses) = plan_sum(&mut cache);
    assert_eq!((hits, misses), (1, 0), "repaired entry must serve hits");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rename_failure_mid_store_leaves_no_debris_and_repairs() {
    let _s = serial();
    let dir = scratch("rename");
    let mut cache = DiskCache::open(&dir).unwrap();
    {
        let _armed = sct_faults::scoped("cache.store.rename=error").unwrap();
        let (static_count, _, _) = plan_sum(&mut cache);
        assert_eq!(static_count, 1, "planning must not fail");
        assert_eq!(cache.stats().write_errors, 1);
        // The temp file must have been cleaned up: no `.tmp-*` debris for
        // a long-running daemon to leak. (The define's `.sum` contract
        // summary *is* published — its rename is a separate failpoint —
        // so filter to temp names.)
        let leftovers: Vec<_> = walk(&dir)
            .into_iter()
            .filter(|f| f.starts_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "debris after failed rename: {leftovers:?}"
        );
        assert_eq!(cache.entry_count(), 0, "no decision may be published");
    }
    let (_, _, misses) = plan_sum(&mut cache);
    assert_eq!(misses, 1);
    assert_eq!(cache.entry_count(), 1, "clean run repairs the entry");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_write_is_quarantined_then_self_heals() {
    let _s = serial();
    let dir = scratch("torn");
    let mut cache = DiskCache::open(&dir).unwrap();
    {
        // One torn publish: half the entry's bytes land under the real
        // key — the model of a crash mid-write on a non-atomic filesystem.
        let _armed = sct_faults::scoped("cache.store.write=torn*1").unwrap();
        let (static_count, _, _) = plan_sum(&mut cache);
        assert_eq!(static_count, 1);
        assert_eq!(cache.entry_count(), 1, "the torn entry is published");
    }
    // Next run: the torn entry must be rejected (a miss, never a crash or
    // a bad decision), quarantined for inspection, recomputed, and the
    // store repaired.
    let (static_count, hits, misses) = plan_sum(&mut cache);
    assert_eq!((static_count, hits, misses), (1, 0, 1));
    let s = cache.stats();
    assert_eq!(s.rejected, 1, "{s:?}");
    assert_eq!(s.quarantined, 1, "{s:?}");
    assert_eq!(cache.quarantine_count(), 1, "bad bytes kept for operators");
    assert_eq!(cache.entry_count(), 1, "clean entry republished");
    // Self-healed: the run after is a pure hit.
    let (_, hits, misses) = plan_sum(&mut cache);
    assert_eq!((hits, misses), (1, 0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn read_fault_is_a_miss_not_an_error() {
    let _s = serial();
    let dir = scratch("read");
    let mut cache = DiskCache::open(&dir).unwrap();
    let (_, _, misses) = plan_sum(&mut cache);
    assert_eq!(misses, 1);
    {
        let _armed = sct_faults::scoped("cache.load.read=error").unwrap();
        // The persisted entry exists, but reads fail: recompute, don't die.
        let (static_count, hits, misses) = plan_sum(&mut cache);
        assert_eq!((static_count, hits, misses), (1, 0, 1));
    }
    // Reads recovered: warm again.
    let (_, hits, _) = plan_sum(&mut cache);
    assert_eq!(hits, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seeded_probabilistic_write_faults_never_break_planning() {
    let _s = serial();
    let dir = scratch("prob");
    let mut cache = DiskCache::open(&dir).unwrap();
    let seed: u64 = std::env::var("SCT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let _armed = sct_faults::scoped(&format!("seed={seed};cache.store.write=enospc@500")).unwrap();
    // Distinct programs → distinct keys; every plan must succeed whether
    // or not its store was hit by the fault coin.
    for i in 0..16 {
        let src = format!("(define (f{i} n) (if (zero? n) {i} (f{i} (- n 1))))");
        let prog = compile_program(&src).unwrap();
        let (plan, _) = plan_program_incremental(
            &prog,
            &PlanConfig::default(),
            &mut PlanCache::new(),
            &mut cache,
        );
        assert_eq!(plan.count("static"), 1, "case {i}");
    }
    let s = cache.stats();
    assert_eq!(s.stores + s.write_errors, 16, "{s:?}");
    assert!(s.write_errors > 0, "seeded coin should fail some: {s:?}");
    assert!(s.stores > 0, "…and pass some: {s:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// All file names under the two-level cache layout.
fn walk(dir: &PathBuf) -> Vec<String> {
    let Ok(shards) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    shards
        .flatten()
        .filter_map(|s| std::fs::read_dir(s.path()).ok())
        .flat_map(|files| files.flatten())
        .map(|f| f.file_name().to_string_lossy().into_owned())
        .collect()
}

//! Cache robustness: a hit must be indistinguishable from a fresh
//! computation, and *nothing* on disk may ever crash the planner or leak
//! a stale decision.
//!
//! The property test drives randomly assembled programs (terminating,
//! refuted, opaque, helper-calling, and `set!`-tainted defines in random
//! combinations) through `plan_program_incremental` twice — cold into an
//! empty store, then warm out of it — and asserts the warm plan is
//! structurally equal to the cold one with every define a hit. The
//! regression tests then vandalize the on-disk entries in every way the
//! codec guards against (truncation, corruption, version skew) and assert
//! the planner silently recomputes the same plan.

use proptest::prelude::*;
use sct_cache::{DiskCache, MemStore};
use sct_lang::compile_program;
use sct_symbolic::{plan_program_incremental, NullStore, PlanCache, PlanConfig};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sct-robustness-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One generated `define` (or helper pair), chosen from the
/// decision-relevant shapes: discharged (guarded and unconditional),
/// refuted (blamed and bare), opaque, and helper-calling.
fn define_src(i: usize, choice: u8, k: u64, b: i64, labeled: bool) -> String {
    let name = |tag: &str| format!("{tag}{i}");
    match choice % 6 {
        // Nat-guarded discharge.
        0 => format!(
            "(define ({f} x) (if (zero? x) 0 ({f} (- x {k}))))",
            f = name("count")
        ),
        // Unconditional structural discharge.
        1 => format!(
            "(define ({f} l) (if (null? l) 0 (+ 1 ({f} (cdr l)))))",
            f = name("len")
        ),
        // Two-parameter accumulator.
        2 => format!(
            "(define ({f} i acc) (if (zero? i) (+ acc {b}) ({f} (- i 1) (+ acc i))))",
            f = name("sum")
        ),
        // Statically refuted self-loop, with and without blame.
        3 => {
            if labeled {
                format!(
                    "(define {f} (terminating/c (lambda (x) ({f} x)) \"party-{i}\"))",
                    f = name("spin")
                )
            } else {
                format!("(define ({f} x) ({f} x))", f = name("spin"))
            }
        }
        // Opaque higher-order application: stays monitored.
        4 => format!("(define ({f} g x) (g x))", f = name("call")),
        // A helper and a function descending through it.
        _ => format!(
            "(define ({h} x) (- x {k}))
             (define ({f} x) (if (zero? x) 0 ({f} ({h} x))))",
            h = name("dec"),
            f = name("via")
        ),
    }
}

/// A program: 1–6 generated defines, optionally with a trailing `set!`
/// taint on the first one.
fn program_strategy() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec((0u8..6, 1u64..4, 0i64..10, any::<bool>()), 1..6),
        any::<bool>(),
    )
        .prop_map(|(specs, taint)| {
            let mut src = specs
                .iter()
                .enumerate()
                .map(|(i, &(c, k, b, l))| define_src(i, c, k, b, l))
                .collect::<Vec<_>>()
                .join("\n");
            if taint {
                // Taint whatever global happens to be defined first; its
                // dependents must stay monitored — and must *cache* as
                // monitored, identically cold and warm.
                if let Some(first) = first_defined_name(&src) {
                    src.push_str(&format!("\n(set! {first} (lambda (x) x))"));
                }
            }
            src
        })
}

fn first_defined_name(src: &str) -> Option<String> {
    let after = src.split("(define ").nth(1)?;
    let after = after.strip_prefix('(').unwrap_or(after);
    let name: String = after
        .chars()
        .take_while(|c| !c.is_whitespace() && *c != ')' && *c != '(')
        .collect();
    (!name.is_empty()).then_some(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Warm replay out of a `MemStore` is structurally identical to the
    /// cold computation, and matches a from-scratch plan with no store at
    /// all — for every decision shape the planner can produce.
    #[test]
    fn cache_hit_equals_fresh_plan(src in program_strategy()) {
        let program = compile_program(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
        let cfg = PlanConfig::default();
        let mut store = MemStore::new();
        let (cold, s1) =
            plan_program_incremental(&program, &cfg, &mut PlanCache::new(), &mut store);
        prop_assert_eq!(s1.hits(), 0, "first pass must be all misses: {}", src);
        let (warm, s2) =
            plan_program_incremental(&program, &cfg, &mut PlanCache::new(), &mut store);
        prop_assert_eq!(s2.misses(), 0, "second pass must be all hits: {}", src);
        prop_assert!(cold.structurally_eq(&warm), "warm differs from cold:\n{}", src);
        let (fresh, _) =
            plan_program_incremental(&program, &cfg, &mut PlanCache::new(), &mut NullStore);
        prop_assert!(fresh.structurally_eq(&warm), "warm differs from storeless:\n{}", src);
    }

    /// The same property through the real on-disk store, across two
    /// separate cache handles (two "processes").
    #[test]
    fn disk_hit_equals_fresh_plan(src in program_strategy()) {
        let dir = scratch_dir("prop");
        let program = compile_program(&src).unwrap();
        let cfg = PlanConfig::default();
        let (cold, s1) = plan_program_incremental(
            &program, &cfg, &mut PlanCache::new(), &mut DiskCache::open(&dir).unwrap());
        prop_assert_eq!(s1.hits(), 0);
        let (warm, s2) = plan_program_incremental(
            &program, &cfg, &mut PlanCache::new(), &mut DiskCache::open(&dir).unwrap());
        prop_assert_eq!(s2.misses(), 0, "cross-handle pass must be all hits:\n{}", src);
        prop_assert!(cold.structurally_eq(&warm), "{}", src);
        fs::remove_dir_all(&dir).ok();
    }
}

const PROGRAM: &str = "(define (inc x) (+ x 1))
    (define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))
    (define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))
    (define spin (terminating/c (lambda (x) (spin x)) \"spin-party\"))";

/// Plans `PROGRAM` through a `DiskCache` at `dir`, returning the plan and
/// (hits, misses).
fn plan_disk(
    dir: &PathBuf,
) -> (
    sct_cache::DiskCache,
    sct_core::plan::EnforcementPlan,
    usize,
    usize,
) {
    let program = compile_program(PROGRAM).unwrap();
    let mut disk = DiskCache::open(dir).unwrap();
    let (plan, stats) = plan_program_incremental(
        &program,
        &PlanConfig::default(),
        &mut PlanCache::new(),
        &mut disk,
    );
    let (h, m) = (stats.hits(), stats.misses());
    (disk, plan, h, m)
}

/// Applies `vandalize` to every entry file in the cache — decision
/// `.plan`s *and* contract-summary `.sum`s, which must degrade just as
/// gracefully — returning how many `.plan` entries were touched.
fn vandalize_entries(dir: &PathBuf, vandalize: impl Fn(&str) -> Option<String>) -> usize {
    let mut touched = 0;
    for shard in fs::read_dir(dir).unwrap().flatten() {
        if !shard.path().is_dir() {
            continue;
        }
        for file in fs::read_dir(shard.path()).unwrap().flatten() {
            let text = fs::read_to_string(file.path()).unwrap();
            match vandalize(&text) {
                Some(new_text) => fs::write(file.path(), new_text).unwrap(),
                None => fs::remove_file(file.path()).unwrap(),
            }
            if file.path().extension().is_some_and(|e| e == "plan") {
                touched += 1;
            }
        }
    }
    touched
}

/// The shared regression shape: populate, vandalize every entry, re-plan.
/// Must not crash, must recompute everything (no stale decisions — the
/// vandalized bytes can never be decoded), and must produce a plan
/// structurally equal to the original.
fn assert_recovers(tag: &str, vandalize: impl Fn(&str) -> Option<String>) {
    let dir = scratch_dir(tag);
    let (_, baseline, h0, m0) = plan_disk(&dir);
    assert_eq!((h0, m0), (0, 4), "{tag}: cold run shape");
    let touched = vandalize_entries(&dir, vandalize);
    assert_eq!(touched, 4, "{tag}: all four entries should exist on disk");
    let (disk, replanned, h1, m1) = plan_disk(&dir);
    assert_eq!((h1, m1), (0, 4), "{tag}: every vandalized entry must miss");
    assert!(
        baseline.structurally_eq(&replanned),
        "{tag}: recomputed plan differs"
    );
    assert!(disk.stats().rejected > 0 || tag == "deleted", "{tag}");
    // And the rewritten entries serve hits again afterwards.
    let (_, _, h2, m2) = plan_disk(&dir);
    assert_eq!((h2, m2), (4, 0), "{tag}: cache must heal after recompute");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_entries_fall_back_to_recompute() {
    assert_recovers("truncated", |text| Some(text[..text.len() / 2].to_string()));
}

#[test]
fn corrupt_entries_fall_back_to_recompute() {
    assert_recovers("corrupt", |text| {
        Some(text.replace("\"decision\"", "\"dec!sion\""))
    });
}

#[test]
fn binary_garbage_falls_back_to_recompute() {
    assert_recovers("garbage", |_| {
        Some("\u{0}\u{1}\u{2}not json at all".to_string())
    });
}

#[test]
fn version_mismatch_falls_back_to_recompute() {
    // Both a downgrade and an upgrade of the schema tag must be treated
    // as foreign: never a stale replay from a different codec version.
    assert_recovers("version-old", |text| {
        Some(text.replace("sct-plan/2", "sct-plan/1"))
    });
    assert_recovers("version-new", |text| {
        Some(text.replace("sct-plan/2", "sct-plan/3"))
    });
}

#[test]
fn deleted_entries_fall_back_to_recompute() {
    assert_recovers("deleted", |_| None);
}

/// Config changes must re-key (miss), not replay decisions computed under
/// other knobs — a "stale plan" in the configuration dimension.
#[test]
fn config_change_never_replays_old_decisions() {
    let dir = scratch_dir("config");
    let program = compile_program(PROGRAM).unwrap();
    let mut disk = DiskCache::open(&dir).unwrap();
    let (_, s1) = plan_program_incremental(
        &program,
        &PlanConfig::default(),
        &mut PlanCache::new(),
        &mut disk,
    );
    assert_eq!(s1.misses(), 4);
    let no_refute = PlanConfig {
        refute: false,
        ..PlanConfig::default()
    };
    let (plan, s2) =
        plan_program_incremental(&program, &no_refute, &mut PlanCache::new(), &mut disk);
    assert_eq!(s2.hits(), 0, "different config must never hit");
    assert_eq!(plan.count("refuted"), 0, "refute=false must hold");
    fs::remove_dir_all(&dir).ok();
}

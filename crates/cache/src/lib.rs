//! Persistent, content-addressed storage for enforcement plans.
//!
//! The hybrid pre-pass (`sct_symbolic::plan_program`) re-runs symbolic
//! exploration and the Lee–Jones–Ben-Amram closure check — the expensive,
//! PSPACE-hard-in-general part — from scratch on every invocation, even
//! for byte-identical `define`s. This crate makes "verify once, serve
//! many" real across *processes*: a [`DiskCache`] persists one decision
//! per `define`, addressed by the content key of
//! [`sct_symbolic::digest::ProgramDigests`] (resolved AST + transitively
//! reachable defines + mutation taint + planner config + codec version),
//! so that
//!
//! * re-planning an unchanged program performs zero verifier work — every
//!   define is a disk hit;
//! * editing one `define` re-verifies exactly that define (and its
//!   transitive referers), because only their keys changed;
//! * two processes — or the `sct serve` daemon's worker threads — share
//!   one cache directory safely: writes are atomic (`tmp` + `rename`) and
//!   readers accept any well-formed entry or recompute.
//!
//! # Layout and robustness
//!
//! Entries live at `<dir>/<k[0..2]>/<k>.plan` (256-way fan-out keeps
//! directories small at production populations). Every load failure —
//! missing file, truncation, corruption, schema version mismatch, rebind
//! mismatch — is a *miss*, never an error: the planner recomputes and the
//! next store overwrites the bad entry. A stale-but-decodable entry is
//! impossible because the key commits to all decision inputs; see
//! `sct_core::plan_codec`. Undecodable bytes are *quarantined* — renamed
//! to `<k>.quarantine` for operator inspection, counted in
//! [`CacheStats::quarantined`] — rather than silently deleted; a
//! quarantined key recomputes and the next store publishes a clean entry
//! (the self-heal path `tests/faults.rs` pins under injected torn
//! writes).
//!
//! # Fault injection
//!
//! Every I/O step is threaded with `sct-faults` failpoints so chaos tests
//! can drive the daemon through disk failures deterministically:
//! `cache.load.read` (read fails → miss), `cache.store.dir`,
//! `cache.store.write` (supports `enospc` and `torn`),
//! `cache.store.rename`. All of them degrade, by construction, to the
//! recompute-every-time regime — planning never fails because the disk
//! did.
//!
//! # Examples
//!
//! ```
//! use sct_cache::DiskCache;
//! use sct_lang::compile_program;
//! use sct_symbolic::{plan_program_incremental, PlanCache, PlanConfig};
//!
//! let dir = std::env::temp_dir().join(format!("sct-cache-doc-{}", std::process::id()));
//! let prog = compile_program(
//!     "(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))").unwrap();
//! let cfg = PlanConfig::default();
//!
//! let mut disk = DiskCache::open(&dir).unwrap();
//! let (_cold, s1) = plan_program_incremental(&prog, &cfg, &mut PlanCache::new(), &mut disk);
//! assert_eq!((s1.hits(), s1.misses()), (0, 1));
//!
//! // A different process (fresh handle, same directory): pure hits.
//! let mut disk2 = DiskCache::open(&dir).unwrap();
//! let (_warm, s2) = plan_program_incremental(&prog, &cfg, &mut PlanCache::new(), &mut disk2);
//! assert_eq!((s2.hits(), s2.misses()), (1, 0));
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![deny(missing_docs)]

use sct_core::plan_codec::{decode_entry, encode_entry, PortableDecision};
use sct_core::summary_codec::{decode_summary, encode_summary, PortableSummary};
use sct_symbolic::pipeline::DecisionStore;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Counters a store keeps about its own traffic, surfaced by the
/// `sct serve` `stats` op and the `--cache-dir` CLI summary line.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Loads answered from a persisted, decodable entry.
    pub hits: u64,
    /// Loads that found nothing usable (absent file).
    pub misses: u64,
    /// Loads that found a file but rejected it (truncated, corrupt, or
    /// wrong schema version) — counted *in addition* to the miss.
    pub rejected: u64,
    /// Rejected entries whose bytes were preserved as `<key>.quarantine`
    /// for operator inspection (a subset of `rejected`; the rename is
    /// best-effort, falling back to deletion).
    pub quarantined: u64,
    /// Entries written.
    pub stores: u64,
    /// I/O failures swallowed while writing (the cache degrades to
    /// recompute-every-time rather than failing the plan).
    pub write_errors: u64,
    /// Contract-summary loads answered from a persisted `.sum` entry.
    /// Tracked separately from decision traffic so the CLI/daemon hit
    /// ratios keep meaning "decisions served without verifier work".
    pub summary_hits: u64,
    /// Contract-summary loads that found nothing usable (absent, corrupt,
    /// or unreadable `.sum` file — all degrade to full descent).
    pub summary_misses: u64,
    /// Contract summaries written.
    pub summary_stores: u64,
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses ({} rejected), {} stores",
            self.hits, self.misses, self.rejected, self.stores
        )
    }
}

/// Observability handles a store mirrors its traffic into: the same
/// counters as [`CacheStats`] plus load/store latency histograms, all
/// registered under `cache.*` in an [`sct_obs::Registry`]. Attach with
/// [`DiskCache::with_obs`] / [`MemStore::with_obs`]; stores built
/// without one record nothing.
#[derive(Debug, Clone)]
pub struct CacheObs {
    hits: sct_obs::Counter,
    misses: sct_obs::Counter,
    rejected: sct_obs::Counter,
    quarantined: sct_obs::Counter,
    stores: sct_obs::Counter,
    write_errors: sct_obs::Counter,
    load_us: sct_obs::Histogram,
    store_us: sct_obs::Histogram,
}

impl CacheObs {
    /// Register the `cache.*` metric family in `reg` and return handles.
    pub fn register(reg: &sct_obs::Registry) -> CacheObs {
        CacheObs {
            hits: reg.counter("cache.hits"),
            misses: reg.counter("cache.misses"),
            rejected: reg.counter("cache.rejected"),
            quarantined: reg.counter("cache.quarantined"),
            stores: reg.counter("cache.stores"),
            write_errors: reg.counter("cache.write_errors"),
            load_us: reg.histogram("cache.load_us"),
            store_us: reg.histogram("cache.store_us"),
        }
    }
}

/// Process-wide counter for temp-file names: two [`DiskCache`] handles in
/// one process (two servers, or library use from multiple threads) must
/// never build the same `.tmp-<pid>-<n>-<key>` name, or one handle's
/// write could truncate the bytes the other is about to publish.
static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The on-disk, content-addressed decision store. See the crate docs.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    stats: CacheStats,
    obs: Option<CacheObs>,
}

impl DiskCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the error when the directory cannot be created — an
    /// unusable cache location is a configuration mistake the user should
    /// see once, up front, rather than a silent full-miss regime.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskCache {
            dir,
            stats: CacheStats::default(),
            obs: None,
        })
    }

    /// Mirror this store's traffic (and load/store latency) into
    /// registered `cache.*` metrics.
    pub fn with_obs(mut self, obs: CacheObs) -> DiskCache {
        self.obs = Some(obs);
        self
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Traffic counters so far (hits/misses/rejects/stores).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the traffic counters to zero. The `sct serve` `stats` op
    /// reports *cumulative* totals and never calls this; it exists for
    /// library callers that want windowed accounting.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The path an entry for `key` lives at: `<dir>/<k[0..2]>/<k>.plan`.
    /// Keys are 32-hex-char digests; anything else would be a caller bug,
    /// but the path shape stays well-defined for any ASCII key.
    pub fn entry_path(&self, key: &str) -> PathBuf {
        let shard = key.get(0..2).unwrap_or("xx");
        self.dir.join(shard).join(format!("{key}.plan"))
    }

    /// The path a contract summary for `key` lives at:
    /// `<dir>/<k[0..2]>/<k>.sum` — same shard as the decision, same
    /// content address, different artifact.
    pub fn summary_path(&self, key: &str) -> PathBuf {
        self.entry_path(key).with_extension("sum")
    }

    /// Number of `.sum` entries currently on disk (test/diagnostic aid).
    pub fn summary_count(&self) -> usize {
        let Ok(shards) = fs::read_dir(&self.dir) else {
            return 0;
        };
        shards
            .flatten()
            .filter_map(|s| fs::read_dir(s.path()).ok())
            .flat_map(|files| files.flatten())
            .filter(|f| f.path().extension().is_some_and(|e| e == "sum"))
            .count()
    }

    /// Number of `.plan` entries currently on disk (test/diagnostic aid;
    /// walks the two-level layout).
    pub fn entry_count(&self) -> usize {
        let Ok(shards) = fs::read_dir(&self.dir) else {
            return 0;
        };
        shards
            .flatten()
            .filter_map(|s| fs::read_dir(s.path()).ok())
            .flat_map(|files| files.flatten())
            .filter(|f| f.path().extension().is_some_and(|e| e == "plan"))
            .count()
    }
}

impl DiskCache {
    /// Preserves the undecodable bytes at `path` as `<key>.quarantine`
    /// (best-effort; deletion is the fallback) so an operator can inspect
    /// what corrupted, and the key recomputes either way. Returns whether
    /// the quarantine rename succeeded.
    fn quarantine(&mut self, path: &Path) -> bool {
        let bad = path.with_extension("quarantine");
        if fs::rename(path, &bad).is_ok() {
            self.stats.quarantined += 1;
            if let Some(o) = &self.obs {
                o.quarantined.inc();
            }
            true
        } else {
            fs::remove_file(path).ok();
            false
        }
    }

    /// Number of `.quarantine` files currently on disk (diagnostic aid).
    pub fn quarantine_count(&self) -> usize {
        let Ok(shards) = fs::read_dir(&self.dir) else {
            return 0;
        };
        shards
            .flatten()
            .filter_map(|s| fs::read_dir(s.path()).ok())
            .flat_map(|files| files.flatten())
            .filter(|f| f.path().extension().is_some_and(|e| e == "quarantine"))
            .count()
    }
}

impl DecisionStore for DiskCache {
    fn load(&mut self, key: &str) -> Option<PortableDecision> {
        let start = std::time::Instant::now();
        let path = self.entry_path(key);
        // Failpoint: a read that fails (EIO, permission flaps) is a miss,
        // exactly like an absent file — the planner recomputes.
        let result = if sct_faults::io_check("cache.load.read").is_err() {
            self.stats.misses += 1;
            None
        } else {
            match fs::read_to_string(&path) {
                Err(_) => {
                    self.stats.misses += 1;
                    None
                }
                Ok(text) => match decode_entry(&text) {
                    Ok(entry) => {
                        self.stats.hits += 1;
                        Some(entry)
                    }
                    Err(_) => {
                        // Truncated / corrupt / version-mismatched:
                        // quarantine the bad bytes and recompute. Never a
                        // crash, and a stale replay is impossible — the
                        // key commits to the decision's inputs.
                        self.stats.misses += 1;
                        self.stats.rejected += 1;
                        if let Some(o) = &self.obs {
                            o.rejected.inc();
                        }
                        self.quarantine(&path);
                        None
                    }
                },
            }
        };
        if let Some(o) = &self.obs {
            match result {
                Some(_) => o.hits.inc(),
                None => o.misses.inc(),
            }
            o.load_us.record_elapsed_us(start);
        }
        result
    }

    fn store(&mut self, key: &str, entry: &PortableDecision) {
        let start = std::time::Instant::now();
        let path = self.entry_path(key);
        let tmp_counter = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let write = || -> io::Result<()> {
            let parent = path.parent().expect("entry path has a shard parent");
            sct_faults::io_check("cache.store.dir")?;
            fs::create_dir_all(parent)?;
            // Atomic publish: writers never expose a half-written entry,
            // so concurrent daemon workers and CLI runs can share a
            // directory. `rename` within one directory is atomic on POSIX;
            // last writer wins, and both wrote equivalent bytes (same key
            // ⇒ same inputs ⇒ same decision).
            let tmp = parent.join(format!(".tmp-{}-{tmp_counter:x}-{key}", std::process::id()));
            let bytes = encode_entry(entry);
            // Failpoints: `enospc`/`error` fail the write outright; `torn`
            // publishes a *truncated* entry through the normal rename —
            // the model of a non-atomic filesystem or a crash that left
            // half the bytes — which the next load must reject and
            // quarantine (the self-heal invariant).
            let bytes: &[u8] = match sct_faults::check("cache.store.write") {
                sct_faults::Action::Torn => &bytes.as_bytes()[..bytes.len() / 2],
                sct_faults::Action::Error => {
                    return Err(io::Error::other("injected fault at cache.store.write"))
                }
                sct_faults::Action::Enospc => {
                    return Err(io::Error::new(
                        io::ErrorKind::StorageFull,
                        "injected ENOSPC at cache.store.write",
                    ))
                }
                _ => bytes.as_bytes(),
            };
            fs::write(&tmp, bytes)?;
            sct_faults::io_check("cache.store.rename").inspect_err(|_| {
                fs::remove_file(&tmp).ok();
            })?;
            fs::rename(&tmp, &path).inspect_err(|_| {
                fs::remove_file(&tmp).ok();
            })?;
            Ok(())
        };
        let write_ok = write().is_ok();
        match write_ok {
            true => self.stats.stores += 1,
            false => self.stats.write_errors += 1,
        }
        if let Some(o) = &self.obs {
            match write_ok {
                true => o.stores.inc(),
                false => o.write_errors.inc(),
            }
            o.store_us.record_elapsed_us(start);
        }
    }

    fn load_summary(&mut self, key: &str) -> Option<PortableSummary> {
        let path = self.summary_path(key);
        // Failpoint distinct from `cache.load.read` so chaos scenarios can
        // fail summary I/O without perturbing decision-cache fault budgets.
        if sct_faults::io_check("cache.summary.load").is_err() {
            self.stats.summary_misses += 1;
            return None;
        }
        let summary = fs::read_to_string(&path)
            .ok()
            .and_then(|text| match decode_summary(&text) {
                Ok(s) => Some(s),
                Err(_) => {
                    // A corrupt summary is pure cache, not evidence: delete
                    // it (no quarantine — `<k>.quarantine` is the decision
                    // entry's slot) and let the planner re-descend.
                    fs::remove_file(&path).ok();
                    None
                }
            });
        match summary.is_some() {
            true => self.stats.summary_hits += 1,
            false => self.stats.summary_misses += 1,
        }
        summary
    }

    fn store_summary(&mut self, key: &str, summary: &PortableSummary) {
        let path = self.summary_path(key);
        let tmp_counter = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let write = || -> io::Result<()> {
            let parent = path.parent().expect("summary path has a shard parent");
            fs::create_dir_all(parent)?;
            let tmp = parent.join(format!(
                ".tmp-sum-{}-{tmp_counter:x}-{key}",
                std::process::id()
            ));
            let bytes = encode_summary(summary);
            // Same torn/error/ENOSPC repertoire as `cache.store.write`,
            // under its own name: a torn `.sum` publish must degrade to a
            // summary miss (full descent), never a wrong plan.
            let bytes: &[u8] = match sct_faults::check("cache.summary.store") {
                sct_faults::Action::Torn => &bytes.as_bytes()[..bytes.len() / 2],
                sct_faults::Action::Error => {
                    return Err(io::Error::other("injected fault at cache.summary.store"))
                }
                sct_faults::Action::Enospc => {
                    return Err(io::Error::new(
                        io::ErrorKind::StorageFull,
                        "injected ENOSPC at cache.summary.store",
                    ))
                }
                _ => bytes.as_bytes(),
            };
            fs::write(&tmp, bytes)?;
            fs::rename(&tmp, &path).inspect_err(|_| {
                fs::remove_file(&tmp).ok();
            })?;
            Ok(())
        };
        match write().is_ok() {
            true => self.stats.summary_stores += 1,
            false => self.stats.write_errors += 1,
        }
    }
}

/// An in-memory [`DecisionStore`] with the same hit/miss accounting as
/// [`DiskCache`] — the zero-I/O back end for tests and for a serve daemon
/// running without `--cache-dir`.
#[derive(Debug, Default)]
pub struct MemStore {
    entries: HashMap<String, PortableDecision>,
    summaries: HashMap<String, PortableSummary>,
    stats: CacheStats,
    obs: Option<CacheObs>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Mirror this store's traffic into registered `cache.*` metrics.
    pub fn with_obs(mut self, obs: CacheObs) -> MemStore {
        self.obs = Some(obs);
        self
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of entries held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The contract summaries held, by content key. Exposed so
    /// invalidation tests can assert exactly *which* defines re-summarized
    /// after an edit.
    pub fn summary_entries(&self) -> &HashMap<String, PortableSummary> {
        &self.summaries
    }
}

impl DecisionStore for MemStore {
    fn load(&mut self, key: &str) -> Option<PortableDecision> {
        let start = std::time::Instant::now();
        let result = match self.entries.get(key) {
            Some(e) => {
                self.stats.hits += 1;
                Some(e.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        };
        if let Some(o) = &self.obs {
            match result {
                Some(_) => o.hits.inc(),
                None => o.misses.inc(),
            }
            o.load_us.record_elapsed_us(start);
        }
        result
    }

    fn store(&mut self, key: &str, entry: &PortableDecision) {
        let start = std::time::Instant::now();
        self.stats.stores += 1;
        self.entries.insert(key.to_string(), entry.clone());
        if let Some(o) = &self.obs {
            o.stores.inc();
            o.store_us.record_elapsed_us(start);
        }
    }

    fn load_summary(&mut self, key: &str) -> Option<PortableSummary> {
        let result = self.summaries.get(key).cloned();
        match result.is_some() {
            true => self.stats.summary_hits += 1,
            false => self.stats.summary_misses += 1,
        }
        result
    }

    fn store_summary(&mut self, key: &str, summary: &PortableSummary) {
        self.stats.summary_stores += 1;
        self.summaries.insert(key.to_string(), summary.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::plan::{Decision, PlanDomain};

    fn entry(name: &str) -> PortableDecision {
        PortableDecision {
            name: name.into(),
            decision: Decision::Static {
                guard: vec![PlanDomain::Nat],
            },
            covers_idx: vec![1],
            blame: None,
            detail: "verified".into(),
            micros: 5,
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sct-cache-test-{tag}-{}", std::process::id()))
    }

    const KEY: &str = "0123456789abcdef0123456789abcdef";

    #[test]
    fn disk_round_trip_and_stats() {
        let dir = tmp("roundtrip");
        let mut c = DiskCache::open(&dir).unwrap();
        assert!(c.load(KEY).is_none());
        c.store(KEY, &entry("f"));
        assert_eq!(c.load(KEY), Some(entry("f")));
        assert_eq!(c.entry_count(), 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.stores, s.rejected), (1, 1, 1, 0));
        assert!(c.entry_path(KEY).starts_with(&dir));
        assert!(c.entry_path(KEY).to_string_lossy().contains("/01/"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entry_is_rejected_and_cleaned() {
        let dir = tmp("corrupt");
        let mut c = DiskCache::open(&dir).unwrap();
        c.store(KEY, &entry("f"));
        let path = c.entry_path(KEY);
        fs::write(&path, "{ not json").unwrap();
        assert!(c.load(KEY).is_none());
        assert_eq!(c.stats().rejected, 1);
        assert!(!path.exists(), "corrupt entry should be removed");
        // Recompute-and-overwrite path works after rejection.
        c.store(KEY, &entry("f"));
        assert!(c.load(KEY).is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_entry_falls_back() {
        let dir = tmp("truncated");
        let mut c = DiskCache::open(&dir).unwrap();
        c.store(KEY, &entry("f"));
        let path = c.entry_path(KEY);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(c.load(KEY).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_falls_back() {
        let dir = tmp("version");
        let mut c = DiskCache::open(&dir).unwrap();
        c.store(KEY, &entry("f"));
        let path = c.entry_path(KEY);
        let text = fs::read_to_string(&path)
            .unwrap()
            .replace("sct-plan/2", "sct-plan/9");
        fs::write(&path, text).unwrap();
        assert!(c.load(KEY).is_none());
        assert_eq!(c.stats().rejected, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn two_handles_share_a_directory() {
        let dir = tmp("shared");
        let mut a = DiskCache::open(&dir).unwrap();
        a.store(KEY, &entry("f"));
        let mut b = DiskCache::open(&dir).unwrap();
        assert_eq!(b.load(KEY), Some(entry("f")));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_store_behaves_like_disk() {
        let mut m = MemStore::new();
        assert!(m.is_empty());
        assert!(m.load(KEY).is_none());
        m.store(KEY, &entry("g"));
        assert_eq!(m.load(KEY), Some(entry("g")));
        assert_eq!(m.len(), 1);
        let s = m.stats();
        assert_eq!((s.hits, s.misses, s.stores), (1, 1, 1));
    }
}

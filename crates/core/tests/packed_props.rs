//! Property tests for the bit-packed graph representation and the graph
//! interner.
//!
//! The packed form (two `u64` masks, arities ≤ 8) and the dense byte
//! matrix must be *observationally identical*: every operation the monitor
//! uses — `compose`, `desc_ok`, `is_idempotent`, `from_args`, `Hash`/`Eq`
//! — is checked here on random graphs at every arity pair in 1–8, running
//! the packed graph against its `force_dense()` twin (which exercises the
//! fallback code path at small arities, where normal construction would
//! always pack).
//!
//! The interner tests establish that hash-consing and the composition
//! memo table are pure caches: interning is idempotent, memoized answers
//! equal direct computation, and repetition changes nothing.

use proptest::prelude::*;
use sct_core::graph::{Change, ScGraph};
use sct_core::intern::Interner;
use sct_core::order::AbsIntOrder;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Builds an `r × c` graph from a 64-entry cell sheet (stride 8, values
/// taken mod 3: empty / non-ascend / descend).
fn build(rows: usize, cols: usize, cells: &[u8]) -> ScGraph {
    let mut g = ScGraph::empty(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            match cells[i * 8 + j] {
                1 => g.add_arc(i, Change::NonAscend, j),
                2 => g.add_arc(i, Change::Descend, j),
                _ => {}
            }
        }
    }
    g
}

fn cells64() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..3, 64)
}

fn hash_of(g: &ScGraph) -> u64 {
    let mut h = DefaultHasher::new();
    g.hash(&mut h);
    h.finish()
}

/// Cell-by-cell agreement via the public accessor.
fn same_cells(a: &ScGraph, b: &ScGraph) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && (0..a.rows()).all(|i| (0..a.cols()).all(|j| a.get(i, j) == b.get(i, j)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn packed_and_dense_compose_agree(
        dims in (1usize..=8, 1usize..=8, 1usize..=8),
        cells_a in cells64(),
        cells_b in cells64(),
    ) {
        let (r, m, c) = dims;
        let a = build(r, m, &cells_a);
        let b = build(m, c, &cells_b);
        prop_assert!(!a.is_dense_repr(), "small arities must pack");
        let packed = a.compose(&b);
        let dense = a.force_dense().compose(&b.force_dense());
        prop_assert!(dense.is_dense_repr(), "dense composition stays dense");
        prop_assert!(same_cells(&packed, &dense), "{packed:?} vs {dense:?}");
        prop_assert_eq!(&packed, &dense);
        // Mixed representations take the fallback path and still agree.
        let mixed = a.force_dense().compose(&b);
        prop_assert_eq!(&packed, &mixed);
    }

    #[test]
    fn packed_and_dense_closure_properties_agree(
        n in 1usize..=8,
        cells in cells64(),
    ) {
        let g = build(n, n, &cells);
        let d = g.force_dense();
        prop_assert_eq!(g.is_idempotent(), d.is_idempotent());
        prop_assert_eq!(g.has_self_descent(), d.has_self_descent());
        prop_assert_eq!(g.desc_ok(), d.desc_ok());
    }

    #[test]
    fn non_square_dims_never_idempotent(
        dims in (1usize..=8, 1usize..=8),
        cells in cells64(),
    ) {
        let (r, c) = dims;
        let g = build(r, c, &cells);
        if r != c {
            prop_assert!(!g.is_idempotent());
            prop_assert!(!g.has_self_descent());
            prop_assert!(g.desc_ok());
        }
    }

    #[test]
    fn from_args_matches_cellwise_reference(
        old in proptest::collection::vec(-20i64..20, 1..=8),
        new in proptest::collection::vec(-20i64..20, 1..=8),
    ) {
        use sct_core::order::{SizeChange, WellFoundedOrder};
        let g = ScGraph::from_args(&AbsIntOrder, &old, &new);
        prop_assert_eq!(g.rows(), old.len());
        prop_assert_eq!(g.cols(), new.len());
        for (i, vi) in old.iter().enumerate() {
            for (j, vj) in new.iter().enumerate() {
                let expect = match AbsIntOrder.relate(vi, vj) {
                    SizeChange::Descend => Some(Change::Descend),
                    SizeChange::Equal => Some(Change::NonAscend),
                    SizeChange::Unknown => None,
                };
                prop_assert_eq!(g.get(i, j), expect, "cell ({}, {})", i, j);
            }
        }
        // The packed result round-trips through the dense representation.
        prop_assert_eq!(&g.force_dense(), &g);
    }

    #[test]
    fn hash_and_eq_are_representation_independent(
        dims in (1usize..=8, 1usize..=8),
        cells_a in cells64(),
        cells_b in cells64(),
    ) {
        let (r, c) = dims;
        let a = build(r, c, &cells_a);
        let b = build(r, c, &cells_b);
        let (da, db) = (a.force_dense(), b.force_dense());
        // Same graph, different representation: equal both ways, same hash.
        prop_assert_eq!(&a, &da);
        prop_assert_eq!(&da, &a);
        prop_assert_eq!(hash_of(&a), hash_of(&da));
        // Different graphs stay different across representations; equal
        // graphs hash equal across representations.
        prop_assert_eq!(a == b, da == db);
        prop_assert_eq!(a == b, a == db);
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&db));
        }
    }

    #[test]
    fn interner_hash_consing_is_idempotent(
        dims in (1usize..=8, 1usize..=8),
        cells in cells64(),
    ) {
        let (r, c) = dims;
        let it = Interner::new();
        let g = build(r, c, &cells);
        let id = it.intern(g.clone());
        prop_assert_eq!(it.intern(g.clone()), id);
        prop_assert_eq!(it.intern(g.force_dense()), id, "dense twin interns to the same id");
        prop_assert_eq!(&it.graph(id), &g);
        prop_assert_eq!(it.rows(id), g.rows());
        prop_assert_eq!(it.cols(id), g.cols());
        prop_assert_eq!(it.desc_ok(id), g.desc_ok());
        prop_assert_eq!(it.is_idempotent(id), g.is_idempotent());
    }

    #[test]
    fn interner_compose_memoization_is_observationally_pure(
        m in 1usize..=8,
        sheets in proptest::collection::vec(cells64(), 1..6),
    ) {
        // Square graphs at one arity so every pair composes.
        let it = Interner::new();
        let graphs: Vec<ScGraph> = sheets.iter().map(|s| build(m, m, s)).collect();
        let ids: Vec<_> = graphs.iter().map(|g| it.intern(g.clone())).collect();
        // First pass: record every pairwise composition.
        let mut first = Vec::new();
        for (&a, ga) in ids.iter().zip(&graphs) {
            for (&b, gb) in ids.iter().zip(&graphs) {
                let ab = it.compose(a, b);
                // Memoized answer equals direct computation...
                prop_assert_eq!(&it.graph(ab), &ga.compose(gb));
                // ...and its memoized properties match the graph's.
                prop_assert_eq!(it.desc_ok(ab), ga.compose(gb).desc_ok());
                first.push(ab);
            }
        }
        let graphs_before = it.len();
        let cache_before = it.compose_cache_len();
        // Second pass in reverse order: pure cache hits, identical ids,
        // and no growth of either table.
        let mut second = Vec::new();
        for &a in ids.iter() {
            for &b in ids.iter() {
                second.push(it.compose(a, b));
            }
        }
        prop_assert_eq!(first, second);
        prop_assert_eq!(it.len(), graphs_before);
        prop_assert_eq!(it.compose_cache_len(), cache_before);
    }

    #[test]
    fn callseq_over_private_pool_matches_global(
        sheets in proptest::collection::vec(cells64(), 0..10),
    ) {
        use sct_core::seq::CallSeq;
        // The same push sequence must accept/reject identically whichever
        // pool resolves it.
        let it = Interner::new();
        let graphs: Vec<ScGraph> = sheets.iter().map(|s| build(2, 2, s)).collect();
        let mut with_global = Some(CallSeq::new());
        let mut with_private = Some(CallSeq::new());
        for g in &graphs {
            let a = with_global.take().map(|s| s.push(g.clone()));
            let b = with_private.take().map(|s| s.push_in(&it, g.clone()));
            match (a, b) {
                (Some(Ok(sa)), Some(Ok(sb))) => {
                    prop_assert_eq!(sa.composite_count(), sb.composite_count());
                    with_global = Some(sa);
                    with_private = Some(sb);
                }
                (Some(Err(ea)), Some(Err(eb))) => {
                    // Which failing composite is reported first depends on
                    // id order, which is pool-local; both witnesses must
                    // still be genuine violations.
                    prop_assert!(!ea.witness.desc_ok());
                    prop_assert!(!eb.witness.desc_ok());
                    break;
                }
                (a, b) => prop_assert!(false, "pools disagree: {:?} vs {:?}", a.is_some(), b.is_some()),
            }
        }
    }
}

//! Property tests for the size-change core.
//!
//! The key one checks that the incremental suffix-composite implementation
//! of `prog?` in [`CallSeq`] is *equivalent* to the naive Figure-4
//! definition (`⋀_{1≤i≤j≤n} desc?(gᵢ;…;gⱼ)` recomputed from scratch at
//! every step): both must reject at exactly the same call index.

use proptest::prelude::*;
use sct_core::graph::{Change, ScGraph};
use sct_core::ljb::{closure_check, ClosureResult};
use sct_core::seq::CallSeq;

const ARITY: usize = 2;

fn graph_strategy() -> impl Strategy<Value = ScGraph> {
    // Each of the 4 cells independently empty / non-ascend / descend.
    proptest::collection::vec(0u8..3, ARITY * ARITY).prop_map(|cells| {
        let mut g = ScGraph::empty(ARITY, ARITY);
        for (k, &c) in cells.iter().enumerate() {
            let (i, j) = (k / ARITY, k % ARITY);
            match c {
                1 => g.add_arc(i, Change::NonAscend, j),
                2 => g.add_arc(i, Change::Descend, j),
                _ => {}
            }
        }
        g
    })
}

/// Naive `prog?`: composes every contiguous subsequence from scratch.
fn naive_prog(graphs: &[ScGraph]) -> bool {
    for i in 0..graphs.len() {
        let mut acc = graphs[i].clone();
        if !acc.desc_ok() {
            return false;
        }
        for g in &graphs[i + 1..] {
            acc = acc.compose(g);
            if !acc.desc_ok() {
                return false;
            }
        }
    }
    true
}

/// Index of the first call whose naive `prog?` fails, if any.
fn naive_first_failure(graphs: &[ScGraph]) -> Option<usize> {
    (0..graphs.len()).find(|&n| !naive_prog(&graphs[..=n]))
}

/// Index of the first call the incremental `CallSeq` rejects, if any.
fn incremental_first_failure(graphs: &[ScGraph]) -> Option<usize> {
    let mut seq = CallSeq::new();
    for (n, g) in graphs.iter().enumerate() {
        match seq.push(g.clone()) {
            Ok(next) => seq = next,
            Err(_) => return Some(n),
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn incremental_prog_matches_naive(graphs in proptest::collection::vec(graph_strategy(), 0..12)) {
        prop_assert_eq!(
            incremental_first_failure(&graphs),
            naive_first_failure(&graphs),
            "incremental and naive prog? disagree on {:?}",
            graphs
        );
    }

    #[test]
    fn composition_is_associative(a in graph_strategy(), b in graph_strategy(), c in graph_strategy()) {
        prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    fn composition_monotone_in_strength(a in graph_strategy(), b in graph_strategy()) {
        // Strict arcs in a;b require a path; dropping all strictness from a
        // (downgrade to non-ascend) never *adds* arcs to the composite.
        let mut weaker = ScGraph::empty(ARITY, ARITY);
        for arc in a.arcs() {
            weaker.add_arc(arc.from, Change::NonAscend, arc.to);
        }
        let strong = a.compose(&b);
        let weak = weaker.compose(&b);
        for arc in weak.arcs() {
            prop_assert!(strong.has_arc(arc.from, arc.to),
                "weakening created arc {:?}", arc);
        }
    }

    #[test]
    fn violating_sequence_always_caught_by_closure(graphs in proptest::collection::vec(graph_strategy(), 1..6)) {
        // If any finite sequence drawn from a set violates prog?, the LJB
        // closure of that set must not report Ok: dynamic rejection implies
        // static rejection when the static graphs cover the dynamic ones.
        let seq_fails = incremental_first_failure(&graphs).is_some();
        if seq_fails {
            let res = closure_check(&graphs, 100_000);
            prop_assert!(!matches!(res, ClosureResult::Ok { .. }),
                "dynamic violation but LJB closure passed: {:?}", graphs);
        }
    }

    #[test]
    fn pure_descent_never_fails(n in 1usize..200) {
        let g = ScGraph::from_arcs(1, 1, [(0, Change::Descend, 0)]);
        let mut seq = CallSeq::new();
        for _ in 0..n {
            seq = seq.push(g.clone()).expect("pure descent maintains prog?");
        }
        prop_assert_eq!(seq.len(), n);
        prop_assert_eq!(seq.composite_count(), 1);
    }
}

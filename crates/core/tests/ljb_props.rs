//! Property tests relating the LJB closure criterion to the dynamic
//! `prog?` semantics: for small graph alphabets, the closure check must
//! agree with exhaustive enumeration of finite call sequences.
//!
//! * If `closure_check` passes a set, then *no* sequence of graphs drawn
//!   from the set (up to a searched length) violates `prog?`.
//! * If `closure_check` reports a violation, *some* sequence violates
//!   `prog?` (the LJB theorem's easy direction, witnessed concretely).

use proptest::prelude::*;
use sct_core::graph::{Change, ScGraph};
use sct_core::ljb::{closure_check, ClosureResult};
use sct_core::seq::CallSeq;

const ARITY: usize = 2;

fn graph_strategy() -> impl Strategy<Value = ScGraph> {
    proptest::collection::vec(0u8..3, ARITY * ARITY).prop_map(|cells| {
        let mut g = ScGraph::empty(ARITY, ARITY);
        for (k, &c) in cells.iter().enumerate() {
            let (i, j) = (k / ARITY, k % ARITY);
            match c {
                1 => g.add_arc(i, Change::NonAscend, j),
                2 => g.add_arc(i, Change::Descend, j),
                _ => {}
            }
        }
        g
    })
}

/// Enumerates all sequences over `alphabet` up to `max_len`, returning true
/// when some sequence violates prog? (checked incrementally via CallSeq).
fn some_sequence_violates(alphabet: &[ScGraph], max_len: usize) -> bool {
    // DFS over sequences, carrying the CallSeq state.
    fn go(alphabet: &[ScGraph], seq: &CallSeq, depth: usize) -> bool {
        if depth == 0 {
            return false;
        }
        for g in alphabet {
            match seq.push(g.clone()) {
                Err(_) => return true,
                Ok(next) => {
                    if go(alphabet, &next, depth - 1) {
                        return true;
                    }
                }
            }
        }
        false
    }
    go(alphabet, &CallSeq::new(), max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn closure_check_agrees_with_sequence_enumeration(
        graphs in proptest::collection::vec(graph_strategy(), 1..3)
    ) {
        let result = closure_check(&graphs, 100_000);
        let violated = some_sequence_violates(&graphs, 5);
        match result {
            ClosureResult::Ok { .. } => {
                prop_assert!(
                    !violated,
                    "LJB passed but a short sequence violates prog?: {:?}",
                    graphs
                );
            }
            ClosureResult::Violation(_) => {
                // The violating composite corresponds to some finite
                // sequence; for arity-2 alphabets length 5 suffices to
                // witness every composite of up to 5 factors. Composites
                // needing more factors exist in principle, so only check
                // the direction when a short witness was found; but a
                // passing enumeration up to the closure bound would be a
                // genuine bug, so try a slightly deeper search before
                // accepting a miss.
                if !violated {
                    prop_assert!(
                        some_sequence_violates(&graphs, 7),
                        "LJB violation with no sequence witness up to length 7: {:?}",
                        graphs
                    );
                }
            }
            ClosureResult::Overflow => {
                // Never expected at arity 2 with a 100k cap.
                prop_assert!(false, "unexpected closure overflow");
            }
        }
    }

    #[test]
    fn closure_check_monotone_under_subset(
        graphs in proptest::collection::vec(graph_strategy(), 2..4)
    ) {
        // If the full set passes, every subset passes (fewer behaviors).
        if closure_check(&graphs, 100_000).is_ok() {
            for i in 0..graphs.len() {
                let mut subset = graphs.clone();
                subset.remove(i);
                prop_assert!(
                    closure_check(&subset, 100_000).is_ok(),
                    "subset of a passing set failed: {:?} minus index {}",
                    graphs,
                    i
                );
            }
        }
    }

    #[test]
    fn singleton_self_descent_always_passes(g in graph_strategy()) {
        // Adding a self-descent arc on every parameter makes any graph's
        // singleton set pass: every idempotent composite keeps a strict
        // self-arc (strictness propagates through composition).
        let mut strong = g.clone();
        for i in 0..ARITY {
            strong.add_arc(i, Change::Descend, i);
        }
        prop_assert!(closure_check(&[strong], 100_000).is_ok());
    }
}

//! Call sequences and the incremental `prog?` check (Figure 4).
//!
//! `prog?(gₙ…g₁) = ⋀_{1≤i≤j≤n} desc?(gᵢ;…;gⱼ)` — every contiguous
//! subsequence of the graphs observed so far, composed, must pass `desc?`.
//! Re-checking all O(n²) subsequences on every call would be hopeless, so
//! [`CallSeq`] maintains the *set* of composite graphs of contiguous
//! suffixes: when graph `gₙ` arrives,
//!
//! ```text
//! Sₙ = { c ; gₙ | c ∈ Sₙ₋₁ } ∪ { gₙ }
//! ```
//!
//! and only the members of `Sₙ` need a `desc?` check — subsequences ending
//! earlier were checked when they were the suffix. Because graphs over a
//! fixed arity form a *finite* set, `Sₙ` is bounded and deduplicated, so a
//! long-running loop reaches a fixed point and monitoring cost per call
//! stops growing. The equivalence with the naive definition is tested by
//! property tests in `tests/seq_props.rs`.

use crate::graph::ScGraph;
use sct_persist::PSet;
use std::fmt;

/// Witness that a call sequence violates the size-change principle: a
/// composite graph that is idempotent yet lacks a strict self-descent arc,
/// i.e. a loop shape that could repeat forever without progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScViolation {
    /// The offending composite graph.
    pub witness: ScGraph,
}

impl fmt::Display for ScViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "size-change violation: composite graph {} is idempotent with no self-descending arc",
            self.witness
        )
    }
}

impl std::error::Error for ScViolation {}

/// The per-function sequence of size-change graphs `⃗g`, kept as the
/// deduplicated set of suffix composites (see module docs).
///
/// `CallSeq` is a persistent value: [`push`](CallSeq::push) returns a new
/// sequence and the old one remains valid, which is what the
/// continuation-mark table strategy requires.
///
/// # Examples
///
/// ```
/// use sct_core::graph::{Change, ScGraph};
/// use sct_core::seq::CallSeq;
///
/// let descend = ScGraph::from_arcs(1, 1, [(0, Change::Descend, 0)]);
/// let stay = ScGraph::from_arcs(1, 1, [(0, Change::NonAscend, 0)]);
///
/// // Strict descent forever is fine...
/// let mut seq = CallSeq::new();
/// for _ in 0..100 {
///     seq = seq.push(descend.clone()).expect("descent maintains prog?");
/// }
/// // ...but one stagnating self-call is caught at once.
/// assert!(seq.push(stay).is_err());
/// ```
#[derive(Clone)]
pub struct CallSeq {
    suffix_composites: PSet<ScGraph>,
    len: usize,
}

impl Default for CallSeq {
    fn default() -> Self {
        CallSeq::new()
    }
}

impl CallSeq {
    /// The empty sequence (`⃗g = []`, stored for a function's first call).
    pub fn new() -> CallSeq {
        CallSeq {
            suffix_composites: PSet::new(),
            len: 0,
        }
    }

    /// Number of graphs pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no graph has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct suffix composites currently tracked; bounded by
    /// the (finite) number of graphs at this arity.
    pub fn composite_count(&self) -> usize {
        self.suffix_composites.len()
    }

    /// Iterates over the current suffix composites in unspecified order.
    pub fn composites(&self) -> impl Iterator<Item = &ScGraph> {
        self.suffix_composites.iter()
    }

    fn extend_with(&self, g: ScGraph) -> PSet<ScGraph> {
        let mut next = PSet::new().insert(g.clone());
        for c in self.suffix_composites.iter() {
            if c.cols() == g.rows() {
                next = next.insert(c.compose(&g));
            }
        }
        next
    }

    /// Appends a graph *with* the `prog?` check — the `upd` path of
    /// Figure 4. Returns the extended sequence, or the violation witness.
    ///
    /// # Errors
    ///
    /// [`ScViolation`] when some contiguous subsequence composes to an
    /// idempotent graph with no strict self-descent.
    pub fn push(&self, g: ScGraph) -> Result<CallSeq, ScViolation> {
        let next = self.extend_with(g);
        for c in next.iter() {
            if !c.desc_ok() {
                return Err(ScViolation { witness: c.clone() });
            }
        }
        Ok(CallSeq {
            suffix_composites: next,
            len: self.len + 1,
        })
    }

    /// Appends a graph *without* checking — the `ext` function of the
    /// call-sequence semantics (Figure 6), used to state completeness.
    pub fn push_unchecked(&self, g: ScGraph) -> CallSeq {
        CallSeq {
            suffix_composites: self.extend_with(g),
            len: self.len + 1,
        }
    }

    /// Checks `prog?` over the suffix composites currently tracked.
    ///
    /// # Errors
    ///
    /// [`ScViolation`] carrying the first failing composite found.
    pub fn check(&self) -> Result<(), ScViolation> {
        for c in self.suffix_composites.iter() {
            if !c.desc_ok() {
                return Err(ScViolation { witness: c.clone() });
            }
        }
        Ok(())
    }
}

impl fmt::Debug for CallSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CallSeq(len={}, composites={:?})",
            self.len, self.suffix_composites
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Change;
    use crate::order::AbsIntOrder;

    fn g(arcs: &[(usize, Change, usize)]) -> ScGraph {
        ScGraph::from_arcs(2, 2, arcs.iter().copied())
    }

    #[test]
    fn ack_2_0_full_trace_passes() {
        // Figure 1's left spine plus the post-return sibling call.
        let steps: [(&[i64; 2], &[i64; 2]); 3] =
            [(&[2, 0], &[1, 1]), (&[1, 1], &[1, 0]), (&[1, 0], &[0, 1])];
        let mut seq = CallSeq::new();
        for (old, new) in steps {
            let graph = ScGraph::from_args(&AbsIntOrder, old, new);
            seq = seq.push(graph).expect("ack trace maintains prog?");
        }
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn buggy_ack_caught() {
        // §2.1: (ack 2 0) ↝ (ack 1 1) ↝ (ack 1 2) — last graph is
        // {(m→=m),(n→=m)}: idempotent, no self-descent.
        let seq = CallSeq::new();
        let seq = seq
            .push(ScGraph::from_args(&AbsIntOrder, &[2i64, 0], &[1, 1]))
            .unwrap();
        let err = seq
            .push(ScGraph::from_args(&AbsIntOrder, &[1i64, 1], &[1, 2]))
            .expect_err("non-descending call must violate");
        assert!(err.witness.is_idempotent());
        assert!(!err.witness.has_self_descent());
    }

    #[test]
    fn composites_reach_fixed_point() {
        // A two-graph alternation closes to finitely many composites and
        // the count stops growing.
        let a = g(&[(0, Change::Descend, 0), (1, Change::NonAscend, 1)]);
        let b = g(&[(0, Change::NonAscend, 0), (1, Change::Descend, 1)]);
        let mut seq = CallSeq::new();
        for i in 0..64 {
            let next = if i % 2 == 0 { a.clone() } else { b.clone() };
            seq = seq.push(next).unwrap();
        }
        assert!(seq.composite_count() <= 4, "composites stay bounded");
        assert_eq!(seq.len(), 64);
    }

    #[test]
    fn violation_found_across_composition() {
        // Each individual graph passes desc?, but their composition is the
        // identity-shaped swap loop: g_ab swaps 0→=1, 1→=0 — g;g is
        // idempotent with no descent.
        let swap = g(&[(0, Change::NonAscend, 1), (1, Change::NonAscend, 0)]);
        assert!(swap.desc_ok(), "swap alone passes desc? (not idempotent)");
        let seq = CallSeq::new().push(swap.clone()).unwrap();
        // Second swap: composite swap;swap = {0→=0, 1→=1} fails.
        assert!(seq.push(swap).is_err());
    }

    #[test]
    fn unchecked_extension_then_check() {
        let stay = g(&[(0, Change::NonAscend, 0)]);
        let seq = CallSeq::new().push_unchecked(stay);
        assert!(
            seq.check().is_err(),
            "ext records the violation for later inspection"
        );
        assert_eq!(seq.len(), 1);
    }

    #[test]
    fn persistence() {
        let descend = g(&[(0, Change::Descend, 0)]);
        let stay = g(&[(0, Change::NonAscend, 0)]);
        let s0 = CallSeq::new();
        let s1 = s0.push(descend).unwrap();
        let _err = s1.push(stay.clone()).unwrap_err();
        // s1 unchanged by the failed push; s0 still empty.
        assert_eq!(s1.len(), 1);
        assert!(s0.is_empty());
        assert!(s1.check().is_ok());
    }

    #[test]
    fn violation_display() {
        let stay = g(&[(0, Change::NonAscend, 0)]);
        let err = CallSeq::new().push(stay).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("size-change violation"), "got: {msg}");
    }
}

//! Call sequences and the incremental `prog?` check (Figure 4).
//!
//! `prog?(gₙ…g₁) = ⋀_{1≤i≤j≤n} desc?(gᵢ;…;gⱼ)` — every contiguous
//! subsequence of the graphs observed so far, composed, must pass `desc?`.
//! Re-checking all O(n²) subsequences on every call would be hopeless, so
//! [`CallSeq`] maintains the *set* of composite graphs of contiguous
//! suffixes: when graph `gₙ` arrives,
//!
//! ```text
//! Sₙ = { c ; gₙ | c ∈ Sₙ₋₁ } ∪ { gₙ }
//! ```
//!
//! and only the members of `Sₙ` need a `desc?` check — subsequences ending
//! earlier were checked when they were the suffix. Because graphs over a
//! fixed arity form a *finite* set, `Sₙ` is bounded and deduplicated, so a
//! long-running loop reaches a fixed point and monitoring cost per call
//! stops growing. The equivalence with the naive definition is tested by
//! property tests in `tests/seq_props.rs`.
//!
//! # Representation and cost model
//!
//! The suffix composites are held as a **sorted vector of interned
//! [`GraphId`]s** — inline (no heap) up to four composites, spilling to a
//! shared `Rc<[GraphId]>` beyond that. All graph work is delegated to the
//! [`Interner`]: composition is a memo-table hit and `desc?` is a cached
//! bit once a graph has been seen. Three consequences for the monitor's
//! hot path:
//!
//! * [`push`](CallSeq::push) only runs `desc?` on composites **newly
//!   created** by that push — carried-over members were checked when they
//!   first appeared (and `desc?` is memoized besides);
//! * when the composite set reaches its fixed point (`Sₙ = Sₙ₋₁`, which
//!   every terminating loop reaches because the semiring is finite), `push`
//!   returns a structurally shared sequence: no allocation, no checks, just
//!   K memo lookups for K composites;
//! * `CallSeq` remains a persistent value — [`push`](CallSeq::push) returns
//!   a new sequence and the old one stays valid, which is what the
//!   continuation-mark table strategy requires — but cloning is now a
//!   `Copy` of at most four words or one `Rc` bump.

use crate::graph::ScGraph;
use crate::intern::{GraphId, Interner};
use std::fmt;
use std::rc::Rc;

/// Witness that a call sequence violates the size-change principle: a
/// composite graph that is idempotent yet lacks a strict self-descent arc,
/// i.e. a loop shape that could repeat forever without progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScViolation {
    /// The offending composite graph.
    pub witness: ScGraph,
}

impl fmt::Display for ScViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "size-change violation: composite graph {} is idempotent with no self-descending arc",
            self.witness
        )
    }
}

impl std::error::Error for ScViolation {}

/// Composites stay inline (stack-only) up to this many ids.
const INLINE: usize = 4;

/// Stack scratch size for building the next composite set; pushes touching
/// more composites than this fall back to one heap allocation.
const SCRATCH: usize = 32;

#[derive(Clone)]
enum Composites {
    Inline { len: u8, ids: [GraphId; INLINE] },
    Heap(Rc<[GraphId]>),
}

impl Composites {
    fn empty() -> Composites {
        Composites::Inline {
            len: 0,
            ids: [GraphId::DUMMY; INLINE],
        }
    }

    fn from_sorted(ids: &[GraphId]) -> Composites {
        if ids.len() <= INLINE {
            let mut buf = [GraphId::DUMMY; INLINE];
            buf[..ids.len()].copy_from_slice(ids);
            Composites::Inline {
                len: ids.len() as u8,
                ids: buf,
            }
        } else {
            Composites::Heap(Rc::from(ids))
        }
    }

    fn as_slice(&self) -> &[GraphId] {
        match self {
            Composites::Inline { len, ids } => &ids[..*len as usize],
            Composites::Heap(ids) => ids,
        }
    }
}

/// The per-function sequence of size-change graphs `⃗g`, kept as the sorted
/// set of interned suffix-composite ids (see module docs).
///
/// The argument-free methods ([`push`](CallSeq::push),
/// [`check`](CallSeq::check), …) use the thread-local
/// [`Interner::global`] pool; the `*_in` variants take an explicit handle.
/// A sequence's ids live in the pool that created them — don't mix pools.
///
/// # Examples
///
/// ```
/// use sct_core::graph::{Change, ScGraph};
/// use sct_core::seq::CallSeq;
///
/// let descend = ScGraph::from_arcs(1, 1, [(0, Change::Descend, 0)]);
/// let stay = ScGraph::from_arcs(1, 1, [(0, Change::NonAscend, 0)]);
///
/// // Strict descent forever is fine...
/// let mut seq = CallSeq::new();
/// for _ in 0..100 {
///     seq = seq.push(descend.clone()).expect("descent maintains prog?");
/// }
/// // ...but one stagnating self-call is caught at once.
/// assert!(seq.push(stay).is_err());
/// ```
#[derive(Clone)]
pub struct CallSeq {
    composites: Composites,
    len: usize,
}

impl Default for CallSeq {
    fn default() -> Self {
        CallSeq::new()
    }
}

impl CallSeq {
    /// The empty sequence (`⃗g = []`, stored for a function's first call).
    pub fn new() -> CallSeq {
        CallSeq {
            composites: Composites::empty(),
            len: 0,
        }
    }

    /// Number of graphs pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no graph has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct suffix composites currently tracked; bounded by
    /// the (finite) number of graphs at this arity.
    pub fn composite_count(&self) -> usize {
        self.composites.as_slice().len()
    }

    /// The sorted interned ids of the current suffix composites.
    pub fn composite_ids(&self) -> &[GraphId] {
        self.composites.as_slice()
    }

    /// The current suffix composites, resolved against the global pool.
    pub fn composites(&self) -> Vec<ScGraph> {
        self.composites_in(&Interner::global())
    }

    /// The current suffix composites, resolved against `interner`.
    pub fn composites_in(&self, interner: &Interner) -> Vec<ScGraph> {
        self.composites
            .as_slice()
            .iter()
            .map(|&id| interner.graph(id))
            .collect()
    }

    /// Shared-structure successor: same composites, one more call.
    fn share_extended(&self) -> CallSeq {
        CallSeq {
            composites: self.composites.clone(),
            len: self.len + 1,
        }
    }

    /// Computes `Sₙ = { c ; g | c ∈ Sₙ₋₁ } ∪ { g }` and either detects the
    /// fixed point (returning `None`) or hands the sorted new set to `k`.
    fn extend_with<T>(
        &self,
        interner: &Interner,
        g: GraphId,
        k: impl FnOnce(&[GraphId], &[GraphId]) -> Result<T, ScViolation>,
    ) -> Option<Result<T, ScViolation>> {
        let old = self.composites.as_slice();
        let n = old.len() + 1;
        let mut stack_buf = [GraphId::DUMMY; SCRATCH];
        let mut heap_buf: Vec<GraphId> = Vec::new();
        let slots: &mut [GraphId] = if n <= SCRATCH {
            &mut stack_buf[..n]
        } else {
            heap_buf.resize(n, GraphId::DUMMY);
            &mut heap_buf[..]
        };
        let g_rows = interner.rows(g);
        let mut m = 0;
        slots[m] = g;
        m += 1;
        for &c in old {
            // Arity-incompatible composites cannot extend through g; they
            // are dropped, exactly as in the set-of-graphs formulation.
            if interner.cols(c) == g_rows {
                slots[m] = interner.compose(c, g);
                m += 1;
            }
        }
        let filled = &mut slots[..m];
        filled.sort_unstable();
        let mut w = 1;
        for r in 1..m {
            if filled[r] != filled[w - 1] {
                filled[w] = filled[r];
                w += 1;
            }
        }
        let new_ids = &filled[..w];
        if new_ids == old {
            // Fixed point: the steady state of every long-running loop.
            return None;
        }
        Some(k(new_ids, old))
    }

    /// Appends a graph *with* the `prog?` check — the `upd` path of
    /// Figure 4 — against the global interner pool.
    ///
    /// # Errors
    ///
    /// [`ScViolation`] when some contiguous subsequence composes to an
    /// idempotent graph with no strict self-descent.
    pub fn push(&self, g: ScGraph) -> Result<CallSeq, ScViolation> {
        self.push_in(&Interner::global(), g)
    }

    /// [`push`](CallSeq::push) against an explicit interner pool.
    ///
    /// Only composites *new* to this push are `desc?`-checked: carried-over
    /// members passed when they first appeared, and at the fixed point no
    /// check runs at all.
    ///
    /// # Errors
    ///
    /// [`ScViolation`] exactly as [`push`](CallSeq::push), carrying the
    /// first new failing composite.
    pub fn push_in(&self, interner: &Interner, g: ScGraph) -> Result<CallSeq, ScViolation> {
        let gid = interner.intern(g);
        self.push_id_in(interner, gid)
    }

    /// [`push_in`](CallSeq::push_in) for an already-interned graph.
    ///
    /// # Errors
    ///
    /// [`ScViolation`] exactly as [`push`](CallSeq::push).
    pub fn push_id_in(&self, interner: &Interner, gid: GraphId) -> Result<CallSeq, ScViolation> {
        match self.extend_with(interner, gid, |new_ids, old| {
            // Both slices are sorted: walk them together and check only the
            // ids that were not already members.
            let mut oi = 0;
            for &id in new_ids {
                while oi < old.len() && old[oi] < id {
                    oi += 1;
                }
                let carried_over = oi < old.len() && old[oi] == id;
                if !carried_over && !interner.desc_ok(id) {
                    return Err(ScViolation {
                        witness: interner.graph(id),
                    });
                }
            }
            Ok(CallSeq {
                composites: Composites::from_sorted(new_ids),
                len: self.len + 1,
            })
        }) {
            None => Ok(self.share_extended()),
            Some(res) => res,
        }
    }

    /// Appends a graph *without* checking — the `ext` function of the
    /// call-sequence semantics (Figure 6), used to state completeness.
    /// Global-pool variant.
    pub fn push_unchecked(&self, g: ScGraph) -> CallSeq {
        self.push_unchecked_in(&Interner::global(), g)
    }

    /// [`push_unchecked`](CallSeq::push_unchecked) against an explicit pool.
    pub fn push_unchecked_in(&self, interner: &Interner, g: ScGraph) -> CallSeq {
        let gid = interner.intern(g);
        match self.extend_with(interner, gid, |new_ids, _old| {
            Ok(CallSeq {
                composites: Composites::from_sorted(new_ids),
                len: self.len + 1,
            })
        }) {
            None => self.share_extended(),
            Some(Ok(seq)) => seq,
            Some(Err(_)) => unreachable!("unchecked extension never fails"),
        }
    }

    /// Checks `prog?` over **all** suffix composites currently tracked
    /// (unlike [`push`](CallSeq::push), which trusts carried-over members —
    /// this is the entry point after unchecked extension). Global pool.
    ///
    /// # Errors
    ///
    /// [`ScViolation`] carrying the first failing composite found.
    pub fn check(&self) -> Result<(), ScViolation> {
        self.check_in(&Interner::global())
    }

    /// [`check`](CallSeq::check) against an explicit pool.
    ///
    /// # Errors
    ///
    /// [`ScViolation`] carrying the first failing composite found.
    pub fn check_in(&self, interner: &Interner) -> Result<(), ScViolation> {
        for &id in self.composites.as_slice() {
            if !interner.desc_ok(id) {
                return Err(ScViolation {
                    witness: interner.graph(id),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Debug for CallSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CallSeq(len={}, composite_ids={:?})",
            self.len,
            self.composites.as_slice()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Change;
    use crate::order::AbsIntOrder;

    fn g(arcs: &[(usize, Change, usize)]) -> ScGraph {
        ScGraph::from_arcs(2, 2, arcs.iter().copied())
    }

    #[test]
    fn ack_2_0_full_trace_passes() {
        // Figure 1's left spine plus the post-return sibling call.
        let steps: [(&[i64; 2], &[i64; 2]); 3] =
            [(&[2, 0], &[1, 1]), (&[1, 1], &[1, 0]), (&[1, 0], &[0, 1])];
        let mut seq = CallSeq::new();
        for (old, new) in steps {
            let graph = ScGraph::from_args(&AbsIntOrder, old, new);
            seq = seq.push(graph).expect("ack trace maintains prog?");
        }
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn buggy_ack_caught() {
        // §2.1: (ack 2 0) ↝ (ack 1 1) ↝ (ack 1 2) — last graph is
        // {(m→=m),(n→=m)}: idempotent, no self-descent.
        let seq = CallSeq::new();
        let seq = seq
            .push(ScGraph::from_args(&AbsIntOrder, &[2i64, 0], &[1, 1]))
            .unwrap();
        let err = seq
            .push(ScGraph::from_args(&AbsIntOrder, &[1i64, 1], &[1, 2]))
            .expect_err("non-descending call must violate");
        assert!(err.witness.is_idempotent());
        assert!(!err.witness.has_self_descent());
    }

    #[test]
    fn composites_reach_fixed_point() {
        // A two-graph alternation closes to finitely many composites and
        // the count stops growing.
        let a = g(&[(0, Change::Descend, 0), (1, Change::NonAscend, 1)]);
        let b = g(&[(0, Change::NonAscend, 0), (1, Change::Descend, 1)]);
        let mut seq = CallSeq::new();
        for i in 0..64 {
            let next = if i % 2 == 0 { a.clone() } else { b.clone() };
            seq = seq.push(next).unwrap();
        }
        assert!(seq.composite_count() <= 4, "composites stay bounded");
        assert_eq!(seq.len(), 64);
    }

    #[test]
    fn violation_found_across_composition() {
        // Each individual graph passes desc?, but their composition is the
        // identity-shaped swap loop: g_ab swaps 0→=1, 1→=0 — g;g is
        // idempotent with no descent.
        let swap = g(&[(0, Change::NonAscend, 1), (1, Change::NonAscend, 0)]);
        assert!(swap.desc_ok(), "swap alone passes desc? (not idempotent)");
        let seq = CallSeq::new().push(swap.clone()).unwrap();
        // Second swap: composite swap;swap = {0→=0, 1→=1} fails.
        assert!(seq.push(swap).is_err());
    }

    #[test]
    fn unchecked_extension_then_check() {
        let stay = g(&[(0, Change::NonAscend, 0)]);
        let seq = CallSeq::new().push_unchecked(stay);
        assert!(
            seq.check().is_err(),
            "ext records the violation for later inspection"
        );
        assert_eq!(seq.len(), 1);
    }

    #[test]
    fn persistence() {
        let descend = g(&[(0, Change::Descend, 0)]);
        let stay = g(&[(0, Change::NonAscend, 0)]);
        let s0 = CallSeq::new();
        let s1 = s0.push(descend).unwrap();
        let _err = s1.push(stay.clone()).unwrap_err();
        // s1 unchanged by the failed push; s0 still empty.
        assert_eq!(s1.len(), 1);
        assert!(s0.is_empty());
        assert!(s1.check().is_ok());
    }

    #[test]
    fn violation_display() {
        let stay = g(&[(0, Change::NonAscend, 0)]);
        let err = CallSeq::new().push(stay).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("size-change violation"), "got: {msg}");
    }

    #[test]
    fn fixed_point_push_shares_structure() {
        let descend = g(&[(0, Change::Descend, 0)]);
        let s1 = CallSeq::new().push(descend.clone()).unwrap();
        let s2 = s1.push(descend.clone()).unwrap();
        // Same single composite id, length advanced.
        assert_eq!(s1.composite_ids(), s2.composite_ids());
        assert_eq!(s2.len(), 2);
        // Large composite sets share the heap allocation at the fixed point.
        let it = Interner::new();
        let mut seq = CallSeq::new();
        // Arity-8 rotation generates > INLINE distinct composites.
        let rot = ScGraph::from_arcs(8, 8, (0..8).map(|i| (i, Change::Descend, (i + 1) % 8)));
        for _ in 0..20 {
            seq = seq.push_in(&it, rot.clone()).unwrap();
        }
        let before = seq.composite_ids().to_vec();
        let next = seq.push_in(&it, rot.clone()).unwrap();
        assert_eq!(next.composite_ids(), &before[..]);
        assert!(before.len() > INLINE, "exercises the heap variant");
    }

    #[test]
    fn explicit_pool_matches_global_behavior() {
        let it = Interner::new();
        let stay = g(&[(0, Change::NonAscend, 0)]);
        let descend = g(&[(0, Change::Descend, 0)]);
        let seq = CallSeq::new().push_in(&it, descend).unwrap();
        assert!(seq.check_in(&it).is_ok());
        assert!(seq.push_in(&it, stay).is_err());
        assert_eq!(seq.composites_in(&it).len(), 1);
    }
}

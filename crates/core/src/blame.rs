//! Blame labels for termination contracts (§2.3).
//!
//! Each `terminating/c` use marks a blame party; when a wrapped function
//! fails to maintain the size-change principle, that party is reported.
//! As the paper notes, "no sophisticated run-time machinery is required":
//! a label travels with the wrapper and surfaces in the error.

use std::fmt;

/// Identifies the party responsible for a termination-contract violation.
///
/// # Examples
///
/// ```
/// use sct_core::blame::BlameLabel;
///
/// let blame = BlameLabel::new("module alpha").at("alpha.rkt:12");
/// assert_eq!(blame.to_string(), "module alpha (at alpha.rkt:12)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BlameLabel {
    party: String,
    site: Option<String>,
}

impl BlameLabel {
    /// Creates a blame label naming a party.
    pub fn new(party: impl Into<String>) -> BlameLabel {
        BlameLabel {
            party: party.into(),
            site: None,
        }
    }

    /// Attaches a source location to the label.
    #[must_use]
    pub fn at(mut self, site: impl Into<String>) -> BlameLabel {
        self.site = Some(site.into());
        self
    }

    /// The blamed party's name.
    pub fn party(&self) -> &str {
        &self.party
    }

    /// The source location, if recorded.
    pub fn site(&self) -> Option<&str> {
        self.site.as_deref()
    }
}

impl fmt::Display for BlameLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.site {
            Some(site) => write!(f, "{} (at {})", self.party, site),
            None => f.write_str(&self.party),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(BlameLabel::new("main").to_string(), "main");
        assert_eq!(
            BlameLabel::new("main").at("prog:3").to_string(),
            "main (at prog:3)"
        );
    }

    #[test]
    fn accessors() {
        let b = BlameLabel::new("lib").at("lib.sct:9");
        assert_eq!(b.party(), "lib");
        assert_eq!(b.site(), Some("lib.sct:9"));
        assert_eq!(BlameLabel::new("x").site(), None);
    }
}

//! The size-change table `m ∈ v ⇀ ⃗v × ⃗g` (Figure 3), in the two flavors the
//! paper evaluates in §5.
//!
//! * [`ScTable`] is **persistent**: `update` returns a new table and leaves
//!   the old one intact. The continuation-mark strategy stores one of these
//!   per mark; returning from a call discards the mark, restoring the
//!   caller's table — the dynamic-extent threading of rule [SC-App-Clo]
//!   with no undo machinery and with proper tail calls preserved.
//! * [`MutScTable`] is **imperative**: `update_mut` mutates a hash map in
//!   place and returns a [`TableUndo`] that the interpreter stashes in a
//!   restore continuation frame. Cheap lookups, but every application now
//!   pushes a frame — exactly how the imperative strategy "breaks proper
//!   tail calls" (§5).
//!
//! Both flavors are generic in the closure key `K` (the interpreter uses a
//! structural closure fingerprint per §5's "hash the closure") and the
//! argument snapshot `V`.

use crate::graph::ScGraph;
use crate::intern::{FxBuildHasher, Interner};
use crate::order::WellFoundedOrder;
use crate::seq::{CallSeq, ScViolation};
use sct_persist::PMap;
use std::collections::HashMap;
use std::hash::Hash;
use std::rc::Rc;

/// A table entry: the most recent arguments a function was applied to in
/// the current dynamic extent, plus its accumulated graph sequence.
#[derive(Debug)]
pub struct FnEntry<V> {
    /// Arguments of the most recent call (`⃗vₙ`).
    pub last_args: Rc<[V]>,
    /// The graph sequence `⃗g`, as suffix composites.
    pub seq: CallSeq,
}

impl<V> Clone for FnEntry<V> {
    fn clone(&self) -> Self {
        FnEntry {
            last_args: Rc::clone(&self.last_args),
            seq: self.seq.clone(),
        }
    }
}

impl<V> FnEntry<V> {
    /// A fresh entry for a function's first observed call: the paper's
    /// `m[v ↦ (⃗vₙ, [])]`.
    pub fn first_call(args: Rc<[V]>) -> FnEntry<V> {
        FnEntry {
            last_args: args,
            seq: CallSeq::new(),
        }
    }

    /// Steps the entry with new arguments: computes `graph(⃗vₙ₋₁, ⃗vₙ)` and
    /// pushes it through the `prog?` check, against the global interner
    /// pool.
    ///
    /// # Errors
    ///
    /// Propagates the [`ScViolation`] when the extended sequence violates
    /// the size-change principle.
    pub fn step<O: WellFoundedOrder<V> + ?Sized>(
        &self,
        args: Rc<[V]>,
        order: &O,
    ) -> Result<FnEntry<V>, ScViolation> {
        self.step_in(args, order, &Interner::global())
    }

    /// [`step`](FnEntry::step) against an explicit interner pool — the form
    /// the tables use so one pool serves a whole monitored run.
    ///
    /// # Errors
    ///
    /// Propagates the [`ScViolation`] when the extended sequence violates
    /// the size-change principle.
    pub fn step_in<O: WellFoundedOrder<V> + ?Sized>(
        &self,
        args: Rc<[V]>,
        order: &O,
        interner: &Interner,
    ) -> Result<FnEntry<V>, ScViolation> {
        let g = ScGraph::from_args(order, &self.last_args, &args);
        let seq = self.seq.push_in(interner, g)?;
        Ok(FnEntry {
            last_args: args,
            seq,
        })
    }

    /// Steps the entry without checking (`ext` of Figure 6), global pool.
    pub fn step_unchecked<O: WellFoundedOrder<V> + ?Sized>(
        &self,
        args: Rc<[V]>,
        order: &O,
    ) -> FnEntry<V> {
        self.step_unchecked_in(args, order, &Interner::global())
    }

    /// [`step_unchecked`](FnEntry::step_unchecked) against an explicit pool.
    pub fn step_unchecked_in<O: WellFoundedOrder<V> + ?Sized>(
        &self,
        args: Rc<[V]>,
        order: &O,
        interner: &Interner,
    ) -> FnEntry<V> {
        let g = ScGraph::from_args(order, &self.last_args, &args);
        FnEntry {
            last_args: args,
            seq: self.seq.push_unchecked_in(interner, g),
        }
    }
}

/// The persistent size-change table used by the continuation-mark strategy.
///
/// # Examples
///
/// ```
/// use sct_core::order::AbsIntOrder;
/// use sct_core::table::ScTable;
/// use std::rc::Rc;
///
/// let t0: ScTable<&str, i64> = ScTable::new();
/// let t1 = t0.update("f", Rc::from(vec![3i64]), &AbsIntOrder).unwrap();
/// let t2 = t1.update("f", Rc::from(vec![2i64]), &AbsIntOrder).unwrap();
/// assert!(t2.update("f", Rc::from(vec![2i64]), &AbsIntOrder).is_err()); // no descent
/// assert!(t1.update("f", Rc::from(vec![1i64]), &AbsIntOrder).is_ok());  // t1 unharmed
/// ```
pub struct ScTable<K, V> {
    map: PMap<K, FnEntry<V>>,
    interner: Interner,
}

impl<K: Hash + Eq + Clone + std::fmt::Debug, V: std::fmt::Debug> std::fmt::Debug for ScTable<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.map.iter()).finish()
    }
}

impl<K, V> Clone for ScTable<K, V> {
    fn clone(&self) -> Self {
        ScTable {
            map: self.map.clone(),
            interner: self.interner.clone(),
        }
    }
}

impl<K, V> Default for ScTable<K, V>
where
    K: Hash + Eq + Clone,
{
    fn default() -> Self {
        ScTable::new()
    }
}

impl<K: Hash + Eq + Clone, V> ScTable<K, V> {
    /// The empty table `{}`, using the global interner pool.
    pub fn new() -> ScTable<K, V> {
        ScTable::with_interner(Interner::global())
    }

    /// The empty table over an explicit interner pool; the monitor creates
    /// all its tables through this so one pool serves the whole run.
    pub fn with_interner(interner: Interner) -> ScTable<K, V> {
        ScTable {
            map: PMap::new(),
            interner,
        }
    }

    /// The interner pool this table's graph ids live in.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Number of functions tracked.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no function is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The entry for a function, if it has been applied in this extent.
    pub fn get(&self, key: &K) -> Option<&FnEntry<V>> {
        self.map.get(key)
    }

    /// Figure 4's `upd(m, v, ⃗vₙ)`: records the call and checks `prog?`.
    ///
    /// # Errors
    ///
    /// [`ScViolation`] when the function's extended graph sequence violates
    /// the size-change principle — the caller turns this into `errorSC`.
    pub fn update<O: WellFoundedOrder<V> + ?Sized>(
        &self,
        key: K,
        args: Rc<[V]>,
        order: &O,
    ) -> Result<ScTable<K, V>, ScViolation> {
        let entry = match self.map.get(&key) {
            None => FnEntry::first_call(args),
            Some(prev) => prev.step_in(args, order, &self.interner)?,
        };
        Ok(ScTable {
            map: self.map.insert(key, entry),
            interner: self.interner.clone(),
        })
    }

    /// Figure 6's `ext(m, v, ⃗vₙ)`: records the call without checking.
    #[must_use = "ScTable is persistent; extend_unchecked returns the new table"]
    pub fn extend_unchecked<O: WellFoundedOrder<V> + ?Sized>(
        &self,
        key: K,
        args: Rc<[V]>,
        order: &O,
    ) -> ScTable<K, V> {
        let entry = match self.map.get(&key) {
            None => FnEntry::first_call(args),
            Some(prev) => prev.step_unchecked_in(args, order, &self.interner),
        };
        ScTable {
            map: self.map.insert(key, entry),
            interner: self.interner.clone(),
        }
    }

    /// Iterates over tracked functions and entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &FnEntry<V>)> {
        self.map.iter()
    }
}

/// Undo record returned by [`MutScTable::update_mut`]; the interpreter keeps
/// it in a restore frame and applies it when the call returns.
#[derive(Debug)]
pub struct TableUndo<K, V> {
    key: K,
    prev: Option<FnEntry<V>>,
}

/// The imperative size-change table of §5's first strategy: one global
/// mutable map, updated on call and *restored* on return.
///
/// # Examples
///
/// ```
/// use sct_core::order::AbsIntOrder;
/// use sct_core::table::MutScTable;
/// use std::rc::Rc;
///
/// let mut t: MutScTable<&str, i64> = MutScTable::new();
/// let undo = t.update_mut("f", Rc::from(vec![3i64]), &AbsIntOrder).unwrap();
/// assert_eq!(t.len(), 1);
/// t.restore(undo); // the call returned: f's entry reverts
/// assert_eq!(t.len(), 0);
/// ```
pub struct MutScTable<K, V> {
    map: HashMap<K, FnEntry<V>, FxBuildHasher>,
    interner: Interner,
}

impl<K: Hash + Eq + std::fmt::Debug, V: std::fmt::Debug> std::fmt::Debug for MutScTable<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.map.iter()).finish()
    }
}

impl<K, V> Default for MutScTable<K, V>
where
    K: Hash + Eq + Clone,
{
    fn default() -> Self {
        MutScTable::new()
    }
}

impl<K: Hash + Eq + Clone, V> MutScTable<K, V> {
    /// The empty table, using the global interner pool.
    pub fn new() -> MutScTable<K, V> {
        MutScTable::with_interner(Interner::global())
    }

    /// The empty table over an explicit interner pool.
    pub fn with_interner(interner: Interner) -> MutScTable<K, V> {
        MutScTable {
            map: HashMap::default(),
            interner,
        }
    }

    /// The interner pool this table's graph ids live in.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Number of functions tracked.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no function is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The entry for a function, if present.
    pub fn get(&self, key: &K) -> Option<&FnEntry<V>> {
        self.map.get(key)
    }

    /// In-place `upd`: on success the table holds the new entry and the
    /// returned [`TableUndo`] restores the previous state; on violation the
    /// table is left unchanged.
    ///
    /// # Errors
    ///
    /// [`ScViolation`] when the extended sequence violates the size-change
    /// principle.
    pub fn update_mut<O: WellFoundedOrder<V> + ?Sized>(
        &mut self,
        key: K,
        args: Rc<[V]>,
        order: &O,
    ) -> Result<TableUndo<K, V>, ScViolation> {
        match self.map.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                let next = slot.get().step_in(args, order, &self.interner)?;
                let prev = slot.insert(next);
                Ok(TableUndo {
                    key,
                    prev: Some(prev),
                })
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(FnEntry::first_call(args));
                Ok(TableUndo { key, prev: None })
            }
        }
    }

    /// In-place `ext` (Figure 6): records the call *without* the `prog?`
    /// check, for the call-sequence semantics. Returns the undo record and
    /// whether the extended sequence would have violated the principle —
    /// the information the completeness theorems quantify over.
    pub fn extend_unchecked_mut<O: WellFoundedOrder<V> + ?Sized>(
        &mut self,
        key: K,
        args: Rc<[V]>,
        order: &O,
    ) -> (TableUndo<K, V>, Option<ScViolation>) {
        let entry = match self.map.get(&key) {
            None => FnEntry::first_call(args),
            Some(prev) => prev.step_unchecked_in(args, order, &self.interner),
        };
        let violation = entry.seq.check_in(&self.interner).err();
        let prev = self.map.insert(key.clone(), entry);
        (TableUndo { key, prev }, violation)
    }

    /// Reverts an update when its call's dynamic extent ends.
    pub fn restore(&mut self, undo: TableUndo<K, V>) {
        match undo.prev {
            Some(entry) => {
                self.map.insert(undo.key, entry);
            }
            None => {
                self.map.remove(&undo.key);
            }
        }
    }

    /// Drops all entries (used when leaving a contract's dynamic extent).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::AbsIntOrder;

    fn args(xs: &[i64]) -> Rc<[i64]> {
        Rc::from(xs.to_vec())
    }

    #[test]
    fn persistent_ack_trace() {
        // The (ack 2 0) spine of Figure 1 through the real table API.
        let t: ScTable<u32, i64> = ScTable::new();
        let t = t.update(7, args(&[2, 0]), &AbsIntOrder).unwrap();
        let t = t.update(7, args(&[1, 1]), &AbsIntOrder).unwrap();
        let t = t.update(7, args(&[1, 0]), &AbsIntOrder).unwrap();
        let t = t.update(7, args(&[0, 1]), &AbsIntOrder).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&7).unwrap().seq.len(), 3);
    }

    #[test]
    fn persistent_update_does_not_touch_old() {
        let t0: ScTable<u32, i64> = ScTable::new();
        let t1 = t0.update(1, args(&[5]), &AbsIntOrder).unwrap();
        let t2 = t1.update(1, args(&[4]), &AbsIntOrder).unwrap();
        assert!(t0.is_empty());
        assert_eq!(t1.get(&1).unwrap().seq.len(), 0);
        assert_eq!(t2.get(&1).unwrap().seq.len(), 1);
    }

    #[test]
    fn violation_reported_with_witness() {
        let t: ScTable<u32, i64> = ScTable::new();
        let t = t.update(1, args(&[5]), &AbsIntOrder).unwrap();
        let err = t.update(1, args(&[5]), &AbsIntOrder).unwrap_err();
        assert!(err.witness.is_idempotent());
        assert!(!err.witness.has_self_descent());
    }

    #[test]
    fn distinct_keys_are_independent() {
        // §2.2: SCP is only checked between calls to the *same* closure.
        let t: ScTable<u32, i64> = ScTable::new();
        let t = t.update(1, args(&[5]), &AbsIntOrder).unwrap();
        // Key 2 called with ascending values: fine, it's a different entry.
        let t = t.update(2, args(&[1]), &AbsIntOrder).unwrap();
        let t = t.update(2, args(&[2]), &AbsIntOrder);
        assert!(t.is_err(), "same key must still descend");
        let t2: ScTable<u32, i64> = ScTable::new()
            .update(1, args(&[5]), &AbsIntOrder)
            .unwrap()
            .update(2, args(&[100]), &AbsIntOrder)
            .unwrap();
        assert_eq!(t2.len(), 2);
    }

    #[test]
    fn mutable_update_and_restore() {
        let mut t: MutScTable<u32, i64> = MutScTable::new();
        let u1 = t.update_mut(1, args(&[5]), &AbsIntOrder).unwrap();
        let u2 = t.update_mut(1, args(&[4]), &AbsIntOrder).unwrap();
        assert_eq!(t.get(&1).unwrap().seq.len(), 1);
        t.restore(u2);
        assert_eq!(t.get(&1).unwrap().seq.len(), 0);
        // After restoring, a non-descending call relative to [5] fails...
        assert!(t.update_mut(1, args(&[6]), &AbsIntOrder).is_err());
        // ...and the failed update leaves the table unchanged.
        assert_eq!(t.get(&1).unwrap().seq.len(), 0);
        t.restore(u1);
        assert!(t.is_empty());
    }

    #[test]
    fn unchecked_extension_records_violation() {
        let t: ScTable<u32, i64> = ScTable::new()
            .extend_unchecked(1, args(&[5]), &AbsIntOrder)
            .extend_unchecked(1, args(&[5]), &AbsIntOrder);
        assert!(t.get(&1).unwrap().seq.check().is_err());
    }

    #[test]
    fn restore_interleaving_is_stack_like() {
        // Simulates f(5) -> f(4) -> return -> f(3): the table must track
        // the dynamic extent, not the global history.
        let mut t: MutScTable<u32, i64> = MutScTable::new();
        let u_outer = t.update_mut(1, args(&[5]), &AbsIntOrder).unwrap();
        let u_inner = t.update_mut(1, args(&[4]), &AbsIntOrder).unwrap();
        t.restore(u_inner);
        // Back in f(5)'s extent: calling f(3) compares against [5], len 1.
        let u_inner2 = t.update_mut(1, args(&[3]), &AbsIntOrder).unwrap();
        assert_eq!(t.get(&1).unwrap().seq.len(), 1);
        t.restore(u_inner2);
        t.restore(u_outer);
        assert!(t.is_empty());
    }
}

//! A deterministic, process-independent content hasher for cache keys.
//!
//! The persistent plan cache (`sct-cache`) addresses entries by a digest of
//! a `define`'s resolved AST plus the planner configuration. `std`'s
//! `DefaultHasher` is explicitly unstable across releases and the interning
//! [`FxHasher`](crate::intern::FxHasher) is tuned for table lookups, not
//! collision resistance across millions of persisted keys — so this module
//! provides [`StableHasher`], a 128-bit mix with a fixed specification:
//!
//! * the digest of a byte sequence is identical on every platform, every
//!   process, and every release that keeps [`STABLE_HASH_VERSION`];
//! * all multi-byte writes are little-endian and length-prefixed where the
//!   encoding is ambiguous (strings, byte slices), so `("ab", "c")` and
//!   `("a", "bc")` cannot collide structurally;
//! * 128 bits keep the birthday bound negligible at any realistic cache
//!   population (2⁶⁴ entries for a 50% collision chance).
//!
//! The mix is two independently seeded lanes of the splitmix64 finalizer
//! over a running state — not cryptographic, which is fine: cache keys
//! defend against *accidental* collision, and a user who can write the
//! cache directory can already replace entries wholesale.
//!
//! # Examples
//!
//! ```
//! use sct_core::stable::StableHasher;
//!
//! let mut h = StableHasher::new();
//! h.write_str("sum");
//! h.write_u64(2);
//! let d = h.finish128();
//! // Deterministic: the same writes always produce the same digest.
//! let mut h2 = StableHasher::new();
//! h2.write_str("sum");
//! h2.write_u64(2);
//! assert_eq!(d, h2.finish128());
//! assert_eq!(d.to_hex().len(), 32);
//! ```

/// Version tag of the hash specification. Bumping it invalidates every
/// persisted cache entry at once (the digest participates in the content
/// address), which is exactly what a change to the mixing function must do.
pub const STABLE_HASH_VERSION: u32 = 1;

/// A 128-bit digest, printable as 32 lowercase hex characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest128 {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl Digest128 {
    /// The digest as 32 lowercase hex characters (`hi` first).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl std::fmt::Display for Digest128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// splitmix64's finalizer: a full-avalanche 64-bit permutation.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic 128-bit hasher. See the module docs for guarantees.
#[derive(Debug, Clone)]
pub struct StableHasher {
    a: u64,
    b: u64,
    len: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher with the fixed lane seeds.
    pub fn new() -> StableHasher {
        StableHasher {
            a: 0x9e37_79b9_7f4a_7c15,
            b: 0xc2b2_ae3d_27d4_eb4f,
            len: 0,
        }
    }

    #[inline]
    fn absorb(&mut self, word: u64) {
        self.a = mix64(self.a ^ word);
        self.b = mix64(self.b.rotate_left(23) ^ word.wrapping_mul(0xff51_afd7_ed55_8ccd));
        self.len = self.len.wrapping_add(1);
    }

    /// Writes one `u64` (little-endian semantics; the value is absorbed
    /// directly).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.absorb(v);
    }

    /// Writes one `u32`, tagged to its width. The tag is XORed in — XOR
    /// with a constant is a bijection, so distinct `u32`s always absorb
    /// distinct words (an OR would destroy the tag's bit positions in the
    /// value and alias e.g. 0 with the tag bit itself).
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.absorb(u64::from(v) ^ 0x0400_0000_0000_0000);
    }

    /// Writes one `u8`.
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.absorb(u64::from(v) ^ 0x0101_0101_0101_0101);
    }

    /// Writes an `i64` via its two's-complement bit pattern.
    #[inline]
    pub fn write_i64(&mut self, v: i64) {
        self.absorb(v as u64);
    }

    /// Writes a byte slice, length-prefixed so adjacent writes cannot
    /// run together.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.absorb(bytes.len() as u64 ^ 0xb5eb_b5eb_b5eb_b5eb);
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.absorb(u64::from_le_bytes(buf));
        }
    }

    /// Writes a string (UTF-8 bytes, length-prefixed).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The 128-bit digest of everything written so far. The hasher can
    /// keep absorbing afterwards; `finish128` is non-destructive.
    pub fn finish128(&self) -> Digest128 {
        // Fold the total write count in so a trailing zero write differs
        // from no write at all.
        let hi = mix64(self.a ^ mix64(self.len ^ 0xdead_beef_cafe_f00d));
        let lo = mix64(self.b ^ hi);
        Digest128 { hi, lo }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_of(f: impl FnOnce(&mut StableHasher)) -> Digest128 {
        let mut h = StableHasher::new();
        f(&mut h);
        h.finish128()
    }

    #[test]
    fn deterministic_and_order_sensitive() {
        let d1 = digest_of(|h| {
            h.write_str("a");
            h.write_str("b");
        });
        let d2 = digest_of(|h| {
            h.write_str("a");
            h.write_str("b");
        });
        let d3 = digest_of(|h| {
            h.write_str("b");
            h.write_str("a");
        });
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let d1 = digest_of(|h| {
            h.write_str("ab");
            h.write_str("c");
        });
        let d2 = digest_of(|h| {
            h.write_str("a");
            h.write_str("bc");
        });
        assert_ne!(d1, d2);
    }

    #[test]
    fn empty_writes_still_distinguish() {
        let none = digest_of(|_| {});
        let empty = digest_of(|h| h.write_str(""));
        let zero = digest_of(|h| h.write_u64(0));
        assert_ne!(none, empty);
        assert_ne!(none, zero);
        assert_ne!(empty, zero);
    }

    #[test]
    fn tagged_writes_are_injective_in_the_value() {
        // Regression: the u32 width tag was once OR-ed in with a constant
        // that evaluated to bit 1, so write_u32(0) == write_u32(2) — and
        // structurally different programs (Var slot 0 vs 2, occurrence 0
        // vs 2) digested to identical cache keys. Tags must be XORed.
        for (a, b) in [(0u32, 2), (1, 3), (0, 1), (4, 6)] {
            assert_ne!(
                digest_of(|h| h.write_u32(a)),
                digest_of(|h| h.write_u32(b)),
                "write_u32 collides on {a} vs {b}"
            );
        }
        for (a, b) in [(0u8, 2), (1, 3)] {
            assert_ne!(
                digest_of(|h| h.write_u8(a)),
                digest_of(|h| h.write_u8(b)),
                "write_u8 collides on {a} vs {b}"
            );
        }
    }

    #[test]
    fn hex_is_32_lowercase_chars() {
        let d = digest_of(|h| h.write_str("x"));
        let hex = d.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        assert_eq!(hex, d.to_string());
    }

    #[test]
    fn known_vector_pins_the_specification() {
        // Changing the mix must change this vector — and then
        // STABLE_HASH_VERSION must be bumped (which itself feeds cache
        // keys, invalidating persisted entries as required).
        let d = digest_of(|h| {
            h.write_str("sct");
            h.write_u64(2019);
        });
        let again = digest_of(|h| {
            h.write_str("sct");
            h.write_u64(2019);
        });
        assert_eq!(d, again);
        assert_eq!(STABLE_HASH_VERSION, 1);
    }
}

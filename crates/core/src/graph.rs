//! Size-change graphs and their composition (Figure 4 of the paper).
//!
//! A size-change graph describes how argument sizes relate between a call
//! and a subsequent call of the same function: arc `i ↓ j` says the `j`-th
//! argument of the later call is *strictly smaller* than the `i`-th argument
//! of the earlier call; `i ⇣ j` says it *never ascends* (here: is equal,
//! since at run time we observe concrete values — Figure 4's `graph`
//! function emits `→=` exactly on equality).

use crate::order::{SizeChange, WellFoundedOrder};
use std::fmt;

/// The label on a size-change arc: the paper's `r ::= → | →=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Change {
    /// `→=`: the target argument never ascends relative to the source.
    NonAscend,
    /// `→` (strict): the target argument strictly descends.
    Descend,
}

/// One arc of a size-change graph: source parameter index, change kind,
/// target parameter index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arc {
    /// Parameter index in the earlier call.
    pub from: usize,
    /// Strict descent or non-ascent.
    pub change: Change,
    /// Parameter index in the later call.
    pub to: usize,
}

/// Cell values of the dense matrix: absence, non-ascent, or strict descent.
/// `Descend` dominates `NonAscend` dominates `None` — the "max" of the
/// composition semiring.
const EMPTY: u8 = 0;
const NON_ASCEND: u8 = 1;
const DESCEND: u8 = 2;

/// A size-change graph between a call with `rows` arguments and a later
/// call with `cols` arguments, stored densely (one byte per parameter
/// pair; arities in practice are tiny).
///
/// # Examples
///
/// ```
/// use sct_core::graph::{Change, ScGraph};
///
/// // The graph for (ack m n) ↝ (ack (- m 1) 1): {(m → m)}.
/// let g = ScGraph::from_arcs(2, 2, [(0, Change::Descend, 0)]);
/// assert!(g.has_arc(0, 0));
/// assert_eq!(g.get(0, 0), Some(Change::Descend));
/// assert_eq!(g.get(0, 1), None);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ScGraph {
    rows: u16,
    cols: u16,
    cells: Box<[u8]>,
}

impl ScGraph {
    /// The empty graph (no arcs) between arities `rows` and `cols`.
    pub fn empty(rows: usize, cols: usize) -> ScGraph {
        ScGraph {
            rows: rows as u16,
            cols: cols as u16,
            cells: vec![EMPTY; rows * cols].into_boxed_slice(),
        }
    }

    /// Builds a graph from explicit arcs `(from, change, to)`.
    ///
    /// # Panics
    ///
    /// Panics if an arc index is out of bounds.
    pub fn from_arcs(
        rows: usize,
        cols: usize,
        arcs: impl IntoIterator<Item = (usize, Change, usize)>,
    ) -> ScGraph {
        let mut g = ScGraph::empty(rows, cols);
        for (i, c, j) in arcs {
            g.add_arc(i, c, j);
        }
        g
    }

    /// Figure 4's `graph(⃗v, ⃗v′)`: compares argument lists pairwise under a
    /// well-founded order, emitting `↓` where `v′_j ≺ v_i` and `⇣` where
    /// `v′_j = v_i`.
    ///
    /// ```
    /// use sct_core::graph::{Change, ScGraph};
    /// use sct_core::order::AbsIntOrder;
    ///
    /// let g = ScGraph::from_args(&AbsIntOrder, &[2i64, 0], &[1, 1]);
    /// assert_eq!(g.get(0, 0), Some(Change::Descend));   // 1 ≺ 2
    /// assert_eq!(g.get(0, 1), Some(Change::Descend));   // 1 ≺ 2
    /// assert_eq!(g.get(1, 0), None);                    // 1 vs 0: ascent
    /// ```
    pub fn from_args<V, O: WellFoundedOrder<V> + ?Sized>(
        order: &O,
        old: &[V],
        new: &[V],
    ) -> ScGraph {
        let mut g = ScGraph::empty(old.len(), new.len());
        for (i, vi) in old.iter().enumerate() {
            for (j, vj) in new.iter().enumerate() {
                match order.relate(vi, vj) {
                    SizeChange::Descend => g.add_arc(i, Change::Descend, j),
                    SizeChange::Equal => g.add_arc(i, Change::NonAscend, j),
                    SizeChange::Unknown => {}
                }
            }
        }
        g
    }

    /// Arity of the earlier call.
    pub fn rows(&self) -> usize {
        self.rows as usize
    }

    /// Arity of the later call.
    pub fn cols(&self) -> usize {
        self.cols as usize
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.rows as usize && j < self.cols as usize);
        i * self.cols as usize + j
    }

    /// Adds an arc, keeping the stronger of the existing and new labels.
    pub fn add_arc(&mut self, i: usize, c: Change, j: usize) {
        let cell = match c {
            Change::NonAscend => NON_ASCEND,
            Change::Descend => DESCEND,
        };
        let at = self.idx(i, j);
        if self.cells[at] < cell {
            self.cells[at] = cell;
        }
    }

    /// The label between parameters `i` and `j`, if any.
    pub fn get(&self, i: usize, j: usize) -> Option<Change> {
        match self.cells[self.idx(i, j)] {
            NON_ASCEND => Some(Change::NonAscend),
            DESCEND => Some(Change::Descend),
            _ => None,
        }
    }

    /// True when any arc (of either kind) connects `i` to `j`.
    pub fn has_arc(&self, i: usize, j: usize) -> bool {
        self.cells[self.idx(i, j)] != EMPTY
    }

    /// True when the graph has no arcs at all.
    pub fn is_empty_graph(&self) -> bool {
        self.cells.iter().all(|&c| c == EMPTY)
    }

    /// Iterates over all arcs.
    pub fn arcs(&self) -> impl Iterator<Item = Arc> + '_ {
        (0..self.rows as usize).flat_map(move |i| {
            (0..self.cols as usize).filter_map(move |j| {
                self.get(i, j).map(|change| Arc {
                    from: i,
                    change,
                    to: j,
                })
            })
        })
    }

    /// Sequential composition `self ; other` (Figure 4): arc `i ↓ k` when a
    /// path `i r j`, `j r k` exists with at least one strict step; `i ⇣ k`
    /// when a path exists but only through non-ascent.
    ///
    /// # Panics
    ///
    /// Panics when the arities don't line up (`self.cols() != other.rows()`);
    /// callers in the monitor guarantee this because a single closure's
    /// composites are chained in call order.
    ///
    /// ```
    /// use sct_core::graph::{Change, ScGraph};
    ///
    /// // {(m→m)} ; {(m→=m),(n→n)} = {(m→m)} — the §2.1 worked example.
    /// let a = ScGraph::from_arcs(2, 2, [(0, Change::Descend, 0)]);
    /// let b = ScGraph::from_arcs(2, 2, [(0, Change::NonAscend, 0), (1, Change::Descend, 1)]);
    /// assert_eq!(a.compose(&b), a);
    /// ```
    pub fn compose(&self, other: &ScGraph) -> ScGraph {
        assert_eq!(
            self.cols, other.rows,
            "composition arity mismatch: {}x{} ; {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = ScGraph::empty(self.rows as usize, other.cols as usize);
        let n = self.cols as usize;
        for i in 0..self.rows as usize {
            for k in 0..other.cols as usize {
                let mut best = EMPTY;
                for j in 0..n {
                    let a = self.cells[self.idx(i, j)];
                    let b = other.cells[other.idx(j, k)];
                    if a == EMPTY || b == EMPTY {
                        continue;
                    }
                    // Path strength: strict if either step is strict.
                    let strength = if a == DESCEND || b == DESCEND {
                        DESCEND
                    } else {
                        NON_ASCEND
                    };
                    if strength > best {
                        best = strength;
                        if best == DESCEND {
                            break;
                        }
                    }
                }
                out.cells[out.idx(i, k)] = best;
            }
        }
        out
    }

    /// True when `self ; self == self` (requires a square graph; non-square
    /// graphs are never idempotent).
    pub fn is_idempotent(&self) -> bool {
        self.rows == self.cols && self.compose(self) == *self
    }

    /// True when some parameter strictly descends to itself.
    pub fn has_self_descent(&self) -> bool {
        self.rows == self.cols
            && (0..self.rows as usize).any(|i| self.get(i, i) == Some(Change::Descend))
    }

    /// Figure 4's `desc?`: a graph is acceptable unless it is idempotent yet
    /// lacks a strict self-descent arc — such a graph witnesses a loop that
    /// could repeat forever without progress.
    ///
    /// ```
    /// use sct_core::graph::{Change, ScGraph};
    ///
    /// let good = ScGraph::from_arcs(1, 1, [(0, Change::Descend, 0)]);
    /// assert!(good.desc_ok());
    /// let bad = ScGraph::from_arcs(1, 1, [(0, Change::NonAscend, 0)]);
    /// assert!(!bad.desc_ok());
    /// ```
    pub fn desc_ok(&self) -> bool {
        !self.is_idempotent() || self.has_self_descent()
    }

    /// Renders the graph with parameter names, e.g. `{(m→m), (n→=n)}`.
    pub fn display_with(&self, from_names: &[&str], to_names: &[&str]) -> String {
        let name = |names: &[&str], i: usize| -> String {
            names
                .get(i)
                .map_or_else(|| format!("x{i}"), |s| s.to_string())
        };
        let mut parts = Vec::new();
        for arc in self.arcs() {
            let sym = match arc.change {
                Change::Descend => "→",
                Change::NonAscend => "→=",
            };
            parts.push(format!(
                "({}{}{})",
                name(from_names, arc.from),
                sym,
                name(to_names, arc.to)
            ));
        }
        format!("{{{}}}", parts.join(", "))
    }
}

impl fmt::Debug for ScGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ScGraph[{}x{}]{}",
            self.rows,
            self.cols,
            self.display_with(&[], &[])
        )
    }
}

impl fmt::Display for ScGraph {
    /// Prints with positional names `x0, x1, ...`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_with(&[], &[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::AbsIntOrder;

    fn d(i: usize, j: usize) -> (usize, Change, usize) {
        (i, Change::Descend, j)
    }

    fn e(i: usize, j: usize) -> (usize, Change, usize) {
        (i, Change::NonAscend, j)
    }

    #[test]
    fn paper_worked_composition() {
        // §2.1: {(m→m)};{(m→=m),(n→n)} = {(m→m)}.
        let g_line3 = ScGraph::from_arcs(2, 2, [d(0, 0)]);
        let g_line5 = ScGraph::from_arcs(2, 2, [e(0, 0), d(1, 1)]);
        assert_eq!(g_line3.compose(&g_line5), g_line3);
        // Other direction: {(m→=m),(n→n)};{(m→m)} = {(m→m)}.
        assert_eq!(g_line5.compose(&g_line3), g_line3);
    }

    #[test]
    fn ack_graphs_satisfy_desc() {
        let g_line3 = ScGraph::from_arcs(2, 2, [d(0, 0)]);
        let g_line5 = ScGraph::from_arcs(2, 2, [e(0, 0), d(1, 1)]);
        assert!(g_line3.desc_ok());
        assert!(g_line5.desc_ok());
        assert!(g_line3.is_idempotent());
        assert!(g_line5.is_idempotent());
    }

    #[test]
    fn buggy_ack_graph_fails_desc() {
        // §2.1's buggy Ackermann: {(m→=m),(n→=m)} is idempotent, no descent.
        let g = ScGraph::from_arcs(2, 2, [e(0, 0), e(1, 0)]);
        assert!(g.is_idempotent());
        assert!(!g.has_self_descent());
        assert!(!g.desc_ok());
    }

    #[test]
    fn strict_propagates_through_composition() {
        // i ↓ j ; j ⇣ k gives i ↓ k; i ⇣ j ; j ↓ k gives i ↓ k.
        let a = ScGraph::from_arcs(1, 1, [d(0, 0)]);
        let b = ScGraph::from_arcs(1, 1, [e(0, 0)]);
        assert_eq!(a.compose(&b).get(0, 0), Some(Change::Descend));
        assert_eq!(b.compose(&a).get(0, 0), Some(Change::Descend));
        assert_eq!(b.compose(&b).get(0, 0), Some(Change::NonAscend));
    }

    #[test]
    fn best_path_wins() {
        // Two paths from 0 to 0: one strict (via 1), one non-ascending
        // (via 0); the strict one must win.
        let a = ScGraph::from_arcs(2, 2, [e(0, 0), d(0, 1)]);
        let b = ScGraph::from_arcs(2, 2, [e(0, 0), e(1, 0)]);
        assert_eq!(a.compose(&b).get(0, 0), Some(Change::Descend));
    }

    #[test]
    fn no_path_no_arc() {
        let a = ScGraph::from_arcs(2, 2, [d(0, 1)]);
        let b = ScGraph::from_arcs(2, 2, [d(0, 1)]);
        // 0 → 1 then nothing leaves 1 in b except 0→1, so only path is 0→1→?:
        // b has arc only from 0; composing yields no arcs.
        assert!(a.compose(&b).is_empty_graph());
    }

    #[test]
    fn empty_graph_is_trivially_bad() {
        // The empty square graph is idempotent and has no self-descent:
        // it represents a call that may repeat with no evidence of progress.
        let g = ScGraph::empty(2, 2);
        assert!(g.is_idempotent());
        assert!(!g.desc_ok());
    }

    #[test]
    fn non_square_graphs_pass_desc() {
        let g = ScGraph::from_arcs(2, 3, [e(0, 0)]);
        assert!(!g.is_idempotent());
        assert!(g.desc_ok());
    }

    #[test]
    fn from_args_matches_figure_1() {
        // (ack 2 0) ↝ (ack 1 1): {(m→m),(m→n)}.
        let g = ScGraph::from_args(&AbsIntOrder, &[2i64, 0], &[1, 1]);
        assert_eq!(g.get(0, 0), Some(Change::Descend));
        assert_eq!(g.get(0, 1), Some(Change::Descend));
        assert_eq!(g.get(1, 0), None);
        assert_eq!(g.get(1, 1), None);

        // (ack 1 1) ↝ (ack 1 0): {(m→=m),(m→n),(n→=m),(n→n)}.
        let g = ScGraph::from_args(&AbsIntOrder, &[1i64, 1], &[1, 0]);
        assert_eq!(g.get(0, 0), Some(Change::NonAscend));
        assert_eq!(g.get(0, 1), Some(Change::Descend));
        assert_eq!(g.get(1, 0), Some(Change::NonAscend));
        assert_eq!(g.get(1, 1), Some(Change::Descend));
    }

    #[test]
    fn add_arc_keeps_stronger() {
        let mut g = ScGraph::empty(1, 1);
        g.add_arc(0, Change::Descend, 0);
        g.add_arc(0, Change::NonAscend, 0);
        assert_eq!(g.get(0, 0), Some(Change::Descend), "descend not downgraded");
    }

    #[test]
    fn display_names() {
        let g = ScGraph::from_arcs(2, 2, [d(0, 0), e(1, 1)]);
        assert_eq!(g.display_with(&["m", "n"], &["m", "n"]), "{(m→m), (n→=n)}");
        assert_eq!(g.to_string(), "{(x0→x0), (x1→=x1)}");
    }

    #[test]
    fn arcs_iterator_complete() {
        let g = ScGraph::from_arcs(3, 2, [d(0, 1), e(2, 0)]);
        let arcs: Vec<_> = g.arcs().collect();
        assert_eq!(arcs.len(), 2);
        assert!(arcs.contains(&Arc {
            from: 0,
            change: Change::Descend,
            to: 1
        }));
        assert!(arcs.contains(&Arc {
            from: 2,
            change: Change::NonAscend,
            to: 0
        }));
    }

    #[test]
    #[should_panic(expected = "composition arity mismatch")]
    fn mismatched_compose_panics() {
        let a = ScGraph::empty(2, 3);
        let b = ScGraph::empty(2, 2);
        let _ = a.compose(&b);
    }
}

//! Size-change graphs and their composition (Figure 4 of the paper).
//!
//! A size-change graph describes how argument sizes relate between a call
//! and a subsequent call of the same function: arc `i ↓ j` says the `j`-th
//! argument of the later call is *strictly smaller* than the `i`-th argument
//! of the earlier call; `i ⇣ j` says it *never ascends* (here: is equal,
//! since at run time we observe concrete values — Figure 4's `graph`
//! function emits `→=` exactly on equality).
//!
//! # Representation
//!
//! Graphs over a fixed pair of arities form a *finite* semiring under
//! sequential composition (Ben-Amram), and real programs overwhelmingly
//! have small arities. For arities of at most [`PACK_MAX`] (8) parameters
//! on both sides, a graph is stored **bit-packed** as two `u64` masks —
//! one bit per parameter pair for "an arc is present" and one for "the
//! arc is strict" — laid out row-major with a fixed stride of 8, so bit
//! `8·i + j` describes the pair `(i, j)`. With this encoding:
//!
//! * [`compose`](ScGraph::compose) is branch-free bit-twiddling per output
//!   column (one 8×8 bit-matrix transpose plus AND/OR per cell), with no
//!   heap allocation;
//! * `Eq` and `Hash` are word compares on two machine words, which is what
//!   makes hash-consing in [`crate::intern`] cheap;
//! * [`desc_ok`](ScGraph::desc_ok) and
//!   [`is_idempotent`](ScGraph::is_idempotent) reduce to a packed
//!   self-composition and a diagonal mask test.
//!
//! Larger arities fall back to the original dense `Box<[u8]>` matrix (one
//! byte per pair). The two representations are proven to agree by the
//! property tests in `tests/packed_props.rs`; `Eq`/`Hash` are
//! representation-independent, so a (test-only) dense graph at a small
//! arity still compares and hashes equal to its packed twin.

use crate::order::{SizeChange, WellFoundedOrder};
use std::fmt;
use std::hash::{Hash, Hasher};

/// The label on a size-change arc: the paper's `r ::= → | →=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Change {
    /// `→=`: the target argument never ascends relative to the source.
    NonAscend,
    /// `→` (strict): the target argument strictly descends.
    Descend,
}

/// One arc of a size-change graph: source parameter index, change kind,
/// target parameter index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arc {
    /// Parameter index in the earlier call.
    pub from: usize,
    /// Strict descent or non-ascent.
    pub change: Change,
    /// Parameter index in the later call.
    pub to: usize,
}

/// Cell values of the dense matrix: absence, non-ascent, or strict descent.
/// `Descend` dominates `NonAscend` dominates `None` — the "max" of the
/// composition semiring.
const EMPTY: u8 = 0;
const NON_ASCEND: u8 = 1;
const DESCEND: u8 = 2;

/// Largest arity (on either side) stored bit-packed; beyond this the dense
/// byte matrix is used.
pub const PACK_MAX: usize = 8;

/// Bit stride of a packed row (fixed, independent of `cols`).
const STRIDE: usize = 8;

/// Bits `8·i + i`: the self-arcs of a packed square graph.
const DIAG: u64 = 0x8040_2010_0804_0201;

/// Transposes a u64 viewed as an 8×8 bit matrix (Hacker's Delight 7-3).
#[inline]
fn transpose8x8(mut x: u64) -> u64 {
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

#[derive(Clone)]
enum Repr {
    /// Arities ≤ 8: `present` bit `8i+j` set when any arc `i→j` exists;
    /// `strict` bit set when that arc is a strict descent (`strict` is a
    /// subset of `present`).
    Packed { present: u64, strict: u64 },
    /// Fallback for larger arities: row-major bytes, one cell per pair.
    Dense(Box<[u8]>),
}

/// A size-change graph between a call with `rows` arguments and a later
/// call with `cols` arguments. Bit-packed for arities ≤ 8 (see the module
/// docs), dense otherwise.
///
/// # Examples
///
/// ```
/// use sct_core::graph::{Change, ScGraph};
///
/// // The graph for (ack m n) ↝ (ack (- m 1) 1): {(m → m)}.
/// let g = ScGraph::from_arcs(2, 2, [(0, Change::Descend, 0)]);
/// assert!(g.has_arc(0, 0));
/// assert_eq!(g.get(0, 0), Some(Change::Descend));
/// assert_eq!(g.get(0, 1), None);
/// ```
#[derive(Clone)]
pub struct ScGraph {
    rows: u16,
    cols: u16,
    repr: Repr,
}

impl ScGraph {
    /// The empty graph (no arcs) between arities `rows` and `cols`.
    pub fn empty(rows: usize, cols: usize) -> ScGraph {
        let repr = if rows <= PACK_MAX && cols <= PACK_MAX {
            Repr::Packed {
                present: 0,
                strict: 0,
            }
        } else {
            Repr::Dense(vec![EMPTY; rows * cols].into_boxed_slice())
        };
        ScGraph {
            rows: rows as u16,
            cols: cols as u16,
            repr,
        }
    }

    /// Builds a graph from explicit arcs `(from, change, to)`.
    ///
    /// # Panics
    ///
    /// Panics if an arc index is out of bounds.
    pub fn from_arcs(
        rows: usize,
        cols: usize,
        arcs: impl IntoIterator<Item = (usize, Change, usize)>,
    ) -> ScGraph {
        let mut g = ScGraph::empty(rows, cols);
        for (i, c, j) in arcs {
            g.add_arc(i, c, j);
        }
        g
    }

    /// Figure 4's `graph(⃗v, ⃗v′)`: compares argument lists pairwise under a
    /// well-founded order, emitting `↓` where `v′_j ≺ v_i` and `⇣` where
    /// `v′_j = v_i`. For arities ≤ 8 this allocates nothing.
    ///
    /// ```
    /// use sct_core::graph::{Change, ScGraph};
    /// use sct_core::order::AbsIntOrder;
    ///
    /// let g = ScGraph::from_args(&AbsIntOrder, &[2i64, 0], &[1, 1]);
    /// assert_eq!(g.get(0, 0), Some(Change::Descend));   // 1 ≺ 2
    /// assert_eq!(g.get(0, 1), Some(Change::Descend));   // 1 ≺ 2
    /// assert_eq!(g.get(1, 0), None);                    // 1 vs 0: ascent
    /// ```
    pub fn from_args<V, O: WellFoundedOrder<V> + ?Sized>(
        order: &O,
        old: &[V],
        new: &[V],
    ) -> ScGraph {
        let mut g = ScGraph::empty(old.len(), new.len());
        for (i, vi) in old.iter().enumerate() {
            for (j, vj) in new.iter().enumerate() {
                match order.relate(vi, vj) {
                    SizeChange::Descend => g.add_arc(i, Change::Descend, j),
                    SizeChange::Equal => g.add_arc(i, Change::NonAscend, j),
                    SizeChange::Unknown => {}
                }
            }
        }
        g
    }

    /// Arity of the earlier call.
    pub fn rows(&self) -> usize {
        self.rows as usize
    }

    /// Arity of the later call.
    pub fn cols(&self) -> usize {
        self.cols as usize
    }

    /// True when both arities fit the packed representation.
    fn packable(&self) -> bool {
        self.rows as usize <= PACK_MAX && self.cols as usize <= PACK_MAX
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.rows as usize && j < self.cols as usize);
        i * self.cols as usize + j
    }

    #[inline]
    fn bit(i: usize, j: usize) -> u64 {
        1u64 << (i * STRIDE + j)
    }

    /// The `(present, strict)` masks of this graph, computed on demand for
    /// dense-but-small graphs. Only meaningful when [`Self::packable`].
    fn packed_masks(&self) -> (u64, u64) {
        match &self.repr {
            Repr::Packed { present, strict } => (*present, *strict),
            Repr::Dense(cells) => {
                debug_assert!(self.packable());
                let (mut present, mut strict) = (0u64, 0u64);
                for i in 0..self.rows as usize {
                    for j in 0..self.cols as usize {
                        match cells[i * self.cols as usize + j] {
                            NON_ASCEND => present |= Self::bit(i, j),
                            DESCEND => {
                                present |= Self::bit(i, j);
                                strict |= Self::bit(i, j);
                            }
                            _ => {}
                        }
                    }
                }
                (present, strict)
            }
        }
    }

    /// Forces the dense representation, regardless of arity. Exists so the
    /// property tests can run both code paths on the same graph; normal
    /// construction always packs small arities.
    #[doc(hidden)]
    pub fn force_dense(&self) -> ScGraph {
        let mut cells = vec![EMPTY; self.rows as usize * self.cols as usize].into_boxed_slice();
        for i in 0..self.rows as usize {
            for j in 0..self.cols as usize {
                cells[i * self.cols as usize + j] = match self.get(i, j) {
                    Some(Change::Descend) => DESCEND,
                    Some(Change::NonAscend) => NON_ASCEND,
                    None => EMPTY,
                };
            }
        }
        ScGraph {
            rows: self.rows,
            cols: self.cols,
            repr: Repr::Dense(cells),
        }
    }

    /// True when the dense fallback representation is in use.
    #[doc(hidden)]
    pub fn is_dense_repr(&self) -> bool {
        matches!(self.repr, Repr::Dense(_))
    }

    /// Adds an arc, keeping the stronger of the existing and new labels.
    pub fn add_arc(&mut self, i: usize, c: Change, j: usize) {
        assert!(
            i < self.rows as usize && j < self.cols as usize,
            "arc ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        match &mut self.repr {
            Repr::Packed { present, strict } => {
                let b = Self::bit(i, j);
                *present |= b;
                if c == Change::Descend {
                    *strict |= b;
                }
            }
            Repr::Dense(cells) => {
                let cell = match c {
                    Change::NonAscend => NON_ASCEND,
                    Change::Descend => DESCEND,
                };
                let at = i * self.cols as usize + j;
                if cells[at] < cell {
                    cells[at] = cell;
                }
            }
        }
    }

    /// The label between parameters `i` and `j`, if any.
    pub fn get(&self, i: usize, j: usize) -> Option<Change> {
        match &self.repr {
            Repr::Packed { present, strict } => {
                assert!(i < self.rows as usize && j < self.cols as usize);
                let b = Self::bit(i, j);
                if present & b == 0 {
                    None
                } else if strict & b != 0 {
                    Some(Change::Descend)
                } else {
                    Some(Change::NonAscend)
                }
            }
            Repr::Dense(cells) => match cells[self.idx(i, j)] {
                NON_ASCEND => Some(Change::NonAscend),
                DESCEND => Some(Change::Descend),
                _ => None,
            },
        }
    }

    /// True when any arc (of either kind) connects `i` to `j`.
    pub fn has_arc(&self, i: usize, j: usize) -> bool {
        match &self.repr {
            Repr::Packed { present, .. } => {
                assert!(i < self.rows as usize && j < self.cols as usize);
                present & Self::bit(i, j) != 0
            }
            Repr::Dense(cells) => cells[self.idx(i, j)] != EMPTY,
        }
    }

    /// True when the graph has no arcs at all.
    pub fn is_empty_graph(&self) -> bool {
        match &self.repr {
            Repr::Packed { present, .. } => *present == 0,
            Repr::Dense(cells) => cells.iter().all(|&c| c == EMPTY),
        }
    }

    /// Iterates over all arcs.
    pub fn arcs(&self) -> impl Iterator<Item = Arc> + '_ {
        (0..self.rows as usize).flat_map(move |i| {
            (0..self.cols as usize).filter_map(move |j| {
                self.get(i, j).map(|change| Arc {
                    from: i,
                    change,
                    to: j,
                })
            })
        })
    }

    /// Sequential composition `self ; other` (Figure 4): arc `i ↓ k` when a
    /// path `i r j`, `j r k` exists with at least one strict step; `i ⇣ k`
    /// when a path exists but only through non-ascent.
    ///
    /// Packed graphs compose allocation-free: `other` is transposed once as
    /// an 8×8 bit matrix, after which each output cell is two byte-wide
    /// AND/OR tests.
    ///
    /// # Panics
    ///
    /// Panics when the arities don't line up (`self.cols() != other.rows()`);
    /// callers in the monitor guarantee this because a single closure's
    /// composites are chained in call order.
    ///
    /// ```
    /// use sct_core::graph::{Change, ScGraph};
    ///
    /// // {(m→m)} ; {(m→=m),(n→n)} = {(m→m)} — the §2.1 worked example.
    /// let a = ScGraph::from_arcs(2, 2, [(0, Change::Descend, 0)]);
    /// let b = ScGraph::from_arcs(2, 2, [(0, Change::NonAscend, 0), (1, Change::Descend, 1)]);
    /// assert_eq!(a.compose(&b), a);
    /// ```
    pub fn compose(&self, other: &ScGraph) -> ScGraph {
        assert_eq!(
            self.cols, other.rows,
            "composition arity mismatch: {}x{} ; {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        if let (
            Repr::Packed {
                present: ap,
                strict: a_strict,
            },
            Repr::Packed {
                present: bp,
                strict: bs,
            },
        ) = (&self.repr, &other.repr)
        {
            return self.compose_packed(*ap, *a_strict, *bp, *bs, other.cols);
        }
        self.compose_dense(other)
    }

    /// Packed composition. Output arities are `self.rows × other.cols`,
    /// both ≤ 8 because both inputs are packed.
    fn compose_packed(&self, ap: u64, a_strict: u64, bp: u64, bs: u64, out_cols: u16) -> ScGraph {
        // Columns of `other` become rows of its transpose: byte `k` of the
        // transposed mask is the set of middle indices `j` with `j → k`.
        let tp = transpose8x8(bp);
        let ts = transpose8x8(bs);
        let (mut present, mut strict) = (0u64, 0u64);
        for i in 0..self.rows as usize {
            let row_p = (ap >> (STRIDE * i)) & 0xFF;
            if row_p == 0 {
                continue;
            }
            let row_s = (a_strict >> (STRIDE * i)) & 0xFF;
            for k in 0..out_cols as usize {
                let col_p = (tp >> (STRIDE * k)) & 0xFF;
                let col_s = (ts >> (STRIDE * k)) & 0xFF;
                // A path i→j→k exists iff the row/column bitsets intersect;
                // it is strict iff some intersecting j has a strict step on
                // either side. `strict ⊆ present` on both inputs keeps the
                // strict test implying the present test.
                let p = u64::from(row_p & col_p != 0);
                let s = u64::from(((row_s & col_p) | (row_p & col_s)) != 0);
                present |= p << (STRIDE * i + k);
                strict |= s << (STRIDE * i + k);
            }
        }
        ScGraph {
            rows: self.rows,
            cols: out_cols,
            repr: Repr::Packed { present, strict },
        }
    }

    /// Dense (or mixed-representation) composition: the original
    /// three-valued matrix product. The output keeps the dense
    /// representation so the property tests exercise this path end-to-end;
    /// `Eq`/`Hash` do not care.
    fn compose_dense(&self, other: &ScGraph) -> ScGraph {
        let (rows, mid, cols) = (self.rows as usize, self.cols as usize, other.cols as usize);
        let mut cells = vec![EMPTY; rows * cols].into_boxed_slice();
        let cell = |g: &ScGraph, i: usize, j: usize| -> u8 {
            match g.get(i, j) {
                Some(Change::Descend) => DESCEND,
                Some(Change::NonAscend) => NON_ASCEND,
                None => EMPTY,
            }
        };
        for i in 0..rows {
            for k in 0..cols {
                let mut best = EMPTY;
                for j in 0..mid {
                    let a = cell(self, i, j);
                    let b = cell(other, j, k);
                    if a == EMPTY || b == EMPTY {
                        continue;
                    }
                    // Path strength: strict if either step is strict.
                    let strength = if a == DESCEND || b == DESCEND {
                        DESCEND
                    } else {
                        NON_ASCEND
                    };
                    if strength > best {
                        best = strength;
                        if best == DESCEND {
                            break;
                        }
                    }
                }
                cells[i * cols + k] = best;
            }
        }
        ScGraph {
            rows: self.rows,
            cols: other.cols,
            repr: Repr::Dense(cells),
        }
    }

    /// True when `self ; self == self` (requires a square graph; non-square
    /// graphs are never idempotent).
    pub fn is_idempotent(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        if let Repr::Packed { present, strict } = &self.repr {
            let sq = self.compose_packed(*present, *strict, *present, *strict, self.cols);
            if let Repr::Packed {
                present: sp,
                strict: ss,
            } = sq.repr
            {
                return sp == *present && ss == *strict;
            }
            unreachable!("packed composition yields a packed graph");
        }
        self.compose(self) == *self
    }

    /// True when some parameter strictly descends to itself.
    pub fn has_self_descent(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        match &self.repr {
            Repr::Packed { strict, .. } => strict & DIAG != 0,
            Repr::Dense(_) => {
                (0..self.rows as usize).any(|i| self.get(i, i) == Some(Change::Descend))
            }
        }
    }

    /// Figure 4's `desc?`: a graph is acceptable unless it is idempotent yet
    /// lacks a strict self-descent arc — such a graph witnesses a loop that
    /// could repeat forever without progress.
    ///
    /// ```
    /// use sct_core::graph::{Change, ScGraph};
    ///
    /// let good = ScGraph::from_arcs(1, 1, [(0, Change::Descend, 0)]);
    /// assert!(good.desc_ok());
    /// let bad = ScGraph::from_arcs(1, 1, [(0, Change::NonAscend, 0)]);
    /// assert!(!bad.desc_ok());
    /// ```
    pub fn desc_ok(&self) -> bool {
        !self.is_idempotent() || self.has_self_descent()
    }

    /// Renders the graph with parameter names, e.g. `{(m→m), (n→=n)}`.
    pub fn display_with(&self, from_names: &[&str], to_names: &[&str]) -> String {
        let name = |names: &[&str], i: usize| -> String {
            names
                .get(i)
                .map_or_else(|| format!("x{i}"), |s| s.to_string())
        };
        let mut parts = Vec::new();
        for arc in self.arcs() {
            let sym = match arc.change {
                Change::Descend => "→",
                Change::NonAscend => "→=",
            };
            parts.push(format!(
                "({}{}{})",
                name(from_names, arc.from),
                sym,
                name(to_names, arc.to)
            ));
        }
        format!("{{{}}}", parts.join(", "))
    }
}

/// Equality is on the *graph*, not the representation: a (test-forced)
/// dense graph at a small arity equals its packed twin. For two packed
/// graphs — the only case the monitor hot path sees — this is two word
/// compares.
impl PartialEq for ScGraph {
    fn eq(&self, other: &ScGraph) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        match (&self.repr, &other.repr) {
            (
                Repr::Packed {
                    present: p1,
                    strict: s1,
                },
                Repr::Packed {
                    present: p2,
                    strict: s2,
                },
            ) => p1 == p2 && s1 == s2,
            (Repr::Dense(c1), Repr::Dense(c2)) if !self.packable() => c1 == c2,
            _ => self.packed_masks() == other.packed_masks(),
        }
    }
}

impl Eq for ScGraph {}

/// Hashes the canonical form: dimensions plus the two packed words when
/// the arity fits, the byte matrix otherwise — so `Hash` is consistent
/// with the representation-independent `Eq`.
impl Hash for ScGraph {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rows.hash(state);
        self.cols.hash(state);
        if self.packable() {
            let (present, strict) = self.packed_masks();
            present.hash(state);
            strict.hash(state);
        } else if let Repr::Dense(cells) = &self.repr {
            cells.hash(state);
        }
    }
}

impl fmt::Debug for ScGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ScGraph[{}x{}]{}",
            self.rows,
            self.cols,
            self.display_with(&[], &[])
        )
    }
}

impl fmt::Display for ScGraph {
    /// Prints with positional names `x0, x1, ...`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_with(&[], &[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::AbsIntOrder;

    fn d(i: usize, j: usize) -> (usize, Change, usize) {
        (i, Change::Descend, j)
    }

    fn e(i: usize, j: usize) -> (usize, Change, usize) {
        (i, Change::NonAscend, j)
    }

    #[test]
    fn paper_worked_composition() {
        // §2.1: {(m→m)};{(m→=m),(n→n)} = {(m→m)}.
        let g_line3 = ScGraph::from_arcs(2, 2, [d(0, 0)]);
        let g_line5 = ScGraph::from_arcs(2, 2, [e(0, 0), d(1, 1)]);
        assert_eq!(g_line3.compose(&g_line5), g_line3);
        // Other direction: {(m→=m),(n→n)};{(m→m)} = {(m→m)}.
        assert_eq!(g_line5.compose(&g_line3), g_line3);
    }

    #[test]
    fn ack_graphs_satisfy_desc() {
        let g_line3 = ScGraph::from_arcs(2, 2, [d(0, 0)]);
        let g_line5 = ScGraph::from_arcs(2, 2, [e(0, 0), d(1, 1)]);
        assert!(g_line3.desc_ok());
        assert!(g_line5.desc_ok());
        assert!(g_line3.is_idempotent());
        assert!(g_line5.is_idempotent());
    }

    #[test]
    fn buggy_ack_graph_fails_desc() {
        // §2.1's buggy Ackermann: {(m→=m),(n→=m)} is idempotent, no descent.
        let g = ScGraph::from_arcs(2, 2, [e(0, 0), e(1, 0)]);
        assert!(g.is_idempotent());
        assert!(!g.has_self_descent());
        assert!(!g.desc_ok());
    }

    #[test]
    fn strict_propagates_through_composition() {
        // i ↓ j ; j ⇣ k gives i ↓ k; i ⇣ j ; j ↓ k gives i ↓ k.
        let a = ScGraph::from_arcs(1, 1, [d(0, 0)]);
        let b = ScGraph::from_arcs(1, 1, [e(0, 0)]);
        assert_eq!(a.compose(&b).get(0, 0), Some(Change::Descend));
        assert_eq!(b.compose(&a).get(0, 0), Some(Change::Descend));
        assert_eq!(b.compose(&b).get(0, 0), Some(Change::NonAscend));
    }

    #[test]
    fn best_path_wins() {
        // Two paths from 0 to 0: one strict (via 1), one non-ascending
        // (via 0); the strict one must win.
        let a = ScGraph::from_arcs(2, 2, [e(0, 0), d(0, 1)]);
        let b = ScGraph::from_arcs(2, 2, [e(0, 0), e(1, 0)]);
        assert_eq!(a.compose(&b).get(0, 0), Some(Change::Descend));
    }

    #[test]
    fn no_path_no_arc() {
        let a = ScGraph::from_arcs(2, 2, [d(0, 1)]);
        let b = ScGraph::from_arcs(2, 2, [d(0, 1)]);
        // 0 → 1 then nothing leaves 1 in b except 0→1, so only path is 0→1→?:
        // b has arc only from 0; composing yields no arcs.
        assert!(a.compose(&b).is_empty_graph());
    }

    #[test]
    fn empty_graph_is_trivially_bad() {
        // The empty square graph is idempotent and has no self-descent:
        // it represents a call that may repeat with no evidence of progress.
        let g = ScGraph::empty(2, 2);
        assert!(g.is_idempotent());
        assert!(!g.desc_ok());
    }

    #[test]
    fn non_square_graphs_pass_desc() {
        let g = ScGraph::from_arcs(2, 3, [e(0, 0)]);
        assert!(!g.is_idempotent());
        assert!(g.desc_ok());
    }

    #[test]
    fn from_args_matches_figure_1() {
        // (ack 2 0) ↝ (ack 1 1): {(m→m),(m→n)}.
        let g = ScGraph::from_args(&AbsIntOrder, &[2i64, 0], &[1, 1]);
        assert_eq!(g.get(0, 0), Some(Change::Descend));
        assert_eq!(g.get(0, 1), Some(Change::Descend));
        assert_eq!(g.get(1, 0), None);
        assert_eq!(g.get(1, 1), None);

        // (ack 1 1) ↝ (ack 1 0): {(m→=m),(m→n),(n→=m),(n→n)}.
        let g = ScGraph::from_args(&AbsIntOrder, &[1i64, 1], &[1, 0]);
        assert_eq!(g.get(0, 0), Some(Change::NonAscend));
        assert_eq!(g.get(0, 1), Some(Change::Descend));
        assert_eq!(g.get(1, 0), Some(Change::NonAscend));
        assert_eq!(g.get(1, 1), Some(Change::Descend));
    }

    #[test]
    fn add_arc_keeps_stronger() {
        let mut g = ScGraph::empty(1, 1);
        g.add_arc(0, Change::Descend, 0);
        g.add_arc(0, Change::NonAscend, 0);
        assert_eq!(g.get(0, 0), Some(Change::Descend), "descend not downgraded");
    }

    #[test]
    fn display_names() {
        let g = ScGraph::from_arcs(2, 2, [d(0, 0), e(1, 1)]);
        assert_eq!(g.display_with(&["m", "n"], &["m", "n"]), "{(m→m), (n→=n)}");
        assert_eq!(g.to_string(), "{(x0→x0), (x1→=x1)}");
    }

    #[test]
    fn arcs_iterator_complete() {
        let g = ScGraph::from_arcs(3, 2, [d(0, 1), e(2, 0)]);
        let arcs: Vec<_> = g.arcs().collect();
        assert_eq!(arcs.len(), 2);
        assert!(arcs.contains(&Arc {
            from: 0,
            change: Change::Descend,
            to: 1
        }));
        assert!(arcs.contains(&Arc {
            from: 2,
            change: Change::NonAscend,
            to: 0
        }));
    }

    #[test]
    #[should_panic(expected = "composition arity mismatch")]
    fn mismatched_compose_panics() {
        let a = ScGraph::empty(2, 3);
        let b = ScGraph::empty(2, 2);
        let _ = a.compose(&b);
    }

    #[test]
    fn small_arities_pack_large_fall_back() {
        assert!(!ScGraph::empty(8, 8).is_dense_repr());
        assert!(ScGraph::empty(9, 2).is_dense_repr());
        assert!(ScGraph::empty(2, 9).is_dense_repr());
    }

    #[test]
    fn packed_and_forced_dense_are_equal_and_hash_alike() {
        use std::collections::hash_map::DefaultHasher;
        let g = ScGraph::from_arcs(3, 3, [d(0, 1), e(1, 2), d(2, 0), e(0, 0)]);
        let dense = g.force_dense();
        assert!(dense.is_dense_repr() && !g.is_dense_repr());
        assert_eq!(g, dense);
        assert_eq!(dense, g);
        let hash = |x: &ScGraph| {
            let mut h = DefaultHasher::new();
            x.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&g), hash(&dense));
    }

    #[test]
    fn dense_fallback_composes_like_packed() {
        let a = ScGraph::from_arcs(2, 2, [d(0, 1), e(1, 0), e(0, 0)]);
        let b = ScGraph::from_arcs(2, 2, [e(0, 1), d(1, 1)]);
        let packed = a.compose(&b);
        let dense = a.force_dense().compose(&b.force_dense());
        assert!(dense.is_dense_repr());
        assert_eq!(packed, dense);
    }

    #[test]
    fn large_arity_graphs_work() {
        // 10 parameters: exercises the dense fallback end to end.
        let arcs: Vec<_> = (0..10).map(|i| d(i, (i + 1) % 10)).collect();
        let g = ScGraph::from_arcs(10, 10, arcs);
        assert!(g.is_dense_repr());
        assert!(!g.is_idempotent());
        assert!(g.desc_ok());
        let sq = g.compose(&g);
        assert_eq!(sq.get(0, 2), Some(Change::Descend));
        assert_eq!(sq.get(0, 1), None);
    }

    #[test]
    fn transpose_is_involutive() {
        let x = 0xDEAD_BEEF_CAFE_F00Du64;
        assert_eq!(transpose8x8(transpose8x8(x)), x);
        // Spot-check one bit: (i=1, j=3) maps to (i=3, j=1).
        let b = 1u64 << (8 + 3);
        assert_eq!(transpose8x8(b), 1u64 << (24 + 1));
    }
}

//! Well-founded partial orders on values (Figure 5).
//!
//! The `graph` function of Figure 4 needs to know, for each pair of an old
//! and a new argument, whether the new one *strictly descends* (`v′ ≺ v`) or
//! *stays equal* (`v′ = v`) under some well-founded order. §3.3 fixes a
//! default order — integers compare by absolute value, a field of a data
//! structure is smaller than the structure — but explicitly allows the user
//! to "replace the default order with an appropriate one", which several
//! Table-1 benchmarks (`lh-range`, `acl2-fig-2`) require. This module
//! provides that extension point as the [`WellFoundedOrder`] trait.

/// The observed size relation between an old argument and a new argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeChange {
    /// The new value is strictly smaller: emits a `→` arc.
    Descend,
    /// The values are equal: emits a `→=` arc.
    Equal,
    /// No relation established: no arc. Always sound (§2.1: "it is always
    /// safe to omit graph arcs").
    Unknown,
}

/// A well-founded partial order on values of type `V`.
///
/// Implementations must guarantee well-foundedness: there is no infinite
/// chain `v₀ ≻ v₁ ≻ v₂ ≻ ⋯` where `relate(vᵢ, vᵢ₊₁) == Descend`. The
/// soundness of termination monitoring (Theorem 3.1) depends on it.
///
/// # Examples
///
/// A custom order proving `lh-range`-style *ascending* loops terminate by
/// measuring distance to a bound:
///
/// ```
/// use sct_core::order::{SizeChange, WellFoundedOrder};
///
/// /// Orders (lo, hi) pairs by the gap hi - lo, clamped at zero.
/// struct GapOrder;
///
/// impl WellFoundedOrder<(i64, i64)> for GapOrder {
///     fn relate(&self, old: &(i64, i64), new: &(i64, i64)) -> SizeChange {
///         let gap = |p: &(i64, i64)| (p.1 - p.0).max(0);
///         match gap(new).cmp(&gap(old)) {
///             std::cmp::Ordering::Less => SizeChange::Descend,
///             std::cmp::Ordering::Equal => SizeChange::Equal,
///             std::cmp::Ordering::Greater => SizeChange::Unknown,
///         }
///     }
/// }
///
/// assert_eq!(GapOrder.relate(&(0, 10), &(1, 10)), SizeChange::Descend);
/// ```
pub trait WellFoundedOrder<V: ?Sized> {
    /// Relates an argument of the previous call (`old`) to an argument of
    /// the new call (`new`).
    fn relate(&self, old: &V, new: &V) -> SizeChange;
}

/// Figure 5's order restricted to machine integers: `n₁ ≺ n₂ iff |n₁| < |n₂|`.
///
/// The full default order of the interpreter (which also descends into
/// pairs) lives in `sct-interp`, where the value type is defined; this one
/// is used by the core's own tests, docs, and the LJB harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbsIntOrder;

impl WellFoundedOrder<i64> for AbsIntOrder {
    fn relate(&self, old: &i64, new: &i64) -> SizeChange {
        if new == old {
            SizeChange::Equal
        } else if new.unsigned_abs() < old.unsigned_abs() {
            SizeChange::Descend
        } else {
            SizeChange::Unknown
        }
    }
}

/// Wraps a closure as an order, for quick experimentation and tests.
///
/// # Examples
///
/// ```
/// use sct_core::order::{FnOrder, SizeChange, WellFoundedOrder};
///
/// let by_len = FnOrder::new(|old: &Vec<u8>, new: &Vec<u8>| {
///     match new.len().cmp(&old.len()) {
///         std::cmp::Ordering::Less => SizeChange::Descend,
///         std::cmp::Ordering::Equal => SizeChange::Equal,
///         std::cmp::Ordering::Greater => SizeChange::Unknown,
///     }
/// });
/// assert_eq!(by_len.relate(&vec![1, 2], &vec![1]), SizeChange::Descend);
/// ```
pub struct FnOrder<F> {
    f: F,
}

impl<F> FnOrder<F> {
    /// Wraps `f` as a [`WellFoundedOrder`].
    pub fn new(f: F) -> FnOrder<F> {
        FnOrder { f }
    }
}

impl<V, F: Fn(&V, &V) -> SizeChange> WellFoundedOrder<V> for FnOrder<F> {
    fn relate(&self, old: &V, new: &V) -> SizeChange {
        (self.f)(old, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_int_order() {
        assert_eq!(AbsIntOrder.relate(&5, &4), SizeChange::Descend);
        assert_eq!(AbsIntOrder.relate(&5, &5), SizeChange::Equal);
        assert_eq!(AbsIntOrder.relate(&5, &6), SizeChange::Unknown);
        // Absolute values: -5 and 5 are the same size but not equal.
        assert_eq!(AbsIntOrder.relate(&-5, &5), SizeChange::Unknown);
        assert_eq!(AbsIntOrder.relate(&-5, &4), SizeChange::Descend);
        assert_eq!(AbsIntOrder.relate(&-5, &-4), SizeChange::Descend);
        assert_eq!(AbsIntOrder.relate(&4, &-5), SizeChange::Unknown);
        assert_eq!(AbsIntOrder.relate(&0, &0), SizeChange::Equal);
        assert_eq!(
            AbsIntOrder.relate(&i64::MIN, &i64::MAX),
            SizeChange::Descend
        );
    }

    #[test]
    fn fn_order_wraps() {
        let ord = FnOrder::new(|old: &i64, new: &i64| AbsIntOrder.relate(old, new));
        assert_eq!(ord.relate(&3, &2), SizeChange::Descend);
    }
}

//! The hybrid enforcement plan: which functions the monitor may skip.
//!
//! The paper's central claim is that *one* size-change principle supports
//! *two* enforcement regimes: §3's dynamic monitor and §4's static
//! verifier. An [`EnforcementPlan`] is the artifact that connects them —
//! the output of a static pre-pass over a program's `define`s, recording
//! per function which regime is responsible for it:
//!
//! * [`Decision::Static`] — the verifier discharged termination ahead of
//!   time; the monitor takes the unmonitored fast path for this λ (no
//!   graph construction, no `CallSeq` push). When the proof assumed
//!   non-trivial argument domains, the decision carries a [`PlanDomain`]
//!   guard per parameter: a call takes the fast path only when every
//!   argument is in its domain, and falls back to the monitor otherwise.
//! * [`Decision::Monitor`] — the residual: the verifier ran out of fuel,
//!   met an unsupported feature, or could not prove the obligation; the
//!   existing packed-graph monitor keeps guarding every call.
//! * [`Decision::Refuted`] — exhaustive symbolic exploration found a
//!   feasible call sequence whose composite graph is idempotent with no
//!   self-descent: the very witness the dynamic monitor would blame the
//!   moment that recursion executes, reported immediately — with the same
//!   blame label — before the program runs. Note that this is
//!   deliberately *stricter* than the monitored semantics for a refuted
//!   function the program never applies: the monitor would let such a
//!   program run to its value, while the hybrid regime rejects it up
//!   front, the way a compiler rejects dead code that cannot type-check.
//!
//! The three decisions form the lattice `Static ⊑ Monitor ⊒ Refuted`
//! ordered by how much run-time work they imply: `Static` means zero
//! per-call work (or one cheap domain test), `Monitor` means the full
//! packed-graph update, and `Refuted` means the program is rejected
//! up front. Any doubt anywhere degrades toward `Monitor` — the plan is
//! an *optimization*, never a weakening, of Theorem 3.1's guarantee.
//!
//! This module also provides [`LjbCache`], a memo for the
//! Lee–Jones–Ben-Amram closure check keyed by the *interned graph set*
//! (sorted [`GraphId`]s): Ben-Amram's closure analysis (LMCS 2010) shows
//! the closure and its ranking structure depend only on the graph set, so
//! re-verifying a function whose discovered graphs are unchanged — across
//! pre-pass runs, benchmark repetitions, or REPL reloads — costs one hash
//! lookup instead of a closure computation.

use crate::intern::{FxBuildHasher, GraphId, Interner};
use crate::ljb::{closure_check, ClosureResult};
use crate::{ScGraph, ScViolation};
use std::collections::HashMap;
use std::fmt;

/// Argument-domain guard for a statically discharged function, mirroring
/// the symbolic domains the §4 verifier accepts. A proof obtained under a
/// non-trivial domain is sound only for in-domain calls, so the machine
/// re-checks membership — a constant-time test per argument, orders of
/// magnitude cheaper than a graph construction — before taking the fast
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanDomain {
    /// A non-negative integer (`n ≥ 0`).
    Nat,
    /// A strictly positive integer (`n ≥ 1`).
    Pos,
    /// Any integer.
    Int,
    /// A (shallowly checked) list: `'()` or a pair. Pair values are
    /// immutable finite trees in λSCT, so structural descent is
    /// well-founded on *every* value and the shallow check suffices for
    /// the fast path.
    List,
    /// Any value — no run-time check needed.
    Any,
}

impl PlanDomain {
    /// The label used in the `--plan` JSON dump and in [`fmt::Display`].
    pub fn label(self) -> &'static str {
        match self {
            PlanDomain::Nat => "nat",
            PlanDomain::Pos => "pos",
            PlanDomain::Int => "int",
            PlanDomain::List => "list",
            PlanDomain::Any => "any",
        }
    }
}

impl fmt::Display for PlanDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The plan's verdict for one function (see the module docs for the
/// decision lattice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Termination statically discharged: skip monitoring for calls whose
    /// arguments satisfy `guard` (one domain per parameter; an empty or
    /// all-[`PlanDomain::Any`] guard means the fast path is unconditional).
    Static {
        /// Per-parameter domain assumptions of the proof.
        guard: Vec<PlanDomain>,
    },
    /// Could not be discharged; the dynamic monitor keeps guarding it.
    Monitor {
        /// Why the verifier passed (budget, unsupported feature, …).
        reason: String,
    },
    /// Statically refuted: exhaustive exploration produced this witness,
    /// which the dynamic monitor would also blame at run time.
    Refuted {
        /// The idempotent, non-descending composite graph.
        witness: ScGraph,
        /// Name of the function whose graph set is violated — what the
        /// monitor's `errorSC` would name in `in calls to …`. Usually the
        /// planned function itself, but a statically caught violation in a
        /// helper it calls names the helper.
        culprit: String,
    },
}

impl Decision {
    /// Short tag used in the JSON dump: `"static"`, `"monitor"`, or
    /// `"refuted"`.
    pub fn tag(&self) -> &'static str {
        match self {
            Decision::Static { .. } => "static",
            Decision::Monitor { .. } => "monitor",
            Decision::Refuted { .. } => "refuted",
        }
    }
}

/// One function's entry in the [`EnforcementPlan`].
#[derive(Debug, Clone)]
pub struct FnDecision {
    /// The `define`d name the decision is about.
    pub name: String,
    /// λ id of the function itself.
    pub lambda: u32,
    /// Additional λ ids (helper lambdas nested inside the definition)
    /// covered by the same proof; populated only for unconditional
    /// discharges, since a guarded proof covers nested λs only during
    /// in-domain invocations of the entry.
    pub covers: Vec<u32>,
    /// The verdict.
    pub decision: Decision,
    /// Blame label from a `terminating/c` wrapper around the definition,
    /// when there is one — [`Decision::Refuted`] reports it, matching the
    /// label the dynamic monitor would blame.
    pub blame: Option<String>,
    /// Human-readable summary of the verifier outcome (graph counts,
    /// failure reason, …).
    pub detail: String,
    /// Wall-clock microseconds the pre-pass spent on this function.
    pub micros: u128,
}

impl FnDecision {
    /// Structural equality: every field except `micros` (timing is the one
    /// field that legitimately varies between a fresh computation and a
    /// cache replay of the same inputs).
    pub fn structurally_eq(&self, other: &FnDecision) -> bool {
        self.name == other.name
            && self.lambda == other.lambda
            && self.covers == other.covers
            && self.decision == other.decision
            && self.blame == other.blame
            && self.detail == other.detail
    }
}

/// The output of the hybrid pre-pass: per-function enforcement decisions
/// for a whole program. Built by `sct-symbolic`'s `plan_program`, consumed
/// by the interpreter's `Machine` (fast path) and the `sct hybrid` CLI
/// (`--plan` dump, eager refutation reports).
#[derive(Debug, Clone, Default)]
pub struct EnforcementPlan {
    /// Decisions in program (`define`) order.
    pub decisions: Vec<FnDecision>,
}

impl EnforcementPlan {
    /// An empty plan (everything stays monitored).
    pub fn new() -> EnforcementPlan {
        EnforcementPlan::default()
    }

    /// All λ ids the monitor may skip, each with the guard the fast path
    /// must re-check (`None` means unconditional).
    pub fn static_lambdas(&self) -> impl Iterator<Item = (u32, Option<&[PlanDomain]>)> + '_ {
        self.decisions.iter().flat_map(|d| {
            let mut out: Vec<(u32, Option<&[PlanDomain]>)> = Vec::new();
            if let Decision::Static { guard } = &d.decision {
                let trivial = guard.iter().all(|g| *g == PlanDomain::Any);
                out.push((d.lambda, if trivial { None } else { Some(&guard[..]) }));
                if trivial {
                    out.extend(d.covers.iter().map(|&id| (id, None)));
                }
            }
            out
        })
    }

    /// The statically refuted entries, to be reported before running.
    pub fn refuted(&self) -> impl Iterator<Item = &FnDecision> + '_ {
        self.decisions
            .iter()
            .filter(|d| matches!(d.decision, Decision::Refuted { .. }))
    }

    /// Structural equality of whole plans: same decisions in the same
    /// order, ignoring only per-entry timing (see
    /// [`FnDecision::structurally_eq`]).
    pub fn structurally_eq(&self, other: &EnforcementPlan) -> bool {
        self.decisions.len() == other.decisions.len()
            && self
                .decisions
                .iter()
                .zip(&other.decisions)
                .all(|(a, b)| a.structurally_eq(b))
    }

    /// Stable structural fingerprint of the plan's decisions — exactly
    /// the fields [`EnforcementPlan::structurally_eq`] compares (timing
    /// excluded), hashed with the versioned [`crate::stable`] mix. Two
    /// plans agree on this fingerprint iff (modulo hashing) they would
    /// bake identical call-site decisions, so it serves as the plan
    /// identity token for compiled-IR caching and for the machine's
    /// image/config agreement check.
    pub fn decisions_fingerprint(&self) -> u64 {
        let mut h = crate::stable::StableHasher::new();
        h.write_u64(self.decisions.len() as u64);
        for d in &self.decisions {
            h.write_str(&d.name);
            h.write_u32(d.lambda);
            h.write_u64(d.covers.len() as u64);
            for c in &d.covers {
                h.write_u32(*c);
            }
            match &d.blame {
                Some(b) => {
                    h.write_u8(1);
                    h.write_str(b);
                }
                None => h.write_u8(0),
            }
            h.write_str(&d.detail);
            match &d.decision {
                Decision::Static { guard } => {
                    h.write_u8(0);
                    h.write_u64(guard.len() as u64);
                    for g in guard {
                        h.write_str(g.label());
                    }
                }
                Decision::Monitor { reason } => {
                    h.write_u8(1);
                    h.write_str(reason);
                }
                Decision::Refuted { witness, culprit } => {
                    h.write_u8(2);
                    h.write_str(&format!("{witness:?}"));
                    h.write_str(culprit);
                }
            }
        }
        h.finish128().hi
    }

    /// Count of entries with the given decision tag.
    pub fn count(&self, tag: &str) -> usize {
        self.decisions
            .iter()
            .filter(|d| d.decision.tag() == tag)
            .count()
    }

    /// Serializes the plan as the `sct-plan/1` JSON document dumped by
    /// `sct hybrid --plan`:
    ///
    /// ```json
    /// {
    ///   "schema": "sct-plan/1",
    ///   "functions": [
    ///     { "name": "sum", "lambda": 0, "decision": "static",
    ///       "guard": ["nat", "nat"], "covers": [], "blame": null,
    ///       "detail": "verified (sum: 1 graphs)", "micros": 312 }
    ///   ]
    /// }
    /// ```
    ///
    /// `guard` is present only for `"static"` decisions and `culprit` only
    /// for `"refuted"` ones; `blame` is the `terminating/c` label the
    /// refutation (or the run-time monitor) blames, or `null`. Hand-rolled
    /// because the workspace builds offline (no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.decisions.len() * 128);
        out.push_str("{\n  \"schema\": \"sct-plan/1\",\n  \"functions\": [\n");
        for (i, d) in self.decisions.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"name\": {}, \"lambda\": {}, \"decision\": \"{}\"",
                json_str(&d.name),
                d.lambda,
                d.decision.tag()
            ));
            match &d.decision {
                Decision::Static { guard } => {
                    let doms: Vec<String> = guard.iter().map(|g| format!("\"{g}\"")).collect();
                    out.push_str(&format!(", \"guard\": [{}]", doms.join(", ")));
                }
                Decision::Refuted { culprit, .. } => {
                    out.push_str(&format!(", \"culprit\": {}", json_str(culprit)));
                }
                Decision::Monitor { .. } => {}
            }
            let covers: Vec<String> = d.covers.iter().map(u32::to_string).collect();
            out.push_str(&format!(", \"covers\": [{}]", covers.join(", ")));
            match &d.blame {
                Some(b) => out.push_str(&format!(", \"blame\": {}", json_str(b))),
                None => out.push_str(", \"blame\": null"),
            }
            out.push_str(&format!(
                ", \"detail\": {}, \"micros\": {} }}{}\n",
                json_str(&d.detail),
                d.micros,
                if i + 1 < self.decisions.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl fmt::Display for EnforcementPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plan: {} static, {} monitored, {} refuted",
            self.count("static"),
            self.count("monitor"),
            self.count("refuted")
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// the hand-rolled dumps.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Outcome of a (possibly cached) closure check, the cacheable subset of
/// [`ClosureResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckedClosure {
    /// SCT holds; the closure had this many distinct graphs.
    Ok {
        /// Size of the computed closure.
        closure_size: usize,
    },
    /// A witness composite is idempotent without self-descent.
    Violation(ScViolation),
    /// The closure exceeded the cap — "could not verify", never "verified".
    Overflow,
}

impl CheckedClosure {
    /// True for [`CheckedClosure::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, CheckedClosure::Ok { .. })
    }
}

/// A memoized Lee–Jones–Ben-Amram closure check.
///
/// Keys are the *interned graph set*: each [`ScGraph`] is hash-consed into
/// the cache's [`Interner`] and the sorted, deduplicated [`GraphId`] vector
/// identifies the set. Since the closure result depends only on the set,
/// re-verifying a function whose discovered graphs are unchanged is one
/// hash lookup — which is what makes the hybrid pre-pass free to re-run
/// (per benchmark repetition, per `sct hybrid` invocation on an unchanged
/// file, or across the many `define`s of a program that share helper
/// graphs).
///
/// # Examples
///
/// ```
/// use sct_core::graph::{Change, ScGraph};
/// use sct_core::plan::LjbCache;
///
/// let mut cache = LjbCache::new();
/// let g = ScGraph::from_arcs(1, 1, [(0, Change::Descend, 0)]);
/// assert!(cache.check(&[g.clone()], 10_000).is_ok());
/// assert_eq!(cache.hits(), 0);
/// assert!(cache.check(&[g], 10_000).is_ok()); // memoized
/// assert_eq!(cache.hits(), 1);
/// ```
#[derive(Debug, Default)]
pub struct LjbCache {
    interner: Interner,
    memo: HashMap<Vec<GraphId>, CheckedClosure, FxBuildHasher>,
    hits: u64,
    misses: u64,
}

impl LjbCache {
    /// An empty cache with a private graph pool.
    pub fn new() -> LjbCache {
        LjbCache::default()
    }

    /// A cache interning into an existing pool (so ids — and warm graphs —
    /// are shared with, e.g., the monitor's pool).
    pub fn with_interner(interner: Interner) -> LjbCache {
        LjbCache {
            interner,
            ..LjbCache::default()
        }
    }

    /// Memoized [`closure_check`]: interns `graphs`, sorts and dedups the
    /// ids, and reuses a previous verdict for the same set when one exists.
    ///
    /// The cap participates in correctness only for [`CheckedClosure::Overflow`]
    /// results, which are cached too; callers should use one cap per cache.
    pub fn check(&mut self, graphs: &[ScGraph], cap: usize) -> CheckedClosure {
        let mut ids: Vec<GraphId> = graphs
            .iter()
            .map(|g| self.interner.intern(g.clone()))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        if let Some(cached) = self.memo.get(&ids) {
            self.hits += 1;
            return cached.clone();
        }
        self.misses += 1;
        let result = match closure_check(graphs, cap) {
            ClosureResult::Ok { closure_size } => CheckedClosure::Ok { closure_size },
            ClosureResult::Violation(v) => CheckedClosure::Violation(v),
            ClosureResult::Overflow => CheckedClosure::Overflow,
        };
        self.memo.insert(ids, result.clone());
        result
    }

    /// Number of lookups answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that had to run the closure.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The pool the cache interns into.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Change;

    fn d(i: usize, j: usize) -> (usize, Change, usize) {
        (i, Change::Descend, j)
    }

    fn e(i: usize, j: usize) -> (usize, Change, usize) {
        (i, Change::NonAscend, j)
    }

    fn static_entry(name: &str, lambda: u32, guard: Vec<PlanDomain>) -> FnDecision {
        FnDecision {
            name: name.into(),
            lambda,
            covers: Vec::new(),
            decision: Decision::Static { guard },
            blame: None,
            detail: "verified".into(),
            micros: 1,
        }
    }

    #[test]
    fn static_lambdas_reports_guards() {
        let mut plan = EnforcementPlan::new();
        plan.decisions
            .push(static_entry("f", 0, vec![PlanDomain::Any]));
        plan.decisions
            .push(static_entry("g", 1, vec![PlanDomain::Nat, PlanDomain::Any]));
        plan.decisions.push(FnDecision {
            name: "h".into(),
            lambda: 2,
            covers: Vec::new(),
            decision: Decision::Monitor {
                reason: "budget".into(),
            },
            blame: None,
            detail: "not verified".into(),
            micros: 1,
        });
        let fast: Vec<_> = plan.static_lambdas().collect();
        assert_eq!(fast.len(), 2);
        assert_eq!(fast[0], (0, None));
        assert_eq!(fast[1].0, 1);
        assert_eq!(fast[1].1.unwrap(), &[PlanDomain::Nat, PlanDomain::Any]);
        assert_eq!(plan.count("static"), 2);
        assert_eq!(plan.count("monitor"), 1);
        assert_eq!(plan.refuted().count(), 0);
    }

    #[test]
    fn covers_extend_only_unconditional_discharges() {
        let mut plan = EnforcementPlan::new();
        let mut unconditional = static_entry("f", 0, vec![PlanDomain::Any]);
        unconditional.covers = vec![5, 6];
        plan.decisions.push(unconditional);
        let mut guarded = static_entry("g", 1, vec![PlanDomain::Nat]);
        guarded.covers = vec![7];
        plan.decisions.push(guarded);
        let ids: Vec<u32> = plan.static_lambdas().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 5, 6, 1]);
    }

    #[test]
    fn json_dump_shape() {
        let mut plan = EnforcementPlan::new();
        plan.decisions
            .push(static_entry("su\"m", 0, vec![PlanDomain::Nat]));
        plan.decisions.push(FnDecision {
            name: "spin".into(),
            lambda: 1,
            covers: Vec::new(),
            decision: Decision::Refuted {
                witness: ScGraph::from_arcs(1, 1, [e(0, 0)]),
                culprit: "spin".into(),
            },
            blame: Some("my-party".into()),
            detail: "refuted".into(),
            micros: 2,
        });
        let json = plan.to_json();
        assert!(json.contains("\"schema\": \"sct-plan/1\""), "{json}");
        assert!(json.contains("\"name\": \"su\\\"m\""), "{json}");
        assert!(json.contains("\"guard\": [\"nat\"]"), "{json}");
        assert!(json.contains("\"decision\": \"refuted\""), "{json}");
        assert!(json.contains("\"blame\": \"my-party\""), "{json}");
        assert!(plan.to_string().contains("1 static"), "{plan}");
    }

    #[test]
    fn ljb_cache_memoizes_by_set() {
        let mut cache = LjbCache::new();
        let good = ScGraph::from_arcs(2, 2, [d(0, 0)]);
        let also = ScGraph::from_arcs(2, 2, [e(0, 0), d(1, 1)]);
        assert!(cache.check(&[good.clone(), also.clone()], 10_000).is_ok());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Same set, different order and multiplicity: cache hit.
        assert!(cache
            .check(&[also.clone(), good.clone(), good.clone()], 10_000)
            .is_ok());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A violating set is cached as a violation.
        let bad = ScGraph::from_arcs(1, 1, [e(0, 0)]);
        let v1 = cache.check(std::slice::from_ref(&bad), 10_000);
        let v2 = cache.check(&[bad], 10_000);
        assert!(matches!(v1, CheckedClosure::Violation(_)));
        assert_eq!(v1, v2);
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }
}

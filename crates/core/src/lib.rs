//! Size-change termination as a contract — the core library.
//!
//! This crate implements the heart of the PLDI'19 paper: the size-change
//! machinery of §3 (Figures 3–5) in a form usable both by the *dynamic*
//! monitor (the λSCT interpreter in `sct-interp`) and by the *static*
//! verifier (`sct-symbolic`):
//!
//! * [`ScGraph`] — size-change graphs `g ∈ 𝒫(ℕ × r × ℕ)` with the two arc
//!   kinds `↓` (strict descent, the paper's `→` with overdot) and `⇣`
//!   (non-ascent, `→=`), represented densely and composed with the
//!   three-valued semiring of Figure 4.
//! * [`CallSeq`] — the sequence of graphs `⃗g` per monitored function, with
//!   the `prog?` check implemented incrementally: the set of composites of
//!   contiguous suffixes is maintained and only *new* composites are tested
//!   with `desc?`, which is equivalent to re-testing every contiguous
//!   subsequence (previously seen composites already passed) and is what
//!   makes per-call monitoring affordable.
//! * [`Interner`] — hash-consing of graphs into `Copy` [`GraphId`]s with
//!   `desc?`/idempotence computed once per distinct graph and binary
//!   composition memoized, so steady-state monitoring is pure cache hits
//!   (see `docs/ARCHITECTURE.md`, "Graph interning and the fixed-point
//!   cost model").
//! * [`order`] — the well-founded partial order `≺` of Figure 5 as a trait,
//!   so users can "replace the default order with an appropriate one" (§3.3)
//!   as needed by e.g. `lh-range` or `acl2-fig-2` in Table 1.
//! * [`table`] — the size-change table `m ∈ v ⇀ ⃗v × ⃗g`, in two flavors
//!   matching §5's implementation strategies: a persistent table (for the
//!   continuation-mark strategy, which preserves proper tail calls) and a
//!   mutable table with undo records (the imperative strategy, which breaks
//!   them).
//! * [`closure_check`] — the classic Lee–Jones–Ben-Amram
//!   criterion on a *set* of graphs, used by the static verifier once
//!   symbolic execution has enumerated how a function may call itself
//!   (Figure 9).
//! * [`monitor`] — configuration for the §5 optimizations: exponential
//!   backoff, loop-entry-only monitoring, closure key strategies.
//! * [`blame`] — Findler–Felleisen blame labels for `terminating/c` (§2.3).
//! * [`plan`] — the hybrid enforcement plan ([`EnforcementPlan`]): the
//!   per-function record of whether termination was statically discharged,
//!   must be dynamically monitored, or was statically refuted, plus the
//!   [`LjbCache`] memo keyed by interned graph sets that makes
//!   re-verification free.
//!
//! # Examples
//!
//! Monitoring the Ackermann descent of Figure 1 by hand:
//!
//! ```
//! use sct_core::graph::ScGraph;
//! use sct_core::order::AbsIntOrder;
//! use sct_core::seq::CallSeq;
//!
//! // (ack 2 0) ↝ (ack 1 1) ↝ (ack 1 0): every step must keep prog?.
//! let order = AbsIntOrder;
//! let g1 = ScGraph::from_args(&order, &[2i64, 0], &[1, 1]);
//! let g2 = ScGraph::from_args(&order, &[1i64, 1], &[1, 0]);
//! let seq = CallSeq::new();
//! let seq = seq.push(g1).expect("first call maintains prog?");
//! let _seq = seq.push(g2).expect("second call maintains prog?");
//!
//! // But a non-descending self-call is rejected immediately:
//! let bad = ScGraph::from_args(&order, &[1i64, 1], &[1, 2]);
//! assert!(CallSeq::new().push(bad).is_err());
//! ```

#![deny(missing_docs)]

pub mod blame;
pub mod graph;
pub mod intern;
pub mod json;
pub mod ljb;
pub mod monitor;
pub mod order;
pub mod plan;
pub mod plan_codec;
pub mod seq;
pub mod stable;
pub mod summary_codec;
pub mod table;

pub use blame::BlameLabel;
pub use graph::{Arc, Change, ScGraph};
pub use intern::{FxBuildHasher, GraphId, Interner};
pub use ljb::{closure_check, ClosureResult};
pub use monitor::{Backoff, BackoffPolicy, KeyStrategy, MonitorConfig, TableStrategy};
pub use order::{AbsIntOrder, FnOrder, SizeChange, WellFoundedOrder};
pub use plan::{Decision, EnforcementPlan, FnDecision, LjbCache, PlanDomain};
pub use plan_codec::{decode_entry, encode_entry, PortableDecision, PLAN_CODEC_SCHEMA};
pub use seq::{CallSeq, ScViolation};
pub use stable::{Digest128, StableHasher};
pub use table::{FnEntry, MutScTable, ScTable, TableUndo};

//! The versioned `sct-plan-summary/1` codec: persisted contract summaries.
//!
//! A *contract summary* is the reusable residue of one verified `define`:
//! the domain assumptions its proof was discharged under (the ladder rung's
//! guard), the result domain a call is known to land in, and the full set
//! of size-change graphs its exploration discovered — everything a caller
//! needs to *stub* an application of the callee with a sound abstraction
//! instead of re-descending into its body (Ben-Amram 2010: a function's
//! size-change behavior is fully captured by its set of call-site graphs).
//!
//! Summaries ride the same content-addressed store as decisions (`sct-cache`,
//! keyed by `sct_symbolic::digest::ProgramDigests`), so editing a define
//! invalidates exactly its own summary and its transitive dependents'.
//!
//! # Why [`LambdaRef`] instead of λ ids
//!
//! λ ids are assigned by a program-wide counter at compile time, so a
//! persisted summary must not mention them (see `plan_codec`'s module docs
//! for the same argument about `covers`). A summary's graph sets can span
//! *several* defines — a stubbed exploration inherits its callees' graphs
//! transitively — so the nested-λ-index trick is not enough: each graph set
//! is keyed by a [`LambdaRef`], the owning `define`'s *name* plus the λ's
//! index in that define's syntactic all-λ traversal (index 0 is the entry
//! λ itself). Both halves are stable for structurally unchanged defines,
//! and the content address commits to the reachable set, so a decodable
//! summary always rebinds against the compile that is loading it.
//!
//! # Corruption tolerance
//!
//! [`decode_summary`] never panics; every malformation is an `Err` that
//! stores treat as a miss (recompute, then overwrite).
//!
//! # Examples
//!
//! ```
//! use sct_core::graph::{Change, ScGraph};
//! use sct_core::plan::PlanDomain;
//! use sct_core::summary_codec::{decode_summary, encode_summary, LambdaRef, PortableSummary};
//!
//! let s = PortableSummary {
//!     name: "len".into(),
//!     guard: vec![PlanDomain::Any],
//!     result: PlanDomain::Any,
//!     graphs: vec![(
//!         LambdaRef { global: "len".into(), idx: 0 },
//!         vec![ScGraph::from_arcs(1, 1, [(0, Change::Descend, 0)])],
//!     )],
//! };
//! let bytes = encode_summary(&s);
//! assert_eq!(decode_summary(&bytes).unwrap(), s);
//! assert!(decode_summary("corrupt garbage").is_err());
//! ```

use crate::graph::ScGraph;
use crate::json::{parse, Json};
use crate::plan::PlanDomain;
use crate::plan_codec::{domain_from_label, graph_from_json, graph_to_json};

/// Schema tag of the persisted summary format. Decoders reject anything
/// else, so bumping this invalidates every existing `.sum` entry.
pub const SUMMARY_CODEC_SCHEMA: &str = "sct-plan-summary/1";

/// A compile-independent name for one λ: the `define`d global that owns it
/// plus its index in that define's syntactic all-λ traversal (the entry λ
/// is index 0, nested λs follow in source order).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LambdaRef {
    /// The owning `define`'s name.
    pub global: String,
    /// Index into the define's all-λ traversal (0 = the entry λ).
    pub idx: u32,
}

/// A verified define's contract summary with compile-run-specific λ ids
/// factored out: the unit the summary store persists.
#[derive(Debug, Clone, PartialEq)]
pub struct PortableSummary {
    /// The summarized `define`'s name.
    pub name: String,
    /// Domain assumption per parameter — the ladder rung the proof was
    /// discharged at. A stub is sound only for arguments provably inside
    /// these domains.
    pub guard: Vec<PlanDomain>,
    /// The domain every application of the callee is known to land in
    /// (the stub returns a fresh value of this domain).
    pub result: PlanDomain,
    /// The size-change graph sets the verified exploration discovered,
    /// per λ. May span several defines (transitive stubbing).
    pub graphs: Vec<(LambdaRef, Vec<ScGraph>)>,
}

/// Encodes one portable summary as a single-line `sct-plan-summary/1`
/// JSON document (newline-terminated).
pub fn encode_summary(s: &PortableSummary) -> String {
    let graphs = s
        .graphs
        .iter()
        .map(|(lr, set)| {
            Json::Obj(vec![
                ("global".into(), Json::str(&lr.global)),
                ("idx".into(), Json::Int(i64::from(lr.idx))),
                (
                    "set".into(),
                    Json::Arr(set.iter().map(graph_to_json).collect()),
                ),
            ])
        })
        .collect();
    let mut out = Json::Obj(vec![
        ("schema".into(), Json::str(SUMMARY_CODEC_SCHEMA)),
        ("name".into(), Json::str(&s.name)),
        (
            "guard".into(),
            Json::Arr(s.guard.iter().map(|d| Json::str(d.label())).collect()),
        ),
        ("result".into(), Json::str(s.result.label())),
        ("graphs".into(), Json::Arr(graphs)),
    ])
    .to_string();
    out.push('\n');
    out
}

/// Decodes a persisted `sct-plan-summary/1` entry.
///
/// # Errors
///
/// Any malformation — bad JSON, wrong or missing schema, unknown domain
/// label, malformed graph, implausible sizes — is an `Err` with a reason.
/// Callers treat every `Err` as a miss.
pub fn decode_summary(text: &str) -> Result<PortableSummary, String> {
    let doc = parse(text.trim_end()).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(SUMMARY_CODEC_SCHEMA) => {}
        Some(other) => return Err(format!("schema mismatch: {other:?}")),
        None => return Err("missing schema field".into()),
    }
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing name")?
        .to_string();
    let mut guard = Vec::new();
    for g in doc
        .get("guard")
        .and_then(Json::as_arr)
        .ok_or("missing guard")?
    {
        guard.push(domain_from_label(g.as_str().ok_or("guard: not a string")?)?);
    }
    // Arity sanity, mirroring the graph decoder's 1024 cap.
    if guard.len() > 1024 {
        return Err(format!("implausible arity {}", guard.len()));
    }
    let result = domain_from_label(
        doc.get("result")
            .and_then(Json::as_str)
            .ok_or("missing result")?,
    )?;
    let entries = doc
        .get("graphs")
        .and_then(Json::as_arr)
        .ok_or("missing graphs")?;
    // A summary's graph map covers reachable λs, not arbitrary data: a
    // hostile or corrupt size would balloon every consumer's merge step.
    if entries.len() > 4096 {
        return Err(format!("implausible graph-map size {}", entries.len()));
    }
    let mut graphs = Vec::with_capacity(entries.len());
    for e in entries {
        let global = e
            .get("global")
            .and_then(Json::as_str)
            .ok_or("graphs: missing global")?
            .to_string();
        let idx = u32::try_from(
            e.get("idx")
                .and_then(Json::as_u64)
                .ok_or("graphs: missing idx")?,
        )
        .map_err(|_| "graphs: idx out of range")?;
        let set_json = e
            .get("set")
            .and_then(Json::as_arr)
            .ok_or("graphs: missing set")?;
        if set_json.len() > 4096 {
            return Err(format!("implausible graph-set size {}", set_json.len()));
        }
        let mut set = Vec::with_capacity(set_json.len());
        for g in set_json {
            set.push(graph_from_json(g)?);
        }
        graphs.push((LambdaRef { global, idx }, set));
    }
    Ok(PortableSummary {
        name,
        guard,
        result,
        graphs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Change;

    fn sample() -> PortableSummary {
        PortableSummary {
            name: "msort".into(),
            guard: vec![PlanDomain::Any, PlanDomain::Nat],
            result: PlanDomain::Any,
            graphs: vec![
                (
                    LambdaRef {
                        global: "msort".into(),
                        idx: 0,
                    },
                    vec![ScGraph::from_arcs(
                        2,
                        2,
                        [(0, Change::Descend, 0), (1, Change::NonAscend, 1)],
                    )],
                ),
                (
                    LambdaRef {
                        global: "len".into(),
                        idx: 0,
                    },
                    vec![
                        ScGraph::from_arcs(1, 1, [(0, Change::Descend, 0)]),
                        ScGraph::empty(1, 1),
                    ],
                ),
            ],
        }
    }

    #[test]
    fn round_trips() {
        let s = sample();
        let enc = encode_summary(&s);
        assert!(enc.ends_with('\n'));
        assert_eq!(decode_summary(&enc).unwrap(), s, "{enc}");
        // An empty graph map (a non-recursive summary) round-trips too.
        let empty = PortableSummary {
            name: "k".into(),
            guard: vec![],
            result: PlanDomain::Nat,
            graphs: vec![],
        };
        assert_eq!(decode_summary(&encode_summary(&empty)).unwrap(), empty);
    }

    #[test]
    fn rejects_truncation_and_corruption() {
        let enc = encode_summary(&sample());
        for cut in [0, 1, enc.len() / 2, enc.len() - 2] {
            assert!(decode_summary(&enc[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode_summary(&enc.replace("\"guard\"", "\"gu4rd\"")).is_err());
        assert!(decode_summary("\0\0\0\0").is_err());
    }

    #[test]
    fn rejects_version_mismatch() {
        let enc = encode_summary(&sample()).replace("sct-plan-summary/1", "sct-plan-summary/2");
        assert!(decode_summary(&enc)
            .unwrap_err()
            .contains("schema mismatch"));
    }

    #[test]
    fn rejects_bad_domains_and_graphs() {
        let enc = encode_summary(&sample());
        assert!(decode_summary(&enc.replace("\"nat\"", "\"gnat\"")).is_err());
        assert!(decode_summary(&enc.replace("\"d\"", "\"x\"")).is_err());
    }
}

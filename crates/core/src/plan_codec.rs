//! The versioned `sct-plan/2` codec: persisted enforcement decisions.
//!
//! The persistent plan cache (`sct-cache`) stores one [`FnDecision`]
//! per content-addressed file so that re-planning an edited program
//! re-verifies only the `define`s whose keys changed. This module is the
//! serialization layer: a [`PortableDecision`] is a decision with every
//! compile-run-specific identifier removed, encoded as a single-line JSON
//! document whose `schema` field is [`PLAN_CODEC_SCHEMA`].
//!
//! # Why "portable"
//!
//! λ ids are assigned by a program-wide counter at compile time: editing
//! one `define` shifts the ids of every later λ in the file. A persisted
//! decision must therefore not mention λ ids at all — instead:
//!
//! * the decision's own λ is implicit (the cache key identifies the
//!   `define`, and the loader rebinds to the current compile's id);
//! * `covers` (helper λs discharged by the same proof) are stored as
//!   **indices into the define's nested-λ list in syntactic traversal
//!   order**, which is stable for a structurally unchanged define, and
//!   rebound to concrete ids on load.
//!
//! # Corruption tolerance
//!
//! [`decode_entry`] never panics: truncated files, non-JSON bytes, wrong
//! schema versions, out-of-range arcs, and missing fields all return
//! `Err`, which the cache treats as a miss (recompute and overwrite).
//! A *stale* entry is impossible by construction — the content address
//! commits to the define's resolved AST, the planner configuration, and
//! the codec version, so a decode can only ever see bytes written for
//! exactly the inputs being planned.
//!
//! # Examples
//!
//! ```
//! use sct_core::plan::{Decision, PlanDomain};
//! use sct_core::plan_codec::{decode_entry, encode_entry, PortableDecision};
//!
//! let d = PortableDecision {
//!     name: "sum".into(),
//!     decision: Decision::Static { guard: vec![PlanDomain::Nat, PlanDomain::Nat] },
//!     covers_idx: vec![],
//!     blame: None,
//!     detail: "verified (sum: 1 graphs)".into(),
//!     micros: 412,
//! };
//! let bytes = encode_entry(&d);
//! assert_eq!(decode_entry(&bytes).unwrap(), d);
//! assert!(decode_entry("corrupt garbage").is_err());
//! ```

use crate::graph::{Change, ScGraph};
use crate::json::{parse, Json};
use crate::plan::{Decision, FnDecision, PlanDomain};

/// Schema tag of the persisted entry format. Decoders reject anything
/// else, so bumping this invalidates (falls back to recompute for) every
/// existing cache file.
pub const PLAN_CODEC_SCHEMA: &str = "sct-plan/2";

/// A [`FnDecision`] with compile-run-specific λ ids factored out (see the
/// module docs): the unit the plan cache persists.
#[derive(Debug, Clone, PartialEq)]
pub struct PortableDecision {
    /// The `define`d name.
    pub name: String,
    /// The verdict.
    pub decision: Decision,
    /// `covers` as indices into the define's nested-λ list (syntactic
    /// traversal order), rather than raw λ ids.
    pub covers_idx: Vec<u32>,
    /// `terminating/c` blame label, if any.
    pub blame: Option<String>,
    /// Human-readable verifier summary.
    pub detail: String,
    /// Planning cost of the original (cold) computation, microseconds.
    pub micros: u128,
}

impl PortableDecision {
    /// Strips a concrete [`FnDecision`] down to its portable form.
    /// `nested` is the define's nested-λ id list in syntactic traversal
    /// order — the basis `covers` is re-expressed in. Covered ids not in
    /// `nested` are dropped (they could not be rebound on load); the
    /// planner only ever covers nested λs, so this loses nothing.
    pub fn from_decision(d: &FnDecision, nested: &[u32]) -> PortableDecision {
        let covers_idx = d
            .covers
            .iter()
            .filter_map(|id| nested.iter().position(|n| n == id))
            .map(|i| i as u32)
            .collect();
        PortableDecision {
            name: d.name.clone(),
            decision: d.decision.clone(),
            covers_idx,
            blame: d.blame.clone(),
            detail: d.detail.clone(),
            micros: d.micros,
        }
    }

    /// Rebinds the portable decision against the *current* compile:
    /// `lambda` is the define's entry λ id, `nested` its nested-λ ids in
    /// syntactic traversal order. Returns `None` when a stored cover index
    /// is out of range for `nested` — the define's body does not match the
    /// entry (which the content address should make impossible; treated as
    /// corruption, i.e. recompute).
    pub fn rebind(&self, lambda: u32, nested: &[u32]) -> Option<FnDecision> {
        let mut covers = Vec::with_capacity(self.covers_idx.len());
        for &i in &self.covers_idx {
            covers.push(*nested.get(i as usize)?);
        }
        Some(FnDecision {
            name: self.name.clone(),
            lambda,
            covers,
            decision: self.decision.clone(),
            blame: self.blame.clone(),
            detail: self.detail.clone(),
            micros: self.micros,
        })
    }
}

pub(crate) fn graph_to_json(g: &ScGraph) -> Json {
    let arcs = g
        .arcs()
        .map(|a| {
            Json::Arr(vec![
                Json::Int(a.from as i64),
                Json::str(match a.change {
                    Change::Descend => "d",
                    Change::NonAscend => "n",
                }),
                Json::Int(a.to as i64),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("rows".into(), Json::Int(g.rows() as i64)),
        ("cols".into(), Json::Int(g.cols() as i64)),
        ("arcs".into(), Json::Arr(arcs)),
    ])
}

pub(crate) fn graph_from_json(j: &Json) -> Result<ScGraph, String> {
    let rows = j
        .get("rows")
        .and_then(Json::as_u64)
        .ok_or("witness: missing rows")? as usize;
    let cols = j
        .get("cols")
        .and_then(Json::as_u64)
        .ok_or("witness: missing cols")? as usize;
    // Arity sanity: a hostile or corrupt size would allocate rows*cols
    // bytes; graphs in this system are function arities.
    if rows > 1024 || cols > 1024 {
        return Err(format!("witness: implausible arity {rows}x{cols}"));
    }
    let mut g = ScGraph::empty(rows, cols);
    for arc in j
        .get("arcs")
        .and_then(Json::as_arr)
        .ok_or("witness: missing arcs")?
    {
        let items = arc.as_arr().ok_or("witness: arc not an array")?;
        let [from, change, to] = items else {
            return Err("witness: arc arity".into());
        };
        let from = from.as_u64().ok_or("witness: bad from")? as usize;
        let to = to.as_u64().ok_or("witness: bad to")? as usize;
        if from >= rows || to >= cols {
            return Err("witness: arc out of range".into());
        }
        let change = match change.as_str() {
            Some("d") => Change::Descend,
            Some("n") => Change::NonAscend,
            _ => return Err("witness: bad change tag".into()),
        };
        g.add_arc(from, change, to);
    }
    Ok(g)
}

/// Encodes one portable decision as a single-line `sct-plan/2` JSON
/// document (newline-terminated).
pub fn encode_entry(d: &PortableDecision) -> String {
    let mut members = vec![
        ("schema".into(), Json::str(PLAN_CODEC_SCHEMA)),
        ("name".into(), Json::str(&d.name)),
        ("decision".into(), Json::str(d.decision.tag())),
    ];
    match &d.decision {
        Decision::Static { guard } => {
            members.push((
                "guard".into(),
                Json::Arr(guard.iter().map(|g| Json::str(g.label())).collect()),
            ));
        }
        Decision::Monitor { reason } => {
            members.push(("reason".into(), Json::str(reason)));
        }
        Decision::Refuted { witness, culprit } => {
            members.push(("witness".into(), graph_to_json(witness)));
            members.push(("culprit".into(), Json::str(culprit)));
        }
    }
    members.push((
        "covers_idx".into(),
        Json::Arr(
            d.covers_idx
                .iter()
                .map(|&i| Json::Int(i64::from(i)))
                .collect(),
        ),
    ));
    members.push((
        "blame".into(),
        match &d.blame {
            Some(b) => Json::str(b),
            None => Json::Null,
        },
    ));
    members.push(("detail".into(), Json::str(&d.detail)));
    members.push((
        "micros".into(),
        Json::Int(d.micros.min(i64::MAX as u128) as i64),
    ));
    let mut out = Json::Obj(members).to_string();
    out.push('\n');
    out
}

pub(crate) fn domain_from_label(s: &str) -> Result<PlanDomain, String> {
    match s {
        "nat" => Ok(PlanDomain::Nat),
        "pos" => Ok(PlanDomain::Pos),
        "int" => Ok(PlanDomain::Int),
        "list" => Ok(PlanDomain::List),
        "any" => Ok(PlanDomain::Any),
        other => Err(format!("unknown domain label {other:?}")),
    }
}

/// Decodes a persisted `sct-plan/2` entry.
///
/// # Errors
///
/// Any malformation — bad JSON, wrong or missing schema, unknown decision
/// tag, malformed witness, missing fields — is an `Err` with a reason.
/// Callers treat every `Err` as a cache miss.
pub fn decode_entry(text: &str) -> Result<PortableDecision, String> {
    let doc = parse(text.trim_end()).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(PLAN_CODEC_SCHEMA) => {}
        Some(other) => return Err(format!("schema mismatch: {other:?}")),
        None => return Err("missing schema field".into()),
    }
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing name")?
        .to_string();
    let decision = match doc.get("decision").and_then(Json::as_str) {
        Some("static") => {
            let mut guard = Vec::new();
            for g in doc
                .get("guard")
                .and_then(Json::as_arr)
                .ok_or("missing guard")?
            {
                guard.push(domain_from_label(g.as_str().ok_or("guard: not a string")?)?);
            }
            Decision::Static { guard }
        }
        Some("monitor") => Decision::Monitor {
            reason: doc
                .get("reason")
                .and_then(Json::as_str)
                .ok_or("missing reason")?
                .to_string(),
        },
        Some("refuted") => Decision::Refuted {
            witness: graph_from_json(doc.get("witness").ok_or("missing witness")?)?,
            culprit: doc
                .get("culprit")
                .and_then(Json::as_str)
                .ok_or("missing culprit")?
                .to_string(),
        },
        Some(other) => return Err(format!("unknown decision tag {other:?}")),
        None => return Err("missing decision tag".into()),
    };
    let mut covers_idx = Vec::new();
    for c in doc
        .get("covers_idx")
        .and_then(Json::as_arr)
        .ok_or("missing covers_idx")?
    {
        covers_idx.push(
            u32::try_from(c.as_u64().ok_or("covers_idx: not an index")?)
                .map_err(|_| "covers_idx: out of range")?,
        );
    }
    let blame = match doc.get("blame") {
        Some(Json::Null) | None => None,
        Some(j) => Some(j.as_str().ok_or("blame: not a string")?.to_string()),
    };
    let detail = doc
        .get("detail")
        .and_then(Json::as_str)
        .ok_or("missing detail")?
        .to_string();
    let micros = u128::from(
        doc.get("micros")
            .and_then(Json::as_u64)
            .ok_or("missing micros")?,
    );
    Ok(PortableDecision {
        name,
        decision,
        covers_idx,
        blame,
        detail,
        micros,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refuted() -> PortableDecision {
        PortableDecision {
            name: "spin".into(),
            decision: Decision::Refuted {
                witness: ScGraph::from_arcs(
                    2,
                    2,
                    [(0, Change::NonAscend, 0), (1, Change::Descend, 0)],
                ),
                culprit: "spin".into(),
            },
            covers_idx: vec![],
            blame: Some("spin.sct:1:14".into()),
            detail: "graph is idempotent with no self-descent".into(),
            micros: 77,
        }
    }

    #[test]
    fn round_trips_all_decision_kinds() {
        let cases = vec![
            PortableDecision {
                name: "sum".into(),
                decision: Decision::Static {
                    guard: vec![PlanDomain::Nat, PlanDomain::Any],
                },
                covers_idx: vec![0, 2],
                blame: None,
                detail: "verified \"quoted\"\nnewline".into(),
                micros: 123_456_789_012,
            },
            PortableDecision {
                name: "apply1".into(),
                decision: Decision::Monitor {
                    reason: "applies an opaque value 1 time(s)".into(),
                },
                covers_idx: vec![],
                blame: None,
                detail: "modular".into(),
                micros: 0,
            },
            refuted(),
        ];
        for d in cases {
            let enc = encode_entry(&d);
            assert!(enc.ends_with('\n'));
            assert_eq!(decode_entry(&enc).unwrap(), d, "{enc}");
        }
    }

    #[test]
    fn rejects_truncation_and_corruption() {
        let enc = encode_entry(&refuted());
        for cut in [0, 1, enc.len() / 2, enc.len() - 2] {
            assert!(decode_entry(&enc[..cut]).is_err(), "cut at {cut}");
        }
        let flipped = enc.replace("\"decision\"", "\"decisi0n\"");
        assert!(decode_entry(&flipped).is_err());
        assert!(decode_entry("\0\0\0\0").is_err());
    }

    #[test]
    fn rejects_version_mismatch() {
        let enc = encode_entry(&refuted()).replace("sct-plan/2", "sct-plan/1");
        assert!(decode_entry(&enc).unwrap_err().contains("schema mismatch"));
        let enc = encode_entry(&refuted()).replace("sct-plan/2", "sct-plan/3");
        assert!(decode_entry(&enc).unwrap_err().contains("schema mismatch"));
    }

    #[test]
    fn rejects_malformed_witness() {
        let bad_arc = r#"{"schema":"sct-plan/2","name":"f","decision":"refuted",
            "witness":{"rows":1,"cols":1,"arcs":[[5,"d",0]]},"culprit":"f",
            "covers_idx":[],"blame":null,"detail":"x","micros":1}"#
            .replace('\n', " ");
        assert!(decode_entry(&bad_arc).unwrap_err().contains("out of range"));
        let huge = bad_arc.replace("\"rows\":1", "\"rows\":99999");
        assert!(decode_entry(&huge).is_err());
    }

    #[test]
    fn rebind_maps_indices_to_current_ids() {
        let d = PortableDecision {
            name: "f".into(),
            decision: Decision::Static {
                guard: vec![PlanDomain::Any],
            },
            covers_idx: vec![0, 2],
            blame: None,
            detail: "verified".into(),
            micros: 9,
        };
        let bound = d.rebind(41, &[50, 51, 52]).unwrap();
        assert_eq!(bound.lambda, 41);
        assert_eq!(bound.covers, vec![50, 52]);
        assert_eq!(bound.micros, 9);
        // Out-of-range cover index = structural mismatch = corruption.
        assert!(d.rebind(41, &[50]).is_none());
    }

    #[test]
    fn from_decision_inverts_rebind() {
        let nested = [7u32, 9, 11];
        let concrete = FnDecision {
            name: "g".into(),
            lambda: 5,
            covers: vec![9, 11],
            decision: Decision::Static {
                guard: vec![PlanDomain::Any],
            },
            blame: Some("b".into()),
            detail: "verified".into(),
            micros: 3,
        };
        let portable = PortableDecision::from_decision(&concrete, &nested);
        assert_eq!(portable.covers_idx, vec![1, 2]);
        let back = portable.rebind(5, &nested).unwrap();
        assert_eq!(back.covers, concrete.covers);
        assert_eq!(back.lambda, concrete.lambda);
    }
}

//! Monitor configuration and the §5 overhead-reduction machinery.
//!
//! The paper lists three optimizations that take naive monitoring from
//! "prohibitively expensive" to "acceptable for debugging":
//!
//! 1. **Reducing monitoring frequency** — exponential backoff per function:
//!    because strict progress down a well-founded order can only happen
//!    finitely often, a non-SCT program violates the principle at *any*
//!    checking frequency; checking every 2ᵏ-th call preserves the guarantee
//!    while slashing overhead (at the cost of keeping older argument
//!    snapshots alive longer — the trade-off §5 notes).
//! 2. **Whitelisting known functions** — primitives never need monitoring;
//!    the interpreter applies this by construction (primitives are not
//!    closures) and exposes [`MonitorConfig::whitelist`] for user functions.
//! 3. **Loop entries only** — only functions observed to re-enter their own
//!    dynamic extent need graphs; for mutually recursive `even?`/`odd?`
//!    called from top level, only `even?` is a loop entry.

use crate::intern::FxBuildHasher;
use std::collections::HashMap;
use std::hash::Hash;

/// Which of §5's two table-maintenance strategies the interpreter uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TableStrategy {
    /// One global mutable table plus restore frames. Fast lookups; breaks
    /// proper tail calls (every application pushes a restore continuation).
    #[default]
    Imperative,
    /// The table is a persistent value stored in a continuation mark; tail
    /// calls replace the mark and returns discard it. Preserves proper tail
    /// calls; slower in tight loops (Figure 10's two orders of magnitude).
    ContinuationMark,
}

/// How often a function's size-change graph is extended and checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackoffPolicy {
    /// Check on every application (the formal semantics).
    #[default]
    EveryCall,
    /// Exponential backoff: check on calls 1, 2, 4, 8, … scaled by `factor`
    /// (a factor of 2 doubles the gap after each check).
    Exponential {
        /// Multiplier applied to the check interval after each check; must
        /// be at least 2 to be exponential.
        factor: u32,
    },
}

/// How closures are keyed in the size-change table (§5: "we instead hash
/// the closure and consider all closures with the same hash code to be
/// equivalent").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KeyStrategy {
    /// Key on (λ-term identity, structural hash of captured environment):
    /// the paper's implementation. Sound (the table cannot grow without
    /// bound) but may produce false positives on hash collisions.
    #[default]
    Structural,
    /// Key on the λ-term only, conflating all its closures — what a static
    /// control-flow analysis must do (§2.2's `len`-in-CPS example shows the
    /// precision this loses).
    LambdaOnly,
    /// Key on the allocation identity of the closure: maximally precise,
    /// distinguishes even structurally equal closures. Matches the formal
    /// model only when structural equality and identity coincide.
    Allocation,
}

/// Complete monitor configuration carried by the interpreter.
///
/// # Examples
///
/// ```
/// use sct_core::monitor::{BackoffPolicy, MonitorConfig, TableStrategy};
///
/// let cfg = MonitorConfig::default()
///     .with_strategy(TableStrategy::ContinuationMark)
///     .with_backoff(BackoffPolicy::Exponential { factor: 2 });
/// assert_eq!(cfg.strategy, TableStrategy::ContinuationMark);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MonitorConfig {
    /// Table-maintenance strategy.
    pub strategy: TableStrategy,
    /// Check-frequency policy.
    pub backoff: BackoffPolicy,
    /// When true, build graphs only for observed loop entries.
    pub loop_entries_only: bool,
    /// Closure keying strategy.
    pub key_strategy: KeyStrategy,
    /// Names of user functions assumed terminating (never monitored), the
    /// §5 whitelist. Primitives are whitelisted by construction.
    pub whitelist: Vec<String>,
}

impl MonitorConfig {
    /// A configuration that checks every call with the imperative strategy —
    /// the closest match to the formal semantics.
    pub fn strict() -> MonitorConfig {
        MonitorConfig::default()
    }

    /// Sets the table strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: TableStrategy) -> MonitorConfig {
        self.strategy = strategy;
        self
    }

    /// Sets the backoff policy.
    #[must_use]
    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> MonitorConfig {
        self.backoff = backoff;
        self
    }

    /// Sets the closure key strategy.
    #[must_use]
    pub fn with_key_strategy(mut self, key_strategy: KeyStrategy) -> MonitorConfig {
        self.key_strategy = key_strategy;
        self
    }

    /// Enables loop-entry-only monitoring.
    #[must_use]
    pub fn with_loop_entries_only(mut self, on: bool) -> MonitorConfig {
        self.loop_entries_only = on;
        self
    }

    /// Adds a user function to the known-terminating whitelist.
    #[must_use]
    pub fn whitelisting(mut self, name: impl Into<String>) -> MonitorConfig {
        self.whitelist.push(name.into());
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct BackoffEntry {
    /// Calls seen since tracking began.
    count: u64,
    /// Call number at which to check next.
    next_check: u64,
}

/// Per-function call counters implementing [`BackoffPolicy::Exponential`].
///
/// This is deliberately *heuristic, mutable* state outside the semantics:
/// skipping a check never unsoundly accepts a diverging program, it only
/// delays detection, so the counters need no dynamic-extent discipline.
///
/// # Examples
///
/// ```
/// use sct_core::monitor::{Backoff, BackoffPolicy};
///
/// let mut b: Backoff<u32> = Backoff::new(BackoffPolicy::Exponential { factor: 2 });
/// let checks: Vec<bool> = (0..8).map(|_| b.should_check(&7)).collect();
/// assert_eq!(checks, [true, true, false, true, false, false, false, true]);
/// ```
#[derive(Debug, Default)]
pub struct Backoff<K> {
    policy: BackoffPolicy,
    counters: HashMap<K, BackoffEntry, FxBuildHasher>,
}

impl<K: Hash + Eq + Clone> Backoff<K> {
    /// Creates a counter table for the given policy.
    pub fn new(policy: BackoffPolicy) -> Backoff<K> {
        Backoff {
            policy,
            counters: HashMap::default(),
        }
    }

    /// Records a call to `key` and decides whether this one is checked.
    pub fn should_check(&mut self, key: &K) -> bool {
        match self.policy {
            BackoffPolicy::EveryCall => true,
            BackoffPolicy::Exponential { factor } => {
                let factor = factor.max(2) as u64;
                let entry = self.counters.entry(key.clone()).or_insert(BackoffEntry {
                    count: 0,
                    next_check: 1,
                });
                entry.count += 1;
                if entry.count >= entry.next_check {
                    entry.next_check = entry.count.saturating_mul(factor);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Forgets all counters (e.g. when a fresh contract extent begins).
    pub fn reset(&mut self) {
        self.counters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_call_policy_always_checks() {
        let mut b: Backoff<u32> = Backoff::new(BackoffPolicy::EveryCall);
        assert!((0..10).all(|_| b.should_check(&1)));
    }

    #[test]
    fn exponential_checks_thin_out() {
        let mut b: Backoff<u32> = Backoff::new(BackoffPolicy::Exponential { factor: 2 });
        let checks = (1..=1024u64).filter(|_| b.should_check(&1)).count();
        // Checks at calls 1, 2, 4, ..., 1024: 11 of 1024.
        assert_eq!(checks, 11);
    }

    #[test]
    fn exponential_checks_are_unbounded() {
        // Infinitely many checks still happen: divergence is always caught.
        let mut b: Backoff<u32> = Backoff::new(BackoffPolicy::Exponential { factor: 2 });
        let mut last_check_at = 0u64;
        for i in 1..=(1 << 20) {
            if b.should_check(&1) {
                last_check_at = i;
            }
        }
        assert_eq!(
            last_check_at,
            1 << 20,
            "a check lands on every power of two"
        );
    }

    #[test]
    fn counters_are_per_key() {
        let mut b: Backoff<u32> = Backoff::new(BackoffPolicy::Exponential { factor: 2 });
        for _ in 0..3 {
            b.should_check(&1);
        }
        // Key 2 starts fresh: first call is checked.
        assert!(b.should_check(&2));
    }

    #[test]
    fn reset_restarts() {
        let mut b: Backoff<u32> = Backoff::new(BackoffPolicy::Exponential { factor: 2 });
        for _ in 0..4 {
            b.should_check(&1);
        }
        b.reset();
        assert!(b.should_check(&1), "first call after reset is checked");
    }

    #[test]
    fn config_builder() {
        let cfg = MonitorConfig::strict()
            .with_strategy(TableStrategy::ContinuationMark)
            .with_backoff(BackoffPolicy::Exponential { factor: 4 })
            .with_key_strategy(KeyStrategy::LambdaOnly)
            .with_loop_entries_only(true)
            .whitelisting("helper");
        assert_eq!(cfg.strategy, TableStrategy::ContinuationMark);
        assert!(cfg.loop_entries_only);
        assert_eq!(cfg.whitelist, vec!["helper".to_string()]);
    }
}

//! Hash-consing of size-change graphs with memoized closure properties.
//!
//! Ben-Amram's survey observes that size-change graphs over fixed arities
//! form a *finite* composition semiring — which is exactly the structure
//! that rewards interning: a long-running loop cycles through a tiny set
//! of distinct graphs, so after a warm-up period every graph the monitor
//! sees is already known. The [`Interner`] exploits this three ways:
//!
//! 1. **Hash-consing**: every distinct [`ScGraph`] is stored once and
//!    identified by a `Copy` [`GraphId`]; graph equality on the hot path
//!    becomes integer equality.
//! 2. **Intern-time property memoization**: `desc?` (an idempotence check
//!    requiring a full self-composition) and `is_idempotent` are computed
//!    **once per distinct graph** when it is first interned; afterwards
//!    [`Interner::desc_ok`] is an array load.
//! 3. **Composition memoization**: `(GraphId, GraphId) → GraphId` is
//!    cached, so once a [`crate::seq::CallSeq`] reaches its fixed point,
//!    extending it performs only cache lookups — zero allocation and zero
//!    matrix work per monitored call.
//!
//! # Handles and the global pool
//!
//! [`Interner`] is a cheaply clonable handle (`Rc` inside); the monitor
//! threads one handle through the tables and the interpreter's apply path.
//! [`Interner::global`] returns a handle to a thread-local pool used by the
//! argument-free compatibility methods on `CallSeq`/`ScTable`; ids from one
//! pool are meaningless in another, so code that creates a private pool
//! with [`Interner::new`] must pass that handle everywhere (the `*_in`
//! method variants).
//!
//! # Examples
//!
//! ```
//! use sct_core::graph::{Change, ScGraph};
//! use sct_core::intern::Interner;
//!
//! let interner = Interner::new();
//! let g = ScGraph::from_arcs(2, 2, [(0, Change::Descend, 0)]);
//! let id = interner.intern(g.clone());
//! assert_eq!(interner.intern(g), id);        // hash-consed
//! assert!(interner.desc_ok(id));             // memoized at intern time
//! let sq = interner.compose(id, id);         // memoized composition
//! assert_eq!(interner.compose(id, id), sq);  // pure: same answer, cached
//! ```

use crate::graph::ScGraph;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::rc::Rc;

/// A fast, non-cryptographic hasher in the spirit of rustc's `FxHasher`,
/// used for the intern tables (the workspace builds offline, so external
/// hash crates are not available). Keys here are either word-packed graphs
/// or small integers; SipHash's DoS resistance buys nothing and costs a
/// measurable slice of the monitor hot path.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low bits (which HashMap uses) depend on all
        // input words.
        let h = self.hash;
        h ^ (h >> 32)
    }
}

/// `BuildHasher` for [`FxHasher`], usable as the `S` parameter of std maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Interned handle to a size-change graph: `Copy`, word-sized, and totally
/// ordered (by interning sequence, which is stable within a pool) so sets
/// of graphs can be kept as sorted id vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphId(u32);

impl GraphId {
    /// Placeholder for not-yet-filled slots in fixed-size id buffers; never
    /// a valid pool index (pools cap out before `u32::MAX`).
    pub(crate) const DUMMY: GraphId = GraphId(u32::MAX);

    /// Index of this id in its pool (dense, starting at 0).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

struct Entry {
    graph: ScGraph,
    rows: u16,
    cols: u16,
    desc_ok: bool,
    idempotent: bool,
}

#[derive(Default)]
struct Pool {
    entries: Vec<Entry>,
    ids: HashMap<ScGraph, GraphId, FxBuildHasher>,
    /// `(a « 32) | b → a ; b`.
    compose: HashMap<u64, GraphId, FxBuildHasher>,
}

impl Pool {
    fn intern(&mut self, g: ScGraph) -> GraphId {
        if let Some(&id) = self.ids.get(&g) {
            return id;
        }
        let id = GraphId(u32::try_from(self.entries.len()).expect("graph pool overflow"));
        // Closure properties are computed exactly once, here.
        let idempotent = g.is_idempotent();
        let desc_ok = !idempotent || g.has_self_descent();
        self.entries.push(Entry {
            rows: g.rows() as u16,
            cols: g.cols() as u16,
            desc_ok,
            idempotent,
            graph: g.clone(),
        });
        self.ids.insert(g, id);
        id
    }

    fn compose(&mut self, a: GraphId, b: GraphId) -> GraphId {
        let key = ((a.0 as u64) << 32) | b.0 as u64;
        if let Some(&id) = self.compose.get(&key) {
            return id;
        }
        let composed = self.entries[a.index()]
            .graph
            .compose(&self.entries[b.index()].graph);
        let id = self.intern(composed);
        self.compose.insert(key, id);
        id
    }
}

/// A shared graph pool: hash-conses [`ScGraph`]s into [`GraphId`]s and
/// memoizes `desc?`, idempotence, and binary composition. Cloning the
/// handle shares the pool.
#[derive(Clone, Default)]
pub struct Interner {
    pool: Rc<RefCell<Pool>>,
}

thread_local! {
    static GLOBAL: Interner = Interner::new();
}

impl Interner {
    /// Creates a fresh, private pool (ids are meaningful only within it).
    pub fn new() -> Interner {
        Interner::default()
    }

    /// The thread-local shared pool, used by the compatibility methods that
    /// don't take an explicit handle. All machines on a thread share it —
    /// deliberately, since graphs are tiny, the pool is bounded by the
    /// number of distinct graphs, and sharing warms the caches across runs.
    pub fn global() -> Interner {
        GLOBAL.with(Interner::clone)
    }

    /// Interns a graph, computing `desc?`/idempotence if it is new.
    pub fn intern(&self, g: ScGraph) -> GraphId {
        self.pool.borrow_mut().intern(g)
    }

    /// A clone of the interned graph (cold paths only: display, blame).
    pub fn graph(&self, id: GraphId) -> ScGraph {
        self.pool.borrow().entries[id.index()].graph.clone()
    }

    /// Memoized `desc?` (Figure 4) — an array load after interning.
    pub fn desc_ok(&self, id: GraphId) -> bool {
        self.pool.borrow().entries[id.index()].desc_ok
    }

    /// Memoized idempotence.
    pub fn is_idempotent(&self, id: GraphId) -> bool {
        self.pool.borrow().entries[id.index()].idempotent
    }

    /// Arity of the earlier call of the interned graph.
    pub fn rows(&self, id: GraphId) -> usize {
        self.pool.borrow().entries[id.index()].rows as usize
    }

    /// Arity of the later call of the interned graph.
    pub fn cols(&self, id: GraphId) -> usize {
        self.pool.borrow().entries[id.index()].cols as usize
    }

    /// Memoized sequential composition `a ; b`.
    ///
    /// # Panics
    ///
    /// Panics when the arities don't line up, exactly like
    /// [`ScGraph::compose`].
    pub fn compose(&self, a: GraphId, b: GraphId) -> GraphId {
        self.pool.borrow_mut().compose(a, b)
    }

    /// Number of distinct graphs interned so far.
    pub fn len(&self) -> usize {
        self.pool.borrow().entries.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of memoized compositions (for tests and diagnostics).
    pub fn compose_cache_len(&self) -> usize {
        self.pool.borrow().compose.len()
    }

    /// True when two handles share one pool (ids are interchangeable).
    pub fn same_pool(&self, other: &Interner) -> bool {
        Rc::ptr_eq(&self.pool, &other.pool)
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pool = self.pool.borrow();
        write!(
            f,
            "Interner(graphs={}, compositions={})",
            pool.entries.len(),
            pool.compose.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Change;

    fn d(i: usize, j: usize) -> (usize, Change, usize) {
        (i, Change::Descend, j)
    }

    fn e(i: usize, j: usize) -> (usize, Change, usize) {
        (i, Change::NonAscend, j)
    }

    #[test]
    fn interning_dedupes() {
        let it = Interner::new();
        let a = it.intern(ScGraph::from_arcs(2, 2, [d(0, 0)]));
        let b = it.intern(ScGraph::from_arcs(2, 2, [d(0, 0)]));
        let c = it.intern(ScGraph::from_arcs(2, 2, [e(0, 0)]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn properties_memoized_at_intern_time() {
        let it = Interner::new();
        let good = it.intern(ScGraph::from_arcs(1, 1, [d(0, 0)]));
        let bad = it.intern(ScGraph::from_arcs(1, 1, [e(0, 0)]));
        assert!(it.desc_ok(good) && it.is_idempotent(good));
        assert!(!it.desc_ok(bad) && it.is_idempotent(bad));
        assert_eq!(it.rows(good), 1);
        assert_eq!(it.cols(good), 1);
    }

    #[test]
    fn composition_memoized_and_correct() {
        let it = Interner::new();
        let g1 = ScGraph::from_arcs(2, 2, [d(0, 0)]);
        let g2 = ScGraph::from_arcs(2, 2, [e(0, 0), d(1, 1)]);
        let a = it.intern(g1.clone());
        let b = it.intern(g2.clone());
        let ab = it.compose(a, b);
        assert_eq!(it.graph(ab), g1.compose(&g2));
        // §2.1: the composite equals g1, so no new graph was interned.
        assert_eq!(ab, a);
        assert_eq!(it.len(), 2);
        // Second call hits the cache (observational purity checked by the
        // property tests; here just the id stability).
        assert_eq!(it.compose(a, b), ab);
        assert_eq!(it.compose_cache_len(), 1);
    }

    #[test]
    fn handles_share_pools() {
        let it = Interner::new();
        let other = it.clone();
        let id = it.intern(ScGraph::empty(1, 1));
        assert_eq!(other.intern(ScGraph::empty(1, 1)), id);
        assert!(it.same_pool(&other));
        assert!(!it.same_pool(&Interner::new()));
        assert!(Interner::global().same_pool(&Interner::global()));
    }

    #[test]
    fn fx_hasher_spreads_small_keys() {
        // Sanity: distinct u64 keys land on distinct hashes (no collisions
        // among a small dense range — the compose-cache key shape).
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for a in 0u64..64 {
            for b in 0u64..64 {
                let mut h = FxHasher::default();
                h.write_u64((a << 32) | b);
                seen.insert(h.finish());
            }
        }
        assert_eq!(seen.len(), 64 * 64);
    }
}

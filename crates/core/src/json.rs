//! A minimal JSON tree, parser, and writer.
//!
//! The workspace builds offline (no serde), yet two subsystems need to
//! *read* JSON as well as write it: the persistent plan cache decodes
//! `sct-plan/2` documents from disk, and the `sct serve` daemon speaks a
//! newline-delimited JSON wire protocol. This module is the shared,
//! dependency-free implementation: a [`Json`] tree, a strict
//! recursive-descent [`parse`], and a compact writer (`Json::to_string`
//! via `Display`).
//!
//! Scope: standard JSON (RFC 8259) minus two deliberate simplifications —
//! numbers are stored as `i64` when they are integral and in range
//! (`f64` otherwise), and object member order is preserved but duplicate
//! keys are not rejected (last one wins on [`Json::get`] lookups is *not*
//! the rule here; the first match wins, which is what a well-formed
//! producer emits anyway).
//!
//! # Examples
//!
//! ```
//! use sct_core::json::{parse, Json};
//!
//! let doc = parse(r#"{"op":"plan","defines":3,"warm":true}"#).unwrap();
//! assert_eq!(doc.get("op").and_then(Json::as_str), Some("plan"));
//! assert_eq!(doc.get("defines").and_then(Json::as_i64), Some(3));
//! assert_eq!(doc.to_string(), r#"{"op":"plan","defines":3,"warm":true}"#);
//! ```

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number representable as `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object member by key (first match), or `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (integral floats included when exact).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// The integer payload as `u64`, when non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Escapes a string into a JSON string literal (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Json {
    /// Compact (single-line) rendering; round-trips through [`parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) => {
                if x.is_finite() {
                    // Always keep a numeric shape JSON accepts.
                    if x.fract() == 0.0 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no Inf/NaN; degrade to null.
                    f.write_str("null")
                }
            }
            Json::Str(s) => f.write_str(&escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where the error was detected.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth cap — malformed/hostile inputs must not overflow the
/// stack (the serve daemon parses untrusted client bytes).
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected {word}"))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(format!("unexpected character {:?}", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos -= usize::from(self.pos > 0);
                    return self.err("expected ',' or ']'");
                }
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(members)),
                _ => {
                    self.pos -= usize::from(self.pos > 0);
                    return self.err("expected ',' or '}'");
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be followed
                        // by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return self.err("unpaired surrogate");
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return self.err("invalid low surrogate");
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return self.err("invalid unicode escape"),
                        }
                    }
                    _ => return self.err("invalid escape"),
                },
                Some(b) if b < 0x20 => return self.err("raw control character in string"),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences from raw bytes.
                    let start = self.pos - 1;
                    let width = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return self.err("invalid utf-8"),
                    };
                    if start + width > self.bytes.len() {
                        return self.err("truncated utf-8");
                    }
                    match std::str::from_utf8(&self.bytes[start..start + width]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = start + width;
                        }
                        Err(_) => return self.err("invalid utf-8"),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return self.err("expected 4 hex digits"),
            };
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Json::Float(f)),
            _ => self.err(format!("invalid number {text:?}")),
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// A [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after document");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let cases = [
            r#"null"#,
            r#"true"#,
            r#"-42"#,
            r#""hi\nthere""#,
            r#"[1,2,[3]]"#,
            r#"{"a":1,"b":[true,null],"c":{"d":"e"}}"#,
        ];
        for c in cases {
            let v = parse(c).unwrap();
            assert_eq!(v.to_string(), *c, "{c}");
            assert_eq!(parse(&v.to_string()).unwrap(), v);
        }
    }

    #[test]
    fn numbers_split_int_float() {
        assert_eq!(parse("7").unwrap(), Json::Int(7));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("7.5").unwrap(), Json::Float(7.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("2.0").unwrap().as_i64(), Some(2));
        assert_eq!(
            parse("9223372036854775807").unwrap().as_i64(),
            Some(i64::MAX)
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"\\x\"", "nan", "{1:2}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""\u00e9\t\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é\t😀"));
        let s = Json::str("a\"b\\c\nd");
        assert_eq!(parse(&s.to_string()).unwrap(), s);
        // Raw multibyte UTF-8 passes through.
        let raw = parse("\"héllo — 😀\"").unwrap();
        assert_eq!(raw.as_str(), Some("héllo — 😀"));
    }

    #[test]
    fn depth_cap_is_an_error_not_a_crash() {
        let deep = "[".repeat(5000) + &"]".repeat(5000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn getters() {
        let v = parse(r#"{"s":"x","n":3,"b":false,"a":[1],"z":null}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("z").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Int(-1).as_u64(), None);
    }
}

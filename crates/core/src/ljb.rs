//! The Lee–Jones–Ben-Amram closure criterion on a *set* of graphs.
//!
//! The dynamic monitor checks `prog?` over a concrete call sequence; the
//! static verifier (§4) instead collects the finitely many ways a function
//! may call itself — Figure 9 shows the two graphs for `ack` — and asks
//! whether *any* composition drawn from that set can violate the
//! size-change principle. That is exactly the classic criterion of Lee,
//! Jones, and Ben-Amram (POPL'01): close the set under sequential
//! composition; the program has the size-change property iff every
//! idempotent graph in the closure has a strict self-descent arc.

use crate::graph::ScGraph;
use crate::seq::ScViolation;

/// Outcome of [`closure_check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClosureResult {
    /// Every idempotent composite has a self-descent: SCT holds.
    Ok {
        /// Size of the computed closure (for reporting).
        closure_size: usize,
    },
    /// A witness composite is idempotent without self-descent.
    Violation(ScViolation),
    /// The closure exceeded `max_size`; treat as "not verified".
    Overflow,
}

impl ClosureResult {
    /// True for [`ClosureResult::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, ClosureResult::Ok { .. })
    }
}

/// Closes `graphs` under composition and checks the LJB criterion.
///
/// Only dimension-compatible pairs are composed (for a single function's
/// self-call graphs all graphs are square with equal arity, so every pair
/// composes). The closure is capped at `max_size` distinct graphs to bound
/// work; [`ClosureResult::Overflow`] means "could not verify", never
/// "verified".
///
/// # Examples
///
/// The `ack` graph set of Figure 9 passes:
///
/// ```
/// use sct_core::graph::{Change, ScGraph};
/// use sct_core::ljb::{closure_check, ClosureResult};
///
/// let g1 = ScGraph::from_arcs(2, 2, [(0, Change::Descend, 0)]);
/// let g2 = ScGraph::from_arcs(2, 2, [(0, Change::NonAscend, 0), (1, Change::Descend, 1)]);
/// assert!(closure_check(&[g1, g2], 10_000).is_ok());
/// ```
pub fn closure_check(graphs: &[ScGraph], max_size: usize) -> ClosureResult {
    let mut closure: Vec<ScGraph> = Vec::new();
    let mut worklist: Vec<ScGraph> = Vec::new();

    let add = |g: ScGraph,
               closure: &mut Vec<ScGraph>,
               worklist: &mut Vec<ScGraph>|
     -> Option<ClosureResult> {
        if closure.contains(&g) {
            return None;
        }
        if !g.desc_ok() {
            return Some(ClosureResult::Violation(ScViolation { witness: g }));
        }
        if closure.len() >= max_size {
            return Some(ClosureResult::Overflow);
        }
        closure.push(g.clone());
        worklist.push(g);
        None
    };

    for g in graphs {
        if let Some(res) = add(g.clone(), &mut closure, &mut worklist) {
            return res;
        }
    }

    while let Some(g) = worklist.pop() {
        // Compose with everything currently in the closure, both ways.
        let snapshot: Vec<ScGraph> = closure.clone();
        for h in &snapshot {
            if g.cols() == h.rows() {
                if let Some(res) = add(g.compose(h), &mut closure, &mut worklist) {
                    return res;
                }
            }
            if h.cols() == g.rows() {
                if let Some(res) = add(h.compose(&g), &mut closure, &mut worklist) {
                    return res;
                }
            }
        }
    }

    ClosureResult::Ok {
        closure_size: closure.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Change;

    fn d(i: usize, j: usize) -> (usize, Change, usize) {
        (i, Change::Descend, j)
    }

    fn e(i: usize, j: usize) -> (usize, Change, usize) {
        (i, Change::NonAscend, j)
    }

    #[test]
    fn ack_set_passes() {
        // Figure 9: {(m→m)} and {(m→=m),(n→n)}.
        let g1 = ScGraph::from_arcs(2, 2, [d(0, 0)]);
        let g2 = ScGraph::from_arcs(2, 2, [e(0, 0), d(1, 1)]);
        let res = closure_check(&[g1, g2], 10_000);
        assert!(res.is_ok(), "{res:?}");
    }

    #[test]
    fn buggy_ack_set_fails() {
        // Replacing (- m 1) with m on line 4 yields {(m→=m)} among the
        // graphs; it is idempotent with no descent.
        let g1 = ScGraph::from_arcs(2, 2, [d(0, 0)]);
        let g_bad = ScGraph::from_arcs(2, 2, [e(0, 0)]);
        match closure_check(&[g1, g_bad], 10_000) {
            ClosureResult::Violation(v) => {
                assert!(v.witness.is_idempotent());
                assert!(!v.witness.has_self_descent());
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn lexicographic_descent_passes() {
        // merge(xs, ys) descends one of two params per call:
        // {x→x, y→=y} and {x→=x, y→y} — classic LJB-provable set.
        let g1 = ScGraph::from_arcs(2, 2, [d(0, 0), e(1, 1)]);
        let g2 = ScGraph::from_arcs(2, 2, [e(0, 0), d(1, 1)]);
        assert!(closure_check(&[g1, g2], 10_000).is_ok());
    }

    #[test]
    fn permuted_params_pass() {
        // LJB example: f swaps parameters while descending one — needs
        // composition to expose the eventual descent: g = {0→1, 1→=0}.
        let g = ScGraph::from_arcs(2, 2, [d(0, 1), e(1, 0)]);
        assert!(closure_check(&[g], 10_000).is_ok());
    }

    #[test]
    fn pure_swap_fails() {
        // Swapping without any descent: {0→=1, 1→=0}; its square is the
        // identity — idempotent, no descent.
        let g = ScGraph::from_arcs(2, 2, [e(0, 1), e(1, 0)]);
        assert!(matches!(
            closure_check(&[g], 10_000),
            ClosureResult::Violation(_)
        ));
    }

    #[test]
    fn empty_input_passes() {
        // A function never observed to self-call has nothing to refute.
        assert!(closure_check(&[], 10_000).is_ok());
    }

    #[test]
    fn overflow_is_conservative() {
        let g1 = ScGraph::from_arcs(3, 3, [d(0, 1), e(1, 2), d(2, 0)]);
        let g2 = ScGraph::from_arcs(3, 3, [e(0, 2), d(1, 0), d(2, 1)]);
        // Cap tiny: must refuse rather than claim success.
        match closure_check(&[g1, g2], 2) {
            ClosureResult::Overflow | ClosureResult::Violation(_) => {}
            ClosureResult::Ok { .. } => panic!("must not verify under a 2-graph cap"),
        }
    }
}

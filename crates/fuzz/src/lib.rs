//! # sct-fuzz
//!
//! Differential termination fuzzer for the whole enforcement stack, in
//! the mold of mutation-based circuit fuzzers: *generate* programs whose
//! termination verdict is known by construction, *mutate* them with
//! operators of declared effect, and *assert* the paper's soundness
//! lattice across every layer — planner, plan cache, IR compiler,
//! dispatch VM, reference walker, and dynamic monitor.
//!
//! The pipeline per case:
//!
//! 1. [`gen_case`] emits 1–3 structurally descending recursion schemas
//!    (nat, accumulator, list, tree, mutual, higher-order) and applies
//!    one [`Mutation`] to a target instance. Descent-preserving
//!    mutations keep the *terminating* oracle; descent-breaking ones
//!    yield *diverging with blame in a known group at a known label*.
//! 2. [`check_case`] plans the program cold and warm, runs it on both
//!    machines under three monitored configurations, and checks the
//!    lattice: `Static ⇒ never blamed`, `Refuted ⇒ same-label blame`,
//!    `diverging ⇒ caught within budget`, `VM ≡ walker`,
//!    `warm ≡ cold`.
//! 3. Any [`Violation`] is shrunk by the delta-debugging [`minimize()`] pass
//!    before reporting.
//!
//! [`run_campaign`] drives N seeded cases under a wall-clock budget and
//! renders a machine-readable `sct-fuzz/1` summary line; the `sct fuzz`
//! subcommand and the CI step are thin wrappers around it.

pub mod gen;
pub mod harness;
pub mod minimize;
pub mod mutate;

pub use gen::{gen_case, ExprGen, GenCase, Oracle, Rng, SchemaKind};
pub use harness::{
    check_case, check_consistency, run_reference, run_reference_full, run_vm, run_vm_full,
    CaseReport, FuzzConfig, Outcome, Violation, ViolationKind,
};
pub use minimize::minimize;
pub use mutate::Mutation;

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Campaign options, mirroring `sct fuzz --seed S --cases N --budget-ms B`.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Base seed; case `i` derives its own seed from it.
    pub seed: u64,
    /// Number of cases to attempt.
    pub cases: u64,
    /// Wall-clock budget; the campaign stops early (but cleanly) when it
    /// is exhausted. `None` runs all cases.
    pub budget: Option<Duration>,
    /// Delta-debug violations before reporting.
    pub minimize: bool,
    /// Print each violation as it is found.
    pub verbose: bool,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            seed: 1,
            cases: 100,
            budget: None,
            minimize: true,
            verbose: false,
        }
    }
}

/// Campaign result: tallies plus every (minimized) violation.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Base seed the campaign ran with (echoed into the summary).
    pub seed: u64,
    /// Cases requested.
    pub requested: u64,
    /// Cases actually run (≤ requested under a wall-clock budget).
    pub ran: u64,
    /// Cases per target schema, in [`SchemaKind::ALL`] order.
    pub schemas: Vec<(&'static str, u64)>,
    /// Cases per mutation, in [`Mutation::ALL`] order.
    pub mutations: Vec<(&'static str, u64)>,
    /// Constructed-terminating cases.
    pub terminating: u64,
    /// Constructed-diverging cases.
    pub diverging: u64,
    /// Planner `Static` decisions across all cases.
    pub plan_static: u64,
    /// Planner `Monitor` decisions across all cases.
    pub plan_monitor: u64,
    /// Planner `Refuted` decisions across all cases.
    pub plan_refuted: u64,
    /// Every violated invariant (minimized when the campaign asked).
    pub violations: Vec<Violation>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl FuzzReport {
    /// The machine-readable summary line (`sct-fuzz/1`): one JSON object
    /// with case tallies, the per-schema and per-mutation splits, the
    /// planner decision split, and the violation count by kind. All keys
    /// are fixed and ordered, so CI and `BENCH_*` trajectories can parse
    /// it with a plain JSON parser or a regex.
    pub fn summary_json(&self) -> String {
        let counts = |pairs: &[(&'static str, u64)]| {
            let items: Vec<String> = pairs
                .iter()
                .map(|(name, n)| format!("\"{name}\":{n}"))
                .collect();
            items.join(",")
        };
        let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        for v in &self.violations {
            *by_kind.entry(v.kind.name()).or_insert(0) += 1;
        }
        let kinds: Vec<String> = by_kind
            .iter()
            .map(|(k, n)| format!("\"{k}\":{n}"))
            .collect();
        format!(
            "{{\"schema\":\"sct-fuzz/1\",\"seed\":{},\"requested\":{},\"ran\":{},\
             \"elapsed_ms\":{},\"oracles\":{{\"terminating\":{},\"diverging\":{}}},\
             \"schemas\":{{{}}},\"mutations\":{{{}}},\
             \"plan\":{{\"static\":{},\"monitor\":{},\"refuted\":{}}},\
             \"violations\":{},\"violation_kinds\":{{{}}}}}",
            self.seed,
            self.requested,
            self.ran,
            self.elapsed.as_millis(),
            self.terminating,
            self.diverging,
            counts(&self.schemas),
            counts(&self.mutations),
            self.plan_static,
            self.plan_monitor,
            self.plan_refuted,
            self.violations.len(),
            kinds.join(",")
        )
    }
}

/// Derives case `i`'s seed from the campaign seed: a fixed odd multiplier
/// (the 64-bit golden ratio) decorrelates consecutive cases while keeping
/// every case reproducible as `gen_case(case_seed(seed, i))`.
pub fn case_seed(seed: u64, i: u64) -> u64 {
    seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Budget for minimizing one violation, in predicate evaluations. Each
/// evaluation re-plans and re-runs the candidate, so this bounds
/// worst-case shrink time to a couple of seconds.
const MINIMIZE_BUDGET: usize = 300;

/// Shrinks one violation. Oracle-free kinds re-derive the predicate from
/// the candidate program alone and may shrink sub-expressions;
/// oracle-bound kinds (wrong blame, missed divergence, …) only drop
/// whole top-level forms, re-judging the shrunk program against the
/// *same* construction oracle.
fn minimize_violation(v: &Violation, case: Option<&GenCase>, cfg: &FuzzConfig) -> Option<String> {
    let kind = v.kind;
    if kind.oracle_free() {
        let predicate = |candidate: &str| {
            if kind == ViolationKind::CompileError {
                return sct_lang::compile_program(candidate).is_err();
            }
            check_consistency(candidate, cfg)
                .iter()
                .any(|w| w.kind == kind)
        };
        return Some(minimize::minimize(
            &v.source,
            predicate,
            true,
            MINIMIZE_BUDGET,
        ));
    }
    let case = case?;
    let predicate = |candidate: &str| {
        let shrunk = GenCase {
            source: candidate.to_string(),
            ..case.clone()
        };
        check_case(&shrunk, cfg)
            .violations
            .iter()
            .any(|w| w.kind == kind)
    };
    Some(minimize::minimize(
        &v.source,
        predicate,
        false,
        MINIMIZE_BUDGET,
    ))
}

/// Runs a fuzz campaign: `opts.cases` seeded cases (stopping early at the
/// wall-clock budget), each generated by [`gen_case`] and judged by
/// [`check_case`]; violations are minimized before they land in the
/// report.
pub fn run_campaign(opts: &FuzzOptions, cfg: &FuzzConfig) -> FuzzReport {
    let start = Instant::now();
    let mut report = FuzzReport {
        requested: opts.cases,
        seed: opts.seed,
        schemas: SchemaKind::ALL.iter().map(|k| (k.name(), 0)).collect(),
        mutations: Mutation::ALL.iter().map(|m| (m.name(), 0)).collect(),
        ..FuzzReport::default()
    };
    for i in 0..opts.cases {
        if let Some(budget) = opts.budget {
            if start.elapsed() >= budget {
                break;
            }
        }
        let case = gen_case(case_seed(opts.seed, i));
        let case_report = check_case(&case, cfg);
        report.ran += 1;
        if let Some(slot) = report
            .schemas
            .iter_mut()
            .find(|(name, _)| *name == case.schema.name())
        {
            slot.1 += 1;
        }
        if let Some(slot) = report
            .mutations
            .iter_mut()
            .find(|(name, _)| *name == case.mutation.name())
        {
            slot.1 += 1;
        }
        match case.oracle {
            Oracle::Terminating => report.terminating += 1,
            Oracle::Diverging { .. } => report.diverging += 1,
        }
        report.plan_static += case_report.plan_static;
        report.plan_monitor += case_report.plan_monitor;
        report.plan_refuted += case_report.plan_refuted;
        for mut v in case_report.violations {
            if opts.minimize {
                v.minimized = minimize_violation(&v, Some(&case), cfg);
            }
            if opts.verbose {
                eprintln!("{v}");
            }
            report.violations.push(v);
        }
    }
    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Seeds are cheap enough to sweep a band in unit tests; the heavier
    /// sweeps live in `tests/` and in the CI fuzz step.
    #[test]
    fn small_campaign_is_clean() {
        let opts = FuzzOptions {
            seed: 7,
            cases: 12,
            budget: None,
            minimize: true,
            verbose: false,
        };
        let report = run_campaign(&opts, &FuzzConfig::default());
        assert_eq!(report.ran, 12);
        let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
        assert!(
            rendered.is_empty(),
            "violations:\n{}",
            rendered.join("\n\n")
        );
        let summary = report.summary_json();
        assert!(summary.contains("\"schema\":\"sct-fuzz/1\""), "{summary}");
        assert!(summary.contains("\"violations\":0"), "{summary}");
    }

    #[test]
    fn diverging_oracles_are_exercised() {
        // Across a seed band, both oracle polarities and several schemas
        // must appear — a generator that silently stopped producing
        // breaking mutations would hollow the campaign out.
        let mut terminating = 0;
        let mut diverging = 0;
        for i in 0..40 {
            match gen_case(case_seed(11, i)).oracle {
                Oracle::Terminating => terminating += 1,
                Oracle::Diverging { .. } => diverging += 1,
            }
        }
        assert!(terminating >= 5, "terminating {terminating}");
        assert!(diverging >= 5, "diverging {diverging}");
    }

    #[test]
    fn cases_reproduce_from_their_seed() {
        for i in 0..10 {
            let seed = case_seed(3, i);
            let a = gen_case(seed);
            let b = gen_case(seed);
            assert_eq!(a.source, b.source);
            assert_eq!(a.oracle, b.oracle);
        }
    }
}

//! The invariant harness: runs one program through every layer of the
//! system and asserts the full enforcement lattice.
//!
//! Per program, the harness checks:
//!
//! * **VM ≡ walker** — the flat-IR dispatch VM and the reference CEK
//!   machine agree on the rendered answer (blame labels and witnesses
//!   included), console output, and the semantic counters, under both
//!   table strategies and under the hybrid plan.
//! * **PIC ≡ no-PIC** — the VM re-run with inline caches disabled
//!   produces the identical outcome (answer, output, blame, semantic
//!   counters) under every monitored configuration, and the cached run's
//!   `pic_hits + pic_misses` accounts for every generic-site application.
//! * **warm ≡ cold** — re-planning against a warm [`MemStore`] is
//!   structurally equal to the cold plan, with zero verifier misses.
//! * **Static ⇒ no blame** — a function the planner discharged
//!   *unconditionally* is never blamed by any monitored run. (A
//!   domain-guarded discharge may legitimately fall back to the monitor
//!   on out-of-domain calls, so only trivial guards participate.)
//! * **Refuted ⇒ same-label blame** — when the planner refutes and the
//!   monitored run blames, they must name the same culprit and label
//!   (checked against the construction oracle for generated cases).
//! * **diverging ⇒ caught** — a case constructed to diverge must be
//!   blamed dynamically, inside the known define group, at the known
//!   label, within the fuel budget; fuel exhaustion under monitoring is
//!   itself a violation of Theorem 3.1.
//! * **terminating ⇒ clean** — a case constructed to terminate must
//!   produce a value (no blame, no refutation, no run-time error).
//!
//! [`check_case`] asserts all of it against a generated [`GenCase`]'s
//! oracle; [`check_consistency`] asserts the oracle-free subset on any
//! source text (the regression-replay entry point, and the predicate the
//! minimizer shrinks against).

use crate::gen::{GenCase, Oracle};
use sct_cache::MemStore;
use sct_core::monitor::TableStrategy;
use sct_core::plan::{Decision, EnforcementPlan, PlanDomain};
use sct_interp::{reference, EvalError, Machine, MachineConfig, Value};
use sct_lang::ast::Program;
use sct_symbolic::{plan_program_incremental, PlanCache, PlanConfig};
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

/// Harness configuration: the planner budget and the monitored-run fuel.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Planner configuration (a tight budget keeps throughput high; plan
    /// *quality* never affects soundness — unproven stays monitored).
    pub plan: PlanConfig,
    /// Step budget per machine run. Theorem 3.1 guarantees monitored runs
    /// terminate, so exhausting this generous budget is reported as a
    /// violation rather than tolerated.
    pub fuel: u64,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        let mut plan = PlanConfig::default();
        plan.verify.exec.step_budget = 30_000;
        plan.time_budget = Some(Duration::from_millis(200));
        FuzzConfig {
            plan,
            fuel: 2_000_000,
        }
    }
}

/// One rendered machine outcome: the full display of the answer (blame
/// labels and witnesses included), the console output, and the semantic
/// counters. Representation-bound counters (steps, high-water marks) are
/// deliberately excluded — they differ between the machines by design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// `ok: <value>` or `err: <error>`, fully rendered.
    pub answer: String,
    /// Buffered console output.
    pub output: String,
    /// Closure applications performed.
    pub applications: u64,
    /// Applications that reached the monitor.
    pub monitored_calls: u64,
    /// Calls whose size-change table was extended and checked.
    pub checks: u64,
    /// Monitored applications that took the static fast path.
    pub static_skips: u64,
    /// Rendered size-change violations, in discovery order.
    pub violations: Vec<String>,
}

fn render(r: &Result<Value, EvalError>) -> String {
    match r {
        Ok(v) => format!("ok: {}", v.to_write_string()),
        Err(e) => format!("err: {e}"),
    }
}

/// Runs the flat-IR VM, returning the rendered outcome and the result.
pub fn run_vm_full(prog: &Program, config: MachineConfig) -> (Outcome, Result<Value, EvalError>) {
    let mut m = Machine::new(prog, config);
    let r = m.run();
    let outcome = Outcome {
        answer: render(&r),
        output: m.output.clone(),
        applications: m.stats.applications,
        monitored_calls: m.stats.monitored_calls,
        checks: m.stats.checks,
        static_skips: m.stats.static_skips,
        violations: m.violations.iter().map(|v| v.to_string()).collect(),
    };
    (outcome, r)
}

/// Runs the reference CEK walker, returning the rendered outcome and the
/// result.
pub fn run_reference_full(
    prog: &Program,
    config: MachineConfig,
) -> (Outcome, Result<Value, EvalError>) {
    let mut m = reference::Machine::new(prog, config);
    let r = m.run();
    let outcome = Outcome {
        answer: render(&r),
        output: m.output.clone(),
        applications: m.stats.applications,
        monitored_calls: m.stats.monitored_calls,
        checks: m.stats.checks,
        static_skips: m.stats.static_skips,
        violations: m.violations.iter().map(|v| v.to_string()).collect(),
    };
    (outcome, r)
}

/// Runs the flat-IR VM under `config` and returns the rendered outcome.
pub fn run_vm(prog: &Program, config: MachineConfig) -> Outcome {
    run_vm_full(prog, config).0
}

/// Runs the flat-IR VM and returns the rendered outcome together with the
/// raw machine counters — the form the PIC-transparency checks use, since
/// `Outcome` deliberately excludes the cache-bound counters
/// (`generic_calls`, `pic_hits`, `pic_misses`, `pic_invalidations`): the
/// reference walker has no inline caches to compare them against.
pub fn run_vm_stats(prog: &Program, config: MachineConfig) -> (Outcome, sct_interp::Stats) {
    let mut m = Machine::new(prog, config);
    let r = m.run();
    let outcome = Outcome {
        answer: render(&r),
        output: m.output.clone(),
        applications: m.stats.applications,
        monitored_calls: m.stats.monitored_calls,
        checks: m.stats.checks,
        static_skips: m.stats.static_skips,
        violations: m.violations.iter().map(|v| v.to_string()).collect(),
    };
    (outcome, m.stats)
}

/// Asserts PIC transparency on one program/config: the VM with inline
/// caches disabled must produce the *identical* outcome (answer, output,
/// blame, and semantic counters) as the VM with caches enabled, the
/// enabled run's `pic_hits + pic_misses` must account for every
/// `Generic`-site application, and the disabled run must never touch a
/// cache. Returns the PIC-on outcome so callers can chain the usual
/// VM ≡ walker comparison without a third run.
pub fn assert_pic_transparent(prog: &Program, config: &MachineConfig, what: &str) -> Outcome {
    let (on, on_stats) = run_vm_stats(prog, config.clone());
    let off_config = MachineConfig {
        disable_pics: true,
        ..config.clone()
    };
    let (off, off_stats) = run_vm_stats(prog, off_config);
    assert_eq!(on, off, "{what}: PIC-on and PIC-off outcomes diverge");
    assert_eq!(
        on_stats.pic_hits + on_stats.pic_misses,
        on_stats.generic_calls,
        "{what}: PIC probes must account for every generic-site application"
    );
    assert_eq!(
        (
            off_stats.pic_hits,
            off_stats.pic_misses,
            off_stats.pic_invalidations
        ),
        (0, 0, 0),
        "{what}: disabled caches must never be consulted"
    );
    on
}

/// Runs the reference walker under `config` and returns the rendered
/// outcome.
pub fn run_reference(prog: &Program, config: MachineConfig) -> Outcome {
    run_reference_full(prog, config).0
}

/// What a violated invariant was, in one word. Kinds are ordered roughly
/// by severity; [`ViolationKind::name`] is the stable kebab-case tag the
/// summary line and artifact filenames use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// The generator emitted a program the front end rejects.
    CompileError,
    /// VM and reference walker disagreed on an outcome.
    MachineMismatch,
    /// The VM with inline caches disabled disagreed with the cached VM,
    /// or the cache counters failed to reconcile (`pic_hits + pic_misses`
    /// must equal the generic-site application count).
    PicMismatch,
    /// Warm re-plan differed from the cold plan (or re-verified).
    CacheMismatch,
    /// A plan built with contract summaries (verified callees stubbed at
    /// their application sites) differed structurally from the
    /// full-descent plan — the summary machinery changed a verdict.
    SummaryMismatch,
    /// A monitored run exhausted its fuel — Theorem 3.1 says it must
    /// terminate (for generated cases: also a terminating oracle that ran
    /// away).
    UncaughtDivergence,
    /// The planner refuted a function in a program that runs clean (or
    /// refuted outside the constructed blame group).
    FalseRefutation,
    /// A function the planner discharged unconditionally was blamed.
    StaticBlamed,
    /// A constructed-diverging case completed without blame.
    MissedDivergence,
    /// Blame landed outside the constructed group, or at the wrong label,
    /// or refutation and dynamic blame disagreed.
    BlameMismatch,
    /// A constructed-terminating case was blamed at run time.
    UnexpectedBlame,
    /// A constructed-terminating case hit a run-time or contract error.
    UnexpectedOutcome,
}

impl ViolationKind {
    /// Stable kebab-case tag.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::CompileError => "compile-error",
            ViolationKind::MachineMismatch => "machine-mismatch",
            ViolationKind::PicMismatch => "pic-mismatch",
            ViolationKind::CacheMismatch => "cache-mismatch",
            ViolationKind::SummaryMismatch => "summary-mismatch",
            ViolationKind::UncaughtDivergence => "uncaught-divergence",
            ViolationKind::FalseRefutation => "false-refutation",
            ViolationKind::StaticBlamed => "static-blamed",
            ViolationKind::MissedDivergence => "missed-divergence",
            ViolationKind::BlameMismatch => "blame-mismatch",
            ViolationKind::UnexpectedBlame => "unexpected-blame",
            ViolationKind::UnexpectedOutcome => "unexpected-outcome",
        }
    }

    /// True when the kind is decidable from the program alone (no
    /// construction oracle needed) — these are the kinds
    /// [`check_consistency`] can re-derive, which in turn decides how far
    /// the minimizer may shrink (see `crate::minimize`).
    pub fn oracle_free(self) -> bool {
        matches!(
            self,
            ViolationKind::CompileError
                | ViolationKind::MachineMismatch
                | ViolationKind::PicMismatch
                | ViolationKind::CacheMismatch
                | ViolationKind::SummaryMismatch
                | ViolationKind::UncaughtDivergence
                | ViolationKind::FalseRefutation
                | ViolationKind::StaticBlamed
        )
    }
}

/// One violated invariant, with enough context to reproduce it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Human-readable description (run label, expected vs. got).
    pub detail: String,
    /// The offending program text.
    pub source: String,
    /// The generator seed, for generated cases.
    pub seed: Option<u64>,
    /// The delta-debugged program, once the minimizer has run.
    pub minimized: Option<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind.name(), self.detail)?;
        if let Some(seed) = self.seed {
            write!(f, " (seed {seed})")?;
        }
        let shown = self.minimized.as_deref().unwrap_or(&self.source);
        write!(f, "\n{shown}")
    }
}

/// Per-case result: the plan split plus any violations.
#[derive(Debug, Clone, Default)]
pub struct CaseReport {
    /// `Static` decisions in the case's plan.
    pub plan_static: u64,
    /// `Monitor` decisions in the case's plan.
    pub plan_monitor: u64,
    /// `Refuted` decisions in the case's plan.
    pub plan_refuted: u64,
    /// Violated invariants (empty on a clean case).
    pub violations: Vec<Violation>,
}

/// One monitored run pair: both machines' outcomes plus the VM's result
/// for structured inspection (once machine agreement is checked, either
/// result is canonical).
struct RunPair {
    label: &'static str,
    vm: Outcome,
    walker: Outcome,
    result: Result<Value, EvalError>,
    /// The VM re-run with inline caches disabled — must match `vm`.
    vm_pic_off: Outcome,
    /// Whether `pic_hits + pic_misses == generic_calls` held on the
    /// cached run (and the uncached run never touched a cache).
    pic_accounted: bool,
}

impl RunPair {
    fn fuel_out(&self) -> bool {
        // The walker's fuel exhaustion renders identically, so matching
        // either machine's answer string covers both.
        matches!(self.result, Err(EvalError::OutOfFuel))
            || self.walker.answer == render(&Err(EvalError::OutOfFuel))
    }
}

/// Everything [`check_case`] / [`check_consistency`] judge: the cold
/// plan, the warm-replan verdict, and the three monitored run pairs
/// (imperative, continuation-mark, hybrid-with-plan).
struct Evaluated {
    plan: Rc<EnforcementPlan>,
    warm_structural: bool,
    warm_misses: usize,
    /// Whether the plan built with contract summaries enabled equals the
    /// full-descent plan (summaries force the same verdicts by
    /// construction; this is the differential check that they did).
    summary_structural: bool,
    runs: Vec<RunPair>,
}

fn evaluate(source: &str, cfg: &FuzzConfig) -> Result<Evaluated, Violation> {
    let prog = sct_lang::compile_program(source).map_err(|e| Violation {
        kind: ViolationKind::CompileError,
        detail: format!("compile error: {e}"),
        source: source.to_string(),
        seed: None,
        minimized: None,
    })?;
    // Cold plan against a fresh store, then a warm re-plan against the
    // same store: the warm plan must be structurally identical and must
    // not re-run the verifier.
    let mut store = MemStore::new();
    let (plan, _) = plan_program_incremental(&prog, &cfg.plan, &mut PlanCache::new(), &mut store);
    let (warm, warm_stats) =
        plan_program_incremental(&prog, &cfg.plan, &mut PlanCache::new(), &mut store);
    // Differential A/B on the summary machinery: the same program planned
    // with the opposite `summaries` setting (against a fresh store) must
    // produce a structurally identical plan — stubbing verified callees
    // is an optimization, never a verdict change.
    let flipped = PlanConfig {
        summaries: !cfg.plan.summaries,
        ..cfg.plan.clone()
    };
    let (alt, _) =
        plan_program_incremental(&prog, &flipped, &mut PlanCache::new(), &mut MemStore::new());
    let plan = Rc::new(plan);
    let fueled = |mut config: MachineConfig| {
        config.fuel = Some(cfg.fuel);
        config
    };
    let configs: Vec<(&'static str, MachineConfig)> = vec![
        (
            "imperative",
            fueled(MachineConfig::monitored(TableStrategy::Imperative)),
        ),
        (
            "cm",
            fueled(MachineConfig::monitored(TableStrategy::ContinuationMark)),
        ),
        (
            "hybrid",
            fueled(MachineConfig {
                plan: Some(plan.clone()),
                ..MachineConfig::monitored(TableStrategy::Imperative)
            }),
        ),
    ];
    let runs = configs
        .into_iter()
        .map(|(label, config)| {
            let mut m = Machine::new(&prog, config.clone());
            let result = m.run();
            let vm = Outcome {
                answer: render(&result),
                output: m.output.clone(),
                applications: m.stats.applications,
                monitored_calls: m.stats.monitored_calls,
                checks: m.stats.checks,
                static_skips: m.stats.static_skips,
                violations: m.violations.iter().map(|v| v.to_string()).collect(),
            };
            let (vm_pic_off, off_stats) = run_vm_stats(
                &prog,
                MachineConfig {
                    disable_pics: true,
                    ..config.clone()
                },
            );
            let pic_accounted = m.stats.pic_hits + m.stats.pic_misses == m.stats.generic_calls
                && (
                    off_stats.pic_hits,
                    off_stats.pic_misses,
                    off_stats.pic_invalidations,
                ) == (0, 0, 0);
            let walker = run_reference(&prog, config);
            RunPair {
                label,
                vm,
                walker,
                result,
                vm_pic_off,
                pic_accounted,
            }
        })
        .collect();
    Ok(Evaluated {
        warm_structural: warm.structurally_eq(plan.as_ref()),
        warm_misses: warm_stats.misses(),
        summary_structural: alt.structurally_eq(plan.as_ref()),
        plan,
        runs,
    })
}

/// The names of decisions discharged with a trivial (all-`Any`) guard:
/// the fast path is unconditional for these, so *no* monitored run may
/// ever blame them. Guarded discharges are excluded — an out-of-domain
/// call legitimately falls back to the monitor.
fn unconditional_static(plan: &EnforcementPlan) -> Vec<&str> {
    plan.decisions
        .iter()
        .filter(|d| match &d.decision {
            Decision::Static { guard } => guard.iter().all(|g| *g == PlanDomain::Any),
            _ => false,
        })
        .map(|d| d.name.as_str())
        .collect()
}

fn violation(kind: ViolationKind, detail: String, source: &str) -> Violation {
    Violation {
        kind,
        detail,
        source: source.to_string(),
        seed: None,
        minimized: None,
    }
}

/// The oracle-free invariants on an evaluated program.
fn consistency_violations(ev: &Evaluated, source: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    if !ev.warm_structural || ev.warm_misses > 0 {
        out.push(violation(
            ViolationKind::CacheMismatch,
            format!(
                "warm re-plan {} cold plan ({} verifier misses on warm replay)",
                if ev.warm_structural {
                    "structurally equals"
                } else {
                    "differs from"
                },
                ev.warm_misses
            ),
            source,
        ));
    }
    if !ev.summary_structural {
        out.push(violation(
            ViolationKind::SummaryMismatch,
            "plan with contract summaries differs structurally from the full-descent plan"
                .to_string(),
            source,
        ));
    }
    let static_names = unconditional_static(&ev.plan);
    for run in &ev.runs {
        if run.fuel_out() {
            out.push(violation(
                ViolationKind::UncaughtDivergence,
                format!(
                    "{}: monitored run exhausted its fuel budget (Theorem 3.1 says it terminates)",
                    run.label
                ),
                source,
            ));
            continue;
        }
        if run.vm != run.walker {
            out.push(violation(
                ViolationKind::MachineMismatch,
                format!(
                    "{}: VM and walker disagree\n  vm:     {:?}\n  walker: {:?}",
                    run.label, run.vm, run.walker
                ),
                source,
            ));
        }
        if run.vm != run.vm_pic_off {
            out.push(violation(
                ViolationKind::PicMismatch,
                format!(
                    "{}: PIC-on and PIC-off VM runs disagree\n  on:  {:?}\n  off: {:?}",
                    run.label, run.vm, run.vm_pic_off
                ),
                source,
            ));
        }
        if !run.pic_accounted {
            out.push(violation(
                ViolationKind::PicMismatch,
                format!(
                    "{}: pic_hits + pic_misses failed to account for every \
                     generic-site application (or a disabled cache was consulted)",
                    run.label
                ),
                source,
            ));
        }
        if let Err(EvalError::Sc(info)) = &run.result {
            if static_names.contains(&info.function.as_str()) {
                out.push(violation(
                    ViolationKind::StaticBlamed,
                    format!(
                        "{}: {} was discharged unconditionally yet blamed at run time",
                        run.label, info.function
                    ),
                    source,
                ));
            }
        }
    }
    // A refuted plan for a program whose monitored run completes with a
    // value: the refutation witnessed a recursion the program actually
    // exercises cleanly. (A refuted function the program never *applies*
    // is deliberately stricter than the monitor — regression sources must
    // apply what they define, see tests/fuzz_regressions/.)
    let clean = ev
        .runs
        .iter()
        .any(|r| r.label == "imperative" && r.result.is_ok());
    if clean {
        if let Some(d) = ev.plan.refuted().next() {
            out.push(violation(
                ViolationKind::FalseRefutation,
                format!(
                    "planner refuted {} but the monitored run completed cleanly",
                    d.name
                ),
                source,
            ));
        }
    }
    out
}

/// Checks the oracle-free invariant subset on arbitrary source text:
/// VM ≡ walker under three monitored configurations, warm ≡ cold
/// planning, no fuel exhaustion under monitoring, no blame on
/// unconditional static discharges, no refutation of a cleanly
/// completing program. This is the regression-replay entry point.
pub fn check_consistency(source: &str, cfg: &FuzzConfig) -> Vec<Violation> {
    match evaluate(source, cfg) {
        Ok(ev) => consistency_violations(&ev, source),
        Err(v) => vec![v],
    }
}

/// Checks the full lattice on a generated case: everything
/// [`check_consistency`] checks, plus the construction oracle
/// (terminating ⇒ clean value; diverging ⇒ blamed in-group at the known
/// label, with refutation — when the planner finds one — agreeing with
/// the dynamic blame).
pub fn check_case(case: &GenCase, cfg: &FuzzConfig) -> CaseReport {
    let mut report = CaseReport::default();
    let ev = match evaluate(&case.source, cfg) {
        Ok(ev) => ev,
        Err(mut v) => {
            v.seed = Some(case.seed);
            report.violations.push(v);
            return report;
        }
    };
    report.plan_static = ev.plan.count("static") as u64;
    report.plan_monitor = ev.plan.count("monitor") as u64;
    report.plan_refuted = ev.plan.count("refuted") as u64;
    let mut violations = consistency_violations(&ev, &case.source);

    match &case.oracle {
        Oracle::Terminating => {
            if let Some(d) = ev.plan.refuted().next() {
                violations.push(violation(
                    ViolationKind::FalseRefutation,
                    format!(
                        "planner refuted {} in a constructed-terminating case ({} {})",
                        d.name,
                        case.schema.name(),
                        case.mutation.name()
                    ),
                    &case.source,
                ));
            }
            for run in &ev.runs {
                match &run.result {
                    Ok(_) => {}
                    Err(EvalError::OutOfFuel) => {} // already UncaughtDivergence
                    Err(EvalError::Sc(info)) => violations.push(violation(
                        ViolationKind::UnexpectedBlame,
                        format!(
                            "{}: constructed-terminating case blamed {} ({} {})",
                            run.label,
                            info.function,
                            case.schema.name(),
                            case.mutation.name()
                        ),
                        &case.source,
                    )),
                    Err(e) => violations.push(violation(
                        ViolationKind::UnexpectedOutcome,
                        format!(
                            "{}: constructed-terminating case errored: {e} ({} {})",
                            run.label,
                            case.schema.name(),
                            case.mutation.name()
                        ),
                        &case.source,
                    )),
                }
            }
        }
        Oracle::Diverging { group, label } => {
            // Refutation, when the planner achieves one, must stay inside
            // the broken group and agree with the dynamic blame label.
            for d in ev.plan.refuted() {
                if !group.iter().any(|g| g == &d.name) {
                    violations.push(violation(
                        ViolationKind::FalseRefutation,
                        format!(
                            "planner refuted {} outside the broken group {:?}",
                            d.name, group
                        ),
                        &case.source,
                    ));
                }
            }
            for run in &ev.runs {
                match &run.result {
                    Err(EvalError::OutOfFuel) => {} // already UncaughtDivergence
                    Err(EvalError::Sc(info)) => {
                        if !group.iter().any(|g| g == &info.function) {
                            violations.push(violation(
                                ViolationKind::BlameMismatch,
                                format!(
                                    "{}: blamed {} outside the broken group {:?}",
                                    run.label, info.function, group
                                ),
                                &case.source,
                            ));
                        }
                        if info.blame.as_deref() != label.as_deref() {
                            violations.push(violation(
                                ViolationKind::BlameMismatch,
                                format!(
                                    "{}: blame label {:?}, oracle says {:?}",
                                    run.label, info.blame, label
                                ),
                                &case.source,
                            ));
                        }
                    }
                    Ok(v) => violations.push(violation(
                        ViolationKind::MissedDivergence,
                        format!(
                            "{}: constructed-diverging case ({} {}) completed with {}",
                            run.label,
                            case.schema.name(),
                            case.mutation.name(),
                            v.to_write_string()
                        ),
                        &case.source,
                    )),
                    Err(e) => violations.push(violation(
                        ViolationKind::MissedDivergence,
                        format!(
                            "{}: constructed-diverging case ({} {}) stopped early: {e}",
                            run.label,
                            case.schema.name(),
                            case.mutation.name()
                        ),
                        &case.source,
                    )),
                }
            }
        }
    }
    for v in &mut violations {
        v.seed = Some(case.seed);
    }
    report.violations = violations;
    report
}

//! Delta-debugging minimizer for fuzzer counterexamples.
//!
//! Two passes, both driven by a caller-supplied *failing* predicate
//! (true ⇔ the candidate still reproduces the violation):
//!
//! 1. **Form removal** — greedily delete whole top-level forms
//!    (`define`s and entry calls) while the program still fails, to a
//!    fixpoint.
//! 2. **Sub-expression reduction** — for every remaining sub-expression,
//!    try replacing it with each of its own sub-expressions (hoisting)
//!    and with the literal `0`, to a fixpoint.
//!
//! Pass 2 can rewrite a program arbitrarily, so it is only sound for
//! predicates decidable from the program alone
//! ([`ViolationKind::oracle_free`](crate::ViolationKind::oracle_free));
//! a violation judged against a construction oracle (e.g. *this case
//! should diverge*) shrinks with pass 1 only, which preserves the target
//! group verbatim.
//!
//! The predicate budget bounds total work: each candidate evaluation
//! re-plans and re-runs the program six times, so the default budget of a
//! few hundred keeps minimization under a second or two per violation.

use sct_sexpr::{parse_all, Datum};

/// Renders forms back to source, one per line (the `Datum` display is a
/// parse round-trip).
fn render(forms: &[Datum]) -> String {
    let lines: Vec<String> = forms.iter().map(|f| f.to_string()).collect();
    lines.join("\n")
}

/// Greedy form-removal pass: repeatedly delete any single top-level form
/// whose removal keeps the predicate failing.
fn shrink_forms(forms: &mut Vec<Datum>, failing: &mut dyn FnMut(&str) -> bool, budget: &mut usize) {
    let mut progress = true;
    while progress && *budget > 0 {
        progress = false;
        let mut i = 0;
        while i < forms.len() && *budget > 0 {
            if forms.len() == 1 {
                return;
            }
            let removed = forms.remove(i);
            *budget -= 1;
            if failing(&render(forms)) {
                progress = true; // keep the removal, retry same index
            } else {
                forms.insert(i, removed);
                i += 1;
            }
        }
    }
}

/// All list positions inside `d`, as index paths (root excluded).
fn paths(d: &Datum, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if let Datum::List(items) = d {
        for (i, item) in items.iter().enumerate() {
            prefix.push(i);
            out.push(prefix.clone());
            paths(item, prefix, out);
            prefix.pop();
        }
    }
}

fn get<'a>(d: &'a Datum, path: &[usize]) -> Option<&'a Datum> {
    let mut cur = d;
    for &i in path {
        match cur {
            Datum::List(items) => cur = items.get(i)?,
            _ => return None,
        }
    }
    Some(cur)
}

fn replace(d: &mut Datum, path: &[usize], with: Datum) -> bool {
    let mut cur = d;
    for &i in path {
        match cur {
            Datum::List(items) => match items.get_mut(i) {
                Some(next) => cur = next,
                None => return false,
            },
            _ => return false,
        }
    }
    *cur = with;
    true
}

/// Sub-expression reduction pass: replace any node with one of its own
/// children, or with `0`, while the predicate keeps failing.
fn shrink_exprs(forms: &mut [Datum], failing: &mut dyn FnMut(&str) -> bool, budget: &mut usize) {
    let mut progress = true;
    while progress && *budget > 0 {
        progress = false;
        for fi in 0..forms.len() {
            // The empty path is the form itself: a whole form may be
            // replaced by one of its own sub-expressions.
            let mut all_paths = vec![Vec::new()];
            paths(&forms[fi], &mut Vec::new(), &mut all_paths);
            for path in all_paths {
                if *budget == 0 {
                    return;
                }
                let Some(node) = get(&forms[fi], &path) else {
                    continue;
                };
                // Candidate replacements: each child (hoist), then 0.
                let mut candidates: Vec<Datum> = match node {
                    Datum::List(items) => items.clone(),
                    _ => Vec::new(),
                };
                candidates.push(Datum::Int(0));
                let original = node.clone();
                let mut replaced = false;
                for cand in candidates {
                    if cand == original {
                        continue;
                    }
                    let saved = forms[fi].clone();
                    if !replace(&mut forms[fi], &path, cand) {
                        forms[fi] = saved;
                        continue;
                    }
                    *budget = budget.saturating_sub(1);
                    if failing(&render(forms)) {
                        progress = true;
                        replaced = true;
                        break;
                    }
                    forms[fi] = saved;
                }
                if replaced {
                    // Paths under this form changed; recompute them.
                    break;
                }
            }
        }
    }
}

/// Delta-debugs `source` against `failing` (which must return true on
/// `source` itself for minimization to make sense — if it does not, the
/// input is returned unchanged). `expr_level` enables the sub-expression
/// pass; `budget` bounds the number of predicate evaluations.
pub fn minimize(
    source: &str,
    mut failing: impl FnMut(&str) -> bool,
    expr_level: bool,
    mut budget: usize,
) -> String {
    let Ok(mut forms) = parse_all(source) else {
        return source.to_string();
    };
    if forms.is_empty() || !failing(&render(&forms)) {
        return source.to_string();
    }
    shrink_forms(&mut forms, &mut failing, &mut budget);
    if expr_level {
        shrink_exprs(&mut forms, &mut failing, &mut budget);
        // Expression shrinking may have made more forms removable.
        shrink_forms(&mut forms, &mut failing, &mut budget);
    }
    render(&forms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_irrelevant_forms() {
        let source = "(define (f x) x)\n(define (g y) (g y))\n(f 1)\n(g 2)";
        let min = minimize(source, |s| s.contains("(g 2)"), false, 200);
        assert_eq!(min, "(g 2)");
    }

    #[test]
    fn shrinks_subexpressions() {
        let source = "(+ (* 3 4) (- 10 (+ 5 5)))";
        // "still contains a multiplication call" — hoists the (* …) node
        // to the root and zeroes its operands.
        let min = minimize(source, |s| s.contains("(*"), true, 400);
        assert_eq!(min, "(* 0 0)");
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let source = "(+ 1 2)";
        assert_eq!(minimize(source, |_| false, true, 100), source);
    }
}

//! Program generation with verdicts known *by construction*.
//!
//! Two generators live here:
//!
//! * [`ExprGen`] — the free-form well-formed-program generator the
//!   differential oracle sweep (`tests/oracle.rs`) has always used. Its
//!   programs exercise the compilation corners (assignment conversion,
//!   cell captures, slot reuse, variadics, `apply`, `terminating/c`
//!   extents) and carry no termination oracle beyond "monitoring
//!   terminates it" (Theorem 3.1).
//!
//! * [`gen_case`] — the fuzzer's *schema* generator: structurally
//!   descending recursion schemas (nat, accumulator, list, tree, mutual,
//!   higher-order combinators, megamorphic combinator towers) that
//!   terminate by construction, optionally
//!   transformed by one [`Mutation`] with a declared
//!   effect. The resulting [`GenCase`] carries an [`Oracle`]: either
//!   *terminating* or *diverging with blame inside a known define group,
//!   at a known label*.
//!
//! Schema design rules that keep the oracles honest:
//!
//! * Terminating instances must be **monitor-clean**, not merely
//!   terminating: every observed nested call sequence must descend under
//!   the default order (which compares integers by absolute value), or
//!   the monitor would be *right* to blame them. A descent step of `D`
//!   therefore pairs with a base guard `(< n D)` so values never leave
//!   the naturals.
//! * Descent-breaking mutations apply to **every** recursive call / base
//!   case of the target's strongly connected group — breaking only one
//!   call of a mutual pair still terminates through the other.
//! * Base-dropping and guard-unsatisfying mutations are restricted to
//!   numeric-domain schemas: on a list schema, dropping the base case
//!   produces `errorRT` (`cdr` of `'()`), not divergence.
//! * The diverging target's entry call is emitted *last*, so every other
//!   instance completes first and blame falls inside the target group.

use sct_corpus::workloads::Lcg;

/// Seeded PRNG for the schema generator, wrapping the corpus [`Lcg`] so
/// every case reproduces from its `u64` seed.
pub struct Rng {
    lcg: Lcg,
}

impl Rng {
    /// A generator seeded deterministically.
    pub fn new(seed: u64) -> Rng {
        Rng {
            lcg: Lcg::new(seed),
        }
    }

    /// Uniform-ish draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.lcg.next_u64() % n
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// One element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

// ---------------------------------------------------------------------
// The free-form generator shared with the differential oracle sweep.
// ---------------------------------------------------------------------

/// Random well-formed λSCT program generator. Driven by the corpus LCG so
/// every case reproduces from its seed. The grammar deliberately leans on
/// the constructs whose compilation is subtle: captured-and-mutated
/// locals (assignment conversion), `letrec` closures (cell captures),
/// shadowing `let`s (slot reuse), variadic lambdas, `apply`, first-class
/// lambdas flowing to helpers (generic call sites), and `terminating/c`
/// extents (blame + table seeding). Generated programs are terminating
/// under full monitoring (Theorem 3.1) but carry no constructed verdict;
/// for verdict-bearing programs use [`gen_case`].
pub struct ExprGen {
    rng: Lcg,
    fresh: u32,
}

impl ExprGen {
    /// A generator seeded deterministically.
    pub fn new(seed: u64) -> ExprGen {
        ExprGen {
            rng: Lcg::new(seed),
            fresh: 0,
        }
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.rng.next_u64() % n
    }

    fn fresh_var(&mut self) -> String {
        self.fresh += 1;
        format!("v{}", self.fresh)
    }

    /// An atomic expression over the variables in scope.
    pub fn atom(&mut self, scope: &[String], globals: &[String]) -> String {
        match self.pick(6) {
            0 | 1 if !scope.is_empty() => {
                let i = self.pick(scope.len() as u64) as usize;
                scope[i].clone()
            }
            2 if !globals.is_empty() => {
                let i = self.pick(globals.len() as u64) as usize;
                globals[i].clone()
            }
            3 => "'()".to_string(),
            4 => format!("{}", self.pick(5)),
            _ => format!("{}", self.pick(3) + 1),
        }
    }

    /// An expression of bounded depth over the variables in scope.
    pub fn expr(&mut self, depth: u32, scope: &[String], globals: &[String]) -> String {
        if depth == 0 {
            return self.atom(scope, globals);
        }
        let d = depth - 1;
        match self.pick(14) {
            0 => {
                let a = self.expr(d, scope, globals);
                let b = self.expr(d, scope, globals);
                let op = ["+", "-", "*"][self.pick(3) as usize];
                format!("({op} {a} {b})")
            }
            1 => {
                let a = self.expr(d, scope, globals);
                let b = self.expr(d, scope, globals);
                format!("(cons {a} {b})")
            }
            2 => {
                // May be a run-time type error on non-pairs: both machines
                // must produce the identical errorRT.
                let a = self.expr(d, scope, globals);
                let op = ["car", "cdr"][self.pick(2) as usize];
                format!("({op} {a})")
            }
            3 => {
                let c = self.expr(d, scope, globals);
                let t = self.expr(d, scope, globals);
                let e = self.expr(d, scope, globals);
                let p = ["zero?", "null?", "pair?"][self.pick(3) as usize];
                format!("(if ({p} {c}) {t} {e})")
            }
            4 => {
                // let with shadow-prone bindings (slot reuse on the VM).
                let x = self.fresh_var();
                let y = self.fresh_var();
                let ix = self.expr(d, scope, globals);
                let iy = self.expr(d, scope, globals);
                let mut inner = scope.to_vec();
                inner.push(x.clone());
                inner.push(y.clone());
                let body = self.expr(d, &inner, globals);
                format!("(let ([{x} {ix}] [{y} {iy}]) {body})")
            }
            5 => {
                // Immediately applied lambda capturing the scope.
                let v = self.fresh_var();
                let arg = self.expr(d, scope, globals);
                let mut inner = scope.to_vec();
                inner.push(v.clone());
                let body = self.expr(d, &inner, globals);
                format!("((lambda ({v}) {body}) {arg})")
            }
            6 => {
                // Mutated captured binding: assignment conversion.
                let x = self.fresh_var();
                let init = self.expr(d, scope, globals);
                let mut inner = scope.to_vec();
                inner.push(x.clone());
                let delta = self.expr(d, &inner, globals);
                let body = self.expr(d, &inner, globals);
                format!("(let ([{x} {init}]) (begin ((lambda () (set! {x} {delta}))) {body}))")
            }
            7 => {
                // letrec with a self-recursive, structurally descending
                // loop (cell capture; monitored but terminating).
                let f = self.fresh_var();
                let n = self.fresh_var();
                let mut inner = scope.to_vec();
                inner.push(n.clone());
                let base = self.expr(d, &inner, globals);
                let acc = self.expr(d, &inner, globals);
                let arg = self.pick(4) + 1;
                format!(
                    "(letrec ([{f} (lambda ({n}) (if (zero? {n}) {base} (+ {acc} ({f} (- {n} 1)))))]) ({f} {arg}))"
                )
            }
            8 => {
                let parts: Vec<String> = (0..=self.pick(2) + 1)
                    .map(|_| self.expr(d, scope, globals))
                    .collect();
                format!("(begin {})", parts.join(" "))
            }
            9 => {
                // Variadic lambda + rest list.
                let v = self.fresh_var();
                let args: Vec<String> = (0..self.pick(3))
                    .map(|_| self.expr(d, scope, globals))
                    .collect();
                format!("((lambda {v} (length {v})) {})", args.join(" "))
            }
            10 => {
                // apply with a constructed argument list.
                let a = self.expr(d, scope, globals);
                let b = self.expr(d, scope, globals);
                format!("(apply + (list {a} {b}))")
            }
            11 if !globals.is_empty() => {
                // Call a previously defined global (specialized site).
                let g = &globals[self.pick(globals.len() as u64) as usize];
                let a = self.expr(d, scope, globals);
                format!("({g} {a})")
            }
            12 => {
                // terminating/c extent around a closure, applied once.
                let v = self.fresh_var();
                let mut inner = scope.to_vec();
                inner.push(v.clone());
                let body = self.expr(d, &inner, globals);
                let arg = self.expr(d, scope, globals);
                format!("((terminating/c (lambda ({v}) {body})) {arg})")
            }
            _ => self.atom(scope, globals),
        }
    }

    /// A whole program: helper defines (arity 1, descending recursion with
    /// a generated base/step so they are callable from later code), then
    /// one top-level expression.
    pub fn program(&mut self, seed_tag: u64) -> String {
        let mut globals: Vec<String> = Vec::new();
        let mut out = String::new();
        let defines = self.pick(3);
        for i in 0..defines {
            let name = format!("g{seed_tag}_{i}");
            let param = self.fresh_var();
            let scope = vec![param.clone()];
            let base = self.expr(1, &scope, &globals);
            let step = self.expr(2, &scope, &globals);
            out.push_str(&format!(
                "(define ({name} {param}) (if (zero? {param}) {base} (+ {step} ({name} (- {param} 1)))))\n"
            ));
            globals.push(name);
        }
        let body = self.expr(3, &[], &globals);
        out.push_str(&body);
        out
    }
}

// ---------------------------------------------------------------------
// Schema generator: programs with a constructed termination oracle.
// ---------------------------------------------------------------------

use crate::mutate::Mutation;

/// The structurally descending recursion schemas the generator emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaKind {
    /// Single-parameter descent on a natural number.
    Nat,
    /// Accumulator-passing: one descending parameter, one growing.
    Acc,
    /// `cdr`-descent on a list (plain recursion or a fold combinator).
    List,
    /// Binary `car`/`cdr` recursion on a pair tree with integer leaves.
    Tree,
    /// A mutually recursive pair, each forwarding to the other.
    Mutual,
    /// A higher-order iterate combinator threading a function argument.
    HigherOrder,
    /// A megamorphic combinator tower: one first-class call site driven
    /// by 3–6 distinct step globals, exercising inline-cache fill and
    /// overflow (and, under [`Mutation::SetRebind`], invalidation).
    Mega,
}

impl SchemaKind {
    /// Every schema, in the order the summary line reports them.
    pub const ALL: [SchemaKind; 7] = [
        SchemaKind::Nat,
        SchemaKind::Acc,
        SchemaKind::List,
        SchemaKind::Tree,
        SchemaKind::Mutual,
        SchemaKind::HigherOrder,
        SchemaKind::Mega,
    ];

    /// Stable name used in summaries and reports.
    pub fn name(self) -> &'static str {
        match self {
            SchemaKind::Nat => "nat",
            SchemaKind::Acc => "acc",
            SchemaKind::List => "list",
            SchemaKind::Tree => "tree",
            SchemaKind::Mutual => "mutual",
            SchemaKind::HigherOrder => "higher-order",
            SchemaKind::Mega => "mega",
        }
    }
}

/// The constructed termination verdict of a generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Oracle {
    /// Every instance descends structurally: the program terminates and a
    /// monitored run never blames.
    Terminating,
    /// The mutated target diverges: a monitored run must blame one of the
    /// `group` defines, at exactly `label` (the target's `terminating/c`
    /// party, or `None` when it is unwrapped).
    Diverging {
        /// The define names of the broken recursion group.
        group: Vec<String>,
        /// The blame label the monitor must report.
        label: Option<String>,
    },
}

/// One generated program plus everything the harness needs to judge it.
#[derive(Debug, Clone)]
pub struct GenCase {
    /// Seed this case reproduces from (`gen_case(seed)`).
    pub seed: u64,
    /// Program text.
    pub source: String,
    /// Schema of the mutation target.
    pub schema: SchemaKind,
    /// The mutation applied to the target (possibly [`Mutation::None`]).
    pub mutation: Mutation,
    /// The constructed verdict.
    pub oracle: Oracle,
}

/// One emitted schema instance.
struct Instance {
    /// The `define` form(s), newline-terminated.
    defines: String,
    /// Names of the defines (the blame group when this is the target).
    names: Vec<String>,
    /// The entry call exercising the instance.
    entry: String,
    /// `terminating/c` blame party, when the instance is wrapped.
    label: Option<String>,
}

/// Renders one function definition, optionally under a `terminating/c`
/// wrapper carrying `label`.
fn define_fn(name: &str, params: &[String], body: &str, label: &Option<String>) -> String {
    let params = params.join(" ");
    match label {
        Some(l) => format!("(define {name} (terminating/c (lambda ({params}) {body}) \"{l}\"))\n"),
        None => format!("(define ({name} {params}) {body})\n"),
    }
}

/// Half the instances get a `terminating/c` wrapper, so blame labels flow
/// through the whole lattice (plan blame, eager refutation, dynamic blame).
fn maybe_label(rng: &mut Rng, idx: usize) -> Option<String> {
    rng.chance(1, 2).then(|| format!("party-{idx}"))
}

/// A small arithmetic expression over `scope` — pure, call-free, and
/// closed under integers, so decorating bases/steps with it can never
/// disturb the call sequences the monitor observes.
fn num_expr(rng: &mut Rng, depth: u32, scope: &[&str]) -> String {
    if depth == 0 || rng.chance(1, 3) {
        return num_atom(rng, scope);
    }
    let op = *rng.pick(&["+", "-", "*"]);
    let a = num_expr(rng, depth - 1, scope);
    let b = num_expr(rng, depth - 1, scope);
    format!("({op} {a} {b})")
}

fn num_atom(rng: &mut Rng, scope: &[&str]) -> String {
    if !scope.is_empty() && rng.chance(1, 2) {
        rng.pick(scope).to_string()
    } else {
        rng.below(10).to_string()
    }
}

/// The base-case guard for a descent of `d` on parameter `n`:
/// `(< n d)` keeps every reachable value a natural (descending by `d`
/// from an in-domain entry can never overshoot into negatives, where the
/// absolute-value order would stop descending). [`Mutation::UnsatGuard`]
/// replaces it with a predicate no integer satisfies.
fn nat_guard(rng: &mut Rng, n: &str, d: u64, m: Mutation) -> String {
    match m {
        Mutation::UnsatGuard => format!("(pair? {n})"),
        _ if d == 1 && rng.chance(1, 2) => format!("(zero? {n})"),
        _ => format!("(< {n} {d})"),
    }
}

/// Entry argument for a descent of `d`: strictly above the guard, so a
/// descent-broken variant can never satisfy the base case on entry.
fn nat_entry(rng: &mut Rng, d: u64) -> u64 {
    d + 1 + rng.below(9)
}

/// Wraps `body` in a dead conditional whose taken branch is statically
/// false — the junk branch re-enters the recursion *without* descending,
/// so any layer that treated dead code as live would break the verdict.
fn dead_branch(rng: &mut Rng, self_call: &str, body: String) -> String {
    format!("(if (pair? {}) {} {})", rng.below(7), self_call, body)
}

/// Eta-expands a recursive call: `(f a…)` becomes
/// `((lambda (e…) (f e…)) a…)`. The intermediate λ participates in the
/// monitored call sequence; descent must survive the extra hop.
fn eta(name: &str, idx: usize, args: &[String]) -> String {
    let formals: Vec<String> = (0..args.len()).map(|i| format!("e{idx}_{i}")).collect();
    format!(
        "((lambda ({}) ({name} {})) {})",
        formals.join(" "),
        formals.join(" "),
        args.join(" ")
    )
}

/// A recursive call under the target mutation: `SwapArgSelf` replaces the
/// descending argument (at `desc_at`) with the unchanged parameter,
/// `EtaExpand` routes the call through an intermediate λ.
fn rec_call(
    name: &str,
    idx: usize,
    args: &[String],
    desc_param: &str,
    desc_at: usize,
    m: Mutation,
) -> String {
    let mut args = args.to_vec();
    if m == Mutation::SwapArgSelf {
        args[desc_at] = desc_param.to_string();
    }
    if m == Mutation::EtaExpand {
        eta(name, idx, &args)
    } else {
        format!("({name} {})", args.join(" "))
    }
}

fn emit_nat(rng: &mut Rng, idx: usize, m: Mutation) -> Instance {
    let mut name = format!("nat{idx}");
    if m == Mutation::Rename {
        name.push('r');
    }
    let n = format!("n{idx}");
    let d = 1 + rng.below(3);
    let guard = nat_guard(rng, &n, d, m);
    let base = num_expr(rng, 1, &[&n]);
    let step = num_expr(rng, 1, &[&n]);
    let rec = rec_call(&name, idx, &[format!("(- {n} {d})")], &n, 0, m);
    let recur = format!("({} {step} {rec})", *rng.pick(&["+", "*"]));
    let mut body = if m == Mutation::DropBase {
        recur
    } else {
        format!("(if {guard} {base} {recur})")
    };
    if m == Mutation::DeadBranch {
        body = dead_branch(rng, &format!("({name} {n})"), body);
    }
    let label = maybe_label(rng, idx);
    let entry = format!("({name} {})", nat_entry(rng, d));
    Instance {
        defines: define_fn(&name, &[n], &body, &label),
        names: vec![name],
        entry,
        label,
    }
}

fn emit_acc(rng: &mut Rng, idx: usize, m: Mutation) -> Instance {
    let mut name = format!("acc{idx}");
    if m == Mutation::Rename {
        name.push('r');
    }
    let n = format!("n{idx}");
    let a = format!("a{idx}");
    let d = 1 + rng.below(3);
    let guard = nat_guard(rng, &n, d, m);
    let base = if rng.chance(1, 2) {
        a.clone()
    } else {
        format!("(+ {a} {})", rng.below(10))
    };
    let delta = num_expr(rng, 1, &[&n]);
    // Argument permutation swaps the parameter order *and* every call
    // site (recursive and entry), so the descent position moves with it.
    let perm: [usize; 2] = if m == Mutation::PermuteArgs {
        [1, 0]
    } else {
        [0, 1]
    };
    let params_src = [n.clone(), a.clone()];
    let params: Vec<String> = perm.iter().map(|&i| params_src[i].clone()).collect();
    let args_src = [format!("(- {n} {d})"), format!("(+ {a} {delta})")];
    let args: Vec<String> = perm.iter().map(|&i| args_src[i].clone()).collect();
    let desc_at = perm.iter().position(|&i| i == 0).unwrap();
    let rec = rec_call(&name, idx, &args, &n, desc_at, m);
    let mut body = if m == Mutation::DropBase {
        rec.clone()
    } else {
        format!("(if {guard} {base} {rec})")
    };
    if m == Mutation::DeadBranch {
        body = dead_branch(rng, &format!("({name} {})", params.join(" ")), body);
    }
    let label = maybe_label(rng, idx);
    let entry_src = [nat_entry(rng, d).to_string(), rng.below(10).to_string()];
    let entry_args: Vec<String> = perm.iter().map(|&i| entry_src[i].clone()).collect();
    let entry = format!("({name} {})", entry_args.join(" "));
    Instance {
        defines: define_fn(&name, &params, &body, &label),
        names: vec![name],
        entry,
        label,
    }
}

/// A literal list of small integers, `(len ≥ 1)`.
fn list_literal(rng: &mut Rng) -> String {
    let len = 1 + rng.below(6);
    let items: Vec<String> = (0..len).map(|_| rng.below(100).to_string()).collect();
    format!("(list {})", items.join(" "))
}

fn emit_list(rng: &mut Rng, idx: usize, m: Mutation) -> Instance {
    let mut name = format!("lst{idx}");
    if m == Mutation::Rename {
        name.push('r');
    }
    let l = format!("l{idx}");
    let label = maybe_label(rng, idx);
    if rng.chance(1, 2) {
        // Plain cdr-descent: sum-like fold written recursively.
        let car = format!("(car {l})");
        let base = rng.below(10).to_string();
        let step = num_expr(rng, 1, &[&car]);
        let rec = rec_call(&name, idx, &[format!("(cdr {l})")], &l, 0, m);
        let mut body = format!("(if (null? {l}) {base} (+ {step} {rec}))");
        if m == Mutation::DeadBranch {
            body = dead_branch(rng, &format!("({name} {l})"), body);
        }
        let entry = format!("({name} {})", list_literal(rng));
        Instance {
            defines: define_fn(&name, &[l], &body, &label),
            names: vec![name],
            entry,
            label,
        }
    } else {
        // Fold combinator: a function argument threaded through the
        // descent — the higher-order shape over lists.
        let f = format!("f{idx}");
        let a = format!("a{idx}");
        let args = vec![
            f.clone(),
            format!("({f} {a} (car {l}))"),
            format!("(cdr {l})"),
        ];
        let rec = rec_call(&name, idx, &args, &l, 2, m);
        let mut body = format!("(if (null? {l}) {a} {rec})");
        if m == Mutation::DeadBranch {
            body = dead_branch(rng, &format!("({name} {f} {a} {l})"), body);
        }
        let op = *rng.pick(&["+", "*", "max"]);
        let entry = format!(
            "({name} (lambda (p{idx} q{idx}) ({op} p{idx} q{idx})) {} {})",
            rng.below(10),
            list_literal(rng)
        );
        Instance {
            defines: define_fn(&name, &[f, a, l], &body, &label),
            names: vec![name],
            entry,
            label,
        }
    }
}

/// A pair tree with integer leaves; the root is always a pair so a
/// descent-broken variant recurs at least once.
fn tree_literal(rng: &mut Rng, depth: u32) -> String {
    if depth == 0 || rng.chance(1, 3) {
        rng.below(10).to_string()
    } else {
        format!(
            "(cons {} {})",
            tree_literal(rng, depth - 1),
            tree_literal(rng, depth - 1)
        )
    }
}

fn emit_tree(rng: &mut Rng, idx: usize, m: Mutation) -> Instance {
    let mut name = format!("tre{idx}");
    if m == Mutation::Rename {
        name.push('r');
    }
    let t = format!("t{idx}");
    let leaf = num_expr(rng, 1, &[&t]);
    let left = rec_call(&name, idx, &[format!("(car {t})")], &t, 0, m);
    let right = rec_call(&name, idx, &[format!("(cdr {t})")], &t, 0, m);
    let mut body = format!("(if (pair? {t}) (+ {left} {right}) {leaf})");
    if m == Mutation::DeadBranch {
        body = dead_branch(rng, &format!("({name} {t})"), body);
    }
    let label = maybe_label(rng, idx);
    let depth = 2 + rng.below(2) as u32;
    let entry = format!(
        "({name} (cons {} {}))",
        tree_literal(rng, depth),
        tree_literal(rng, depth)
    );
    Instance {
        defines: define_fn(&name, &[t], &body, &label),
        names: vec![name],
        entry,
        label,
    }
}

fn emit_mutual(rng: &mut Rng, idx: usize, m: Mutation) -> Instance {
    let suffix = if m == Mutation::Rename { "r" } else { "" };
    let ev = format!("ev{idx}{suffix}");
    let od = format!("od{idx}{suffix}");
    let n = format!("n{idx}");
    // Descent-breaking mutations hit *both* halves of the cycle: breaking
    // only one still terminates through the other's decrement.
    let guard_ev = nat_guard(rng, &n, 1, m);
    let guard_od = nat_guard(rng, &n, 1, m);
    let base_ev = rng.below(10).to_string();
    let base_od = num_expr(rng, 1, &[&n]);
    let call_od = rec_call(&od, idx, &[format!("(- {n} 1)")], &n, 0, m);
    let call_ev = {
        // Only the head's forwarding call is eta-expanded; the cycle must
        // still descend through the extra λ.
        let m_back = if m == Mutation::EtaExpand {
            Mutation::None
        } else {
            m
        };
        rec_call(&ev, idx, &[format!("(- {n} 1)")], &n, 0, m_back)
    };
    let mut body_ev = if m == Mutation::DropBase {
        call_od.clone()
    } else {
        format!("(if {guard_ev} {base_ev} {call_od})")
    };
    let body_od = if m == Mutation::DropBase {
        format!("(+ 1 {call_ev})")
    } else {
        format!("(if {guard_od} {base_od} (+ 1 {call_ev}))")
    };
    if m == Mutation::DeadBranch {
        body_ev = dead_branch(rng, &format!("({ev} {n})"), body_ev);
    }
    let label = maybe_label(rng, idx);
    let defines = format!(
        "{}{}",
        define_fn(&ev, std::slice::from_ref(&n), &body_ev, &label),
        define_fn(&od, &[n], &body_od, &label)
    );
    let entry = format!("({ev} {})", 1 + rng.below(10));
    Instance {
        defines,
        names: vec![ev, od],
        entry,
        label,
    }
}

fn emit_higher_order(rng: &mut Rng, idx: usize, m: Mutation) -> Instance {
    let mut name = format!("ho{idx}");
    if m == Mutation::Rename {
        name.push('r');
    }
    let f = format!("f{idx}");
    let n = format!("n{idx}");
    let x = format!("x{idx}");
    let d = 1 + rng.below(2);
    let guard = nat_guard(rng, &n, d, m);
    // The threaded function stays linear so iterated application cannot
    // blow up into huge bignums before a broken variant is blamed.
    let y = format!("y{idx}");
    let fbody = *rng.pick(&["(+ Y 1)", "(+ Y Y)", "(* 2 Y)", "(+ Y 3)"]);
    let fbody = fbody.replace('Y', &y);
    let (fexpr, mut names, mut defines) = if rng.chance(1, 2) {
        (format!("(lambda ({y}) {fbody})"), vec![], String::new())
    } else {
        let h = format!("ho{idx}h");
        (
            h.clone(),
            vec![h.clone()],
            format!("(define ({h} {y}) {fbody})\n"),
        )
    };
    // Argument permutation moves all three parameters consistently across
    // the definition, the recursive call, and the entry call.
    let perm: [usize; 3] = if m == Mutation::PermuteArgs {
        *rng.pick(&[[1, 0, 2], [0, 2, 1], [2, 1, 0], [1, 2, 0], [2, 0, 1]])
    } else {
        [0, 1, 2]
    };
    let params_src = [f.clone(), n.clone(), x.clone()];
    let params: Vec<String> = perm.iter().map(|&i| params_src[i].clone()).collect();
    let args_src = [f.clone(), format!("(- {n} {d})"), format!("({f} {x})")];
    let args: Vec<String> = perm.iter().map(|&i| args_src[i].clone()).collect();
    let desc_at = perm.iter().position(|&i| i == 1).unwrap();
    let rec = rec_call(&name, idx, &args, &n, desc_at, m);
    let mut body = if m == Mutation::DropBase {
        rec.clone()
    } else {
        format!("(if {guard} {x} {rec})")
    };
    if m == Mutation::DeadBranch {
        body = dead_branch(rng, &format!("({name} {})", params.join(" ")), body);
    }
    let label = maybe_label(rng, idx);
    names.push(name.clone());
    defines.push_str(&define_fn(&name, &params, &body, &label));
    let entry_src = [
        fexpr,
        nat_entry(rng, d).to_string(),
        rng.below(10).to_string(),
    ];
    let entry_args: Vec<String> = perm.iter().map(|&i| entry_src[i].clone()).collect();
    let entry = format!("({name} {})", entry_args.join(" "));
    Instance {
        defines,
        names,
        entry,
        label,
    }
}

/// Megamorphic combinator tower: the iterate combinator of
/// [`emit_higher_order`], but driven through **one** first-class `(f x)`
/// site by 3–6 distinct step functions bound to globals — enough callees
/// to fill and overflow the VM's 4-way inline cache at a single site.
/// Under [`Mutation::SetRebind`] the entry sweeps the tower over every
/// step, `set!`-rebinds one step global to another (both terminate, so
/// the oracle is unchanged), and sweeps again: warm cache entries must be
/// re-resolved against the bumped store epoch, never reused stale.
fn emit_mega(rng: &mut Rng, idx: usize, m: Mutation) -> Instance {
    let mut name = format!("mega{idx}");
    if m == Mutation::Rename {
        name.push('r');
    }
    let f = format!("f{idx}");
    let n = format!("n{idx}");
    let x = format!("x{idx}");
    let d = 1 + rng.below(2);
    let guard = nat_guard(rng, &n, d, m);
    // Distinct *defines* give distinct λ identities at the dispatch site
    // regardless of body; the linear bodies keep iterated application
    // small and monitor-clean (same rule as the higher-order schema).
    let y = format!("y{idx}");
    let bodies = [
        "(+ Y 1)", "(+ Y 2)", "(+ Y Y)", "(* 2 Y)", "(+ Y 3)", "(* 3 Y)",
    ];
    let k = 3 + rng.below(4) as usize;
    let mut defines = String::new();
    let mut names: Vec<String> = Vec::new();
    let mut steps: Vec<String> = Vec::new();
    for s in 0..k {
        let sname = format!("mega{idx}s{s}");
        let fbody = bodies[s % bodies.len()].replace('Y', &y);
        defines.push_str(&format!("(define ({sname} {y}) {fbody})\n"));
        names.push(sname.clone());
        steps.push(sname);
    }
    let args = vec![f.clone(), format!("(- {n} {d})"), format!("({f} {x})")];
    let rec = rec_call(&name, idx, &args, &n, 1, m);
    let mut body = if m == Mutation::DropBase {
        rec.clone()
    } else {
        format!("(if {guard} {x} {rec})")
    };
    if m == Mutation::DeadBranch {
        body = dead_branch(rng, &format!("({name} {f} {n} {x})"), body);
    }
    let label = maybe_label(rng, idx);
    names.push(name.clone());
    defines.push_str(&define_fn(&name, &[f, n, x], &body, &label));
    // One sweep drives the tower once per step function — k distinct
    // callees through the tower's single `(f x)` site.
    let sweep = |rng: &mut Rng| -> String {
        let calls: Vec<String> = steps
            .iter()
            .map(|s| format!("({name} {s} {} {})", nat_entry(rng, d), rng.below(5)))
            .collect();
        format!("(+ {})", calls.join(" "))
    };
    let entry = if m == Mutation::SetRebind {
        let before = sweep(rng);
        let after = sweep(rng);
        format!("(begin {before} (set! {} {}) {after})", steps[0], steps[1])
    } else {
        sweep(rng)
    };
    Instance {
        defines,
        names,
        entry,
        label,
    }
}

fn emit(kind: SchemaKind, rng: &mut Rng, idx: usize, m: Mutation) -> Instance {
    match kind {
        SchemaKind::Nat => emit_nat(rng, idx, m),
        SchemaKind::Acc => emit_acc(rng, idx, m),
        SchemaKind::List => emit_list(rng, idx, m),
        SchemaKind::Tree => emit_tree(rng, idx, m),
        SchemaKind::Mutual => emit_mutual(rng, idx, m),
        SchemaKind::HigherOrder => emit_higher_order(rng, idx, m),
        SchemaKind::Mega => emit_mega(rng, idx, m),
    }
}

/// Picks a mutation for the target: 1/4 of cases stay unmutated, 3/8 get
/// a descent-preserving operator, 3/8 a descent-breaking one — always
/// restricted to operators applicable to the target's schema.
fn pick_mutation(rng: &mut Rng, kind: SchemaKind) -> Mutation {
    let pool: Vec<Mutation> = match rng.below(8) {
        0 | 1 => return Mutation::None,
        2..=4 => Mutation::PRESERVING,
        _ => Mutation::BREAKING,
    }
    .iter()
    .copied()
    .filter(|m| m.applicable(kind))
    .collect();
    *rng.pick(&pool)
}

/// Generates one case from a seed: 1–3 schema instances, one of which is
/// the mutation target; the target's entry call runs last so the oracle
/// pinpoints its blame group. Deterministic: the same seed always yields
/// the same case.
pub fn gen_case(seed: u64) -> GenCase {
    let mut rng = Rng::new(seed);
    let count = 1 + rng.below(3) as usize;
    let target = rng.below(count as u64) as usize;
    let kinds: Vec<SchemaKind> = (0..count).map(|_| *rng.pick(&SchemaKind::ALL)).collect();
    let mutation = pick_mutation(&mut rng, kinds[target]);
    let mut defines = String::new();
    let mut entries: Vec<String> = Vec::new();
    let mut target_inst: Option<Instance> = None;
    for (i, &kind) in kinds.iter().enumerate() {
        let m = if i == target {
            mutation
        } else {
            Mutation::None
        };
        let inst = emit(kind, &mut rng, i, m);
        defines.push_str(&inst.defines);
        if i == target {
            target_inst = Some(inst);
        } else {
            entries.push(inst.entry.clone());
        }
    }
    let t = target_inst.expect("target instance emitted");
    entries.push(t.entry.clone());
    let source = format!("{defines}{}", entries.join("\n"));
    let oracle = if mutation.breaks_descent() {
        Oracle::Diverging {
            group: t.names.clone(),
            label: t.label.clone(),
        }
    } else {
        Oracle::Terminating
    };
    GenCase {
        seed,
        source,
        schema: kinds[target],
        mutation,
        oracle,
    }
}

//! Mutation operators with *declared effect*.
//!
//! Each operator transforms a structurally descending schema instance
//! (see [`crate::gen`]) in a way whose effect on termination is known a
//! priori:
//!
//! | operator        | effect     | transformation                                   |
//! |-----------------|------------|--------------------------------------------------|
//! | `Rename`        | preserving | rename the function and all its call sites       |
//! | `EtaExpand`     | preserving | route the recursive call through a fresh λ       |
//! | `DeadBranch`    | preserving | guard a non-descending self-call by a statically false test |
//! | `PermuteArgs`   | preserving | permute parameters *and* every call site to match |
//! | `SetRebind`     | preserving | `set!` one step global to another between tower sweeps (mega only) |
//! | `SwapArgSelf`   | breaking   | replace the descending argument with the original parameter |
//! | `DropBase`      | breaking   | delete the base case (numeric schemas only)      |
//! | `UnsatGuard`    | breaking   | replace the base guard with a never-true test (numeric schemas only) |
//!
//! A *preserving* operator keeps the instance terminating **and**
//! monitor-clean; a *breaking* one makes the target's recursion group
//! diverge, which the monitor must blame (Theorem 3.1). Breaking
//! operators apply to every recursive call / base case of the group —
//! breaking one half of a mutual pair is not a divergence.

use crate::gen::SchemaKind;

/// One mutation operator (or none). See the module table for effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Leave the schema untouched.
    None,
    /// Rename the function (and with it every call site).
    Rename,
    /// Eta-expand the recursive call through an intermediate λ.
    EtaExpand,
    /// Insert a dead branch containing a non-descending self-call.
    DeadBranch,
    /// Permute the parameter list, rewriting all call sites to match.
    PermuteArgs,
    /// `set!`-rebind one step global to another between two tower sweeps
    /// (mega schema only): both steps terminate, so the program stays
    /// clean, but the rebinding bumps the store epoch mid-run — every
    /// warm inline-cache entry must be re-resolved, never reused stale.
    SetRebind,
    /// Swap the decreasing argument for the original parameter.
    SwapArgSelf,
    /// Drop the base case entirely.
    DropBase,
    /// Replace the domain guard with one no reachable value satisfies.
    UnsatGuard,
}

impl Mutation {
    /// The descent-preserving operators.
    pub const PRESERVING: &'static [Mutation] = &[
        Mutation::Rename,
        Mutation::EtaExpand,
        Mutation::DeadBranch,
        Mutation::PermuteArgs,
        Mutation::SetRebind,
    ];

    /// The descent-breaking operators.
    pub const BREAKING: &'static [Mutation] = &[
        Mutation::SwapArgSelf,
        Mutation::DropBase,
        Mutation::UnsatGuard,
    ];

    /// Every operator, `None` first — the order the summary line uses.
    pub const ALL: &'static [Mutation] = &[
        Mutation::None,
        Mutation::Rename,
        Mutation::EtaExpand,
        Mutation::DeadBranch,
        Mutation::PermuteArgs,
        Mutation::SetRebind,
        Mutation::SwapArgSelf,
        Mutation::DropBase,
        Mutation::UnsatGuard,
    ];

    /// Stable name used in summaries and reports.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::Rename => "rename",
            Mutation::EtaExpand => "eta-expand",
            Mutation::DeadBranch => "dead-branch",
            Mutation::PermuteArgs => "permute-args",
            Mutation::SetRebind => "set-rebind",
            Mutation::SwapArgSelf => "swap-arg-self",
            Mutation::DropBase => "drop-base",
            Mutation::UnsatGuard => "unsat-guard",
        }
    }

    /// True for the descent-breaking operators: applying one yields a
    /// *diverging* oracle for the target group.
    pub fn breaks_descent(self) -> bool {
        matches!(
            self,
            Mutation::SwapArgSelf | Mutation::DropBase | Mutation::UnsatGuard
        )
    }

    /// Whether the operator is meaningful on the given schema.
    ///
    /// * `PermuteArgs` needs a multi-parameter schema.
    /// * `SetRebind` needs the mega schema's pool of interchangeable step
    ///   globals — no other schema defines two functions of the same
    ///   shape that can be swapped without changing the oracle.
    /// * `DropBase` / `UnsatGuard` need a *numeric* descent: on list and
    ///   tree schemas, removing the base case produces `errorRT` (`car`
    ///   of a non-pair) rather than divergence, which would falsify the
    ///   diverging oracle.
    pub fn applicable(self, kind: SchemaKind) -> bool {
        match self {
            Mutation::PermuteArgs => {
                matches!(kind, SchemaKind::Acc | SchemaKind::HigherOrder)
            }
            Mutation::SetRebind => kind == SchemaKind::Mega,
            Mutation::DropBase | Mutation::UnsatGuard => matches!(
                kind,
                SchemaKind::Nat
                    | SchemaKind::Acc
                    | SchemaKind::Mutual
                    | SchemaKind::HigherOrder
                    | SchemaKind::Mega
            ),
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effect_table_is_consistent() {
        for m in Mutation::PRESERVING {
            assert!(!m.breaks_descent(), "{m:?}");
        }
        for m in Mutation::BREAKING {
            assert!(m.breaks_descent(), "{m:?}");
        }
        assert_eq!(
            Mutation::ALL.len(),
            1 + Mutation::PRESERVING.len() + Mutation::BREAKING.len()
        );
        // Every schema admits at least one preserving and one breaking
        // operator, so `pick_mutation` never faces an empty pool.
        for kind in SchemaKind::ALL {
            assert!(Mutation::PRESERVING.iter().any(|m| m.applicable(kind)));
            assert!(Mutation::BREAKING.iter().any(|m| m.applicable(kind)));
        }
    }
}

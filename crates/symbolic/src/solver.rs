//! Value-level solver queries: linearization, must-descend / must-equal
//! relations (the symbolic `graph` of Figure 4), and branch classification
//! for `if` (Figure 8's path-condition rules).

use crate::linear::{entails, unsat, Lin, LinCon};
use crate::sym::{AtomId, AtomKind, Path, SValue};
use sct_core::order::SizeChange;
use sct_core::order::WellFoundedOrder;
use sct_interp::{DefaultOrder, Value};
use sct_lang::Prim;

/// Read-only solver facade over the executor's atom table.
pub struct Solver<'a> {
    /// Kind of each allocated atom, indexed by [`AtomId`].
    pub atom_kinds: &'a [AtomKind],
}

/// How an `if` on a symbolic condition splits the path.
#[derive(Debug, Clone)]
pub enum Branch {
    /// The condition is decided.
    Det(bool),
    /// Fork with refinements for the then/else sides.
    Split {
        /// Refinement assumed on the then side.
        then_delta: Delta,
        /// Refinement assumed on the else side.
        else_delta: Delta,
    },
    /// Nothing is known; explore both sides unrefined.
    Opaque,
}

/// A path refinement.
#[derive(Debug, Clone)]
pub enum Delta {
    /// Assume a linear fact.
    Lin(LinCon),
    /// Refine an atom to the empty list.
    BindNil(AtomId),
    /// Refine an atom to a pair of fresh atoms (the executor allocates).
    BindPair(AtomId),
    /// No information.
    None,
}

impl<'a> Solver<'a> {
    /// Creates a solver over the given atom kinds.
    pub fn new(atom_kinds: &'a [AtomKind]) -> Solver<'a> {
        Solver { atom_kinds }
    }

    fn kind(&self, a: AtomId) -> AtomKind {
        self.atom_kinds
            .get(a as usize)
            .copied()
            .unwrap_or(AtomKind::Any)
    }

    /// Linearizes a symbolic value into a [`Lin`] when it denotes an
    /// integer-valued linear term.
    pub fn linearize(&self, path: &Path, v: &SValue) -> Option<Lin> {
        let v = path.resolve(v);
        match &v {
            SValue::Conc(Value::Fix(n)) => Some(Lin::constant(*n as i128)),
            // A canonical Big is outside i64 range: not linearizable.
            SValue::Conc(Value::Big(_)) => None,
            SValue::Atom(a) if self.kind(*a) == AtomKind::Int => Some(Lin::var(*a)),
            SValue::Term(p, args) => match p {
                Prim::Add => {
                    let mut acc = Lin::constant(0);
                    for x in args.iter() {
                        acc = acc.add(&self.linearize(path, x)?);
                    }
                    Some(acc)
                }
                Prim::Sub => {
                    let mut it = args.iter();
                    let first = self.linearize(path, it.next()?)?;
                    if args.len() == 1 {
                        return Some(first.scale(-1));
                    }
                    let mut acc = first;
                    for x in it {
                        acc = acc.sub(&self.linearize(path, x)?);
                    }
                    Some(acc)
                }
                Prim::Mul => {
                    // Linear only when at most one factor is non-constant.
                    let mut k: i128 = 1;
                    let mut sym: Option<Lin> = None;
                    for x in args.iter() {
                        let l = self.linearize(path, x)?;
                        if l.is_const() {
                            k *= l.k;
                        } else if sym.is_none() {
                            sym = Some(l);
                        } else {
                            return None;
                        }
                    }
                    Some(match sym {
                        Some(l) => l.scale(k),
                        None => Lin::constant(k),
                    })
                }
                Prim::Add1 => Some(self.linearize(path, &args[0])?.add(&Lin::constant(1))),
                Prim::Sub1 => Some(self.linearize(path, &args[0])?.add(&Lin::constant(-1))),
                _ => None,
            },
            _ => None,
        }
    }

    /// True when the path plus an extra fact is satisfiable (used to prune
    /// dead branches). Conservative: `true` on unknown.
    pub fn sat_with(&self, path: &Path, extra: Option<&LinCon>) -> bool {
        let mut sys: Vec<LinCon> = (*path.lin).clone();
        if let Some(c) = extra {
            sys.push(c.clone());
        }
        !unsat(&sys)
    }

    fn prove(&self, path: &Path, goal: LinCon) -> bool {
        entails(&path.lin, &goal)
    }

    /// The symbolic `graph` relation of §4.1: a must-descend or
    /// must-non-ascend fact between an old and a new argument, provable on
    /// every concretization of this path. Missing arcs are always sound.
    pub fn relate(&self, path: &Path, old: &SValue, new: &SValue) -> SizeChange {
        let old = path.resolve(old);
        let new = path.resolve(new);
        if old.syn_eq(&new) {
            return SizeChange::Equal;
        }
        if let (Some(lo), Some(ln)) = (self.linearize(path, &old), self.linearize(path, &new)) {
            let diff = lo.sub(&ln);
            if diff.is_const() && diff.k == 0 {
                return SizeChange::Equal;
            }
            if self.prove(path, LinCon::eq0(diff.clone())) {
                return SizeChange::Equal;
            }
            // |new| < |old| via sign analysis:
            // (0 ≤ new ∧ new < old) or (new ≤ 0 ∧ old < new).
            let nonneg_descend = self.prove(path, LinCon::ge0(ln.clone()))
                && self.prove(path, LinCon::gt0(diff.clone()));
            if nonneg_descend {
                return SizeChange::Descend;
            }
            let nonpos_descend = self.prove(path, LinCon::ge0(ln.scale(-1)))
                && self.prove(path, LinCon::gt0(ln.sub(&lo)));
            if nonpos_descend {
                return SizeChange::Descend;
            }
            return SizeChange::Unknown;
        }
        // Structural: new is a strict subterm of old's refined structure.
        if self.strict_subterm(path, &new, &old, 64) {
            return SizeChange::Descend;
        }
        SizeChange::Unknown
    }

    /// True when `needle` is a *strict* subterm of `haystack` under the
    /// path's refinements.
    fn strict_subterm(&self, path: &Path, needle: &SValue, haystack: &SValue, fuel: u32) -> bool {
        if fuel == 0 {
            return false;
        }
        match path.resolve(haystack) {
            SValue::SPair(p) => {
                let car = path.resolve(&p.0);
                let cdr = path.resolve(&p.1);
                needle.syn_eq(&car)
                    || needle.syn_eq(&cdr)
                    || self.strict_subterm(path, needle, &car, fuel - 1)
                    || self.strict_subterm(path, needle, &cdr, fuel - 1)
            }
            SValue::Conc(big @ Value::Pair(_)) => match needle {
                SValue::Conc(small) => DefaultOrder.relate(&big, small) == SizeChange::Descend,
                _ => false,
            },
            _ => false,
        }
    }

    /// Classifies an `if` condition into a branching decision.
    pub fn classify(&self, path: &Path, cond: &SValue) -> Branch {
        let cond = path.resolve(cond);
        match &cond {
            SValue::Conc(v) => Branch::Det(v.is_truthy()),
            SValue::SPair(_) | SValue::SClosure(_) => Branch::Det(true),
            SValue::Atom(_) => Branch::Opaque,
            SValue::Term(p, args) => self.classify_term(path, *p, args),
        }
    }

    fn classify_term(&self, path: &Path, p: Prim, args: &[SValue]) -> Branch {
        let lin1 = |s: &Solver<'a>, x: &SValue| s.linearize(path, x);
        match p {
            Prim::Not => match self.classify(path, &args[0]) {
                Branch::Det(b) => Branch::Det(!b),
                Branch::Split {
                    then_delta,
                    else_delta,
                } => Branch::Split {
                    then_delta: else_delta,
                    else_delta: then_delta,
                },
                Branch::Opaque => Branch::Opaque,
            },
            Prim::IsZero => match lin1(self, &args[0]) {
                Some(l) => Branch::Split {
                    then_delta: Delta::Lin(LinCon::eq0(l.clone())),
                    else_delta: Delta::Lin(LinCon::ne0(l)),
                },
                None => Branch::Opaque,
            },
            Prim::NumEq if args.len() == 2 => match (lin1(self, &args[0]), lin1(self, &args[1])) {
                (Some(a), Some(b)) => {
                    let d = a.sub(&b);
                    Branch::Split {
                        then_delta: Delta::Lin(LinCon::eq0(d.clone())),
                        else_delta: Delta::Lin(LinCon::ne0(d)),
                    }
                }
                _ => Branch::Opaque,
            },
            Prim::Lt | Prim::Le | Prim::Gt | Prim::Ge if args.len() == 2 => {
                match (lin1(self, &args[0]), lin1(self, &args[1])) {
                    (Some(a), Some(b)) => {
                        // a < b ⟺ b − a > 0; negation is a − b ≥ 0, etc.
                        let (yes, no) = match p {
                            Prim::Lt => (LinCon::gt0(b.sub(&a)), LinCon::ge0(a.sub(&b))),
                            Prim::Le => (LinCon::ge0(b.sub(&a)), LinCon::gt0(a.sub(&b))),
                            Prim::Gt => (LinCon::gt0(a.sub(&b)), LinCon::ge0(b.sub(&a))),
                            _ => (LinCon::ge0(a.sub(&b)), LinCon::gt0(b.sub(&a))),
                        };
                        Branch::Split {
                            then_delta: Delta::Lin(yes),
                            else_delta: Delta::Lin(no),
                        }
                    }
                    _ => Branch::Opaque,
                }
            }
            Prim::IsNegative => match lin1(self, &args[0]) {
                Some(l) => Branch::Split {
                    then_delta: Delta::Lin(LinCon::gt0(l.scale(-1))),
                    else_delta: Delta::Lin(LinCon::ge0(l)),
                },
                None => Branch::Opaque,
            },
            Prim::IsPositive => match lin1(self, &args[0]) {
                Some(l) => Branch::Split {
                    then_delta: Delta::Lin(LinCon::gt0(l.clone())),
                    else_delta: Delta::Lin(LinCon::ge0(l.scale(-1))),
                },
                None => Branch::Opaque,
            },
            Prim::IsNull => match path.resolve(&args[0]) {
                SValue::Conc(Value::Nil) => Branch::Det(true),
                SValue::Conc(Value::Pair(_)) | SValue::SPair(_) => Branch::Det(false),
                SValue::Conc(_) | SValue::Term(..) | SValue::SClosure(_) => Branch::Det(false),
                SValue::Atom(a) => Branch::Split {
                    then_delta: Delta::BindNil(a),
                    else_delta: if self.kind(a) == AtomKind::List {
                        Delta::BindPair(a)
                    } else {
                        Delta::None
                    },
                },
            },
            Prim::IsPair => match path.resolve(&args[0]) {
                SValue::Conc(Value::Pair(_)) | SValue::SPair(_) => Branch::Det(true),
                SValue::Conc(_) | SValue::SClosure(_) => Branch::Det(false),
                SValue::Term(..) => Branch::Opaque,
                SValue::Atom(a) => Branch::Split {
                    then_delta: Delta::BindPair(a),
                    else_delta: if self.kind(a) == AtomKind::List {
                        Delta::BindNil(a)
                    } else {
                        Delta::None
                    },
                },
            },
            _ => Branch::Opaque,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::ConOp;
    use std::rc::Rc;

    fn term(p: Prim, args: Vec<SValue>) -> SValue {
        SValue::Term(p, Rc::from(args))
    }

    #[test]
    fn linearize_arithmetic() {
        let kinds = vec![AtomKind::Int, AtomKind::Int];
        let s = Solver::new(&kinds);
        let path = Path::new();
        // (- (+ a0 a1 3) a1) = a0 + 3
        let e = term(
            Prim::Sub,
            vec![
                term(
                    Prim::Add,
                    vec![SValue::Atom(0), SValue::Atom(1), SValue::int(3)],
                ),
                SValue::Atom(1),
            ],
        );
        let l = s.linearize(&path, &e).unwrap();
        assert_eq!(l.coeff(0), 1);
        assert_eq!(l.coeff(1), 0);
        assert_eq!(l.k, 3);
        // (* 2 a0) linear; (* a0 a1) not.
        assert!(s
            .linearize(
                &path,
                &term(Prim::Mul, vec![SValue::int(2), SValue::Atom(0)])
            )
            .is_some());
        assert!(s
            .linearize(
                &path,
                &term(Prim::Mul, vec![SValue::Atom(0), SValue::Atom(1)])
            )
            .is_none());
    }

    #[test]
    fn relate_ack_descent() {
        // §4.2: with m ≥ 0 ∧ m ≠ 0, (- m 1) strictly descends from m.
        let kinds = vec![AtomKind::Int, AtomKind::Int];
        let s = Solver::new(&kinds);
        let path = Path::new()
            .assume(LinCon::ge0(Lin::var(0)))
            .assume(LinCon::ne0(Lin::var(0)));
        let m = SValue::Atom(0);
        let m1 = term(Prim::Sub, vec![m.clone(), SValue::int(1)]);
        assert_eq!(s.relate(&path, &m, &m1), SizeChange::Descend);
        assert_eq!(s.relate(&path, &m, &m.clone()), SizeChange::Equal);
        // Without the sign facts, no descent is provable (|.|-order).
        let bare = Path::new();
        assert_eq!(s.relate(&bare, &m, &m1), SizeChange::Unknown);
    }

    #[test]
    fn relate_structural() {
        let kinds = vec![AtomKind::List, AtomKind::Any, AtomKind::List];
        let s = Solver::new(&kinds);
        // Path where a0 = (cons a1 a2): cdr a0 = a2 ≺ a0.
        let path = Path::new().bind(
            0,
            SValue::SPair(Rc::new((SValue::Atom(1), SValue::Atom(2)))),
        );
        assert_eq!(
            s.relate(&path, &SValue::Atom(0), &SValue::Atom(2)),
            SizeChange::Descend
        );
        assert_eq!(
            s.relate(&path, &SValue::Atom(0), &SValue::Atom(1)),
            SizeChange::Descend
        );
        assert_eq!(
            s.relate(&path, &SValue::Atom(2), &SValue::Atom(0)),
            SizeChange::Unknown
        );
    }

    #[test]
    fn classify_branches() {
        let kinds = vec![AtomKind::Int, AtomKind::List];
        let s = Solver::new(&kinds);
        let path = Path::new();
        match s.classify(&path, &term(Prim::IsZero, vec![SValue::Atom(0)])) {
            Branch::Split {
                then_delta: Delta::Lin(t),
                else_delta: Delta::Lin(e),
            } => {
                assert_eq!(t.op, ConOp::Eq0);
                assert_eq!(e.op, ConOp::Ne0);
            }
            other => panic!("expected split, got {other:?}"),
        }
        match s.classify(&path, &term(Prim::IsNull, vec![SValue::Atom(1)])) {
            Branch::Split {
                then_delta: Delta::BindNil(1),
                else_delta: Delta::BindPair(1),
            } => {}
            other => panic!("expected structural split, got {other:?}"),
        }
        assert!(matches!(
            s.classify(&path, &SValue::Conc(Value::Bool(false))),
            Branch::Det(false)
        ));
        assert!(matches!(
            s.classify(&path, &SValue::int(0)),
            Branch::Det(true)
        ));
        // not inverts.
        let notz = term(Prim::Not, vec![term(Prim::IsZero, vec![SValue::Atom(0)])]);
        match s.classify(&path, &notz) {
            Branch::Split {
                then_delta: Delta::Lin(t),
                ..
            } => assert_eq!(t.op, ConOp::Ne0),
            other => panic!("expected inverted split, got {other:?}"),
        }
    }
}

//! The symbolic executor: λSSCT (Figure 8).
//!
//! Mirrors the monitored semantics, but arguments may be symbolic values
//! constrained by a path condition. At every application of a closure
//! whose λ is already on the current (abstract) call chain, the executor
//! computes the *symbolic* size-change graph — arcs are must-descend /
//! must-equal facts proved by the solver — records it in the function's
//! graph set, and summarizes the call with a fresh symbolic result. This
//! is the finitization: each λ body is explored at most once per chain, so
//! the analysis terminates, and the recorded one-step graphs feed the
//! Lee–Jones–Ben-Amram closure check (Figure 9).

use crate::linear::LinCon;
use crate::solver::{Branch, Delta, Solver};
use crate::sym::{extend, lookup, AtomId, AtomKind, Path, SClosure, SEnv, SValue};
use sct_core::graph::ScGraph;
use sct_core::order::{SizeChange, WellFoundedOrder};
use sct_interp::{datum_to_value, Value};
use sct_lang::ast::{Expr, LambdaDef, Program, TopForm};
use sct_lang::{LambdaId, Prim};
use sct_persist::PMap;
use std::collections::HashMap;
use std::rc::Rc;

/// Resource limits for the exploration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Total `eval` invocations before giving up.
    pub step_budget: u64,
    /// Cap on simultaneous outcomes of one expression.
    pub max_outcomes: usize,
    /// Total budget for havoc callback applications.
    pub havoc_budget: u32,
    /// Maximum abstract chain length (defensive; chains are bounded by
    /// the number of λs anyway).
    pub max_chain: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            step_budget: 200_000,
            max_outcomes: 256,
            havoc_budget: 64,
            max_chain: 64,
        }
    }
}

/// Argument domain for the entry function's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymDomain {
    /// n ≥ 0.
    Nat,
    /// n ≥ 1.
    Pos,
    /// Any integer.
    Int,
    /// A proper list.
    List,
    /// Anything.
    Any,
}

/// The entry function's invariant, re-checked at summarized self-calls
/// (§4.2: "symbolic execution can also prove that the new arguments are
/// natural numbers").
#[derive(Debug, Clone)]
pub struct EntryInvariant {
    /// λ id of the entry function.
    pub id: LambdaId,
    /// Declared parameter domains.
    pub domains: Vec<SymDomain>,
    /// Declared result domain, assumed for summarized self-calls — the
    /// function's range contract, exactly as checked-contract semantics
    /// guarantees at run time (§4.2 uses it to type the nested ack call).
    pub result: SymDomain,
}

/// A verified callee's contract summary, as consumed by the executor: the
/// domain assumptions its proof was discharged under, the result domain a
/// call lands in, and the size-change graph sets its own exploration
/// discovered (Ben-Amram 2010: a function's size-change behavior is fully
/// captured by its set of call-site graphs). `crate::pipeline` registers
/// one per already-planned `Static` define; the executor's application
/// path then *stubs* applications of the callee — merging `graphs` into the
/// caller's discovered sets and returning a fresh `result`-domain value —
/// instead of descending into the body.
#[derive(Debug, Clone)]
pub struct CalleeSummary {
    /// Domain assumption per parameter (the discharged ladder rung). A
    /// stub fires only when every argument is *provably* inside these.
    pub domains: Vec<SymDomain>,
    /// The domain every application of the callee lands in.
    pub result: SymDomain,
    /// Discovered size-change graph sets, per λ — possibly spanning
    /// several defines (transitively stubbed explorations inherit their
    /// callees' graphs).
    pub graphs: Vec<(LambdaId, Vec<ScGraph>)>,
    /// Global indices transitively referenced by the callee, sorted. A
    /// caller the callee can reach back into (mutual recursion) must not
    /// stub it: the callee's graphs were discovered against *its* entry,
    /// and hiding the cycle from the caller's own exploration would lose
    /// the very self-calls being judged.
    pub reachable: Rc<Vec<u32>>,
}

/// Registered summaries, keyed by the summarized define's entry λ id.
pub type SummaryTable = HashMap<LambdaId, Rc<CalleeSummary>>;

/// One evaluation outcome along a path.
#[derive(Debug, Clone)]
pub enum SOut {
    /// A value.
    Val(SValue),
    /// The path ended in a run-time error (which terminates the program,
    /// so it is benign for termination verification).
    Abort,
}

type Outcomes = Vec<(Path, SOut)>;
type Chain = PMap<LambdaId, Rc<[SValue]>>;

/// The symbolic executor.
pub struct Executor<'p> {
    program: &'p Program,
    /// Limits.
    pub config: ExecConfig,
    /// Kinds of allocated atoms.
    pub atom_kinds: Vec<AtomKind>,
    /// Discovered self-call graphs per λ.
    pub graphs: HashMap<LambdaId, Vec<ScGraph>>,
    /// When set, the exploration was not exhaustive and the verdict must
    /// be "not verified"; carries the first reason.
    pub incomplete: Option<String>,
    /// Number of applications of an *opaque* value (a symbolic atom or
    /// term standing for an unknown function), which the executor havocs
    /// as a terminating black box. The per-function verdict is then
    /// *modular* — "terminates provided its opaque callees do" — which is
    /// the paper's §4 claim but NOT enough for the hybrid pipeline to
    /// drop run-time monitoring (an unmonitored mutual loop through
    /// opaque calls would go uncaught); `crate::pipeline` keeps any
    /// function with a nonzero count on the monitored path.
    pub opaque_applications: u64,
    /// Number of applications answered from a registered [`CalleeSummary`]
    /// instead of body descent. Unlike opaque applications these carry no
    /// soundness debt — the summary *is* a termination proof for the
    /// callee — but the pipeline tracks the count for observability and
    /// to know when a non-verified outcome must be re-derived without
    /// stubs to stay bit-identical to full descent.
    pub stubbed_applications: u64,
    /// The evaluated top-level environment. Never written after
    /// [`Executor::new`] finishes, so explorations of the same program
    /// share one allocation through [`GlobalSnapshot`].
    globals: Rc<Vec<SValue>>,
    steps: u64,
    havoc_left: u32,
    entry: Option<EntryInvariant>,
    summaries: Option<&'p SummaryTable>,
    /// Global index of the define under exploration, for the
    /// mutual-recursion check against [`CalleeSummary::reachable`].
    caller_global: Option<u32>,
}

/// The evaluated top-level environment of a program, extracted from one
/// [`Executor::new`] and shared by every later
/// [`Executor::with_snapshot`]. Evaluating the definitions costs
/// O(defines); before this existed each per-`define` exploration paid it
/// again, which made whole-program planning quadratic in program size.
/// The snapshot restores the exact post-`eval_globals` executor state —
/// same values, same atom numbering, same step count, same incomplete
/// marker — so a snapshot-seeded exploration is bit-identical to a
/// fresh one.
pub struct GlobalSnapshot {
    globals: Rc<Vec<SValue>>,
    atom_kinds: Vec<AtomKind>,
    incomplete: Option<String>,
    steps: u64,
}

impl GlobalSnapshot {
    /// Evaluates `program`'s definitions once.
    pub fn build(program: &Program, config: &ExecConfig) -> GlobalSnapshot {
        let ex = Executor::new(program, config.clone());
        GlobalSnapshot {
            globals: ex.globals.clone(),
            atom_kinds: ex.atom_kinds.clone(),
            incomplete: ex.incomplete.clone(),
            steps: ex.steps,
        }
    }
}

struct PathOrder<'a> {
    kinds: &'a [AtomKind],
    path: &'a Path,
}

impl<'a> WellFoundedOrder<SValue> for PathOrder<'a> {
    fn relate(&self, old: &SValue, new: &SValue) -> SizeChange {
        Solver::new(self.kinds).relate(self.path, old, new)
    }
}

impl<'p> Executor<'p> {
    /// Creates an executor and evaluates the program's definitions.
    pub fn new(program: &'p Program, config: ExecConfig) -> Executor<'p> {
        let mut ex = Executor {
            program,
            config,
            atom_kinds: Vec::new(),
            graphs: HashMap::new(),
            incomplete: None,
            opaque_applications: 0,
            stubbed_applications: 0,
            globals: Rc::new(vec![
                SValue::Conc(Value::Undefined);
                program.global_names.len()
            ]),
            steps: 0,
            havoc_left: 0,
            entry: None,
            summaries: None,
            caller_global: None,
        };
        ex.havoc_left = ex.config.havoc_budget;
        ex.eval_globals();
        ex
    }

    /// Creates an executor starting from a prebuilt [`GlobalSnapshot`] of
    /// the same program, skipping the O(defines) definition re-evaluation.
    pub fn with_snapshot(
        program: &'p Program,
        config: ExecConfig,
        snapshot: &GlobalSnapshot,
    ) -> Executor<'p> {
        let mut ex = Executor {
            program,
            config,
            atom_kinds: snapshot.atom_kinds.clone(),
            graphs: HashMap::new(),
            incomplete: snapshot.incomplete.clone(),
            opaque_applications: 0,
            stubbed_applications: 0,
            globals: snapshot.globals.clone(),
            steps: snapshot.steps,
            havoc_left: 0,
            entry: None,
            summaries: None,
            caller_global: None,
        };
        ex.havoc_left = ex.config.havoc_budget;
        ex
    }

    /// Steps executed so far — the fuel drawn against
    /// [`ExecConfig::step_budget`].
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Sets the entry invariant checked at summarized entry self-calls.
    pub fn set_entry(&mut self, entry: EntryInvariant) {
        self.entry = Some(entry);
    }

    /// Registers verified callee summaries for this exploration.
    /// `caller_global` is the global index of the define under exploration
    /// (when it has one): a summary whose `reachable` set contains it is
    /// never stubbed, so mutual recursion always descends.
    pub fn set_summaries(&mut self, table: &'p SummaryTable, caller_global: Option<u32>) {
        self.summaries = Some(table);
        self.caller_global = caller_global;
    }

    /// The current value of a global, by name.
    pub fn global(&self, name: &str) -> Option<SValue> {
        let i = self.program.global_index(name)?;
        Some(self.globals[i as usize].clone())
    }

    /// The current value of a global, by index — [`Executor::global`]
    /// without the linear name scan, for callers that already resolved
    /// the index (a planning pass visiting every define).
    pub fn global_at(&self, i: u32) -> Option<SValue> {
        self.globals.get(i as usize).cloned()
    }

    /// Allocates a fresh atom.
    pub fn fresh(&mut self, kind: AtomKind) -> SValue {
        let id = self.atom_kinds.len() as AtomId;
        self.atom_kinds.push(kind);
        SValue::Atom(id)
    }

    /// Allocates an atom constrained by a domain, extending the path.
    pub fn fresh_in_domain(&mut self, d: SymDomain, path: &Path) -> (SValue, Path) {
        match d {
            SymDomain::Nat => {
                let a = self.fresh(AtomKind::Int);
                let SValue::Atom(id) = a else { unreachable!() };
                let p = path.assume(LinCon::ge0(crate::linear::Lin::var(id)));
                (a, p)
            }
            SymDomain::Pos => {
                let a = self.fresh(AtomKind::Int);
                let SValue::Atom(id) = a else { unreachable!() };
                let p = path.assume(LinCon::gt0(crate::linear::Lin::var(id)));
                (a, p)
            }
            SymDomain::Int => (self.fresh(AtomKind::Int), path.clone()),
            SymDomain::List => (self.fresh(AtomKind::List), path.clone()),
            SymDomain::Any => (self.fresh(AtomKind::Any), path.clone()),
        }
    }

    fn note_incomplete(&mut self, why: impl Into<String>) {
        if self.incomplete.is_none() {
            self.incomplete = Some(why.into());
        }
    }

    fn eval_globals(&mut self) {
        let forms = &self.program.top_level;
        for form in forms {
            if let TopForm::Define { index, expr } = form {
                let outs = self.eval(expr, &None, Path::new(), &PMap::new());
                match outs.as_slice() {
                    [(_, SOut::Val(v))] => {
                        Rc::make_mut(&mut self.globals)[*index as usize] = v.clone()
                    }
                    _ => {
                        self.note_incomplete(format!(
                            "definition of {} did not evaluate deterministically",
                            self.program.global_names[*index as usize]
                        ));
                        let v = self.fresh(AtomKind::Any);
                        Rc::make_mut(&mut self.globals)[*index as usize] = v;
                    }
                }
            }
        }
    }

    fn apply_delta(&mut self, path: &Path, d: &Delta) -> Option<Path> {
        match d {
            Delta::Lin(c) => {
                if Solver::new(&self.atom_kinds).sat_with(path, Some(c)) {
                    Some(path.assume(c.clone()))
                } else {
                    None
                }
            }
            Delta::BindNil(a) => Some(path.bind(*a, SValue::Conc(Value::Nil))),
            Delta::BindPair(a) => {
                let cdr_kind = if self.atom_kinds[*a as usize] == AtomKind::List {
                    AtomKind::List
                } else {
                    AtomKind::Any
                };
                let car = self.fresh(AtomKind::Any);
                let cdr = self.fresh(cdr_kind);
                Some(path.bind(*a, SValue::SPair(Rc::new((car, cdr)))))
            }
            Delta::None => Some(path.clone()),
        }
    }

    /// Evaluates an expression to a set of path/outcome pairs.
    pub fn eval(&mut self, e: &Expr, env: &SEnv, path: Path, chain: &Chain) -> Outcomes {
        self.steps += 1;
        if self.steps > self.config.step_budget {
            self.note_incomplete("step budget exhausted");
            return vec![(path, SOut::Abort)];
        }
        match e {
            Expr::Quote(d) => vec![(path, SOut::Val(SValue::Conc(datum_to_value(d))))],
            Expr::Var(v) => {
                let val = lookup(env, v.depth, v.slot);
                if matches!(val, SValue::Conc(Value::Undefined)) {
                    return vec![(path, SOut::Abort)];
                }
                vec![(path, SOut::Val(val))]
            }
            Expr::Global(i) => {
                let val = self.globals[*i as usize].clone();
                if matches!(val, SValue::Conc(Value::Undefined)) {
                    return vec![(path, SOut::Abort)];
                }
                vec![(path, SOut::Val(val))]
            }
            Expr::PrimRef(p) => vec![(path, SOut::Val(SValue::Conc(Value::Prim(*p))))],
            Expr::Lambda(def) => vec![(
                path,
                SOut::Val(SValue::SClosure(Rc::new(SClosure {
                    def: def.clone(),
                    env: env.clone(),
                }))),
            )],
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut out = Vec::new();
                for (p, o) in self.eval(cond, env, path, chain) {
                    match o {
                        SOut::Abort => out.push((p, SOut::Abort)),
                        SOut::Val(c) => {
                            let branch = Solver::new(&self.atom_kinds).classify(&p, &c);
                            match branch {
                                Branch::Det(true) => {
                                    out.extend(self.eval(then_branch, env, p, chain))
                                }
                                Branch::Det(false) => {
                                    out.extend(self.eval(else_branch, env, p, chain))
                                }
                                Branch::Split {
                                    then_delta,
                                    else_delta,
                                } => {
                                    if let Some(tp) = self.apply_delta(&p, &then_delta) {
                                        out.extend(self.eval(then_branch, env, tp, chain));
                                    }
                                    if let Some(ep) = self.apply_delta(&p, &else_delta) {
                                        out.extend(self.eval(else_branch, env, ep, chain));
                                    }
                                }
                                Branch::Opaque => {
                                    out.extend(self.eval(then_branch, env, p.clone(), chain));
                                    out.extend(self.eval(else_branch, env, p, chain));
                                }
                            }
                        }
                    }
                    if out.len() > self.config.max_outcomes {
                        self.note_incomplete("outcome cap exceeded");
                        break;
                    }
                }
                out
            }
            Expr::App { func, args } => {
                let mut out = Vec::new();
                for (p, o) in self.eval(func, env, path, chain) {
                    match o {
                        SOut::Abort => out.push((p, SOut::Abort)),
                        SOut::Val(f) => {
                            for (p2, argres) in self.eval_args(args, env, p, chain) {
                                match argres {
                                    None => out.push((p2, SOut::Abort)),
                                    Some(vals) => {
                                        out.extend(self.apply(&f, vals, p2, chain));
                                    }
                                }
                            }
                        }
                    }
                    if out.len() > self.config.max_outcomes {
                        self.note_incomplete("outcome cap exceeded");
                        break;
                    }
                }
                out
            }
            Expr::Seq(exprs) => {
                let mut states: Vec<(Path, SOut)> =
                    vec![(path, SOut::Val(SValue::Conc(Value::Void)))];
                for e in exprs.iter() {
                    let mut next = Vec::new();
                    for (p, o) in states {
                        match o {
                            SOut::Abort => next.push((p, SOut::Abort)),
                            SOut::Val(_) => next.extend(self.eval(e, env, p, chain)),
                        }
                    }
                    states = next;
                    if states.len() > self.config.max_outcomes {
                        self.note_incomplete("outcome cap exceeded");
                        break;
                    }
                }
                states
            }
            Expr::SetLocal { .. } | Expr::SetGlobal { .. } => {
                self.note_incomplete("set! is not supported symbolically");
                vec![(path, SOut::Abort)]
            }
            Expr::Let { inits, body } => {
                let mut out = Vec::new();
                for (p, argres) in self.eval_args(inits, env, path, chain) {
                    match argres {
                        None => out.push((p, SOut::Abort)),
                        Some(vals) => {
                            let new_env = extend(env, vals);
                            out.extend(self.eval(body, &new_env, p, chain));
                        }
                    }
                }
                out
            }
            Expr::LetRec { inits, body } => {
                let new_env = extend(env, vec![SValue::Conc(Value::Undefined); inits.len()]);
                let mut p = path;
                for (i, init) in inits.iter().enumerate() {
                    let outs = self.eval(init, &new_env, p.clone(), chain);
                    match outs.into_iter().next() {
                        Some((p2, SOut::Val(v))) => {
                            new_env.as_ref().unwrap().slots.borrow_mut()[i] = v;
                            p = p2;
                        }
                        _ => {
                            self.note_incomplete("letrec initializer forked or aborted");
                            return vec![(p, SOut::Abort)];
                        }
                    }
                }
                self.eval(body, &new_env, p, chain)
            }
            Expr::TermC { body, .. } => self.eval(body, env, path, chain),
        }
    }

    /// Evaluates a list of expressions left to right, threading paths.
    /// `None` marks an aborted path.
    fn eval_args(
        &mut self,
        exprs: &[Expr],
        env: &SEnv,
        path: Path,
        chain: &Chain,
    ) -> Vec<(Path, Option<Vec<SValue>>)> {
        let mut states: Vec<(Path, Option<Vec<SValue>>)> = vec![(path, Some(Vec::new()))];
        for e in exprs {
            let mut next = Vec::new();
            for (p, acc) in states {
                match acc {
                    None => next.push((p, None)),
                    Some(vals) => {
                        for (p2, o) in self.eval(e, env, p.clone(), chain) {
                            match o {
                                SOut::Abort => next.push((p2, None)),
                                SOut::Val(v) => {
                                    let mut vs = vals.clone();
                                    vs.push(v);
                                    next.push((p2, Some(vs)));
                                }
                            }
                        }
                    }
                }
            }
            states = next;
            if states.len() > self.config.max_outcomes {
                self.note_incomplete("outcome cap exceeded");
                states.truncate(self.config.max_outcomes);
            }
        }
        states
    }

    /// Applies a (possibly symbolic) function value.
    pub fn apply(&mut self, f: &SValue, args: Vec<SValue>, path: Path, chain: &Chain) -> Outcomes {
        let f = path.resolve(f);
        match &f {
            SValue::SClosure(clo) => self.apply_closure(clo.clone(), args, path, chain),
            SValue::Conc(Value::Prim(p)) => self.apply_prim(*p, args, path, chain),
            SValue::Atom(_) | SValue::Term(..) => {
                // Unknown function: havoc. Closure arguments may be called
                // back with arbitrary inputs, so explore those too.
                self.opaque_applications += 1;
                for arg in &args {
                    if let SValue::SClosure(c) = path.resolve(arg) {
                        if self.havoc_left > 0 {
                            self.havoc_left -= 1;
                            let mut fresh_args = Vec::new();
                            let mut p = path.clone();
                            for _ in 0..c.def.params {
                                let (a, p2) = self.fresh_in_domain(SymDomain::Any, &p);
                                p = p2;
                                fresh_args.push(a);
                            }
                            let _ = self.apply_closure(c.clone(), fresh_args, p, chain);
                        } else {
                            self.note_incomplete("havoc budget exhausted");
                        }
                    }
                }
                let r = self.fresh(AtomKind::Any);
                vec![(path, SOut::Val(r))]
            }
            _ => vec![(path, SOut::Abort)],
        }
    }

    fn apply_closure(
        &mut self,
        clo: Rc<SClosure>,
        mut args: Vec<SValue>,
        path: Path,
        chain: &Chain,
    ) -> Outcomes {
        let def = clo.def.clone();
        let required = def.params as usize;
        if def.variadic {
            if args.len() < required {
                return vec![(path, SOut::Abort)];
            }
            let rest = args.split_off(required);
            let mut tail = SValue::Conc(Value::Nil);
            for v in rest.into_iter().rev() {
                tail = SValue::SPair(Rc::new((v, tail)));
            }
            args.push(tail);
        } else if args.len() != required {
            return vec![(path, SOut::Abort)];
        }

        if let Some(prev) = chain.get(&def.id) {
            // Summarized self-call: record the symbolic size-change graph
            // and return a fresh result (the finitization step).
            let g = {
                let order = PathOrder {
                    kinds: &self.atom_kinds,
                    path: &path,
                };
                ScGraph::from_args(&order, prev, &args)
            };
            let set = self.graphs.entry(def.id).or_default();
            if !set.contains(&g) {
                set.push(g);
            }
            let prev_args = prev.clone();
            self.check_skip_invariant(def.id, &prev_args, &args, &path);
            let result_domain = match self.entry.as_ref() {
                Some(e) if e.id == def.id => e.result,
                _ => SymDomain::Any,
            };
            let (r, path) = self.fresh_in_domain(result_domain, &path);
            return vec![(path, SOut::Val(r))];
        }
        if let Some(out) = self.try_stub(&def, &args, &path) {
            return out;
        }
        if chain.len() >= self.config.max_chain {
            self.note_incomplete("chain depth cap exceeded");
            let r = self.fresh(AtomKind::Any);
            return vec![(path, SOut::Val(r))];
        }
        // Record the arguments *resolved at entry*: a later refinement of
        // an entry-arbitrary atom is case analysis, so an atom stored here
        // unrefined really did cover every value.
        let entry_view: Vec<SValue> = args.iter().map(|a| path.resolve(a)).collect();
        let chain2 = chain.insert(def.id, Rc::from(entry_view));
        let env = extend(&clo.env, args);
        self.eval(&def.body, &env, path, &chain2)
    }

    /// Answers an application from a registered [`CalleeSummary`] when
    /// that is sound, or `None` to descend into the body as usual.
    ///
    /// Soundness conditions (see ARCHITECTURE.md, "Contract summaries"):
    /// the callee must have a verified summary (only `Static` defines get
    /// one, so opaque- and mutation-tainted callees always descend); it
    /// must not be the entry λ (the entry's own self-calls are the very
    /// thing being judged) nor able to reach back into the caller (mutual
    /// recursion must expose its cycle to the caller's exploration); the
    /// application must match the summarized arity exactly; and every
    /// argument must be *provably* inside the summary's guard domain on
    /// the current path — the same entailment the summarized self-call
    /// check uses, because the callee's proof only covers those inputs.
    ///
    /// The stub merges the summary's graph sets into the caller's
    /// discovered sets (graph composition at the apply site, instead of
    /// rediscovery by descent) — except any set for the entry λ itself,
    /// which must only ever contain self-calls this exploration actually
    /// observed — and returns a fresh value in the summary's result
    /// domain, exactly like a summarized self-call returns a fresh value
    /// in the entry's declared result domain.
    fn try_stub(&mut self, def: &Rc<LambdaDef>, args: &[SValue], path: &Path) -> Option<Outcomes> {
        let s = self.summaries?.get(&def.id)?.clone();
        if def.variadic || args.len() != s.domains.len() {
            return None;
        }
        let entry_id = self.entry.as_ref().map(|e| e.id);
        if entry_id == Some(def.id) {
            return None;
        }
        if let Some(caller) = self.caller_global {
            if s.reachable.binary_search(&caller).is_ok() {
                return None;
            }
        }
        {
            let solver = Solver::new(&self.atom_kinds);
            for (d, arg) in s.domains.iter().zip(args.iter()) {
                if !in_domain(&solver, path, arg, *d, &self.atom_kinds) {
                    return None;
                }
            }
        }
        self.stubbed_applications += 1;
        for (id, set) in &s.graphs {
            if Some(*id) == entry_id {
                continue;
            }
            let own = self.graphs.entry(*id).or_default();
            for g in set {
                if !own.contains(g) {
                    own.push(g.clone());
                }
            }
        }
        let (r, path) = self.fresh_in_domain(s.result, path);
        Some(vec![(path, SOut::Val(r))])
    }

    /// At a summarized self-call, the one symbolic body execution covers
    /// all reachable entries only when the new arguments still satisfy the
    /// entry condition (§4.2). For the entry function we re-check the
    /// declared domains; for helpers we require kind-stability.
    fn check_skip_invariant(&mut self, id: LambdaId, prev: &[SValue], new: &[SValue], path: &Path) {
        let mut failures: Vec<String> = Vec::new();
        {
            let solver = Solver::new(&self.atom_kinds);
            if let Some(entry) = self.entry.as_ref() {
                if entry.id == id {
                    for (d, arg) in entry.domains.iter().zip(new.iter()) {
                        if !in_domain(&solver, path, arg, *d, &self.atom_kinds) {
                            failures.push(format!(
                                "recursive call argument {} may leave the entry domain {:?}",
                                arg.show(),
                                d
                            ));
                        }
                    }
                } else {
                    for (p, n) in prev.iter().zip(new.iter()) {
                        if !kind_stable(&solver, path, p, n, &self.atom_kinds) {
                            failures.push(format!(
                                "recursive call argument changed kind: {} vs {}",
                                p.show(),
                                n.show()
                            ));
                        }
                    }
                }
            } else {
                for (p, n) in prev.iter().zip(new.iter()) {
                    if !kind_stable(&solver, path, p, n, &self.atom_kinds) {
                        failures.push(format!(
                            "recursive call argument changed kind: {} vs {}",
                            p.show(),
                            n.show()
                        ));
                    }
                }
            }
        }
        for f in failures {
            self.note_incomplete(f);
        }
    }

    // ----- primitives ---------------------------------------------------

    fn apply_prim(&mut self, p: Prim, args: Vec<SValue>, path: Path, chain: &Chain) -> Outcomes {
        match p {
            Prim::TerminatingC => {
                // term/c is transparent to the static analysis: the wrapped
                // behavior is exactly what is being verified.
                match args.into_iter().next() {
                    Some(v) => return vec![(path, SOut::Val(v))],
                    None => return vec![(path, SOut::Abort)],
                }
            }
            Prim::Error => return vec![(path, SOut::Abort)],
            Prim::Apply => {
                let mut args = args;
                if args.len() < 2 {
                    return vec![(path, SOut::Abort)];
                }
                let f = args.remove(0);
                let tail = args.pop().unwrap();
                match list_elements(&path, &tail) {
                    Some(spread) => {
                        args.extend(spread);
                        return self.apply(&f, args, path, chain);
                    }
                    None => {
                        self.note_incomplete("apply with symbolic argument list");
                        let r = self.fresh(AtomKind::Any);
                        return vec![(path, SOut::Val(r))];
                    }
                }
            }
            Prim::Contract | Prim::FlatC | Prim::ArrowC | Prim::AndC => {
                self.note_incomplete("contract combinators are not modeled symbolically");
                let r = self.fresh(AtomKind::Any);
                return vec![(path, SOut::Val(r))];
            }
            _ => {}
        }

        // Fully concrete arguments: run the real primitive.
        if args
            .iter()
            .all(|a| matches!(path.resolve(a), SValue::Conc(_)))
        {
            let conc: Vec<Value> = args
                .iter()
                .map(|a| match path.resolve(a) {
                    SValue::Conc(v) => v,
                    _ => unreachable!(),
                })
                .collect();
            return match sct_interp::prims::call_prim(p, &conc) {
                Ok(effect) => {
                    let v = match effect {
                        sct_interp::prims::PrimEffect::Value(v) => v,
                        sct_interp::prims::PrimEffect::Output(_, v) => v,
                    };
                    vec![(path, SOut::Val(SValue::Conc(v)))]
                }
                Err(_) => vec![(path, SOut::Abort)],
            };
        }

        // Symbolic cases.
        match p {
            Prim::Cons => {
                let mut it = args.into_iter();
                match (it.next(), it.next()) {
                    (Some(a), Some(d)) => {
                        vec![(path, SOut::Val(SValue::SPair(Rc::new((a, d)))))]
                    }
                    _ => vec![(path, SOut::Abort)],
                }
            }
            Prim::List => {
                let mut tail = SValue::Conc(Value::Nil);
                for v in args.into_iter().rev() {
                    tail = SValue::SPair(Rc::new((v, tail)));
                }
                vec![(path, SOut::Val(tail))]
            }
            Prim::Car
            | Prim::Cdr
            | Prim::Caar
            | Prim::Cadr
            | Prim::Cdar
            | Prim::Cddr
            | Prim::Caddr
            | Prim::Cdddr
            | Prim::Cadddr => {
                if args.len() != 1 {
                    return vec![(path, SOut::Abort)];
                }
                let word = match p {
                    Prim::Car => "a",
                    Prim::Cdr => "d",
                    Prim::Caar => "aa",
                    Prim::Cadr => "ad",
                    Prim::Cdar => "da",
                    Prim::Cddr => "dd",
                    Prim::Caddr => "add",
                    Prim::Cdddr => "ddd",
                    _ => "addd",
                };
                let mut cur = args[0].clone();
                let mut cur_path = path;
                for c in word.chars().rev() {
                    match self.project(&cur, c == 'a', cur_path.clone()) {
                        Some((v, p2)) => {
                            cur = v;
                            cur_path = p2;
                        }
                        None => return vec![(cur_path, SOut::Abort)],
                    }
                }
                vec![(cur_path, SOut::Val(cur))]
            }
            // Arithmetic keeps symbolic structure for the solver.
            Prim::Add
            | Prim::Sub
            | Prim::Mul
            | Prim::Quotient
            | Prim::Remainder
            | Prim::Modulo
            | Prim::Abs
            | Prim::Min
            | Prim::Max
            | Prim::Add1
            | Prim::Sub1
            | Prim::Gcd
            | Prim::Expt => {
                vec![(path, SOut::Val(SValue::Term(p, Rc::from(args))))]
            }
            // Predicates and comparisons stay symbolic; `classify` gives
            // them meaning at branches.
            Prim::NumEq
            | Prim::Lt
            | Prim::Le
            | Prim::Gt
            | Prim::Ge
            | Prim::IsZero
            | Prim::IsNegative
            | Prim::IsPositive
            | Prim::IsEven
            | Prim::IsOdd
            | Prim::IsNumber
            | Prim::IsInteger
            | Prim::Not
            | Prim::IsNull
            | Prim::IsPair
            | Prim::IsBoolean
            | Prim::IsSymbol
            | Prim::IsString
            | Prim::IsChar
            | Prim::IsProcedure
            | Prim::IsVoid
            | Prim::IsEq
            | Prim::IsEqv
            | Prim::IsEqual
            | Prim::CharEq
            | Prim::CharLt
            | Prim::StringEq
            | Prim::StringLt
            | Prim::IsList => {
                vec![(path, SOut::Val(SValue::Term(p, Rc::from(args))))]
            }
            // Searches with a symbolic key over a known spine fork over
            // the possible hits (what `dderiv`'s dispatch table needs — its
            // table holds closures, so the hit must be the *actual* entry,
            // not a havoc atom, or the dispatched call goes unexplored).
            Prim::Assq | Prim::Assv | Prim::Assoc => {
                if let Some(entries) = list_elements(&path, &args[1]) {
                    let mut out: Outcomes = entries
                        .into_iter()
                        .map(|e| (path.clone(), SOut::Val(e)))
                        .collect();
                    out.push((path, SOut::Val(SValue::Conc(Value::Bool(false)))));
                    out
                } else {
                    let r = self.fresh(AtomKind::Any);
                    vec![(path, SOut::Val(r))]
                }
            }
            Prim::Memq | Prim::Memv | Prim::Member => match list_suffixes(&path, &args[1]) {
                Some(suffixes) => {
                    let mut out: Outcomes = suffixes
                        .into_iter()
                        .map(|sfx| (path.clone(), SOut::Val(sfx)))
                        .collect();
                    out.push((path, SOut::Val(SValue::Conc(Value::Bool(false)))));
                    out
                }
                None => {
                    let r = self.fresh(AtomKind::Any);
                    vec![(path, SOut::Val(r))]
                }
            },
            Prim::Length | Prim::StringLength | Prim::CharToInteger | Prim::HashCount => {
                let r = self.fresh(AtomKind::Int);
                vec![(path, SOut::Val(r))]
            }
            Prim::Append | Prim::Reverse | Prim::ListTail => {
                let kind = if args
                    .iter()
                    .all(|a| is_list_like(&path, a, &self.atom_kinds))
                {
                    AtomKind::List
                } else {
                    AtomKind::Any
                };
                let r = self.fresh(kind);
                vec![(path, SOut::Val(r))]
            }
            _ => {
                let r = self.fresh(AtomKind::Any);
                vec![(path, SOut::Val(r))]
            }
        }
    }

    /// Projects car/cdr out of a possibly symbolic pair, refining atoms.
    fn project(&mut self, v: &SValue, car: bool, path: Path) -> Option<(SValue, Path)> {
        match path.resolve(v) {
            SValue::SPair(p) => Some((if car { p.0.clone() } else { p.1.clone() }, path)),
            SValue::Conc(Value::Pair(p)) => Some((
                SValue::Conc(if car { p.car.clone() } else { p.cdr.clone() }),
                path,
            )),
            SValue::Atom(a) => {
                let kind = self.atom_kinds[a as usize];
                if kind == AtomKind::Int {
                    return None;
                }
                let cdr_kind = if kind == AtomKind::List {
                    AtomKind::List
                } else {
                    AtomKind::Any
                };
                let car_v = self.fresh(AtomKind::Any);
                let cdr_v = self.fresh(cdr_kind);
                let p2 = path.bind(a, SValue::SPair(Rc::new((car_v.clone(), cdr_v.clone()))));
                Some((if car { car_v } else { cdr_v }, p2))
            }
            _ => None,
        }
    }
}

/// Collects list elements through symbolic pairs when the spine is known.
fn list_elements(path: &Path, v: &SValue) -> Option<Vec<SValue>> {
    let mut out = Vec::new();
    let mut cur = path.resolve(v);
    loop {
        match cur {
            SValue::Conc(Value::Nil) => return Some(out),
            SValue::Conc(Value::Pair(p)) => {
                out.push(SValue::Conc(p.car.clone()));
                cur = SValue::Conc(p.cdr.clone());
            }
            SValue::SPair(p) => {
                out.push(p.0.clone());
                cur = path.resolve(&p.1);
            }
            _ => return None,
        }
    }
}

/// True when a value is integer-valued on every concretization: a linear
/// term, or any arithmetic primitive application (total on integers).
/// Is `v` *provably* inside domain `d` on `path`? The entailment behind
/// both the summarized-self-call invariant re-check (§4.2) and the
/// callee-stub guard check: `Nat`/`Pos` demand the path's linear facts
/// entail the sign, `Int`/`List` demand the matching kind evidence, `Any`
/// is trivially true. "Don't know" is `false` — the callers' fallbacks
/// (note incompleteness; descend into the body) are always sound.
fn in_domain(
    solver: &Solver<'_>,
    path: &Path,
    v: &SValue,
    d: SymDomain,
    kinds: &[AtomKind],
) -> bool {
    match d {
        SymDomain::Nat => solver
            .linearize(path, v)
            .is_some_and(|l| crate::linear::entails(&path.lin, &LinCon::ge0(l))),
        SymDomain::Pos => solver
            .linearize(path, v)
            .is_some_and(|l| crate::linear::entails(&path.lin, &LinCon::gt0(l))),
        SymDomain::Int => is_int_like(solver, path, v),
        SymDomain::List => is_list_like(path, v, kinds),
        SymDomain::Any => true,
    }
}

fn is_int_like(solver: &Solver<'_>, path: &Path, v: &SValue) -> bool {
    if solver.linearize(path, v).is_some() {
        return true;
    }
    matches!(
        path.resolve(v),
        SValue::Term(
            Prim::Add
                | Prim::Sub
                | Prim::Mul
                | Prim::Quotient
                | Prim::Remainder
                | Prim::Modulo
                | Prim::Abs
                | Prim::Min
                | Prim::Max
                | Prim::Add1
                | Prim::Sub1
                | Prim::Gcd
                | Prim::Expt,
            _
        )
    ) || matches!(path.resolve(v), SValue::Conc(Value::Fix(_) | Value::Big(_)))
}

/// All non-empty suffixes of a value with a fully known spine.
fn list_suffixes(path: &Path, v: &SValue) -> Option<Vec<SValue>> {
    let mut out = Vec::new();
    let mut cur = path.resolve(v);
    loop {
        match cur {
            SValue::Conc(Value::Nil) => return Some(out),
            SValue::Conc(Value::Pair(ref p)) => {
                out.push(cur.clone());
                cur = SValue::Conc(p.cdr.clone());
            }
            SValue::SPair(ref p) => {
                out.push(cur.clone());
                let next = path.resolve(&p.1);
                cur = next;
            }
            _ => return None,
        }
    }
}

fn is_list_like(path: &Path, v: &SValue, kinds: &[AtomKind]) -> bool {
    match path.resolve(v) {
        SValue::Conc(Value::Nil) => true,
        SValue::Conc(Value::Pair(_)) => true,
        SValue::SPair(_) => true,
        SValue::Atom(a) => kinds.get(a as usize).copied() == Some(AtomKind::List),
        _ => false,
    }
}

/// Coverage check for summarized calls of non-entry functions: the new
/// argument must have the same "kind" as the one the body was explored
/// with, so that the one exploration stands for all.
fn kind_stable(
    solver: &Solver<'_>,
    path: &Path,
    prev: &SValue,
    new: &SValue,
    kinds: &[AtomKind],
) -> bool {
    // The chain stores arguments as resolved at entry; an Any-kinded atom
    // there means the body was explored against a fully arbitrary value,
    // which covers any new argument.
    if let SValue::Atom(a) = prev {
        if kinds.get(*a as usize).copied() == Some(AtomKind::Any) {
            return true;
        }
    }
    if prev.syn_eq(&path.resolve(new)) || path.resolve(prev).syn_eq(&path.resolve(new)) {
        return true;
    }
    if is_int_like(solver, path, prev) && is_int_like(solver, path, new) {
        return true;
    }
    if is_list_like(path, prev, kinds) && is_list_like(path, new, kinds) {
        return true;
    }
    let clo = |v: &SValue| {
        matches!(
            path.resolve(v),
            SValue::SClosure(_) | SValue::Conc(Value::Prim(_))
        )
    };
    if clo(prev) && clo(new) {
        return true;
    }
    // Both fully concrete values of the same type are fine.
    if let (SValue::Conc(a), SValue::Conc(b)) = (path.resolve(prev), path.resolve(new)) {
        if a.type_name() == b.type_name() {
            return true;
        }
    }
    false
}

//! The hybrid enforcement pre-pass: statically discharge what §4 can
//! prove, leave the residual to §3's monitor, and refute eagerly.
//!
//! [`plan_program`] runs [`explore_function`](crate::verify::explore_function)
//! over every `define` in a program and folds the outcomes into an
//! [`EnforcementPlan`]:
//!
//! * A function whose exploration is exhaustive and whose every discovered
//!   graph set passes the Lee–Jones–Ben-Amram check becomes
//!   [`Decision::Static`] — the monitor's fast path skips it entirely.
//! * A function whose exploration hits the fuel budget, the wall-clock
//!   budget, or an unsupported feature becomes [`Decision::Monitor`]: the
//!   *fuel-budget fallback*. The plan never weakens Theorem 3.1 — anything
//!   unproven keeps full dynamic monitoring.
//! * A function for which *every* attempted domain assignment yields an
//!   exhaustive exploration with a definite graph-set violation becomes
//!   [`Decision::Refuted`]: the witness is exactly what the monitor would
//!   blame the moment that recursion executes, so the hybrid driver
//!   reports it — with the same blame label, read off a surrounding
//!   `terminating/c` wrapper — before running the program (deliberately
//!   stricter than the monitor for a refuted function that is never
//!   applied; see `sct_core::plan`).
//!
//! # The domain ladder
//!
//! `verify_function` needs argument domains, but a bare `(define (f x) …)`
//! declares none. The pre-pass therefore tries a short ladder per
//! function: first all-[`SymDomain::Any`] (a proof needing no run-time
//! guard), then all-[`SymDomain::Nat`], then all-[`SymDomain::Pos`]. A
//! proof under a non-trivial domain is sound only for in-domain calls, so
//! the resulting [`Decision::Static`] carries a [`PlanDomain`] guard the
//! machine re-checks per call (a constant-time integer test;
//! out-of-domain calls fall back to the monitor). Callers that *know*
//! signatures (the Table 1 harness, the benchmark driver) can pin them
//! via [`PlanConfig::signatures`]. Refutation requires *every* ladder
//! attempt to end in a violation whose witness is a discovered (level-1)
//! graph of the *entry* λ — a bad *composite* alone never refutes,
//! because an actual run may never realize it as a call sequence
//! (subtractive gcd passes the monitor even though its closure contains a
//! bad composite), and a nested λ's static self-call may never share a
//! dynamic closure key (the `isabelle-poly` closure builder).
//!
//! # Memoized re-verification
//!
//! The Lee–Jones–Ben-Amram stage is memoized through
//! [`LjbCache`](sct_core::plan::LjbCache), keyed by the interned graph
//! set: planning the same program twice (benchmark repetitions, repeated
//! `sct hybrid` runs in one process) pays the closure computation once.
//! Pass a [`PlanCache`] to [`plan_program_with_cache`] to share the memo
//! across calls.
//!
//! # Examples
//!
//! ```
//! use sct_lang::compile_program;
//! use sct_symbolic::pipeline::{plan_program, PlanConfig};
//!
//! let prog = compile_program(
//!     "(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))",
//! ).unwrap();
//! let plan = plan_program(&prog, &PlanConfig::default());
//! assert_eq!(plan.count("static"), 1);
//! // sum only terminates on naturals, so the discharge is nat-guarded.
//! let (_, guard) = plan.static_lambdas().next().unwrap();
//! assert!(guard.is_some());
//! ```

use crate::digest::ProgramDigests;
use crate::exec::{CalleeSummary, GlobalSnapshot, SummaryTable, SymDomain};
use crate::verify::{explore_with_names, lambda_names, Exploration, VerifyConfig};
use sct_core::plan::{CheckedClosure, Decision, EnforcementPlan, FnDecision, PlanDomain};
use sct_core::plan_codec::PortableDecision;
use sct_core::summary_codec::{LambdaRef, PortableSummary};
use sct_core::ScGraph;
use sct_lang::ast::{Expr, LambdaDef, LambdaId, Program, TopForm};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// A declared verification signature: one domain per parameter plus the
/// result domain assumed at summarized self-calls.
pub type Signature = (Vec<SymDomain>, SymDomain);

/// Observability hook for the planner: when armed with a registry, the
/// hybrid pre-pass records per-define plan time (`plan.define_us`),
/// per-ladder-rung attempt/discharge counters
/// (`plan.rung.<any|nat|pos|signature>.{attempts,discharged}`), and
/// symbolic-executor fuel (`plan.fuel_used`). The disabled default
/// records nothing. Carried inside [`PlanConfig`], so it crosses worker
/// threads with the config clone; excluded from the cache content key
/// (`digest::hash_config` selects fields explicitly) because metrics
/// wiring cannot change a decision.
#[derive(Debug, Clone, Default)]
pub struct PlanObs {
    reg: Option<RegRef>,
}

/// Where an armed [`PlanObs`] records: the process-global registry or a
/// shared per-server one.
#[derive(Debug, Clone)]
enum RegRef {
    Global,
    Shared(std::sync::Arc<sct_obs::Registry>),
}

impl PlanObs {
    /// The inert hook: every record is a no-op.
    pub fn disabled() -> PlanObs {
        PlanObs::default()
    }

    /// A hook recording into a shared registry (a serve daemon's own).
    pub fn registered(reg: std::sync::Arc<sct_obs::Registry>) -> PlanObs {
        PlanObs {
            reg: Some(RegRef::Shared(reg)),
        }
    }

    /// A hook recording into [`sct_obs::Registry::global`] (CLI paths).
    pub fn global_registry() -> PlanObs {
        PlanObs {
            reg: Some(RegRef::Global),
        }
    }

    /// The registry this hook records into, when armed.
    pub fn registry(&self) -> Option<&sct_obs::Registry> {
        match &self.reg {
            None => None,
            Some(RegRef::Global) => Some(sct_obs::Registry::global()),
            Some(RegRef::Shared(a)) => Some(a),
        }
    }

    fn define_done(&self, micros: u64) {
        if let Some(r) = self.registry() {
            r.counter("plan.defines").inc();
            r.histogram("plan.define_us").record(micros);
        }
    }

    fn rung_attempt(&self, rung: &str) {
        if let Some(r) = self.registry() {
            r.counter(&format!("plan.rung.{rung}.attempts")).inc();
        }
    }

    fn rung_discharged(&self, rung: &str) {
        if let Some(r) = self.registry() {
            r.counter(&format!("plan.rung.{rung}.discharged")).inc();
        }
    }

    fn fuel(&self, steps: u64) {
        if let Some(r) = self.registry() {
            r.counter("plan.fuel_used").add(steps);
        }
    }

    /// Pre-registers the `plan.summary.*` family so a `metrics` snapshot
    /// shows the counters (at zero) even before any summary traffic.
    fn summary_touch(&self) {
        if let Some(r) = self.registry() {
            r.counter("plan.summary.hits").add(0);
            r.counter("plan.summary.misses").add(0);
            r.counter("plan.summary.stubbed_applications").add(0);
        }
    }

    fn summary_hit(&self) {
        if let Some(r) = self.registry() {
            r.counter("plan.summary.hits").inc();
        }
    }

    fn summary_miss(&self) {
        if let Some(r) = self.registry() {
            r.counter("plan.summary.misses").inc();
        }
    }

    fn summary_stubbed(&self, n: u64) {
        if n > 0 {
            if let Some(r) = self.registry() {
                r.counter("plan.summary.stubbed_applications").add(n);
            }
        }
    }
}

/// Configuration for [`plan_program`].
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Per-attempt verifier configuration — [`VerifyConfig::exec`] is the
    /// *fuel budget*: an exploration that exhausts it reports incomplete
    /// and the function falls back to [`Decision::Monitor`].
    pub verify: VerifyConfig,
    /// Wall-clock budget per function, checked between ladder attempts;
    /// `None` disables the clock (fuel still bounds each attempt).
    pub time_budget: Option<Duration>,
    /// When true (the default), functions without a declared signature get
    /// the `Any…` → `Nat…` → `Pos…` domain ladder; when false, only
    /// `Any…` is tried (no guarded discharges).
    pub nat_ladder: bool,
    /// When true (the default), definite violations become
    /// [`Decision::Refuted`]; when false they degrade to
    /// [`Decision::Monitor`]. Refutation presumes the monitor runs the
    /// *default* well-founded order of Figure 5 — the same assumption the
    /// §4 verifier makes — so drivers configuring a custom order (`sct
    /// hybrid --order …`) must turn it off: a graph that fails the
    /// default order may descend under a replacement order (§3.3).
    /// *Discharges*, by contrast, survive any order: a
    /// [`Decision::Static`] asserts genuine termination, which no choice
    /// of order can contradict — so under a custom order the hybrid run
    /// may skip calls that order's monitor would (falsely) blame. That is
    /// the same precision win Table 1 reports for rows where the dynamic
    /// check fails but the static one passes.
    pub refute: bool,
    /// Pinned signatures by `define`d name, overriding the ladder.
    pub signatures: HashMap<String, Signature>,
    /// Absolute wall-clock deadline for the whole planning pass. A
    /// `define` reached after the deadline is not explored: it degrades to
    /// [`Decision::Monitor`] with a deadline reason — the same fuel-budget
    /// fallback rung, so the plan stays sound, just maximally pessimistic.
    /// Store hits are still honored past the deadline (a load is cheap and
    /// a persisted decision is load-independent). Deadline-degraded
    /// decisions are *never persisted*: like time-budget truncations, they
    /// reflect machine load, not program content, and the content key must
    /// not pin one slow moment's pessimism. Excluded from the content key
    /// for the same reason (see `digest::hash_config`).
    pub deadline: Option<Instant>,
    /// Metrics hook — [`PlanObs::disabled`] by default. Excluded from
    /// the content key like `deadline`: observability wiring reflects
    /// the host process, not program content.
    pub obs: PlanObs,
    /// When true (the default), already-planned `Static` recursive defines
    /// are registered as contract summaries and later explorations *stub*
    /// applications of them with the summary graphs instead of descending
    /// into their bodies — making per-define exploration local and
    /// whole-program planning near-linear. Sound by construction (only
    /// verified callees are stubbed, only for provably in-domain
    /// arguments), and any non-verified outcome of a stubbed ladder is
    /// re-derived stub-free, so Monitor/Refuted verdicts are bit-identical
    /// to full descent. Excluded from the content key: both modes compute
    /// the same decisions, so they may share persisted entries.
    pub summaries: bool,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            verify: VerifyConfig::default(),
            time_budget: Some(Duration::from_millis(500)),
            nat_ladder: true,
            refute: true,
            signatures: HashMap::new(),
            deadline: None,
            obs: PlanObs::disabled(),
            summaries: true,
        }
    }
}

/// State shared across [`plan_program_with_cache`] calls: the memoized
/// closure checks. Reusing one cache makes re-planning an unchanged
/// program (or a program sharing helper graphs) skip every closure
/// computation whose graph set was seen before.
#[derive(Debug, Default)]
pub struct PlanCache {
    /// The graph-set-keyed Lee–Jones–Ben-Amram memo.
    pub ljb: sct_core::plan::LjbCache,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }
}

/// Plans a whole program with a fresh [`PlanCache`]. See the module docs.
pub fn plan_program(program: &Program, config: &PlanConfig) -> EnforcementPlan {
    plan_program_with_cache(program, config, &mut PlanCache::new())
}

/// Plans a whole program, memoizing closure checks in `cache`.
///
/// Every `define` whose initializer is a λ (possibly under `terminating/c`
/// wrappers, whose blame label is recorded) gets a decision; other
/// top-level forms are irrelevant to enforcement and are skipped.
pub fn plan_program_with_cache(
    program: &Program,
    config: &PlanConfig,
    cache: &mut PlanCache,
) -> EnforcementPlan {
    plan_program_incremental(program, config, cache, &mut NullStore).0
}

/// A persistence back end for per-`define` enforcement decisions, keyed by
/// the content address of [`ProgramDigests::key_at`](crate::digest::ProgramDigests).
/// `sct-cache` provides the on-disk implementation; [`NullStore`] turns
/// persistence off.
///
/// Contract: `load(key)` may return an entry only if it was previously
/// `store`d under exactly `key` (content addressing makes the entry valid
/// for every compile that reproduces the key). A store is free to lose
/// entries at any time — a lost entry is a recompute, never an error.
pub trait DecisionStore {
    /// Fetch the entry persisted under `key`, if any survives (decodable,
    /// right schema version).
    fn load(&mut self, key: &str) -> Option<PortableDecision>;
    /// Persist `entry` under `key`. Failures must be swallowed (a cache
    /// that cannot write degrades to recompute-every-time).
    fn store(&mut self, key: &str, entry: &PortableDecision);
    /// False when this store never hits and never persists ([`NullStore`]):
    /// the planner then skips content-address computation entirely, so
    /// non-persistent planning pays no digest overhead.
    fn wants_keys(&self) -> bool {
        true
    }
    /// Fetch the contract summary persisted under `key`, if any survives.
    /// Summaries share the decision's content address (the `sct-plan-summary/1`
    /// entry rides the same digest), so editing a define invalidates its
    /// summary and its dependents' exactly like its decision. The default
    /// never hits: a store without summary support merely forfeits
    /// cross-process stub reuse, never soundness.
    fn load_summary(&mut self, _key: &str) -> Option<PortableSummary> {
        None
    }
    /// Persist `summary` under `key`. Failures must be swallowed, like
    /// [`DecisionStore::store`]. The default drops it.
    fn store_summary(&mut self, _key: &str, _summary: &PortableSummary) {}
}

/// The no-op [`DecisionStore`]: never hits, never persists.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullStore;

impl DecisionStore for NullStore {
    fn load(&mut self, _key: &str) -> Option<PortableDecision> {
        None
    }
    fn store(&mut self, _key: &str, _entry: &PortableDecision) {}
    fn wants_keys(&self) -> bool {
        false
    }
}

/// Per-run accounting of [`plan_program_incremental`]: which `define`s
/// were answered from the store and which had to be re-verified.
#[derive(Debug, Default, Clone)]
pub struct IncrementalStats {
    /// `(define name, hit?)` in program order, one entry per decision.
    pub defines: Vec<(String, bool)>,
}

impl IncrementalStats {
    /// Number of decisions answered from the store.
    pub fn hits(&self) -> usize {
        self.defines.iter().filter(|(_, hit)| *hit).count()
    }

    /// Number of decisions that ran the verifier.
    pub fn misses(&self) -> usize {
        self.defines.len() - self.hits()
    }

    /// Names of the `define`s that were re-verified (the misses), in
    /// program order.
    pub fn missed_names(&self) -> Vec<&str> {
        self.defines
            .iter()
            .filter(|(_, hit)| !*hit)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

impl fmt::Display for IncrementalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cache: {} hits, {} misses", self.hits(), self.misses())
    }
}

/// [`plan_program_with_cache`] with a persistent [`DecisionStore`]: every
/// `define` is first looked up by its content address
/// ([`ProgramDigests`] key — resolved AST +
/// reachable defines + mutation taint + planner config + codec version);
/// hits replay the persisted decision (λ ids rebound to the current
/// compile), misses run the verifier and persist the result. Editing one
/// `define` therefore re-verifies only that define and its (transitive)
/// referers; everything untouched is a hit.
pub fn plan_program_incremental(
    program: &Program,
    config: &PlanConfig,
    cache: &mut PlanCache,
    store: &mut dyn DecisionStore,
) -> (EnforcementPlan, IncrementalStats) {
    let mut plan = EnforcementPlan::new();
    let mut stats = IncrementalStats::default();
    for (_, decision, hit) in plan_positions(program, config, cache, store, &mut |_| true) {
        stats.defines.push((decision.name.clone(), hit));
        plan.decisions.push(decision);
    }
    (plan, stats)
}

/// Plans only the `define` forms at the given `top_level` positions
/// (program-order indices into [`Program::top_level`]), returning
/// `(position, decision, hit?)` triples. Positions that are not λ-bound
/// `define`s are skipped silently, exactly as [`plan_program`] skips them.
///
/// This is the fan-out primitive of the `sct serve` daemon: each worker
/// thread compiles the program itself (the AST is thread-local by design)
/// and plans a disjoint slice of positions against a shared
/// [`DecisionStore`], and since the cache keys depend only on program
/// *content*, every worker derives identical keys.
pub fn plan_program_subset(
    program: &Program,
    config: &PlanConfig,
    cache: &mut PlanCache,
    store: &mut dyn DecisionStore,
    positions: &[usize],
) -> Vec<(usize, FnDecision, bool)> {
    plan_positions(program, config, cache, store, &mut |pos| {
        positions.contains(&pos)
    })
}

/// The shared walk behind [`plan_program_incremental`] and
/// [`plan_program_subset`]: visits every `define` form (keeping the
/// occurrence counters exact), plans the ones `filter` admits.
fn plan_positions(
    program: &Program,
    config: &PlanConfig,
    cache: &mut PlanCache,
    store: &mut dyn DecisionStore,
    filter: &mut dyn FnMut(usize) -> bool,
) -> Vec<(usize, FnDecision, bool)> {
    let mut out = Vec::new();
    // One AST walk for λ display names, shared by every attempt below.
    let names = Rc::new(lambda_names(program));
    // One evaluation of the top-level environment, shared by every
    // exploration below — re-evaluating all N definitions per define
    // made whole-program planning quadratic.
    let snapshot = GlobalSnapshot::build(program, &config.verify.exec);
    // Content addressing costs a structural hash of the whole program;
    // skip it when the store cannot use keys anyway (NullStore).
    let digests = store.wants_keys().then(|| ProgramDigests::new(program));
    let mutation_owned;
    let mutation = match &digests {
        Some(d) => d.mutation(),
        None => {
            mutation_owned = MutationMap::build(program);
            &mutation_owned
        }
    };
    // Contract summaries: already-planned `Static` recursive defines are
    // registered here, and later explorations in this same pass stub
    // applications of them (see `Executor::try_stub`). The table lives
    // for this pass; the store carries summaries *across* passes (and
    // across a serve daemon's workers) under the same content keys as
    // decisions.
    let summaries_on = config.summaries;
    if summaries_on {
        config.obs.summary_touch();
    }
    let lambda_index = (summaries_on && store.wants_keys()).then(|| LambdaIndex::build(program));
    let mut summary_table: SummaryTable = HashMap::new();
    // Occurrence counter per global: a shadowed name yields one decision
    // per `define` form, and those must not alias in the store.
    let mut occurrence: HashMap<u32, u32> = HashMap::new();
    for (pos, form) in program.top_level.iter().enumerate() {
        let TopForm::Define { index, expr } = form else {
            continue;
        };
        let name = &program.global_names[*index as usize];
        let (def, blame) = match unwrap_termc(expr) {
            Some(pair) => pair,
            None => continue,
        };
        let occ = occurrence.entry(*index).or_insert(0);
        let this_occ = *occ;
        *occ += 1;
        let key = digests
            .as_ref()
            .map(|d| d.key_at(program, *index, this_occ, config));
        if !filter(pos) {
            // Not this caller's slice (a serve worker planning a subset):
            // still try to consume a peer's persisted summary, so fan-out
            // workers stop re-exploring the shared helpers they do not
            // own. A miss just means full descent — never an error.
            if summaries_on {
                register_summary_from_store(
                    store,
                    key.as_deref(),
                    def,
                    *index,
                    lambda_index.as_ref(),
                    mutation,
                    &mut summary_table,
                    &config.obs,
                );
            }
            continue;
        }
        let nested = nested_lambda_ids(def);
        if let Some(key) = &key {
            if let Some(portable) = store.load(key) {
                // The content address commits to the define's structure,
                // so a rebind failure can only mean corruption — fall
                // through to recompute.
                if let Some(decision) = portable.rebind(def.id, &nested) {
                    // A hit decision needs no verification, but its
                    // summary (Static defines only) still feeds later
                    // defines' stubs — that is what makes a warm
                    // incremental replan near-linear.
                    if summaries_on && matches!(decision.decision, Decision::Static { .. }) {
                        register_summary_from_store(
                            store,
                            Some(key),
                            def,
                            *index,
                            lambda_index.as_ref(),
                            mutation,
                            &mut summary_table,
                            &config.obs,
                        );
                    }
                    out.push((pos, decision, true));
                    continue;
                }
            }
        }
        // Past the pass-wide deadline (store hits above still count — a
        // load is load-independent): degrade down the enforcement ladder
        // to Monitor instead of exploring. Never persisted — the verdict
        // reflects the wall clock, not the content the key commits to.
        if config.deadline.is_some_and(|d| Instant::now() >= d) {
            out.push((
                pos,
                monitor_fallback(name, def, blame, DEADLINE_REASON),
                false,
            ));
            continue;
        }
        // A proof is only as durable as the bindings it reads: if this
        // function can (transitively) reach a global that *anything* in
        // the program `set!`s, a later rebinding could invalidate the
        // discharge at run time — e.g. a helper swapped for one that no
        // longer descends. Such functions stay monitored.
        let (decision, cacheable, summary_data) = if let Some(reason) = mutation.taints(*index) {
            (
                FnDecision {
                    name: name.to_string(),
                    lambda: def.id,
                    covers: Vec::new(),
                    decision: Decision::Monitor {
                        reason: reason.clone(),
                    },
                    blame,
                    detail: reason,
                    micros: 0,
                },
                true,
                None,
            )
        } else {
            plan_function(
                program,
                name,
                def,
                blame,
                config,
                cache,
                names.clone(),
                summaries_on.then_some(&summary_table),
                Some(*index),
                &snapshot,
            )
        };
        // A decision reached only because the wall clock truncated the
        // ladder depends on machine load, not on the inputs the key
        // commits to: persisting it would pin a slow moment's pessimism
        // forever (the same reasoning that forbids refuting on a
        // truncated ladder). Recompute it next time instead.
        if cacheable {
            if let Some(key) = &key {
                store.store(key, &PortableDecision::from_decision(&decision, &nested));
            }
        }
        // Register (and, when cacheable, persist) the freshly verified
        // define's contract summary. Only `Static` decisions produce one
        // — opaque-tainted defines end Inconclusive and mutation-tainted
        // ones Monitor, so neither is ever stubbed — and only *recursive*
        // callees are registered: a non-recursive body is cheap to
        // descend, and its concrete results can be load-bearing for a
        // caller's own descent proof. The truncation rule mirrors
        // decisions: a summary from a budget- or deadline-degraded ladder
        // is never persisted (such ladders cannot end `Static` at all).
        if summaries_on {
            if let Some(data) = summary_data {
                let recursive = data
                    .graphs
                    .iter()
                    .any(|(id, set)| *id == def.id && !set.is_empty());
                if recursive {
                    if cacheable {
                        if let (Some(key), Some(li)) = (&key, &lambda_index) {
                            if let Some(portable) = portable_summary(name, &data, li, program) {
                                store.store_summary(key, &portable);
                            }
                        }
                    }
                    summary_table.insert(
                        def.id,
                        Rc::new(CalleeSummary {
                            domains: data.domains,
                            result: data.result,
                            graphs: data.graphs,
                            reachable: Rc::new(mutation.reachable_from(*index)),
                        }),
                    );
                }
            }
        }
        out.push((pos, decision, false));
    }
    out
}

/// The reason recorded on decisions degraded by [`PlanConfig::deadline`].
/// Stable prefix so drivers (the serve daemon's stats, the chaos suite)
/// can distinguish deadline degradation from other monitor fallbacks.
pub const DEADLINE_REASON: &str = "planning deadline exceeded";

/// Fabricates the maximally pessimistic (and always sound) decision for a
/// λ-bound `define`: keep full dynamic monitoring, prove nothing, refute
/// nothing.
fn monitor_fallback(
    name: &str,
    def: &Rc<LambdaDef>,
    blame: Option<String>,
    reason: &str,
) -> FnDecision {
    FnDecision {
        name: name.to_string(),
        lambda: def.id,
        covers: Vec::new(),
        decision: Decision::Monitor {
            reason: reason.to_string(),
        },
        blame,
        detail: reason.to_string(),
        micros: 0,
    }
}

/// Fabricates degraded [`Decision::Monitor`] decisions for the λ-bound
/// `define`s at `positions` without running any verification — the bottom
/// rung of the degradation ladder, for drivers whose *planner itself* is
/// unavailable (a stalled or crashed worker, an expired request deadline).
/// Positions that are not λ-bound `define`s are skipped, exactly as
/// [`plan_program_subset`] skips them, so the two functions agree on which
/// positions yield decisions. The triples' `hit?` flag is always `false`
/// and the decisions must never be persisted: they reflect scheduler
/// state, not program content.
pub fn monitor_fallback_decisions(
    program: &Program,
    positions: &[usize],
    reason: &str,
) -> Vec<(usize, FnDecision, bool)> {
    let mut out = Vec::new();
    for (pos, form) in program.top_level.iter().enumerate() {
        if !positions.contains(&pos) {
            continue;
        }
        let TopForm::Define { index, expr } = form else {
            continue;
        };
        let name = &program.global_names[*index as usize];
        let Some((def, blame)) = unwrap_termc(expr) else {
            continue;
        };
        out.push((pos, monitor_fallback(name, def, blame, reason), false));
    }
    out
}

/// Compile-independent λ addressing for summary persistence: every λ of
/// the *last* `define` form of each global maps to `(global, traversal
/// idx)` — idx 0 is the define's entry λ, nested λs follow in source
/// order — which is the basis [`LambdaRef`] is expressed in. λs of
/// shadowed earlier defines and of top-level expressions have no portable
/// address (the executor's global table keeps the last binding, so only
/// it can be applied by name); a summary mentioning one stays in-memory
/// for the current pass instead of being persisted.
struct LambdaIndex {
    by_id: HashMap<LambdaId, (u32, u32)>,
    by_global: HashMap<u32, Vec<LambdaId>>,
    /// Global name → index, because [`Program::global_index`] is a linear
    /// scan: resolving the hundreds of [`LambdaRef`]s in each of N
    /// summaries through it made warm replay quadratic in program size.
    global_of: HashMap<String, u32>,
}

impl LambdaIndex {
    fn build(program: &Program) -> LambdaIndex {
        let mut by_global: HashMap<u32, Vec<LambdaId>> = HashMap::new();
        for form in &program.top_level {
            let TopForm::Define { index, expr } = form else {
                continue;
            };
            let Some((def, _)) = unwrap_termc(expr) else {
                continue;
            };
            let mut ids = vec![def.id];
            ids.extend(nested_lambda_ids(def));
            by_global.insert(*index, ids);
        }
        let mut by_id = HashMap::new();
        for (gi, ids) in &by_global {
            for (i, id) in ids.iter().enumerate() {
                by_id.insert(*id, (*gi, i as u32));
            }
        }
        let global_of = program
            .global_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        LambdaIndex {
            by_id,
            by_global,
            global_of,
        }
    }

    fn lambda_ref(&self, id: LambdaId, program: &Program) -> Option<LambdaRef> {
        let (gi, idx) = self.by_id.get(&id)?;
        Some(LambdaRef {
            global: program.global_names[*gi as usize].clone(),
            idx: *idx,
        })
    }

    fn resolve(&self, lr: &LambdaRef) -> Option<LambdaId> {
        let gi = self.global_of.get(&lr.global)?;
        self.by_global.get(gi)?.get(lr.idx as usize).copied()
    }
}

/// The ingredients of a freshly verified define's contract summary, as
/// returned by `plan_function` alongside every `Static` decision: the
/// discharged rung's domains and the exploration's full graph map.
struct SummaryData {
    domains: Vec<SymDomain>,
    result: SymDomain,
    graphs: Vec<(LambdaId, Vec<ScGraph>)>,
}

/// Encodes a summary for persistence, or `None` when some graph set
/// belongs to a λ without a portable address (see [`LambdaIndex`]).
fn portable_summary(
    name: &str,
    data: &SummaryData,
    li: &LambdaIndex,
    program: &Program,
) -> Option<PortableSummary> {
    let mut graphs = Vec::with_capacity(data.graphs.len());
    for (id, set) in &data.graphs {
        graphs.push((li.lambda_ref(*id, program)?, set.clone()));
    }
    Some(PortableSummary {
        name: name.to_string(),
        guard: data.domains.iter().map(|d| plan_domain(*d)).collect(),
        result: plan_domain(data.result),
        graphs,
    })
}

/// Rebinds a persisted summary against the current compile, or `None`
/// when it does not fit this define (treated as a miss). The content
/// address makes a true mismatch corruption, exactly as for decisions.
fn rebind_summary(
    p: &PortableSummary,
    def: &LambdaDef,
    li: &LambdaIndex,
    mutation: &MutationMap,
    index: u32,
) -> Option<CalleeSummary> {
    if def.variadic || p.guard.len() != def.params as usize {
        return None;
    }
    let mut graphs = Vec::with_capacity(p.graphs.len());
    for (lr, set) in &p.graphs {
        graphs.push((li.resolve(lr)?, set.clone()));
    }
    // Only recursive summaries are persisted (only they are worth
    // stubbing); anything else is corruption.
    if !graphs
        .iter()
        .any(|(id, set)| *id == def.id && !set.is_empty())
    {
        return None;
    }
    Some(CalleeSummary {
        domains: p.guard.iter().map(|d| sym_domain(*d)).collect(),
        result: sym_domain(p.result),
        graphs,
        reachable: Rc::new(mutation.reachable_from(index)),
    })
}

/// Tries to register a persisted contract summary for `def` from the
/// store, counting the outcome in `plan.summary.{hits,misses}`.
#[allow(clippy::too_many_arguments)]
fn register_summary_from_store(
    store: &mut dyn DecisionStore,
    key: Option<&str>,
    def: &Rc<LambdaDef>,
    index: u32,
    lambda_index: Option<&LambdaIndex>,
    mutation: &MutationMap,
    table: &mut SummaryTable,
    obs: &PlanObs,
) {
    let (Some(key), Some(li)) = (key, lambda_index) else {
        return;
    };
    let summary = store
        .load_summary(key)
        .and_then(|p| rebind_summary(&p, def, li, mutation, index));
    match summary {
        Some(s) => {
            obs.summary_hit();
            table.insert(def.id, Rc::new(s));
        }
        None => obs.summary_miss(),
    }
}

/// Which globals the program mutates (`set!` anywhere — top level, define
/// initializers, nested λs), plus the static global-reference graph, so
/// the pre-pass can refuse to discharge any function whose proof could be
/// invalidated by a run-time rebinding.
#[derive(Debug)]
pub(crate) struct MutationMap {
    /// `refs[i]` = globals referenced (read or written) by global `i`'s
    /// defining expression(s); every `define` of the index contributes.
    refs: Vec<Vec<u32>>,
    /// Globals that are a `set!` target anywhere in the program.
    mutated: Vec<bool>,
    names: Vec<String>,
}

impl MutationMap {
    pub(crate) fn build(program: &Program) -> MutationMap {
        let n = program.global_names.len();
        let mut refs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut mutated = vec![false; n];
        for form in &program.top_level {
            match form {
                TopForm::Define { index, expr } => {
                    let mut out = Vec::new();
                    collect_global_refs(expr, &mut out, &mut mutated);
                    refs[*index as usize].extend(out);
                }
                TopForm::Expr(expr) => {
                    // Top-level expressions can mutate but define nothing;
                    // only their `set!` targets matter.
                    let mut sink = Vec::new();
                    collect_global_refs(expr, &mut sink, &mut mutated);
                }
            }
        }
        MutationMap {
            refs,
            mutated,
            names: program.global_names.clone(),
        }
    }

    /// The set of globals reachable from `index` through static references
    /// (including `index` itself), sorted by index — the deterministic
    /// basis of the per-define cache key.
    pub(crate) fn reachable_from(&self, index: u32) -> Vec<u32> {
        let mut seen = vec![false; self.refs.len()];
        let mut stack = vec![index];
        let mut out = Vec::new();
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut seen[i as usize], true) {
                continue;
            }
            out.push(i);
            stack.extend(self.refs[i as usize].iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// True when global `i` is a `set!` target anywhere in the program.
    pub(crate) fn is_mutated(&self, i: u32) -> bool {
        self.mutated[i as usize]
    }

    /// If global `index` can transitively reach a mutated global, the
    /// reason to keep it monitored; `None` when its reachable set is
    /// mutation-free.
    fn taints(&self, index: u32) -> Option<String> {
        let mut seen = vec![false; self.refs.len()];
        let mut stack = vec![index];
        while let Some(i) = stack.pop() {
            let i = i as usize;
            if std::mem::replace(&mut seen[i], true) {
                continue;
            }
            if self.mutated[i] {
                return Some(format!(
                    "depends on global {} which the program mutates (set!); \
                     a run-time rebinding could invalidate the proof",
                    self.names[i]
                ));
            }
            stack.extend(self.refs[i].iter().copied());
        }
        None
    }
}

/// Collects the globals `e` references (into `out`) and marks the ones it
/// `set!`s (into `mutated`).
fn collect_global_refs(e: &Expr, out: &mut Vec<u32>, mutated: &mut [bool]) {
    match e {
        Expr::Global(i) => out.push(*i),
        Expr::SetGlobal { index, value } => {
            mutated[*index as usize] = true;
            out.push(*index);
            collect_global_refs(value, out, mutated);
        }
        Expr::Lambda(def) => collect_global_refs(&def.body, out, mutated),
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            collect_global_refs(cond, out, mutated);
            collect_global_refs(then_branch, out, mutated);
            collect_global_refs(else_branch, out, mutated);
        }
        Expr::App { func, args } => {
            collect_global_refs(func, out, mutated);
            for a in args.iter() {
                collect_global_refs(a, out, mutated);
            }
        }
        Expr::Seq(exprs) => {
            for x in exprs.iter() {
                collect_global_refs(x, out, mutated);
            }
        }
        Expr::SetLocal { value, .. } => collect_global_refs(value, out, mutated),
        Expr::Let { inits, body } | Expr::LetRec { inits, body } => {
            for i in inits.iter() {
                collect_global_refs(i, out, mutated);
            }
            collect_global_refs(body, out, mutated);
        }
        Expr::TermC { body, .. } => collect_global_refs(body, out, mutated),
        Expr::Quote(_) | Expr::Var(_) | Expr::PrimRef(_) => {}
    }
}

/// Peels `terminating/c` wrappers off a define's initializer, returning
/// the underlying λ and the innermost wrapper's blame label (the label the
/// dynamic monitor would report, since it pushes labels innermost-first).
fn unwrap_termc(expr: &Expr) -> Option<(&Rc<LambdaDef>, Option<String>)> {
    let mut e = expr;
    let mut blame = None;
    loop {
        match e {
            Expr::TermC { body, label } => {
                // Later (deeper) wrappers overwrite: the machine pushes
                // labels outermost-first and blames `blames.last()`, so
                // the innermost label is the one a violation reports.
                blame = Some(label.to_string());
                e = body;
            }
            Expr::Lambda(def) => return Some((def, blame)),
            _ => return None,
        }
    }
}

/// One attempt's distilled outcome.
enum Attempt {
    /// Exhaustive and every graph set passes.
    Verified { detail: String },
    /// Exhaustive with a graph-set violation. `definite` is true only when
    /// (a) the witness is one of the *discovered* graphs — a single
    /// feasible recursion step the monitor rejects the moment it executes,
    /// rather than a closure composite, which may never materialize as an
    /// actual call sequence (subtractive gcd is the classic case: both
    /// branch graphs descend, only their composition loses the common
    /// descent) — and (b) the culprit is the *entry* λ itself: the
    /// symbolic executor keys self-calls by λ id, but the monitor keys by
    /// closure, so a nested λ's static "self-call" (e.g. the closure
    /// builder `isabelle-poly` re-allocating its inner λ each round) never
    /// forms one dynamic call sequence. Only the entry λ, whose global
    /// closure is allocated once, matches dynamically.
    Violation {
        witness: ScGraph,
        culprit: String,
        definite: bool,
    },
    /// Anything inconclusive: budget, unsupported feature, overflow.
    Inconclusive { reason: String },
}

#[allow(clippy::too_many_arguments)]
fn run_attempt(
    program: &Program,
    name: &str,
    entry_id: LambdaId,
    domains: &[SymDomain],
    result: SymDomain,
    config: &PlanConfig,
    cache: &mut PlanCache,
    names: Rc<HashMap<LambdaId, String>>,
    summaries: Option<&SummaryTable>,
    caller_global: Option<u32>,
    snapshot: &GlobalSnapshot,
) -> (Attempt, Option<Exploration>) {
    let exploration = match explore_with_names(
        program,
        name,
        domains,
        result,
        &config.verify,
        names,
        Some(entry_id),
        summaries,
        caller_global,
        Some(snapshot),
    ) {
        Ok(e) => e,
        Err(reason) => return (Attempt::Inconclusive { reason }, None),
    };
    if exploration.opaque_calls > 0 {
        // The proof would be modular ("terminates provided its opaque
        // callees do") — sound for §4's verdict but not for dropping the
        // monitor: an unmonitored mutual loop through opaque calls (e.g.
        // (define (apply1 f) (f f)) applied to itself) would go uncaught.
        return (
            Attempt::Inconclusive {
                reason: format!(
                    "applies an opaque value {} time(s); the proof is modular, \
                     so monitoring is kept",
                    exploration.opaque_calls
                ),
            },
            Some(exploration),
        );
    }
    let mut summary = Vec::new();
    for (id, graphs) in &exploration.graphs {
        match cache.ljb.check(graphs, config.verify.ljb_cap) {
            CheckedClosure::Ok { .. } => {
                summary.push(format!(
                    "{}: {} graphs",
                    exploration.name_of(*id),
                    graphs.len()
                ));
            }
            CheckedClosure::Violation(v) => {
                let culprit = exploration.name_of(*id);
                let definite = graphs.contains(&v.witness) && *id == entry_id;
                return (
                    Attempt::Violation {
                        witness: v.witness,
                        culprit,
                        definite,
                    },
                    Some(exploration),
                );
            }
            CheckedClosure::Overflow => {
                return (
                    Attempt::Inconclusive {
                        reason: "graph closure overflow".into(),
                    },
                    Some(exploration),
                );
            }
        }
    }
    summary.sort();
    (
        Attempt::Verified {
            detail: format!("verified ({})", summary.join(", ")),
        },
        Some(exploration),
    )
}

/// The winning rung of a ladder run: everything needed to build both the
/// `Static` decision and the define's contract summary.
struct VerifiedRung {
    detail: String,
    domains: Vec<SymDomain>,
    result: SymDomain,
    exploration: Exploration,
}

/// One complete pass over the candidate ladder.
struct LadderOutcome {
    verified: Option<VerifiedRung>,
    violations: Vec<(ScGraph, String, bool)>,
    last_reason: String,
    attempts: usize,
    truncated: bool,
    /// Whether any attempt answered an application from a callee summary.
    /// A non-verified outcome with stubs is re-derived stub-free so that
    /// Monitor/Refuted verdicts stay bit-identical to full descent.
    stubbed: bool,
}

#[allow(clippy::too_many_arguments)]
fn run_ladder(
    program: &Program,
    name: &str,
    def: &Rc<LambdaDef>,
    candidates: &[Signature],
    start: Instant,
    config: &PlanConfig,
    cache: &mut PlanCache,
    names: &Rc<HashMap<LambdaId, String>>,
    summaries: Option<&SummaryTable>,
    caller_global: Option<u32>,
    snapshot: &GlobalSnapshot,
) -> LadderOutcome {
    let mut out = LadderOutcome {
        verified: None,
        violations: Vec::new(),
        last_reason: String::new(),
        attempts: 0,
        truncated: false,
        stubbed: false,
    };
    for (domains, result) in candidates {
        if let Some(budget) = config.time_budget {
            if out.attempts > 0 && start.elapsed() > budget {
                out.truncated = true;
                out.last_reason = format!(
                    "time budget ({}ms) exhausted after {} attempt(s)",
                    budget.as_millis(),
                    out.attempts
                );
                break;
            }
        }
        out.attempts += 1;
        let rung = if config.signatures.contains_key(name) {
            "signature"
        } else {
            match domains.first() {
                Some(SymDomain::Nat) => "nat",
                Some(SymDomain::Pos) => "pos",
                _ => "any",
            }
        };
        config.obs.rung_attempt(rung);
        let (attempt, exploration) = run_attempt(
            program,
            name,
            def.id,
            domains,
            *result,
            config,
            cache,
            names.clone(),
            summaries,
            caller_global,
            snapshot,
        );
        match &exploration {
            Some(ex) => {
                config.obs.fuel(ex.steps);
                config.obs.summary_stubbed(ex.stubbed);
                out.stubbed |= ex.stubbed > 0;
            }
            // The exploration itself errored, so its stub count is lost.
            // With a live summary table the error text can embed
            // stub-influenced symbolic-atom numbering, so conservatively
            // flag the run as stubbed: the stub-free fallback then
            // re-derives the canonical reason (and if no stub actually
            // fired, the re-run is identical — just redundant).
            None => out.stubbed |= summaries.is_some_and(|t| !t.is_empty()),
        }
        match attempt {
            Attempt::Verified { detail } => {
                config.obs.rung_discharged(rung);
                out.verified = Some(VerifiedRung {
                    detail,
                    domains: domains.clone(),
                    result: *result,
                    exploration: exploration.expect("verified attempt has an exploration"),
                });
                break;
            }
            Attempt::Violation {
                witness,
                culprit,
                definite,
            } => {
                out.violations.push((witness, culprit, definite));
            }
            Attempt::Inconclusive { reason } => {
                out.last_reason = reason;
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn plan_function(
    program: &Program,
    name: &str,
    def: &Rc<LambdaDef>,
    blame: Option<String>,
    config: &PlanConfig,
    cache: &mut PlanCache,
    names: Rc<HashMap<LambdaId, String>>,
    summaries: Option<&SummaryTable>,
    caller_global: Option<u32>,
    snapshot: &GlobalSnapshot,
) -> (FnDecision, bool, Option<SummaryData>) {
    let start = Instant::now();
    let base = FnDecision {
        name: name.to_string(),
        lambda: def.id,
        covers: Vec::new(),
        decision: Decision::Monitor {
            reason: String::new(),
        },
        blame,
        detail: String::new(),
        micros: 0,
    };
    let finish = |mut d: FnDecision| -> FnDecision {
        d.micros = start.elapsed().as_micros();
        config
            .obs
            .define_done(d.micros.min(u128::from(u64::MAX)) as u64);
        d
    };

    if def.variadic {
        let reason = "variadic functions are not statically analyzed".to_string();
        let mut d = base;
        d.detail = reason.clone();
        d.decision = Decision::Monitor { reason };
        return (finish(d), true, None);
    }

    let params = def.params as usize;
    // The candidate ladder: a declared signature wins; otherwise Any…,
    // then (optionally) Nat… and Pos… with a run-time guard. Automatic
    // rungs always use result domain Any: a non-trivial result domain is
    // an *assumption* the executor does not verify against actual return
    // values, and a wrong one prunes feasible continuation paths — hiding
    // e.g. a non-descending self-call behind a branch on a "can't happen"
    // negative result — which would put a diverging function on the fast
    // path. Only a *declared* signature (a trusted total-correctness
    // contract, exactly §4.2's "the range of the function's contract")
    // may assume more; that is the same trust the Table 1 `StaticSpec`
    // harness extends.
    let candidates: Vec<Signature> = match config.signatures.get(name) {
        Some(sig) => vec![sig.clone()],
        None => {
            let mut c = vec![(vec![SymDomain::Any; params], SymDomain::Any)];
            if config.nat_ladder && params > 0 {
                c.push((vec![SymDomain::Nat; params], SymDomain::Any));
                c.push((vec![SymDomain::Pos; params], SymDomain::Any));
            }
            c
        }
    };

    let mut outcome = run_ladder(
        program,
        name,
        def,
        &candidates,
        start,
        config,
        cache,
        &names,
        summaries,
        caller_global,
        snapshot,
    );
    // Stubbing may only ever *improve* a verdict (it prunes paths and
    // borrows the callee's already-verified graphs), so a Verified rung
    // stands. But a non-Static verdict reached via stubs could differ from
    // full descent in witness/reason wording, so re-derive it stub-free —
    // unless the wall clock already cut the ladder short, in which case
    // the decision is tainted (not persisted) either way.
    if outcome.verified.is_none() && outcome.stubbed && !outcome.truncated {
        outcome = run_ladder(
            program,
            name,
            def,
            &candidates,
            start,
            config,
            cache,
            &names,
            None,
            None,
            snapshot,
        );
    }

    if let Some(rung) = outcome.verified {
        let guard: Vec<PlanDomain> = rung.domains.iter().map(|d| plan_domain(*d)).collect();
        let unconditional = guard.iter().all(|g| *g == PlanDomain::Any);
        let mut d = base;
        // Helper λs nested inside this define are covered by the
        // same exploration; λ ids belonging to *other* globals are
        // not (they may be called from unexplored contexts).
        if unconditional {
            let nested = nested_lambda_ids(def);
            d.covers = rung
                .exploration
                .graphs
                .iter()
                .map(|(id, _)| *id)
                .filter(|id| *id != def.id && nested.contains(id))
                .collect();
        }
        d.decision = Decision::Static { guard };
        d.detail = rung.detail;
        let summary = SummaryData {
            domains: rung.domains,
            result: rung.result,
            graphs: rung.exploration.graphs,
        };
        return (finish(d), true, Some(summary));
    }

    let LadderOutcome {
        mut violations,
        mut last_reason,
        attempts,
        truncated,
        ..
    } = outcome;
    let mut d = base;
    // Refute only when the FULL ladder ran (a time-budget break must not
    // turn a would-be discharge on a later rung into a rejection — the
    // verdict would then depend on machine load) and every rung found a
    // definite violation.
    let refutable = config.refute
        && !violations.is_empty()
        && attempts == candidates.len()
        && violations.len() == attempts
        && violations.iter().all(|(_, _, definite)| *definite);
    if refutable {
        // Every domain assignment agreed on a *direct* violating graph:
        // the function's own recursion step breaks prog? the moment it
        // executes, under any guard we could offer. Report the most
        // general witness (the first candidate's) eagerly, with blame.
        let (witness, culprit, _) = violations.swap_remove(0);
        d.detail = format!("{culprit}: graph {witness} is idempotent with no self-descent");
        d.decision = Decision::Refuted { witness, culprit };
    } else {
        if last_reason.is_empty() {
            last_reason = match violations.first() {
                Some((w, c, _)) => format!(
                    "possible violation in {c} ({w}); not definite under every \
                     domain assignment, so the monitor keeps it"
                ),
                None => "no verification attempt ran".into(),
            };
        }
        d.detail = last_reason.clone();
        d.decision = Decision::Monitor {
            reason: last_reason,
        };
    }
    (finish(d), !truncated, None)
}

/// The inverse of [`plan_domain`]: rebinding a persisted summary's guard
/// back into executor domains.
fn sym_domain(d: PlanDomain) -> SymDomain {
    match d {
        PlanDomain::Nat => SymDomain::Nat,
        PlanDomain::Pos => SymDomain::Pos,
        PlanDomain::Int => SymDomain::Int,
        PlanDomain::List => SymDomain::List,
        PlanDomain::Any => SymDomain::Any,
    }
}

fn plan_domain(d: SymDomain) -> PlanDomain {
    match d {
        SymDomain::Nat => PlanDomain::Nat,
        SymDomain::Pos => PlanDomain::Pos,
        SymDomain::Int => PlanDomain::Int,
        SymDomain::List => PlanDomain::List,
        SymDomain::Any => PlanDomain::Any,
    }
}

/// λ ids syntactically nested inside `def` (excluding `def` itself).
fn nested_lambda_ids(def: &LambdaDef) -> Vec<LambdaId> {
    let mut out = Vec::new();
    collect_lambda_ids(&def.body, &mut out);
    out
}

fn collect_lambda_ids(e: &Expr, out: &mut Vec<LambdaId>) {
    match e {
        Expr::Lambda(def) => {
            out.push(def.id);
            collect_lambda_ids(&def.body, out);
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            collect_lambda_ids(cond, out);
            collect_lambda_ids(then_branch, out);
            collect_lambda_ids(else_branch, out);
        }
        Expr::App { func, args } => {
            collect_lambda_ids(func, out);
            for a in args.iter() {
                collect_lambda_ids(a, out);
            }
        }
        Expr::Seq(exprs) => {
            for x in exprs.iter() {
                collect_lambda_ids(x, out);
            }
        }
        Expr::SetLocal { value, .. } | Expr::SetGlobal { value, .. } => {
            collect_lambda_ids(value, out)
        }
        Expr::Let { inits, body } | Expr::LetRec { inits, body } => {
            for i in inits.iter() {
                collect_lambda_ids(i, out);
            }
            collect_lambda_ids(body, out);
        }
        Expr::TermC { body, .. } => collect_lambda_ids(body, out),
        Expr::Quote(_) | Expr::Var(_) | Expr::Global(_) | Expr::PrimRef(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_lang::compile_program;

    #[test]
    fn sum_is_nat_guarded_static() {
        let prog =
            compile_program("(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))")
                .unwrap();
        let plan = plan_program(&prog, &PlanConfig::default());
        assert_eq!(plan.decisions.len(), 1);
        let d = &plan.decisions[0];
        assert_eq!(d.name, "sum");
        let Decision::Static { guard } = &d.decision else {
            panic!("sum should be static: {:?}", d.decision);
        };
        assert_eq!(guard, &vec![PlanDomain::Nat, PlanDomain::Nat]);
    }

    #[test]
    fn structural_recursion_is_unconditional_static() {
        let prog =
            compile_program("(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))").unwrap();
        let plan = plan_program(&prog, &PlanConfig::default());
        let d = &plan.decisions[0];
        let Decision::Static { guard } = &d.decision else {
            panic!("len should be static: {:?}", d.decision);
        };
        assert!(guard.iter().all(|g| *g == PlanDomain::Any), "{guard:?}");
    }

    #[test]
    fn self_loop_is_refuted_with_blame() {
        let prog =
            compile_program("(define f (terminating/c (lambda (x) (f x)) \"my-party\")) (f 1)")
                .unwrap();
        let plan = plan_program(&prog, &PlanConfig::default());
        let d = &plan.decisions[0];
        assert_eq!(d.blame.as_deref(), Some("my-party"));
        assert!(
            matches!(d.decision, Decision::Refuted { .. }),
            "{:?}",
            d.decision
        );
        let json = plan.to_json();
        assert!(json.contains("\"decision\": \"refuted\""), "{json}");
    }

    #[test]
    fn opaque_higher_order_stays_monitored() {
        // Applying an arbitrary function argument cannot be proven
        // terminating: the fuel-budget fallback keeps it monitored.
        let prog = compile_program("(define (call f x) (f x))").unwrap();
        let plan = plan_program(&prog, &PlanConfig::default());
        assert!(
            matches!(plan.decisions[0].decision, Decision::Monitor { .. }),
            "{:?}",
            plan.decisions[0].decision
        );
    }

    #[test]
    fn cache_makes_replanning_hit_memo() {
        let prog =
            compile_program("(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))")
                .unwrap();
        let mut cache = PlanCache::new();
        let cfg = PlanConfig::default();
        let first = plan_program_with_cache(&prog, &cfg, &mut cache);
        let misses = cache.ljb.misses();
        assert!(misses > 0);
        let second = plan_program_with_cache(&prog, &cfg, &mut cache);
        assert_eq!(cache.ljb.misses(), misses, "re-plan must be pure memo hits");
        assert!(cache.ljb.hits() > 0);
        assert_eq!(first.count("static"), second.count("static"));
    }

    #[test]
    fn pinned_signature_overrides_ladder() {
        let prog =
            compile_program("(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))")
                .unwrap();
        let mut cfg = PlanConfig::default();
        cfg.signatures.insert(
            "sum".into(),
            (vec![SymDomain::Nat, SymDomain::Int], SymDomain::Int),
        );
        let plan = plan_program(&prog, &cfg);
        let Decision::Static { guard } = &plan.decisions[0].decision else {
            panic!("{:?}", plan.decisions[0].decision);
        };
        assert_eq!(guard, &vec![PlanDomain::Nat, PlanDomain::Int]);
    }

    /// A map-backed [`DecisionStore`] for tests (sct-cache's MemStore
    /// lives downstream of this crate).
    #[derive(Default)]
    struct TestStore {
        map: HashMap<String, PortableDecision>,
        summaries: HashMap<String, PortableSummary>,
    }

    impl DecisionStore for TestStore {
        fn load(&mut self, key: &str) -> Option<PortableDecision> {
            self.map.get(key).cloned()
        }
        fn store(&mut self, key: &str, entry: &PortableDecision) {
            self.map.insert(key.to_string(), entry.clone());
        }
        fn load_summary(&mut self, key: &str) -> Option<PortableSummary> {
            self.summaries.get(key).cloned()
        }
        fn store_summary(&mut self, key: &str, summary: &PortableSummary) {
            self.summaries.insert(key.to_string(), summary.clone());
        }
    }

    #[test]
    fn budget_truncated_decisions_are_not_persisted() {
        // A Monitor verdict reached because the wall clock cut the ladder
        // short reflects machine load, not program content: persisting it
        // would pin one slow moment's pessimism under a key that future
        // (fast) runs reproduce. It must recompute instead.
        let prog =
            compile_program("(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))")
                .unwrap();
        let truncated_cfg = PlanConfig {
            time_budget: Some(Duration::ZERO),
            ..PlanConfig::default()
        };
        let mut store = TestStore::default();
        let (plan, _) =
            plan_program_incremental(&prog, &truncated_cfg, &mut PlanCache::new(), &mut store);
        assert_eq!(plan.count("monitor"), 1, "{:?}", plan.decisions);
        assert!(
            store.map.is_empty(),
            "load-dependent decision must not be cached"
        );
        assert!(
            store.summaries.is_empty(),
            "a truncated ladder must not publish a contract summary either"
        );
        // An untruncated run persists as usual — decision and summary.
        let (_, stats) = plan_program_incremental(
            &prog,
            &PlanConfig::default(),
            &mut PlanCache::new(),
            &mut store,
        );
        assert_eq!(stats.misses(), 1);
        assert_eq!(store.map.len(), 1);
        assert_eq!(store.summaries.len(), 1, "sum is recursive and Static");
    }

    #[test]
    fn persisted_summaries_stub_edited_callers() {
        // Cold-plan a program whose caller `f` folds over a recursive
        // helper `len`; then edit only `f` and re-plan against the same
        // store. The helper's decision hits; its persisted summary rebinds
        // (one `plan.summary.hits`); and re-planning the edited caller
        // answers `(len l)` from the summary instead of descending
        // (`plan.summary.stubbed_applications` > 0).
        let v1 = "(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))
                  (define (f l) (if (null? l) 0 (+ (len (cdr l)) (f (cdr l)))))";
        let v2 = "(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))
                  (define (f l) (if (null? l) 0 (+ 1 (len (cdr l)) (f (cdr l)))))";
        let mut store = TestStore::default();
        let cold = compile_program(v1).unwrap();
        let (plan, _) = plan_program_incremental(
            &cold,
            &PlanConfig::default(),
            &mut PlanCache::new(),
            &mut store,
        );
        assert_eq!(plan.count("static"), 2, "{:?}", plan.decisions);
        assert_eq!(store.summaries.len(), 2, "both defines are recursive");

        let reg = std::sync::Arc::new(sct_obs::Registry::new());
        let cfg = PlanConfig {
            obs: PlanObs::registered(reg.clone()),
            ..PlanConfig::default()
        };
        let edited = compile_program(v2).unwrap();
        let (replanned, stats) =
            plan_program_incremental(&edited, &cfg, &mut PlanCache::new(), &mut store);
        assert_eq!((stats.hits(), stats.misses()), (1, 1), "only f re-plans");
        assert_eq!(replanned.count("static"), 2, "{:?}", replanned.decisions);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("plan.summary.hits"), Some(1), "len rebinds");
        assert!(
            snap.counter("plan.summary.stubbed_applications").unwrap() > 0,
            "f's re-plan must answer (len l) from the summary"
        );

        // The stubbed plan must be structurally identical to full descent.
        let descent = PlanConfig {
            summaries: false,
            ..PlanConfig::default()
        };
        let full = plan_program(&edited, &descent);
        assert!(replanned.structurally_eq(&full));
    }

    #[test]
    fn stub_proofs_are_never_weaker_than_descent() {
        // A modular proof can be strictly *stronger* than whole-body
        // descent: here full descent of `f` dies on an executor
        // limitation at the Any rung (the callee's recursion argument
        // changes kind under the caller's path constraints) and only
        // discharges under a Nat guard, while the stubbed exploration
        // discharges unconditionally. Both are sound; the stub side must
        // never be the weaker one (a *verdict downgrade* would be a bug,
        // and an upgrade past Static is impossible). The fuzz harness's
        // `summary-mismatch` differential keeps divergence like this out
        // of the generated corpus entirely.
        let src = "(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))
                   (define (f l acc) (if (null? l) acc (f (cdr l) (+ acc (len l)))))";
        let prog = compile_program(src).unwrap();
        let on = plan_program(&prog, &PlanConfig::default());
        let off = plan_program(
            &prog,
            &PlanConfig {
                summaries: false,
                ..PlanConfig::default()
            },
        );
        let rank = |d: &Decision| match d {
            Decision::Static { guard } if guard.iter().all(|g| *g == PlanDomain::Any) => 3,
            Decision::Static { .. } => 2,
            Decision::Monitor { .. } => 1,
            Decision::Refuted { .. } => 0,
        };
        for (a, b) in on.decisions.iter().zip(off.decisions.iter()) {
            assert!(
                rank(&a.decision) >= rank(&b.decision),
                "{}: stubbed {:?} weaker than descent {:?}",
                a.name,
                a.decision,
                b.decision
            );
        }
        // And this program is exactly the strictly-stronger case.
        assert!(matches!(&on.decisions[1].decision,
            Decision::Static { guard } if guard.iter().all(|g| *g == PlanDomain::Any)));
        assert!(matches!(&off.decisions[1].decision,
            Decision::Static { guard } if guard.iter().any(|g| *g != PlanDomain::Any)));
    }

    #[test]
    fn budget_truncated_ladder_never_refutes() {
        // With a zero wall clock only the first rung runs; whatever it
        // finds, a truncated ladder must not refute a function a later
        // rung would have discharged — the verdict would otherwise depend
        // on machine load.
        let prog =
            compile_program("(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))")
                .unwrap();
        let cfg = PlanConfig {
            time_budget: Some(Duration::ZERO),
            ..PlanConfig::default()
        };
        let plan = plan_program(&prog, &cfg);
        assert_eq!(plan.count("refuted"), 0, "{:?}", plan.decisions);
        // Sanity: the full ladder does discharge it.
        assert_eq!(
            plan_program(&prog, &PlanConfig::default()).count("static"),
            1
        );
    }

    #[test]
    fn expired_deadline_degrades_to_monitor_and_never_persists() {
        // The pass-wide deadline is the serve daemon's request-latency
        // bound: once past it every remaining define degrades to Monitor
        // (sound, pessimistic), never Static, never Refuted — and nothing
        // degraded may land in the store under a content key.
        let prog = compile_program(
            "(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))
             (define (up x) (up (+ x 1)))",
        )
        .unwrap();
        let expired = PlanConfig {
            deadline: Some(Instant::now() - Duration::from_secs(1)),
            ..PlanConfig::default()
        };
        let mut store = TestStore::default();
        let (plan, stats) =
            plan_program_incremental(&prog, &expired, &mut PlanCache::new(), &mut store);
        assert_eq!(plan.count("monitor"), 2, "{:?}", plan.decisions);
        assert_eq!(plan.count("static"), 0);
        assert_eq!(plan.count("refuted"), 0);
        for d in &plan.decisions {
            assert!(
                matches!(&d.decision, Decision::Monitor { reason } if reason.contains(DEADLINE_REASON)),
                "{:?}",
                d.decision
            );
        }
        assert!(store.map.is_empty(), "degraded decisions must not persist");
        assert!(
            store.summaries.is_empty(),
            "deadline-degraded passes must not publish contract summaries"
        );
        assert_eq!(stats.hits(), 0);

        // Store hits are honored even past the deadline: persist with a
        // live deadline, then replan with an expired one.
        let live = PlanConfig::default();
        let (_, warm) = plan_program_incremental(&prog, &live, &mut PlanCache::new(), &mut store);
        assert_eq!(warm.misses(), 2);
        assert_eq!(store.map.len(), 2);
        let (replayed, stats) =
            plan_program_incremental(&prog, &expired, &mut PlanCache::new(), &mut store);
        assert_eq!(stats.hits(), 2, "loads are load-independent");
        assert_eq!(replayed.count("static"), 1, "{:?}", replayed.decisions);
    }

    #[test]
    fn monitor_fallback_decisions_mirror_subset_positions() {
        // The serve daemon fabricates these when a worker dies or stalls:
        // they must cover exactly the λ-define positions plan_program_subset
        // would answer for, carry the caller's reason, and claim no hit.
        let prog = compile_program(
            "(define limit 10)
             (define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))
             (+ 1 2)
             (define (id x) x)",
        )
        .unwrap();
        let all: Vec<usize> = (0..prog.top_level.len()).collect();
        let fabricated = monitor_fallback_decisions(&prog, &all, "worker lost");
        let planned = plan_program_subset(
            &prog,
            &PlanConfig::default(),
            &mut PlanCache::new(),
            &mut NullStore,
            &all,
        );
        assert_eq!(
            fabricated.iter().map(|(p, ..)| *p).collect::<Vec<_>>(),
            planned.iter().map(|(p, ..)| *p).collect::<Vec<_>>(),
            "both answer exactly the λ-define positions"
        );
        for ((pos, d, hit), (ppos, pd, _)) in fabricated.iter().zip(planned.iter()) {
            assert_eq!(pos, ppos);
            assert_eq!(d.name, pd.name);
            assert_eq!(d.lambda, pd.lambda);
            assert!(!hit);
            assert!(
                matches!(&d.decision, Decision::Monitor { reason } if reason == "worker lost"),
                "{:?}",
                d.decision
            );
        }
    }

    #[test]
    fn set_bang_taints_transitive_dependents() {
        // f's proof reads dec, and the program set!s dec, so f must not
        // be discharged: a run-time rebinding could stop the descent.
        let prog = compile_program(
            "(define (dec x) (- x 1))
             (define (f x) (if (zero? x) 0 (f (dec x))))
             (define (lone l) (if (null? l) 0 (lone (cdr l))))
             (set! dec (lambda (x) x))",
        )
        .unwrap();
        let plan = plan_program(&prog, &PlanConfig::default());
        let by_name = |n: &str| {
            plan.decisions
                .iter()
                .find(|d| d.name == n)
                .unwrap_or_else(|| panic!("no decision for {n}"))
        };
        assert!(
            matches!(&by_name("dec").decision, Decision::Monitor { reason } if reason.contains("set!")),
            "{:?}",
            by_name("dec").decision
        );
        assert!(
            matches!(&by_name("f").decision, Decision::Monitor { reason } if reason.contains("set!")),
            "{:?}",
            by_name("f").decision
        );
        // A function not touching any mutated global keeps its discharge.
        assert!(
            matches!(by_name("lone").decision, Decision::Static { .. }),
            "{:?}",
            by_name("lone").decision
        );
    }
}

//! Per-`define` content digests: the cache keys of the persistent plan
//! store.
//!
//! The hybrid pre-pass is deterministic given (a) the `define`'s resolved
//! AST, (b) the resolved ASTs of every global it can transitively reach,
//! (c) which of those globals the program `set!`s anywhere (the mutation
//! taint), (d) the shared symbolic-evaluation prelude (non-λ initializers
//! and the number of `define`s, which consume the executor's step budget
//! before exploration starts), and (e) the planner configuration. A
//! [`ProgramDigests::key`] folds exactly those inputs — plus the codec and
//! hash-spec versions — into one 128-bit content address, so:
//!
//! * editing one `define` changes only the keys of that define and of the
//!   defines that (transitively) reference it — every untouched define is
//!   a cache hit;
//! * the digest never mentions λ ids or global indices (it hashes
//!   *structure* and *names*), so recompiling an edited file does not
//!   invalidate entries for structurally identical defines even though
//!   their λ ids shifted;
//! * changing any budget, ladder, refutation, or signature knob changes
//!   every affected key — a cached decision can never be replayed under a
//!   configuration it was not computed for.
//!
//! # Examples
//!
//! ```
//! use sct_lang::compile_program;
//! use sct_symbolic::digest::ProgramDigests;
//! use sct_symbolic::pipeline::PlanConfig;
//!
//! let p1 = compile_program(
//!     "(define (dec x) (- x 1))
//!      (define (f x) (if (zero? x) 0 (f (dec x))))").unwrap();
//! let p2 = compile_program(
//!     "(define (dec x) (- x 2))
//!      (define (f x) (if (zero? x) 0 (f (dec x))))").unwrap();
//! let cfg = PlanConfig::default();
//! let (d1, d2) = (ProgramDigests::new(&p1), ProgramDigests::new(&p2));
//! // f references dec, so editing dec invalidates BOTH keys …
//! assert_ne!(d1.key(&p1, 0, &cfg), d2.key(&p2, 0, &cfg));
//! assert_ne!(d1.key(&p1, 1, &cfg), d2.key(&p2, 1, &cfg));
//! // … while an identical compile reproduces them exactly.
//! let p1b = compile_program(
//!     "(define (dec x) (- x 1))
//!      (define (f x) (if (zero? x) 0 (f (dec x))))").unwrap();
//! assert_eq!(d1.key(&p1, 1, &cfg), ProgramDigests::new(&p1b).key(&p1b, 1, &cfg));
//! ```

use crate::pipeline::{MutationMap, PlanConfig};
use sct_core::plan_codec::PLAN_CODEC_SCHEMA;
use sct_core::stable::{Digest128, StableHasher, STABLE_HASH_VERSION};
use sct_lang::ast::{Expr, LambdaDef, Program, TopForm};
use sct_sexpr::Datum;

/// Structural digests of one compiled [`Program`], computed once and then
/// queried per `define` via [`ProgramDigests::key`].
#[derive(Debug)]
pub struct ProgramDigests {
    /// Structural hash of each global's define initializer(s), by index.
    per_global: Vec<Digest128>,
    /// The shared-prelude digest: define count plus every non-λ
    /// initializer (those consume executor steps proportional to their
    /// size before any exploration runs).
    prelude: Digest128,
    /// The reference/mutation structure (shared with the pre-pass).
    mutation: MutationMap,
}

impl ProgramDigests {
    /// Walks the program once, hashing every global's initializer(s).
    pub fn new(program: &Program) -> ProgramDigests {
        let n = program.global_names.len();
        let mut hashers: Vec<StableHasher> = (0..n).map(|_| StableHasher::new()).collect();
        let mut prelude = StableHasher::new();
        let mut defines = 0u64;
        for form in &program.top_level {
            match form {
                TopForm::Define { index, expr } => {
                    defines += 1;
                    hash_expr(expr, program, &mut hashers[*index as usize]);
                    if !define_is_lambda(expr) {
                        prelude.write_str(&program.global_names[*index as usize]);
                        hash_expr(expr, program, &mut prelude);
                    }
                }
                TopForm::Expr(_) => {
                    // Top-level expressions are not symbolically evaluated
                    // by the verifier's executor; only their `set!` targets
                    // matter, and those are in the mutation map.
                }
            }
        }
        prelude.write_u64(defines);
        ProgramDigests {
            per_global: hashers.iter().map(StableHasher::finish128).collect(),
            prelude: prelude.finish128(),
            mutation: MutationMap::build(program),
        }
    }

    /// The mutation/reference structure (reused by the pre-pass so the
    /// program is walked once, not twice).
    pub(crate) fn mutation(&self) -> &MutationMap {
        &self.mutation
    }

    /// The content-address key for planning global `index` under `config`:
    /// a 32-hex-character digest committing to everything the decision can
    /// depend on (see the module docs). Equivalent to
    /// [`ProgramDigests::key_at`] with occurrence 0 — callers planning a
    /// program with shadowed (re-`define`d) names must use `key_at`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range for the program the digests
    /// were built from.
    pub fn key(&self, program: &Program, index: u32, config: &PlanConfig) -> String {
        self.key_at(program, index, 0, config)
    }

    /// [`ProgramDigests::key`] for the `occurrence`-th `define` form of
    /// `index` (0-based, program order). The per-global structural hash
    /// covers *all* defines of a name, but a shadowed name yields one
    /// decision per form — the occurrence count keeps those entries from
    /// aliasing each other in the store.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range for the program the digests
    /// were built from.
    pub fn key_at(
        &self,
        program: &Program,
        index: u32,
        occurrence: u32,
        config: &PlanConfig,
    ) -> String {
        let name = &program.global_names[index as usize];
        let mut h = StableHasher::new();
        // Version pins: any bump invalidates every persisted entry. The IR
        // codegen version is part of the key because cached decisions are
        // *baked into call sites* by `sct-ir`: a plan persisted under one
        // compilation scheme must never silently direct a machine whose
        // call-site semantics (specialization rules, guard placement)
        // have changed.
        h.write_u32(STABLE_HASH_VERSION);
        h.write_str(PLAN_CODEC_SCHEMA);
        h.write_u32(sct_ir::CODEGEN_VERSION);
        // The define itself.
        h.write_str(name);
        h.write_u32(occurrence);
        let own = self.per_global[index as usize];
        h.write_u64(own.hi);
        h.write_u64(own.lo);
        // Everything reachable from it: (name, structural hash, mutated?)
        // triples in deterministic (index) order. The mutated bit folds the
        // whole-program `set!` footprint into the key, so adding a `set!`
        // anywhere re-keys exactly the defines it taints.
        for i in self.mutation.reachable_from(index) {
            h.write_str(&program.global_names[i as usize]);
            let d = self.per_global[i as usize];
            h.write_u64(d.hi);
            h.write_u64(d.lo);
            h.write_u8(u8::from(self.mutation.is_mutated(i)));
        }
        // The shared evaluation prelude (see module docs).
        h.write_u64(self.prelude.hi);
        h.write_u64(self.prelude.lo);
        // The planner configuration, as it applies to this define.
        hash_config(config, name, &mut h);
        h.finish128().to_hex()
    }
}

/// True when the initializer is a λ, possibly under `terminating/c`
/// wrappers — the cheap-to-evaluate case the prelude digest may skip.
fn define_is_lambda(expr: &Expr) -> bool {
    let mut e = expr;
    loop {
        match e {
            Expr::TermC { body, .. } => e = body,
            Expr::Lambda(_) => return true,
            _ => return false,
        }
    }
}

fn hash_config(config: &PlanConfig, name: &str, h: &mut StableHasher) {
    h.write_u64(config.verify.exec.step_budget);
    h.write_u64(config.verify.exec.max_outcomes as u64);
    h.write_u32(config.verify.exec.havoc_budget);
    h.write_u64(config.verify.exec.max_chain as u64);
    h.write_u32(config.verify.result_havoc_depth);
    h.write_u64(config.verify.ljb_cap as u64);
    match config.time_budget {
        Some(d) => {
            h.write_u8(1);
            h.write_u64(d.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        None => h.write_u8(0),
    }
    h.write_u8(u8::from(config.nat_ladder));
    h.write_u8(u8::from(config.refute));
    // Only this define's pinned signature participates: the ladder
    // consults `signatures` solely for the entry name.
    match config.signatures.get(name) {
        Some((domains, result)) => {
            h.write_u8(1);
            h.write_u64(domains.len() as u64);
            for d in domains {
                h.write_u8(domain_tag(*d));
            }
            h.write_u8(domain_tag(*result));
        }
        None => h.write_u8(0),
    }
}

fn domain_tag(d: crate::exec::SymDomain) -> u8 {
    match d {
        crate::exec::SymDomain::Nat => 1,
        crate::exec::SymDomain::Pos => 2,
        crate::exec::SymDomain::Int => 3,
        crate::exec::SymDomain::List => 4,
        crate::exec::SymDomain::Any => 5,
    }
}

/// Hashes an expression structurally: tags per variant, names instead of
/// global indices, and *no λ ids* — two compiles of structurally equal
/// code digest identically even when ids differ.
fn hash_expr(e: &Expr, program: &Program, h: &mut StableHasher) {
    match e {
        Expr::Quote(d) => {
            h.write_u8(1);
            hash_datum(d, h);
        }
        Expr::Var(v) => {
            h.write_u8(2);
            h.write_u32(u32::from(v.depth));
            h.write_u32(u32::from(v.slot));
        }
        Expr::Global(i) => {
            h.write_u8(3);
            h.write_str(&program.global_names[*i as usize]);
        }
        Expr::PrimRef(p) => {
            h.write_u8(4);
            h.write_str(&format!("{p:?}"));
        }
        Expr::Lambda(def) => {
            h.write_u8(5);
            hash_lambda(def, program, h);
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            h.write_u8(6);
            hash_expr(cond, program, h);
            hash_expr(then_branch, program, h);
            hash_expr(else_branch, program, h);
        }
        Expr::App { func, args } => {
            h.write_u8(7);
            hash_expr(func, program, h);
            h.write_u64(args.len() as u64);
            for a in args.iter() {
                hash_expr(a, program, h);
            }
        }
        Expr::Seq(exprs) => {
            h.write_u8(8);
            h.write_u64(exprs.len() as u64);
            for x in exprs.iter() {
                hash_expr(x, program, h);
            }
        }
        Expr::SetLocal { var, value } => {
            h.write_u8(9);
            h.write_u32(u32::from(var.depth));
            h.write_u32(u32::from(var.slot));
            hash_expr(value, program, h);
        }
        Expr::SetGlobal { index, value } => {
            h.write_u8(10);
            h.write_str(&program.global_names[*index as usize]);
            hash_expr(value, program, h);
        }
        Expr::Let { inits, body } => {
            h.write_u8(11);
            h.write_u64(inits.len() as u64);
            for i in inits.iter() {
                hash_expr(i, program, h);
            }
            hash_expr(body, program, h);
        }
        Expr::LetRec { inits, body } => {
            h.write_u8(12);
            h.write_u64(inits.len() as u64);
            for i in inits.iter() {
                hash_expr(i, program, h);
            }
            hash_expr(body, program, h);
        }
        Expr::TermC { body, label } => {
            h.write_u8(13);
            h.write_str(label);
            hash_expr(body, program, h);
        }
    }
}

fn hash_lambda(def: &LambdaDef, program: &Program, h: &mut StableHasher) {
    // Deliberately NOT def.id (compile-run-specific). The name hint feeds
    // display strings in decision details, so it participates.
    match &def.name {
        Some(n) => {
            h.write_u8(1);
            h.write_str(n);
        }
        None => h.write_u8(0),
    }
    h.write_u32(u32::from(def.params));
    h.write_u8(u8::from(def.variadic));
    h.write_u64(def.free.len() as u64);
    for v in &def.free {
        h.write_u32(u32::from(v.depth));
        h.write_u32(u32::from(v.slot));
    }
    hash_expr(&def.body, program, h);
}

fn hash_datum(d: &Datum, h: &mut StableHasher) {
    match d {
        Datum::Int(i) => {
            h.write_u8(1);
            h.write_i64(*i);
        }
        Datum::BigInt(s) => {
            h.write_u8(2);
            h.write_str(s);
        }
        Datum::Bool(b) => {
            h.write_u8(3);
            h.write_u8(u8::from(*b));
        }
        Datum::Char(c) => {
            h.write_u8(4);
            h.write_u32(*c as u32);
        }
        Datum::Str(s) => {
            h.write_u8(5);
            h.write_str(s);
        }
        Datum::Sym(s) => {
            h.write_u8(6);
            h.write_str(s);
        }
        Datum::List(items) => {
            h.write_u8(7);
            h.write_u64(items.len() as u64);
            for i in items {
                hash_datum(i, h);
            }
        }
        Datum::Improper(items, tail) => {
            h.write_u8(8);
            h.write_u64(items.len() as u64);
            for i in items {
                hash_datum(i, h);
            }
            hash_datum(tail, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_lang::compile_program;

    fn keys(src: &str, cfg: &PlanConfig) -> Vec<(String, String)> {
        let p = compile_program(src).unwrap();
        let d = ProgramDigests::new(&p);
        (0..p.global_names.len() as u32)
            .map(|i| (p.global_names[i as usize].clone(), d.key(&p, i, cfg)))
            .collect()
    }

    const TWO: &str = "(define (inc x) (+ x 1))
                       (define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))";

    #[test]
    fn identical_compiles_agree() {
        let cfg = PlanConfig::default();
        assert_eq!(keys(TWO, &cfg), keys(TWO, &cfg));
    }

    #[test]
    fn editing_one_define_rekeys_only_it() {
        let cfg = PlanConfig::default();
        let before = keys(TWO, &cfg);
        let after = keys(
            "(define (inc x) (+ x 2))
             (define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))",
            &cfg,
        );
        assert_ne!(before[0].1, after[0].1, "inc changed");
        assert_eq!(before[1].1, after[1].1, "sum untouched: key must survive");
    }

    #[test]
    fn editing_a_referenced_helper_rekeys_dependents() {
        let cfg = PlanConfig::default();
        let before = keys(
            "(define (dec x) (- x 1))
             (define (f x) (if (zero? x) 0 (f (dec x))))",
            &cfg,
        );
        let after = keys(
            "(define (dec x) (- x 2))
             (define (f x) (if (zero? x) 0 (f (dec x))))",
            &cfg,
        );
        assert_ne!(before[0].1, after[0].1);
        assert_ne!(before[1].1, after[1].1, "f reads dec: must be re-keyed");
    }

    #[test]
    fn set_bang_anywhere_rekeys_tainted_defines() {
        let cfg = PlanConfig::default();
        let before = keys(TWO, &cfg);
        let after = keys(
            "(define (inc x) (+ x 1))
             (define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))
             (set! inc (lambda (x) x))",
            &cfg,
        );
        assert_ne!(before[0].1, after[0].1, "inc is now mutated");
        assert_eq!(
            before[1].1, after[1].1,
            "sum never touches inc; its key survives the set!"
        );
    }

    #[test]
    fn config_changes_rekey() {
        let base = PlanConfig::default();
        let no_ladder = PlanConfig {
            nat_ladder: false,
            ..PlanConfig::default()
        };
        let mut small_fuel = PlanConfig::default();
        small_fuel.verify.exec.step_budget = 7;
        let mut pinned = PlanConfig::default();
        pinned.signatures.insert(
            "sum".into(),
            (
                vec![crate::exec::SymDomain::Nat, crate::exec::SymDomain::Nat],
                crate::exec::SymDomain::Nat,
            ),
        );
        let k = |cfg: &PlanConfig| keys(TWO, cfg)[1].1.clone();
        let baseline = k(&base);
        assert_ne!(baseline, k(&no_ladder));
        assert_ne!(baseline, k(&small_fuel));
        assert_ne!(baseline, k(&pinned));
        // A signature pinned to a *different* define leaves sum's key alone.
        let mut other_pinned = PlanConfig::default();
        other_pinned.signatures.insert(
            "inc".into(),
            (
                vec![crate::exec::SymDomain::Nat],
                crate::exec::SymDomain::Nat,
            ),
        );
        assert_eq!(baseline, k(&other_pinned));
    }

    #[test]
    fn variable_slot_changes_rekey() {
        // Regression for the write_u32 tag collision: these two bodies
        // differ only in which parameter guards the recursion (Var slot 0
        // vs slot 2), and once digested to the SAME key — replaying the
        // old decision after such an edit would skip re-verification.
        let cfg = PlanConfig::default();
        let a = keys("(define (h a b c) (if (zero? a) 0 (h (- a 1) b c)))", &cfg);
        let b = keys("(define (h a b c) (if (zero? c) 0 (h (- a 1) b c)))", &cfg);
        assert_ne!(a[0].1, b[0].1, "slot-0 vs slot-2 guard must re-key");
    }

    #[test]
    fn renaming_a_define_rekeys_it() {
        let cfg = PlanConfig::default();
        let a = keys("(define (f x) x)", &cfg);
        let b = keys("(define (g x) x)", &cfg);
        assert_ne!(a[0].1, b[0].1);
    }
}

//! Static size-change-termination verification (§4 of the paper).
//!
//! The verifier is the dynamic monitor run under higher-order symbolic
//! execution: no termination-specific abstraction, just (1) symbolic
//! values and path conditions (Figure 8), (2) a solver proving the
//! must-descend / must-equal facts that Figure 4's `graph` needs — here a
//! built-in Fourier–Motzkin linear-arithmetic core plus structural subterm
//! reasoning, standing in for an SMT back end — and (3) the classic
//! Lee–Jones–Ben-Amram criterion over the finitely many discovered
//! self-call graphs (Figure 9).
//!
//! Beyond per-function verification ([`verify_function`]), the [`pipeline`]
//! module is the entry point of the *hybrid* enforcement regime: it plans a
//! whole program — statically discharging what it can, leaving the residual
//! to the dynamic monitor, and eagerly refuting definite violations — into
//! an [`EnforcementPlan`](sct_core::plan::EnforcementPlan) the interpreter
//! consumes.
//!
//! # Examples
//!
//! Verifying Ackermann on symbolic naturals (§4.2):
//!
//! ```
//! use sct_lang::compile_program;
//! use sct_symbolic::{verify_function, SymDomain, VerifyConfig};
//!
//! let prog = compile_program(
//!     "(define (ack m n)
//!        (cond [(= 0 m) (+ 1 n)]
//!              [(= 0 n) (ack (- m 1) 1)]
//!              [else (ack (- m 1) (ack m (- n 1)))]))",
//! ).unwrap();
//! let verdict = verify_function(
//!     &prog, "ack", &[SymDomain::Nat, SymDomain::Nat], SymDomain::Nat,
//!     &VerifyConfig::default());
//! assert!(verdict.is_verified(), "{verdict}");
//! ```

#![deny(missing_docs)]

pub mod digest;
pub mod exec;
pub mod linear;
pub mod pipeline;
pub mod solver;
pub mod sym;
pub mod verify;

pub use digest::ProgramDigests;
pub use exec::{ExecConfig, Executor, SymDomain};
pub use linear::{entails, unsat, Lin, LinCon};
pub use pipeline::{
    plan_program, plan_program_incremental, plan_program_subset, plan_program_with_cache,
    DecisionStore, IncrementalStats, NullStore, PlanCache, PlanConfig, PlanObs,
};
pub use solver::Solver;
pub use sym::{AtomKind, Path, SValue};
pub use verify::{explore_function, verify_function, Exploration, StaticVerdict, VerifyConfig};

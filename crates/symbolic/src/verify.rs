//! The static termination verifier (§4): symbolic execution of the
//! monitored semantics plus the Lee–Jones–Ben-Amram check over the
//! discovered graph sets.

use crate::exec::{EntryInvariant, ExecConfig, Executor, SOut, SymDomain};
use crate::sym::{Path, SValue};
use sct_core::ljb::{closure_check, ClosureResult};
use sct_lang::ast::{Expr, Program, TopForm};
use std::collections::HashMap;
use std::fmt;

/// The verifier's answer for one function.
#[derive(Debug, Clone)]
pub enum StaticVerdict {
    /// Exploration was exhaustive and every discovered graph set satisfies
    /// the size-change principle: the function terminates on all inputs in
    /// the declared domains.
    Verified {
        /// Number of distinct self-call graphs found per λ (by display
        /// name), mirroring Figure 9's summary.
        graphs: Vec<(String, usize)>,
    },
    /// Not verified — either a graph-set violation (a composition that is
    /// idempotent without self-descent) or an incomplete exploration.
    NotVerified {
        /// Human-readable reason.
        reason: String,
    },
}

impl StaticVerdict {
    /// True when verified.
    pub fn is_verified(&self) -> bool {
        matches!(self, StaticVerdict::Verified { .. })
    }
}

impl fmt::Display for StaticVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticVerdict::Verified { graphs } => {
                write!(f, "verified (")?;
                for (i, (name, n)) in graphs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {n} graphs")?;
                }
                write!(f, ")")
            }
            StaticVerdict::NotVerified { reason } => write!(f, "not verified: {reason}"),
        }
    }
}

/// Configuration for a verification run.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Executor resource limits.
    pub exec: ExecConfig,
    /// Depth to which closures escaping in the result are applied with
    /// fresh inputs (§3.6: a `term/c`d value may be used arbitrarily by
    /// its context).
    pub result_havoc_depth: u32,
    /// Cap on the LJB closure size.
    pub ljb_cap: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            exec: ExecConfig::default(),
            result_havoc_depth: 2,
            ljb_cap: 20_000,
        }
    }
}

/// Verifies that `function`, applied to symbolic arguments from `domains`,
/// maintains size-change termination — the static analogue of wrapping it
/// in `terminating/c`.
///
/// Conservative by construction: any unsupported feature, exhausted
/// budget, or unprovable obligation yields [`StaticVerdict::NotVerified`].
pub fn verify_function(
    program: &Program,
    function: &str,
    domains: &[SymDomain],
    result: SymDomain,
    config: &VerifyConfig,
) -> StaticVerdict {
    let mut ex = Executor::new(program, config.exec.clone());

    let Some(entry_value) = ex.global(function) else {
        return StaticVerdict::NotVerified {
            reason: format!("no global named {function}"),
        };
    };
    let SValue::SClosure(ref clo) = entry_value else {
        return StaticVerdict::NotVerified {
            reason: format!("{function} is not a closure"),
        };
    };
    if clo.def.params as usize != domains.len() || clo.def.variadic {
        return StaticVerdict::NotVerified {
            reason: format!(
                "{function} expects {}{} parameters but the spec declares {}",
                clo.def.params,
                if clo.def.variadic { "+" } else { "" },
                domains.len()
            ),
        };
    }
    ex.set_entry(EntryInvariant {
        id: clo.def.id,
        domains: domains.to_vec(),
        result,
    });

    // Build the symbolic arguments and the initial path condition.
    let mut path = Path::new();
    let mut args = Vec::new();
    for d in domains {
        let (a, p) = ex.fresh_in_domain(*d, &path);
        path = p;
        args.push(a);
    }

    // Run, then havoc whatever escapes.
    let outcomes = ex.apply(&entry_value, args, path, &sct_persist::PMap::new());
    for (p, out) in &outcomes {
        if let SOut::Val(v) = out {
            havoc_escaping(&mut ex, v, p, config.result_havoc_depth);
        }
    }

    if let Some(reason) = ex.incomplete.clone() {
        return StaticVerdict::NotVerified { reason };
    }

    // LJB check per function.
    let names = lambda_names(program);
    let mut summary = Vec::new();
    for (id, graphs) in &ex.graphs {
        match closure_check(graphs, config.ljb_cap) {
            ClosureResult::Ok { .. } => {
                let name = names
                    .get(id)
                    .cloned()
                    .unwrap_or_else(|| format!("lambda#{id}"));
                summary.push((name, graphs.len()));
            }
            ClosureResult::Violation(v) => {
                let name = names
                    .get(id)
                    .cloned()
                    .unwrap_or_else(|| format!("lambda#{id}"));
                return StaticVerdict::NotVerified {
                    reason: format!(
                        "{name}: composition {} is idempotent with no self-descent",
                        v.witness
                    ),
                };
            }
            ClosureResult::Overflow => {
                return StaticVerdict::NotVerified {
                    reason: "graph closure overflow".into(),
                }
            }
        }
    }
    summary.sort();
    StaticVerdict::Verified { graphs: summary }
}

/// Applies closures reachable from an escaping result with fresh inputs —
/// the context of a `term/c`d function may call whatever it is handed.
fn havoc_escaping(ex: &mut Executor<'_>, v: &SValue, path: &Path, depth: u32) {
    if depth == 0 {
        return;
    }
    match path.resolve(v) {
        SValue::SClosure(clo) => {
            let mut p = path.clone();
            let mut args = Vec::new();
            for _ in 0..clo.def.frame_size().min(8) {
                let (a, p2) = ex.fresh_in_domain(SymDomain::Any, &p);
                p = p2;
                args.push(a);
            }
            // Variadic closures get exactly their required count.
            args.truncate(clo.def.params as usize);
            let f = SValue::SClosure(clo);
            let outs = ex.apply(&f, args, p, &sct_persist::PMap::new());
            for (p2, out) in outs {
                if let SOut::Val(r) = out {
                    havoc_escaping(ex, &r, &p2, depth - 1);
                }
            }
        }
        SValue::SPair(pair) => {
            havoc_escaping(ex, &pair.0, path, depth);
            havoc_escaping(ex, &pair.1, path, depth);
        }
        _ => {}
    }
}

/// Display names for λ ids (from `define`/`letrec` hints).
fn lambda_names(program: &Program) -> HashMap<u32, String> {
    let mut names = HashMap::new();
    for form in &program.top_level {
        let expr = match form {
            TopForm::Define { expr, .. } => expr,
            TopForm::Expr(expr) => expr,
        };
        collect_names(expr, &mut names);
    }
    names
}

fn collect_names(e: &Expr, out: &mut HashMap<u32, String>) {
    match e {
        Expr::Lambda(def) => {
            out.insert(def.id, def.describe());
            collect_names(&def.body, out);
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            collect_names(cond, out);
            collect_names(then_branch, out);
            collect_names(else_branch, out);
        }
        Expr::App { func, args } => {
            collect_names(func, out);
            for a in args.iter() {
                collect_names(a, out);
            }
        }
        Expr::Seq(exprs) => {
            for x in exprs.iter() {
                collect_names(x, out);
            }
        }
        Expr::SetLocal { value, .. } | Expr::SetGlobal { value, .. } => collect_names(value, out),
        Expr::Let { inits, body } | Expr::LetRec { inits, body } => {
            for i in inits.iter() {
                collect_names(i, out);
            }
            collect_names(body, out);
        }
        Expr::TermC { body, .. } => collect_names(body, out),
        Expr::Quote(_) | Expr::Var(_) | Expr::Global(_) | Expr::PrimRef(_) => {}
    }
}

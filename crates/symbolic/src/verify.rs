//! The static termination verifier (§4): symbolic execution of the
//! monitored semantics plus the Lee–Jones–Ben-Amram check over the
//! discovered graph sets.

use crate::exec::{
    EntryInvariant, ExecConfig, Executor, GlobalSnapshot, SOut, SummaryTable, SymDomain,
};
use crate::sym::{Path, SValue};
use sct_core::graph::ScGraph;
use sct_core::ljb::{closure_check, ClosureResult};
use sct_lang::ast::{Expr, LambdaId, Program, TopForm};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// The verifier's answer for one function.
#[derive(Debug, Clone)]
pub enum StaticVerdict {
    /// Exploration was exhaustive and every discovered graph set satisfies
    /// the size-change principle: the function terminates on all inputs in
    /// the declared domains.
    Verified {
        /// Number of distinct self-call graphs found per λ (by display
        /// name), mirroring Figure 9's summary.
        graphs: Vec<(String, usize)>,
    },
    /// Not verified — either a graph-set violation (a composition that is
    /// idempotent without self-descent) or an incomplete exploration.
    NotVerified {
        /// Human-readable reason.
        reason: String,
    },
}

impl StaticVerdict {
    /// True when verified.
    pub fn is_verified(&self) -> bool {
        matches!(self, StaticVerdict::Verified { .. })
    }
}

impl fmt::Display for StaticVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticVerdict::Verified { graphs } => {
                write!(f, "verified (")?;
                for (i, (name, n)) in graphs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {n} graphs")?;
                }
                write!(f, ")")
            }
            StaticVerdict::NotVerified { reason } => write!(f, "not verified: {reason}"),
        }
    }
}

/// Configuration for a verification run.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Executor resource limits.
    pub exec: ExecConfig,
    /// Depth to which closures escaping in the result are applied with
    /// fresh inputs (§3.6: a `term/c`d value may be used arbitrarily by
    /// its context).
    pub result_havoc_depth: u32,
    /// Cap on the LJB closure size.
    pub ljb_cap: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            exec: ExecConfig::default(),
            result_havoc_depth: 2,
            ljb_cap: 20_000,
        }
    }
}

/// The result of an exhaustive symbolic exploration (the first half of
/// [`verify_function`]): every way each λ may call itself, as size-change
/// graph sets, plus the display names Figure 9 reports. Produced by
/// [`explore_function`]; the second half is a Lee–Jones–Ben-Amram closure
/// check over each graph set — memoizable via
/// [`sct_core::plan::LjbCache`], which is how the hybrid pre-pass
/// (`crate::pipeline`) makes re-verification free.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Discovered self-call graph sets, in λ-id order.
    pub graphs: Vec<(LambdaId, Vec<ScGraph>)>,
    /// Display names for λ ids (from `define`/`letrec` hints). Shared
    /// (`Rc`) because the map depends only on the program, and the hybrid
    /// pre-pass explores the same program once per `define` × ladder rung.
    pub names: Rc<HashMap<LambdaId, String>>,
    /// How many times an *opaque* value (unknown function) was applied and
    /// havocked as a terminating black box. Zero means the termination
    /// proof is self-contained; nonzero means it is modular — sufficient
    /// for [`verify_function`]'s §4 verdict, insufficient for the hybrid
    /// pipeline to skip run-time monitoring.
    pub opaque_calls: u64,
    /// Symbolic-executor steps this exploration consumed — the *fuel*
    /// drawn against the per-attempt step budget. The hybrid pre-pass
    /// sums it into the `plan.fuel_used` metric so a `metrics` snapshot
    /// shows where verification effort went.
    pub steps: u64,
    /// How many applications were answered from a registered callee
    /// summary instead of body descent (zero unless the caller passed a
    /// [`SummaryTable`]). Unlike `opaque_calls` this is not a soundness
    /// taint — each stub carries its callee's termination proof — but the
    /// hybrid pipeline re-derives any *non*-verified outcome without stubs
    /// so Monitor/Refuted verdicts stay bit-identical to full descent.
    pub stubbed: u64,
}

impl Exploration {
    /// Display name for a λ id.
    pub fn name_of(&self, id: LambdaId) -> String {
        self.names
            .get(&id)
            .cloned()
            .unwrap_or_else(|| format!("lambda#{id}"))
    }
}

/// Runs the symbolic executor over `function` applied to arguments from
/// `domains`, havocs escaping closures, and returns the discovered graph
/// sets — or `Err(reason)` when exploration was not exhaustive (missing
/// global, non-closure, arity mismatch, exhausted budget, or an
/// unsupported feature).
///
/// This is [`verify_function`] minus the closure check; callers that
/// verify many functions (the hybrid pre-pass) run the check themselves
/// through a memo.
///
/// # Errors
///
/// A human-readable reason whenever the exploration cannot certify that
/// *all* behaviors of `function` were covered. Treat any `Err` as "not
/// verified", never as a refutation.
pub fn explore_function(
    program: &Program,
    function: &str,
    domains: &[SymDomain],
    result: SymDomain,
    config: &VerifyConfig,
) -> Result<Exploration, String> {
    explore_with_names(
        program,
        function,
        domains,
        result,
        config,
        Rc::new(lambda_names(program)),
        None,
        None,
        None,
        None,
    )
}

/// [`explore_function`] with a precomputed λ-name map (so callers that
/// explore one program many times — the hybrid pre-pass: every `define` ×
/// every ladder rung — walk the AST for names once instead of per
/// attempt), and an optional λ-id pin: when `expected_entry` is set, the
/// global must still resolve to *that* λ. The hybrid pre-pass pins each
/// `define`'s own λ, because the executor's global table keeps the *last*
/// binding — without the pin, a shadowed earlier definition would inherit
/// a proof of its replacement and skip monitoring unsoundly.
///
/// When `summaries` is set, applications of already-summarized callees are
/// stubbed with their contract summaries instead of descending (see
/// [`Executor::set_summaries`]); `caller_global` is the explored define's
/// global index, used to refuse stubs that could reach back into it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn explore_with_names(
    program: &Program,
    function: &str,
    domains: &[SymDomain],
    result: SymDomain,
    config: &VerifyConfig,
    names: Rc<HashMap<LambdaId, String>>,
    expected_entry: Option<LambdaId>,
    summaries: Option<&SummaryTable>,
    caller_global: Option<u32>,
    snapshot: Option<&GlobalSnapshot>,
) -> Result<Exploration, String> {
    // A planning pass shares one evaluated top-level environment across
    // all of its explorations; one-off entry points evaluate their own.
    let mut ex = match snapshot {
        Some(snap) => Executor::with_snapshot(program, config.exec.clone(), snap),
        None => Executor::new(program, config.exec.clone()),
    };
    if let Some(table) = summaries {
        ex.set_summaries(table, caller_global);
    }

    // `caller_global` is the already-resolved index of `function` when
    // the caller is a planning pass; prefer it over the linear name scan.
    let entry_lookup = match caller_global {
        Some(gi) => ex.global_at(gi),
        None => ex.global(function),
    };
    let Some(entry_value) = entry_lookup else {
        return Err(format!("no global named {function}"));
    };
    let SValue::SClosure(ref clo) = entry_value else {
        return Err(format!("{function} is not a closure"));
    };
    if expected_entry.is_some_and(|id| clo.def.id != id) {
        return Err(format!(
            "{function} is rebound after this definition; the final binding is what runs"
        ));
    }
    if clo.def.params as usize != domains.len() || clo.def.variadic {
        return Err(format!(
            "{function} expects {}{} parameters but the spec declares {}",
            clo.def.params,
            if clo.def.variadic { "+" } else { "" },
            domains.len()
        ));
    }
    ex.set_entry(EntryInvariant {
        id: clo.def.id,
        domains: domains.to_vec(),
        result,
    });

    // Build the symbolic arguments and the initial path condition.
    let mut path = Path::new();
    let mut args = Vec::new();
    for d in domains {
        let (a, p) = ex.fresh_in_domain(*d, &path);
        path = p;
        args.push(a);
    }

    // Run, then havoc whatever escapes.
    let outcomes = ex.apply(&entry_value, args, path, &sct_persist::PMap::new());
    for (p, out) in &outcomes {
        if let SOut::Val(v) = out {
            havoc_escaping(&mut ex, v, p, config.result_havoc_depth);
        }
    }

    if let Some(reason) = ex.incomplete.clone() {
        return Err(reason);
    }

    let mut graphs: Vec<(LambdaId, Vec<ScGraph>)> = ex.graphs.drain().collect();
    graphs.sort_by_key(|(id, _)| *id);
    Ok(Exploration {
        graphs,
        names,
        opaque_calls: ex.opaque_applications,
        steps: ex.steps(),
        stubbed: ex.stubbed_applications,
    })
}

/// Verifies that `function`, applied to symbolic arguments from `domains`,
/// maintains size-change termination — the static analogue of wrapping it
/// in `terminating/c`.
///
/// Conservative by construction: any unsupported feature, exhausted
/// budget, or unprovable obligation yields [`StaticVerdict::NotVerified`].
pub fn verify_function(
    program: &Program,
    function: &str,
    domains: &[SymDomain],
    result: SymDomain,
    config: &VerifyConfig,
) -> StaticVerdict {
    let exploration = match explore_function(program, function, domains, result, config) {
        Ok(e) => e,
        Err(reason) => return StaticVerdict::NotVerified { reason },
    };

    // LJB check per function.
    let mut summary = Vec::new();
    for (id, graphs) in &exploration.graphs {
        match closure_check(graphs, config.ljb_cap) {
            ClosureResult::Ok { .. } => {
                summary.push((exploration.name_of(*id), graphs.len()));
            }
            ClosureResult::Violation(v) => {
                return StaticVerdict::NotVerified {
                    reason: format!(
                        "{}: composition {} is idempotent with no self-descent",
                        exploration.name_of(*id),
                        v.witness
                    ),
                };
            }
            ClosureResult::Overflow => {
                return StaticVerdict::NotVerified {
                    reason: "graph closure overflow".into(),
                }
            }
        }
    }
    summary.sort();
    StaticVerdict::Verified { graphs: summary }
}

/// Applies closures reachable from an escaping result with fresh inputs —
/// the context of a `term/c`d function may call whatever it is handed.
fn havoc_escaping(ex: &mut Executor<'_>, v: &SValue, path: &Path, depth: u32) {
    if depth == 0 {
        return;
    }
    match path.resolve(v) {
        SValue::SClosure(clo) => {
            let mut p = path.clone();
            let mut args = Vec::new();
            for _ in 0..clo.def.frame_size().min(8) {
                let (a, p2) = ex.fresh_in_domain(SymDomain::Any, &p);
                p = p2;
                args.push(a);
            }
            // Variadic closures get exactly their required count.
            args.truncate(clo.def.params as usize);
            let f = SValue::SClosure(clo);
            let outs = ex.apply(&f, args, p, &sct_persist::PMap::new());
            for (p2, out) in outs {
                if let SOut::Val(r) = out {
                    havoc_escaping(ex, &r, &p2, depth - 1);
                }
            }
        }
        SValue::SPair(pair) => {
            havoc_escaping(ex, &pair.0, path, depth);
            havoc_escaping(ex, &pair.1, path, depth);
        }
        _ => {}
    }
}

/// Display names for λ ids (from `define`/`letrec` hints).
pub(crate) fn lambda_names(program: &Program) -> HashMap<u32, String> {
    let mut names = HashMap::new();
    for form in &program.top_level {
        let expr = match form {
            TopForm::Define { expr, .. } => expr,
            TopForm::Expr(expr) => expr,
        };
        collect_names(expr, &mut names);
    }
    names
}

fn collect_names(e: &Expr, out: &mut HashMap<u32, String>) {
    match e {
        Expr::Lambda(def) => {
            out.insert(def.id, def.describe());
            collect_names(&def.body, out);
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            collect_names(cond, out);
            collect_names(then_branch, out);
            collect_names(else_branch, out);
        }
        Expr::App { func, args } => {
            collect_names(func, out);
            for a in args.iter() {
                collect_names(a, out);
            }
        }
        Expr::Seq(exprs) => {
            for x in exprs.iter() {
                collect_names(x, out);
            }
        }
        Expr::SetLocal { value, .. } | Expr::SetGlobal { value, .. } => collect_names(value, out),
        Expr::Let { inits, body } | Expr::LetRec { inits, body } => {
            for i in inits.iter() {
                collect_names(i, out);
            }
            collect_names(body, out);
        }
        Expr::TermC { body, .. } => collect_names(body, out),
        Expr::Quote(_) | Expr::Var(_) | Expr::Global(_) | Expr::PrimRef(_) => {}
    }
}

//! Linear integer terms and constraints, plus a Fourier–Motzkin
//! unsatisfiability test — the arithmetic half of the built-in solver
//! standing in for an SMT back end.
//!
//! Soundness story: we only ever use `unsat` to *refute* `φ ∧ ¬ψ` when
//! proving `φ ⊨ ψ`. Fourier–Motzkin over the rationals is complete for
//! rational systems, and rational unsatisfiability implies integer
//! unsatisfiability, so every `true` answer is sound. Integer-only
//! unsatisfiable systems may be reported satisfiable, which only makes the
//! verifier more conservative (fewer arcs, more "not verified").

use crate::sym::AtomId;

/// A linear expression `k + Σ cᵢ·xᵢ` with `i128` arithmetic (inputs are
/// `i64`-bounded, so products cannot overflow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lin {
    /// Constant term.
    pub k: i128,
    /// Sorted, deduplicated (atom, coefficient) pairs; no zero coefficients.
    pub terms: Vec<(AtomId, i128)>,
}

impl Lin {
    /// The constant expression.
    pub fn constant(k: i128) -> Lin {
        Lin {
            k,
            terms: Vec::new(),
        }
    }

    /// A single variable.
    pub fn var(a: AtomId) -> Lin {
        Lin {
            k: 0,
            terms: vec![(a, 1)],
        }
    }

    /// True when the expression has no variables.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    fn normalize(mut self) -> Lin {
        self.terms.sort_by_key(|(a, _)| *a);
        let mut out: Vec<(AtomId, i128)> = Vec::with_capacity(self.terms.len());
        for (a, c) in self.terms {
            match out.last_mut() {
                Some((b, acc)) if *b == a => *acc += c,
                _ => out.push((a, c)),
            }
        }
        out.retain(|(_, c)| *c != 0);
        Lin {
            k: self.k,
            terms: out,
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Lin) -> Lin {
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().copied());
        Lin {
            k: self.k + other.k,
            terms,
        }
        .normalize()
    }

    /// `self - other`.
    pub fn sub(&self, other: &Lin) -> Lin {
        self.add(&other.scale(-1))
    }

    /// `c · self`.
    pub fn scale(&self, c: i128) -> Lin {
        Lin {
            k: self.k * c,
            terms: self.terms.iter().map(|(a, x)| (*a, x * c)).collect(),
        }
        .normalize()
    }

    /// Coefficient of a variable (0 when absent).
    pub fn coeff(&self, a: AtomId) -> i128 {
        self.terms
            .iter()
            .find(|(b, _)| *b == a)
            .map_or(0, |(_, c)| *c)
    }
}

/// Relation of a [`Lin`] against zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConOp {
    /// `lin ≥ 0`.
    Ge0,
    /// `lin = 0`.
    Eq0,
    /// `lin ≠ 0`.
    Ne0,
}

/// One linear constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinCon {
    /// The expression.
    pub lin: Lin,
    /// Its relation to zero.
    pub op: ConOp,
}

impl LinCon {
    /// `lin ≥ 0`.
    pub fn ge0(lin: Lin) -> LinCon {
        LinCon {
            lin,
            op: ConOp::Ge0,
        }
    }

    /// `lin > 0`, tightened to `lin - 1 ≥ 0` (integers).
    pub fn gt0(lin: Lin) -> LinCon {
        LinCon {
            lin: lin.add(&Lin::constant(-1)),
            op: ConOp::Ge0,
        }
    }

    /// `lin = 0`.
    pub fn eq0(lin: Lin) -> LinCon {
        LinCon {
            lin,
            op: ConOp::Eq0,
        }
    }

    /// `lin ≠ 0`.
    pub fn ne0(lin: Lin) -> LinCon {
        LinCon {
            lin,
            op: ConOp::Ne0,
        }
    }

    /// The negation of this constraint (integers: ¬(x ≥ 0) is −x−1 ≥ 0).
    pub fn negate(&self) -> LinCon {
        match self.op {
            ConOp::Ge0 => LinCon::ge0(self.lin.scale(-1).add(&Lin::constant(-1))),
            ConOp::Eq0 => LinCon::ne0(self.lin.clone()),
            ConOp::Ne0 => LinCon::eq0(self.lin.clone()),
        }
    }
}

/// Row cap: beyond this the test gives up (reports "satisfiable", the
/// conservative answer).
const MAX_ROWS: usize = 4_000;

/// Decides unsatisfiability of a conjunction of constraints (soundly:
/// `true` is definitive, `false` may mean "unknown").
pub fn unsat(cons: &[LinCon]) -> bool {
    // Expand Ne into two branches; all branches must be unsat.
    let mut ge_rows: Vec<Lin> = Vec::new();
    let mut nes: Vec<Lin> = Vec::new();
    for c in cons {
        match c.op {
            ConOp::Ge0 => ge_rows.push(c.lin.clone()),
            ConOp::Eq0 => {
                ge_rows.push(c.lin.clone());
                ge_rows.push(c.lin.scale(-1));
            }
            ConOp::Ne0 => nes.push(c.lin.clone()),
        }
    }
    unsat_branches(ge_rows, &nes)
}

fn unsat_branches(ge_rows: Vec<Lin>, nes: &[Lin]) -> bool {
    match nes.split_first() {
        None => fm_unsat(ge_rows),
        Some((ne, rest)) => {
            // x ≠ 0 over ℤ: x ≥ 1 or x ≤ −1.
            let mut pos = ge_rows.clone();
            pos.push(ne.add(&Lin::constant(-1)));
            let mut neg = ge_rows;
            neg.push(ne.scale(-1).add(&Lin::constant(-1)));
            unsat_branches(pos, rest) && unsat_branches(neg, rest)
        }
    }
}

/// Fourier–Motzkin elimination over the rationals on `lin ≥ 0` rows.
fn fm_unsat(mut rows: Vec<Lin>) -> bool {
    loop {
        // Constant rows decide; drop trivially true ones.
        let mut contradiction = false;
        rows.retain(|r| {
            if r.is_const() {
                if r.k < 0 {
                    contradiction = true;
                }
                false
            } else {
                true
            }
        });
        if contradiction {
            return true;
        }
        // Pick the variable occurring in the fewest rows to limit blowup.
        let mut var_count: std::collections::HashMap<AtomId, usize> =
            std::collections::HashMap::new();
        for r in &rows {
            for (a, _) in &r.terms {
                *var_count.entry(*a).or_insert(0) += 1;
            }
        }
        let Some((&var, _)) = var_count.iter().min_by_key(|(_, n)| **n) else {
            return false; // no variables left, no contradiction
        };
        let (with_var, without): (Vec<Lin>, Vec<Lin>) =
            rows.into_iter().partition(|r| r.coeff(var) != 0);
        let (pos, neg): (Vec<Lin>, Vec<Lin>) = with_var.into_iter().partition(|r| r.coeff(var) > 0);
        let mut next = without;
        for p in &pos {
            for n in &neg {
                // cp > 0, cn < 0: eliminate var via (-cn)·p + cp·n.
                let cp = p.coeff(var);
                let cn = n.coeff(var);
                let combined = p.scale(-cn).add(&n.scale(cp));
                debug_assert_eq!(combined.coeff(var), 0);
                next.push(combined);
            }
        }
        if next.len() > MAX_ROWS {
            return false; // give up conservatively
        }
        rows = next;
    }
}

/// Proves `assumptions ⊨ goal` by refutation.
pub fn entails(assumptions: &[LinCon], goal: &LinCon) -> bool {
    let mut sys = assumptions.to_vec();
    sys.push(goal.negate());
    unsat(&sys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(a: AtomId) -> Lin {
        Lin::var(a)
    }

    fn c(k: i128) -> Lin {
        Lin::constant(k)
    }

    #[test]
    fn arithmetic_on_lin() {
        let e = v(1).scale(2).add(&v(2)).add(&c(3)); // 2x + y + 3
        assert_eq!(e.coeff(1), 2);
        assert_eq!(e.coeff(2), 1);
        assert_eq!(e.k, 3);
        let z = e.sub(&e);
        assert!(z.is_const());
        assert_eq!(z.k, 0);
    }

    #[test]
    fn simple_contradictions() {
        // x ≥ 1 ∧ −x ≥ 0 is unsat.
        assert!(unsat(&[
            LinCon::ge0(v(1).add(&c(-1))),
            LinCon::ge0(v(1).scale(-1))
        ]));
        // x ≥ 0 ∧ x ≤ 5 is sat.
        assert!(!unsat(&[LinCon::ge0(v(1)), LinCon::ge0(c(5).sub(&v(1)))]));
        // x = 3 ∧ x ≠ 3 is unsat.
        assert!(unsat(&[
            LinCon::eq0(v(1).sub(&c(3))),
            LinCon::ne0(v(1).sub(&c(3))),
        ]));
    }

    #[test]
    fn transitive_chains() {
        // x ≥ y + 1, y ≥ z, z ≥ x is unsat.
        assert!(unsat(&[
            LinCon::ge0(v(1).sub(&v(2)).add(&c(-1))),
            LinCon::ge0(v(2).sub(&v(3))),
            LinCon::ge0(v(3).sub(&v(1))),
        ]));
    }

    #[test]
    fn entailment_queries() {
        // m ≥ 0 ∧ m ≠ 0 ⊨ m − 1 ≥ 0 — the ack descent fact (§4.2).
        let phi = [LinCon::ge0(v(1)), LinCon::ne0(v(1))];
        assert!(entails(&phi, &LinCon::ge0(v(1).add(&c(-1)))));
        // And m − 1 < m, i.e. m − (m−1) − 1 ≥ 0, trivially.
        assert!(entails(&phi, &LinCon::ge0(c(0))));
        // But not m − 2 ≥ 0.
        assert!(!entails(&phi, &LinCon::ge0(v(1).add(&c(-2)))));
    }

    #[test]
    fn subtractive_gcd_fact() {
        // a ≥ 1 ∧ b − a ≥ 1 ⊨ b − (b−a) ≥ 1 (i.e. the new b descends).
        let phi = [
            LinCon::ge0(v(1).add(&c(-1))),            // a ≥ 1
            LinCon::ge0(v(2).sub(&v(1)).add(&c(-1))), // b − a ≥ 1
        ];
        // new = b − a; prove new ≥ 0 and b − new ≥ 1 (strict descent).
        assert!(entails(&phi, &LinCon::ge0(v(2).sub(&v(1)))));
        assert!(entails(&phi, &LinCon::ge0(v(1).add(&c(-1)))));
    }

    #[test]
    fn negation_roundtrip() {
        let con = LinCon::ge0(v(1));
        let negneg = con.negate().negate();
        // ¬¬(x ≥ 0) = ¬(−x−1 ≥ 0) = x ≥ 0 — check equivalence by entailment.
        assert!(entails(std::slice::from_ref(&negneg), &con));
        assert!(entails(&[con], &negneg));
    }
}

//! Symbolic values (Figure 8's `s ::= x | b | (o ⃗s)`), environments, and
//! path conditions.

use sct_interp::Value;
use sct_lang::{LambdaDef, Prim};
use sct_persist::PMap;
use std::rc::Rc;

/// Identifier of a symbolic atom (Figure 8's symbolic variable `x`).
pub type AtomId = u32;

/// The declared kind of an atom, fixed at creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomKind {
    /// An integer.
    Int,
    /// A proper list (refinable to nil / pair by branching).
    List,
    /// Completely unknown.
    Any,
}

/// A symbolic run-time value.
#[derive(Debug, Clone)]
pub enum SValue {
    /// A concrete value (literal data, primitives as values, …).
    Conc(Value),
    /// A symbolic atom.
    Atom(AtomId),
    /// An uninterpreted primitive application over symbolic values.
    Term(Prim, Rc<[SValue]>),
    /// A pair with at least one symbolic component.
    SPair(Rc<(SValue, SValue)>),
    /// A closure whose captured environment may be symbolic.
    SClosure(Rc<SClosure>),
}

/// A closure in the symbolic machine.
#[derive(Debug)]
pub struct SClosure {
    /// The compiled lambda.
    pub def: Rc<LambdaDef>,
    /// Captured environment.
    pub env: SEnv,
}

/// One environment frame (immutable: the symbolic machine rejects `set!`).
#[derive(Debug)]
pub struct SFrame {
    /// Slot values. `letrec` frames are backpatched before any fork can
    /// observe them (the executor rejects forking initializers).
    pub slots: std::cell::RefCell<Vec<SValue>>,
    /// Enclosing frame.
    pub parent: SEnv,
}

/// A chain of frames; `None` is the top level.
pub type SEnv = Option<Rc<SFrame>>;

/// Extends an environment with a new frame.
pub fn extend(parent: &SEnv, slots: Vec<SValue>) -> SEnv {
    Some(Rc::new(SFrame {
        slots: std::cell::RefCell::new(slots),
        parent: parent.clone(),
    }))
}

/// Reads a lexical address.
pub fn lookup(env: &SEnv, depth: u16, slot: u16) -> SValue {
    let mut frame = env.as_ref().expect("symbolic lookup in empty env");
    for _ in 0..depth {
        frame = frame.parent.as_ref().expect("depth out of range");
    }
    frame.slots.borrow()[slot as usize].clone()
}

impl SValue {
    /// Builds a concrete integer.
    pub fn int(n: i64) -> SValue {
        SValue::Conc(Value::int(n))
    }

    /// True when this is a concrete value.
    pub fn is_concrete(&self) -> bool {
        matches!(self, SValue::Conc(_))
    }

    /// Syntactic equality — sound as a "must be equal" check: equal atoms
    /// denote the same unknown, equal terms the same computation.
    pub fn syn_eq(&self, other: &SValue) -> bool {
        match (self, other) {
            (SValue::Conc(a), SValue::Conc(b)) => sct_interp::equal(a, b),
            (SValue::Atom(a), SValue::Atom(b)) => a == b,
            (SValue::Term(p, xs), SValue::Term(q, ys)) => {
                p == q && xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| x.syn_eq(y))
            }
            (SValue::SPair(a), SValue::SPair(b)) => a.0.syn_eq(&b.0) && a.1.syn_eq(&b.1),
            (SValue::SClosure(a), SValue::SClosure(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Short rendering for error messages and traces.
    pub fn show(&self) -> String {
        match self {
            SValue::Conc(v) => v.to_write_string(),
            SValue::Atom(a) => format!("α{a}"),
            SValue::Term(p, args) => {
                let parts: Vec<String> = args.iter().map(SValue::show).collect();
                format!("({} {})", p.name(), parts.join(" "))
            }
            SValue::SPair(p) => format!("(cons {} {})", p.0.show(), p.1.show()),
            SValue::SClosure(c) => format!("#<sym-closure:{}>", c.def.describe()),
        }
    }
}

/// A path condition: linear facts plus structural refinements of atoms.
#[derive(Clone, Default)]
pub struct Path {
    /// Linear integer constraints assumed true on this path.
    pub lin: Rc<Vec<crate::linear::LinCon>>,
    /// Structural refinements: atom ↦ its expansion (e.g. a list atom
    /// refined to nil or to a pair of fresh atoms).
    pub bindings: PMap<AtomId, SValue>,
}

impl Path {
    /// The empty path condition.
    pub fn new() -> Path {
        Path::default()
    }

    /// Path extended with a linear fact.
    #[must_use]
    pub fn assume(&self, con: crate::linear::LinCon) -> Path {
        let mut lin = (*self.lin).clone();
        lin.push(con);
        Path {
            lin: Rc::new(lin),
            bindings: self.bindings.clone(),
        }
    }

    /// Path extended with a structural refinement.
    #[must_use]
    pub fn bind(&self, atom: AtomId, to: SValue) -> Path {
        Path {
            lin: self.lin.clone(),
            bindings: self.bindings.insert(atom, to),
        }
    }

    /// Resolves an atom through the refinements on this path (one step at
    /// a time, to a fixed point at the outermost constructor).
    pub fn resolve(&self, v: &SValue) -> SValue {
        let mut cur = v.clone();
        let mut fuel = 64;
        while let SValue::Atom(a) = cur {
            match self.bindings.get(&a) {
                Some(next) if fuel > 0 => {
                    fuel -= 1;
                    cur = next.clone();
                }
                _ => return SValue::Atom(a),
            }
        }
        cur
    }
}

impl std::fmt::Debug for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Path({} lin facts, {} bindings)",
            self.lin.len(),
            self.bindings.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syntactic_equality() {
        assert!(SValue::Atom(1).syn_eq(&SValue::Atom(1)));
        assert!(!SValue::Atom(1).syn_eq(&SValue::Atom(2)));
        assert!(SValue::int(3).syn_eq(&SValue::int(3)));
        let t1 = SValue::Term(Prim::Sub, Rc::from(vec![SValue::Atom(1), SValue::int(1)]));
        let t2 = SValue::Term(Prim::Sub, Rc::from(vec![SValue::Atom(1), SValue::int(1)]));
        assert!(t1.syn_eq(&t2));
    }

    #[test]
    fn path_binding_resolution() {
        let p = Path::new();
        let pair = SValue::SPair(Rc::new((SValue::Atom(2), SValue::Atom(3))));
        let p2 = p.bind(1, pair);
        assert!(matches!(p2.resolve(&SValue::Atom(1)), SValue::SPair(_)));
        assert!(matches!(p.resolve(&SValue::Atom(1)), SValue::Atom(1)));
        // Chained refinement.
        let p3 = p2.bind(3, SValue::Conc(Value::Nil));
        let SValue::SPair(q) = p3.resolve(&SValue::Atom(1)) else {
            panic!()
        };
        assert!(matches!(p3.resolve(&q.1), SValue::Conc(Value::Nil)));
    }

    #[test]
    fn env_frames() {
        let e = extend(&None, vec![SValue::int(1), SValue::Atom(7)]);
        let e2 = extend(&e, vec![SValue::int(9)]);
        assert!(lookup(&e2, 1, 1).syn_eq(&SValue::Atom(7)));
        assert!(lookup(&e2, 0, 0).syn_eq(&SValue::int(9)));
    }
}

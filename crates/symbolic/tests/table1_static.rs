//! Table 1, static column: run the verifier on every corpus row with a
//! static spec and compare against the paper's verdicts, allowing the
//! documented deviations (rows where this reproduction's solver is more
//! precise than the paper's tool; see EXPERIMENTS.md).

use sct_corpus::{diverging, table1, Domain, Verdict};
use sct_symbolic::{verify_function, StaticVerdict, SymDomain, VerifyConfig};

fn to_sym(d: Domain) -> SymDomain {
    match d {
        Domain::Nat => SymDomain::Nat,
        Domain::Pos => SymDomain::Pos,
        Domain::Int => SymDomain::Int,
        Domain::List => SymDomain::List,
        Domain::Any => SymDomain::Any,
    }
}

/// Rows where we verify although the paper's tool did not. All three are
/// precision wins, not soundness bugs: the programs do terminate.
const STRONGER_THAN_PAPER: &[&str] = &["ho-sc-ack", "isabelle-bar", "deriv"];

fn run_row(p: &sct_corpus::CorpusProgram) -> Option<StaticVerdict> {
    let spec = p.static_spec?;
    let prog = sct_lang::compile_program(p.source).expect("corpus row compiles");
    let domains: Vec<SymDomain> = spec.domains.iter().map(|d| to_sym(*d)).collect();
    Some(verify_function(
        &prog,
        spec.function,
        &domains,
        to_sym(spec.result),
        &VerifyConfig::default(),
    ))
}

#[test]
fn static_column_matches_paper_modulo_documented_deviations() {
    for p in table1::all() {
        let Some(verdict) = run_row(&p) else { continue };
        let paper_pass = p.paper.static_ == Verdict::Pass;
        let ours_pass = verdict.is_verified();
        if STRONGER_THAN_PAPER.contains(&p.id) {
            assert!(
                !paper_pass && ours_pass,
                "{}: expected documented deviation (paper N / ours Y), got paper {} ours {}",
                p.id,
                p.paper.static_.cell(),
                verdict
            );
        } else {
            assert_eq!(
                paper_pass,
                ours_pass,
                "{}: paper {} but verifier said {}",
                p.id,
                p.paper.static_.cell(),
                verdict
            );
        }
    }
}

#[test]
fn verified_rows_report_graphs() {
    // A "verified" answer for a recursive function must rest on at least
    // one discovered self-call graph — no vacuous verification.
    for id in ["sct-3", "lh-merge", "dderiv", "nfa"] {
        let p = table1::all().into_iter().find(|p| p.id == id).unwrap();
        let StaticVerdict::Verified { graphs } = run_row(&p).unwrap() else {
            panic!("{id} should verify");
        };
        let total: usize = graphs.iter().map(|(_, n)| n).sum();
        assert!(total >= 1, "{id}: verified with no graphs");
    }
}

#[test]
fn figure_9_graph_set_for_ack() {
    // §4.2 / Figure 9: exactly two ways ack calls itself.
    let p = table1::all().into_iter().find(|p| p.id == "sct-3").unwrap();
    let StaticVerdict::Verified { graphs } = run_row(&p).unwrap() else {
        panic!("ack should verify");
    };
    assert_eq!(graphs, vec![("ack".to_string(), 2)]);
}

#[test]
fn diverging_programs_never_verify() {
    // Soundness (Proposition 4.1 direction): the sabotaged programs must
    // not be verified.
    let cases: &[(&str, &str, &[Domain], Domain)] = &[
        ("buggy-ack", "ack", &[Domain::Nat, Domain::Nat], Domain::Nat),
        ("buggy-sum", "sum", &[Domain::Nat, Domain::Int], Domain::Int),
        (
            "buggy-merge",
            "merge",
            &[Domain::List, Domain::List],
            Domain::List,
        ),
        ("ping-pong", "ping", &[Domain::Any], Domain::Any),
        ("buggy-nfa", "state1", &[Domain::List], Domain::Any),
    ];
    for (id, function, domains, result) in cases {
        let p = diverging::all().into_iter().find(|p| p.id == *id).unwrap();
        let prog = sct_lang::compile_program(p.source).unwrap();
        let doms: Vec<SymDomain> = domains.iter().map(|d| to_sym(*d)).collect();
        let verdict = verify_function(
            &prog,
            function,
            &doms,
            to_sym(*result),
            &VerifyConfig::default(),
        );
        assert!(
            !verdict.is_verified(),
            "{id}: a diverging function must not verify, got {verdict}"
        );
    }
}

#[test]
fn nfa_bug_found_statically() {
    // §5.1.2: "Our static analysis was the first to discover this error
    // after many years" — the buggy state1 must be rejected with a
    // size-change reason.
    let p = diverging::all()
        .into_iter()
        .find(|p| p.id == "buggy-nfa")
        .unwrap();
    let prog = sct_lang::compile_program(p.source).unwrap();
    let verdict = verify_function(
        &prog,
        "state1",
        &[SymDomain::List],
        SymDomain::Any,
        &VerifyConfig::default(),
    );
    let StaticVerdict::NotVerified { reason } = verdict else {
        panic!("buggy nfa must not verify");
    };
    assert!(
        reason.contains("state1") || reason.contains("idempotent"),
        "reason should implicate the loop: {reason}"
    );
}

//! Property tests for the Fourier–Motzkin core: every `unsat`/`entails`
//! answer is checked against brute-force evaluation over a bounded integer
//! box. Soundness is directional — `unsat = true` must mean *no* integer
//! solution exists (hence none in the box), and `entails(φ, ψ) = true`
//! must mean every box point satisfying φ satisfies ψ. The converse
//! directions are allowed to be incomplete.

use proptest::prelude::*;
use sct_symbolic::{entails, unsat, Lin, LinCon};

const VARS: u32 = 3;
const BOX: i128 = 4;

fn lin_strategy() -> impl Strategy<Value = Lin> {
    (
        -5i128..=5,
        proptest::collection::vec((-3i128..=3, 0u32..VARS), 0..3),
    )
        .prop_map(|(k, coeffs)| {
            let mut lin = Lin::constant(k);
            for (c, v) in coeffs {
                lin = lin.add(&Lin::var(v).scale(c));
            }
            lin
        })
}

fn con_strategy() -> impl Strategy<Value = LinCon> {
    (lin_strategy(), 0u8..3).prop_map(|(lin, op)| match op {
        0 => LinCon::ge0(lin),
        1 => LinCon::eq0(lin),
        _ => LinCon::ne0(lin),
    })
}

fn eval_lin(lin: &Lin, assignment: &[i128]) -> i128 {
    let mut acc = lin.k;
    for v in 0..VARS {
        acc += lin.coeff(v) * assignment[v as usize];
    }
    acc
}

fn satisfies(con: &LinCon, assignment: &[i128]) -> bool {
    let v = eval_lin(&con.lin, assignment);
    match con.op {
        sct_symbolic::linear::ConOp::Ge0 => v >= 0,
        sct_symbolic::linear::ConOp::Eq0 => v == 0,
        sct_symbolic::linear::ConOp::Ne0 => v != 0,
    }
}

fn box_points() -> impl Iterator<Item = [i128; VARS as usize]> {
    (-BOX..=BOX)
        .flat_map(move |a| (-BOX..=BOX).flat_map(move |b| (-BOX..=BOX).map(move |c| [a, b, c])))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn unsat_is_sound(cons in proptest::collection::vec(con_strategy(), 0..5)) {
        if unsat(&cons) {
            for p in box_points() {
                prop_assert!(
                    !cons.iter().all(|c| satisfies(c, &p)),
                    "unsat system satisfied at {:?}: {:?}",
                    p,
                    cons
                );
            }
        }
    }

    #[test]
    fn entails_is_sound(
        phi in proptest::collection::vec(con_strategy(), 0..4),
        goal in con_strategy(),
    ) {
        if entails(&phi, &goal) {
            for p in box_points() {
                if phi.iter().all(|c| satisfies(c, &p)) {
                    prop_assert!(
                        satisfies(&goal, &p),
                        "entailment broken at {:?}: {:?} |= {:?}",
                        p,
                        phi,
                        goal
                    );
                }
            }
        }
    }

    #[test]
    fn negate_is_complementary(con in con_strategy()) {
        // At every box point exactly one of con / ¬con holds.
        let neg = con.negate();
        for p in box_points().step_by(37) {
            prop_assert_ne!(
                satisfies(&con, &p),
                satisfies(&neg, &p),
                "negation not complementary at {:?}: {:?}",
                p,
                con
            );
        }
    }

    #[test]
    fn unsat_detects_point_contradictions(a in -3i128..=3, v in 0u32..VARS) {
        // x = a ∧ x ≠ a is always unsat; x = a ∧ x ≥ a is always sat.
        let eq = LinCon::eq0(Lin::var(v).add(&Lin::constant(-a)));
        let ne = LinCon::ne0(Lin::var(v).add(&Lin::constant(-a)));
        prop_assert!(unsat(&[eq.clone(), ne]));
        let ge = LinCon::ge0(Lin::var(v).add(&Lin::constant(-a)));
        prop_assert!(!unsat(&[eq, ge]));
    }
}

//! Unit-level tests of the symbolic executor: branch exploration, list
//! expansion, havoc, summarization, and the invariant guards.

use sct_lang::compile_program;
use sct_symbolic::{verify_function, StaticVerdict, SymDomain, VerifyConfig};

fn verify(src: &str, f: &str, domains: &[SymDomain], result: SymDomain) -> StaticVerdict {
    let prog = compile_program(src).unwrap();
    verify_function(&prog, f, domains, result, &VerifyConfig::default())
}

fn assert_verified(src: &str, f: &str, domains: &[SymDomain], result: SymDomain) {
    let v = verify(src, f, domains, result);
    assert!(v.is_verified(), "{f} should verify, got: {v}");
}

fn assert_not_verified(src: &str, f: &str, domains: &[SymDomain], result: SymDomain) {
    let v = verify(src, f, domains, result);
    assert!(!v.is_verified(), "{f} should NOT verify");
}

#[test]
fn nonrecursive_functions_verify_trivially() {
    assert_verified("(define (k x) 42)", "k", &[SymDomain::Any], SymDomain::Any);
    assert_verified(
        "(define (add3 a b c) (+ a (+ b c)))",
        "add3",
        &[SymDomain::Int, SymDomain::Int, SymDomain::Int],
        SymDomain::Int,
    );
}

#[test]
fn countdown_verifies_with_nat_only() {
    let src = "(define (down n) (if (zero? n) 0 (down (- n 1))))";
    assert_verified(src, "down", &[SymDomain::Nat], SymDomain::Nat);
    // Over all integers, |n−1| < |n| fails for n ≤ 0 … and indeed the
    // function diverges on negative inputs, so this must not verify.
    assert_not_verified(src, "down", &[SymDomain::Int], SymDomain::Int);
}

#[test]
fn branch_pruning_uses_path_conditions() {
    // The else branch calls with n unchanged, but that branch is
    // unreachable: n ≥ 0 ∧ n ≠ 0 ∧ n < 1 is unsat.
    let src = "
(define (f n)
  (if (zero? n) 0
      (if (< n 1) (f n) (f (- n 1)))))";
    assert_verified(src, "f", &[SymDomain::Nat], SymDomain::Nat);
}

#[test]
fn list_expansion_drives_structural_descent() {
    let src = "(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))";
    assert_verified(src, "len", &[SymDomain::List], SymDomain::Nat);
    // cadr-style descent (two steps at once) also proves.
    let src2 = "(define (pairs l) (if (null? l) 0 (+ 1 (pairs (cddr l)))))";
    assert_verified(src2, "pairs", &[SymDomain::List], SymDomain::Nat);
}

#[test]
fn growing_list_argument_is_rejected() {
    let src = "(define (grow l) (if (null? l) 0 (grow (cons 1 l))))";
    assert_not_verified(src, "grow", &[SymDomain::List], SymDomain::Any);
}

#[test]
fn mutual_recursion_graphs_cross_functions() {
    let src = "
(define (even2? n) (if (zero? n) #t (odd2? (- n 1))))
(define (odd2? n) (if (zero? n) #f (even2? (- n 1))))";
    assert_verified(src, "even2?", &[SymDomain::Nat], SymDomain::Any);
    // One leg not descending still composes to overall descent (the pair
    // terminates, shifted by one) — the LJB closure proves it.
    let shifted = "
(define (even2? n) (if (zero? n) #t (odd2? n)))
(define (odd2? n) (if (zero? n) #f (even2? (- n 1))))";
    assert_verified(shifted, "even2?", &[SymDomain::Nat], SymDomain::Any);
    // But when *neither* leg descends, the pair diverges and is refused.
    let bad = "
(define (even2? n) (if (zero? n) #t (odd2? n)))
(define (odd2? n) (if (zero? n) #f (even2? n)))";
    assert_not_verified(bad, "even2?", &[SymDomain::Nat], SymDomain::Any);
}

#[test]
fn unknown_function_results_are_havocked() {
    // f's result feeds the recursion: no descent provable.
    let src = "(define (iter g n) (if (zero? n) 0 (iter g (g n))))";
    assert_not_verified(
        src,
        "iter",
        &[SymDomain::Any, SymDomain::Nat],
        SymDomain::Any,
    );
    // But when the recursion descends on n itself, the unknown g is harmless.
    let ok = "(define (iter g n) (if (zero? n) 0 (iter g (- n 1))))";
    assert_verified(
        ok,
        "iter",
        &[SymDomain::Any, SymDomain::Nat],
        SymDomain::Any,
    );
}

#[test]
fn callback_havoc_explores_closure_arguments() {
    // The closure we hand to the unknown g loops on itself; a sound
    // verifier must refuse (g may call it).
    let src = "
(define (use g)
  (g (lambda (x) (spin x))))
(define (spin x) (spin x))";
    assert_not_verified(src, "use", &[SymDomain::Any], SymDomain::Any);
}

#[test]
fn escaping_closures_are_applied() {
    // The returned closure loops; §3.6's context may call it.
    let src = "
(define (make) (lambda (x) ((make) x)))";
    assert_not_verified(src, "make", &[], SymDomain::Any);
}

#[test]
fn set_bang_is_conservatively_rejected() {
    let src = "
(define counter 0)
(define (tick n) (begin (set! counter (+ counter 1)) n))";
    let v = verify(src, "tick", &[SymDomain::Int], SymDomain::Int);
    assert!(!v.is_verified(), "set! must be refused, got {v}");
}

#[test]
fn error_paths_are_benign() {
    // car of a possibly-non-pair aborts that path; the recursion still
    // verifies on the surviving paths.
    let src = "
(define (walk l) (if (null? l) 0 (walk (cdr l))))
(define (top l) (+ (car l) (walk l)))";
    assert_verified(src, "top", &[SymDomain::List], SymDomain::Any);
    // `(error ...)` likewise ends the path.
    let src2 = "
(define (safe n) (if (negative? n) (error 'safe \"negative\") (if (zero? n) 0 (safe (- n 1)))))";
    assert_verified(src2, "safe", &[SymDomain::Int], SymDomain::Nat);
}

#[test]
fn apply_with_known_spine_is_spread() {
    let src = "
(define (down n) (if (zero? n) 0 (apply down (list (- n 1)))))";
    assert_verified(src, "down", &[SymDomain::Nat], SymDomain::Nat);
}

#[test]
fn variadic_entry_is_refused_cleanly() {
    let src = "(define (v . xs) xs)";
    let v = verify(src, "v", &[SymDomain::Any], SymDomain::Any);
    assert!(!v.is_verified());
}

#[test]
fn missing_or_non_function_entry() {
    let src = "(define x 5)";
    assert!(!verify(src, "x", &[], SymDomain::Any).is_verified());
    assert!(!verify(src, "nope", &[], SymDomain::Any).is_verified());
}

#[test]
fn wrong_arity_spec_is_refused() {
    let src = "(define (f a b) a)";
    let v = verify(src, "f", &[SymDomain::Any], SymDomain::Any);
    assert!(!v.is_verified());
}

#[test]
fn term_c_is_transparent_statically() {
    let src = "
(define f (terminating/c (lambda (n) (if (zero? n) 0 (f (- n 1)))) \"lbl\"))";
    // The global is the wrapped value; the verifier sees through it via
    // the TermC node when the definition is a direct wrap... the wrapped
    // value itself is not a closure, so verification targets the inner
    // lambda through a plain definition instead:
    let plain = "
(define (f n) (if (zero? n) 0 (terminated n)))
(define (terminated n) (if (zero? n) 0 (terminated (- n 1))))";
    assert_verified(plain, "f", &[SymDomain::Nat], SymDomain::Nat);
    let _ = src;
}

#[test]
fn deep_accumulation_is_allowed_when_driver_descends() {
    // Accumulator grows arbitrarily (cons chain), driver n descends.
    let src = "
(define (build n acc) (if (zero? n) acc (build (- n 1) (cons n acc))))";
    assert_verified(
        src,
        "build",
        &[SymDomain::Nat, SymDomain::List],
        SymDomain::List,
    );
}

#[test]
fn lexicographic_two_list_descent() {
    let src = "
(define (interleave a b)
  (cond [(null? a) b]
        [(null? b) a]
        [else (cons (car a) (interleave b (cdr a)))]))";
    // Swapping with descent on one side: LJB composition handles it.
    let v = verify(
        src,
        "interleave",
        &[SymDomain::List, SymDomain::List],
        SymDomain::List,
    );
    assert!(v.is_verified(), "got {v}");
}

//! Quick driver: the Table-1 static column, paper vs. measured.

use sct_corpus::{table1, Domain};
use sct_symbolic::{verify_function, SymDomain, VerifyConfig};

fn to_sym(d: Domain) -> SymDomain {
    match d {
        Domain::Nat => SymDomain::Nat,
        Domain::Pos => SymDomain::Pos,
        Domain::Int => SymDomain::Int,
        Domain::List => SymDomain::List,
        Domain::Any => SymDomain::Any,
    }
}

fn main() {
    println!("{:<14} {:>6} {:>6}   note", "program", "paper", "ours");
    for p in table1::all() {
        let Some(spec) = p.static_spec else {
            println!(
                "{:<14} {:>6} {:>6}   (no static spec)",
                p.id,
                p.paper.static_.cell(),
                "-"
            );
            continue;
        };
        let prog = sct_lang::compile_program(p.source).expect("compiles");
        let domains: Vec<SymDomain> = spec.domains.iter().map(|d| to_sym(*d)).collect();
        let verdict = verify_function(
            &prog,
            spec.function,
            &domains,
            to_sym(spec.result),
            &VerifyConfig::default(),
        );
        let ours = if verdict.is_verified() { "Y" } else { "N" };
        let agree = if (p.paper.static_ == sct_corpus::Verdict::Pass) == verdict.is_verified() {
            ""
        } else {
            "  <-- differs"
        };
        println!(
            "{:<14} {:>6} {:>6}   {}{}",
            p.id,
            p.paper.static_.cell(),
            ours,
            verdict,
            agree
        );
    }
}

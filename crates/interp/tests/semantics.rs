//! End-to-end semantics tests: the paper's worked examples (§2), the
//! contract system (§2.3, §3.6), the two table strategies and their
//! tail-call behavior (§5), and the monitoring optimizations.

use sct_core::monitor::{BackoffPolicy, KeyStrategy, MonitorConfig, TableStrategy};
use sct_interp::{
    eval_str, eval_str_monitored, EvalError, Machine, MachineConfig, OrderHandle, ReverseIntOrder,
    SemanticsMode, Value,
};
use sct_lang::compile_program;

const ACK: &str = "
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))";

/// §2.1's sometimes-buggy Ackermann: line 4's (- m 1) replaced by m.
const BUGGY_ACK: &str = "
(define (ack m n)
  (cond [(= 0 m) (+ 1 n)]
        [(= 0 n) (ack (- m 1) 1)]
        [else (ack m (ack m (- n 1)))]))";

/// §2.2's len in CPS: closures accumulate, but each is distinct.
const LEN_CPS: &str = "
(define (len l) (loop l (lambda (x) x)))
(define (loop l k)
  (cond [(empty? l) (k 0)]
        [(cons? l) (loop (rest l) (lambda (n) (k (+ 1 n))))]))";

fn run_standard(src: &str) -> Value {
    eval_str(src).unwrap_or_else(|e| panic!("standard eval failed: {e}\nfor {src}"))
}

fn run_monitored(src: &str, strategy: TableStrategy) -> Result<Value, EvalError> {
    eval_str_monitored(src, strategy)
}

fn both_strategies() -> [TableStrategy; 2] {
    [TableStrategy::Imperative, TableStrategy::ContinuationMark]
}

// ---------------------------------------------------------------------
// Plain evaluation (standard semantics).
// ---------------------------------------------------------------------

#[test]
fn basic_arithmetic_and_forms() {
    assert_eq!(run_standard("(+ 1 (* 2 3))"), Value::int(7));
    assert_eq!(run_standard("(let ([x 2] [y 3]) (+ x y))"), Value::int(5));
    assert_eq!(run_standard("(let* ([x 2] [y (* x x)]) y)"), Value::int(4));
    assert_eq!(run_standard("(if (< 1 2) 'yes 'no)"), Value::sym("yes"));
    assert_eq!(run_standard("(and 1 2 3)"), Value::int(3));
    assert_eq!(run_standard("(or #f #f 9)"), Value::int(9));
    assert_eq!(run_standard("(begin 1 2 3)"), Value::int(3));
    assert_eq!(
        run_standard("(case (+ 1 1) [(1) 'one] [(2 3) 'few] [else 'many])"),
        Value::sym("few")
    );
}

#[test]
fn closures_and_state() {
    assert_eq!(
        run_standard(
            "(define (make-adder n) (lambda (m) (+ n m)))
             ((make-adder 3) 4)"
        ),
        Value::int(7)
    );
    assert_eq!(
        run_standard(
            "(define (counter)
               (let ([n 0])
                 (lambda () (set! n (+ n 1)) n)))
             (define c (counter))
             (c) (c) (c)"
        ),
        Value::int(3)
    );
}

#[test]
fn variadic_and_apply() {
    assert_eq!(
        run_standard("((lambda args (length args)) 1 2 3)"),
        Value::int(3)
    );
    assert_eq!(
        run_standard("((lambda (a . rest) (cons a (length rest))) 1 2 3)"),
        Value::cons(Value::int(1), Value::int(2))
    );
    assert_eq!(run_standard("(apply + 1 2 '(3 4))"), Value::int(10));
}

#[test]
fn named_let_and_recursion() {
    assert_eq!(
        run_standard("(let loop ([i 10] [acc 0]) (if (zero? i) acc (loop (- i 1) (+ acc i))))"),
        Value::int(55)
    );
    assert_eq!(
        run_standard(
            "(define (even? n) (if (zero? n) #t (odd? (- n 1))))
             (define (odd? n) (if (zero? n) #f (even? (- n 1))))
             (even? 100)"
        ),
        Value::Bool(true)
    );
}

#[test]
fn quasiquote_and_lists() {
    assert_eq!(
        run_standard("(let ([x 5]) `(a ,x ,@(list 1 2)))").to_write_string(),
        "(a 5 1 2)"
    );
    assert_eq!(
        run_standard("(reverse '(1 2 3))").to_write_string(),
        "(3 2 1)"
    );
}

#[test]
fn bignum_factorial() {
    let v = run_standard("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 25)");
    assert_eq!(v.to_write_string(), "15511210043330985984000000");
}

#[test]
fn output_is_captured() {
    let prog = compile_program("(display \"hi\") (newline) (write \"hi\")").unwrap();
    let mut m = Machine::new(&prog, MachineConfig::standard());
    m.run().unwrap();
    assert_eq!(m.output, "hi\n\"hi\"");
}

#[test]
fn runtime_errors() {
    assert!(matches!(eval_str("(car 5)"), Err(EvalError::Rt(_))));
    assert!(matches!(eval_str("(+ 'a 1)"), Err(EvalError::Rt(_))));
    assert!(matches!(eval_str("(1 2)"), Err(EvalError::Rt(_))));
    assert!(matches!(
        eval_str("((lambda (x) x) 1 2)"),
        Err(EvalError::Rt(_))
    ));
    assert!(matches!(eval_str("(quotient 1 0)"), Err(EvalError::Rt(_))));
    assert!(matches!(
        eval_str("(error 'boom \"it broke\")"),
        Err(EvalError::Rt(_))
    ));
    assert!(matches!(
        eval_str("(letrec ([x x]) x)"),
        Err(EvalError::Rt(_))
    ));
    // Compile errors surface as Rt with a message.
    assert!(matches!(eval_str("undefined-var"), Err(EvalError::Rt(_))));
}

#[test]
fn deep_nontail_recursion_uses_heap_stack() {
    // 200k-deep non-tail recursion: must not overflow the Rust stack.
    let v = run_standard(
        "(define (count n) (if (zero? n) 0 (+ 1 (count (- n 1)))))
         (count 200000)",
    );
    assert_eq!(v, Value::int(200_000));
}

#[test]
fn fuel_stops_divergence_in_standard_mode() {
    let prog = compile_program("(define (loop x) (loop x)) (loop 1)").unwrap();
    let mut m = Machine::new(
        &prog,
        MachineConfig {
            fuel: Some(100_000),
            ..MachineConfig::standard()
        },
    );
    assert!(matches!(m.run(), Err(EvalError::OutOfFuel)));
}

// ---------------------------------------------------------------------
// Monitored semantics (⬇): §2.1 and §2.2.
// ---------------------------------------------------------------------

#[test]
fn ack_terminates_under_monitoring() {
    for strategy in both_strategies() {
        // Figure 1's tree bottoms out at (ack 0 2) = 3.
        let v = run_monitored(&format!("{ACK} (ack 2 0)"), strategy).unwrap();
        assert_eq!(v, Value::int(3), "{strategy:?}");
        let v = run_monitored(&format!("{ACK} (ack 2 3)"), strategy).unwrap();
        assert_eq!(v, Value::int(9), "{strategy:?}");
    }
}

#[test]
fn buggy_ack_caught_immediately() {
    for strategy in both_strategies() {
        let err = run_monitored(&format!("{BUGGY_ACK} (ack 2 0)"), strategy).unwrap_err();
        let EvalError::Sc(info) = err else {
            panic!("expected Sc error, got {err}")
        };
        assert_eq!(info.function, "ack");
        assert!(info.violation.witness.is_idempotent());
        assert!(!info.violation.witness.has_self_descent());
    }
}

#[test]
fn len_cps_closures_stay_distinct() {
    // §2.2: "SCP is only checked between calls to the same closure" — the
    // accumulated continuations each get their own table entry, so the
    // ascending (k 0), (k 1), … calls do not trip the monitor.
    for strategy in both_strategies() {
        let v = run_monitored(&format!("{LEN_CPS} (len '(5 4 3 2 1))"), strategy).unwrap();
        assert_eq!(v, Value::int(5), "{strategy:?}");
    }
}

#[test]
fn len_cps_fails_if_closures_conflated() {
    // Under the LambdaOnly key strategy all continuations share one table
    // entry — exactly the conflation a static control-flow graph must make
    // (§2.2) — and the ascending arguments are a (spurious) violation.
    let prog = compile_program(&format!("{LEN_CPS} (len '(3 2 1))")).unwrap();
    let config = MachineConfig {
        mode: SemanticsMode::Monitored,
        monitor: MonitorConfig::default().with_key_strategy(KeyStrategy::LambdaOnly),
        ..MachineConfig::default()
    };
    let err = Machine::new(&prog, config).run().unwrap_err();
    assert!(err.is_sc(), "expected spurious violation, got {err}");
}

#[test]
fn structural_keys_also_distinguish_cps_closures() {
    // The continuations capture different environments, so structural
    // fingerprints keep them apart too.
    let prog = compile_program(&format!("{LEN_CPS} (len '(3 2 1))")).unwrap();
    let config = MachineConfig {
        mode: SemanticsMode::Monitored,
        monitor: MonitorConfig::default().with_key_strategy(KeyStrategy::Structural),
        ..MachineConfig::default()
    };
    assert_eq!(Machine::new(&prog, config).run().unwrap(), Value::int(3));
}

#[test]
fn plain_divergence_caught() {
    for strategy in both_strategies() {
        for src in [
            "(define (loop x) (loop x)) (loop 1)",
            "(define (up n) (up (+ n 1))) (up 0)",
            "(define (f x) (g x)) (define (g x) (f x)) (f 'a)",
        ] {
            let err = run_monitored(src, strategy).unwrap_err();
            assert!(err.is_sc(), "{src} under {strategy:?}: got {err}");
        }
    }
}

#[test]
fn y_combinator_terminates_monitored() {
    // Self-application defeats type-based tools (Table 1's "not typable"
    // rows) but the dynamic monitor handles it.
    let src = "
(define Y
  (lambda (f)
    ((lambda (x) (f (lambda (v) ((x x) v))))
     (lambda (x) (f (lambda (v) ((x x) v)))))))
(define fact
  (Y (lambda (self)
       (lambda (n) (if (zero? n) 1 (* n (self (- n 1))))))))
(fact 6)";
    for strategy in both_strategies() {
        assert_eq!(run_monitored(src, strategy).unwrap(), Value::int(720));
    }
}

#[test]
fn nullary_recursion_has_no_descent_evidence() {
    // A nullary self-call offers no arguments to descend on: the empty
    // graph is idempotent with no self-descent, so even a loop that makes
    // progress through mutation is (correctly, per the semantics)
    // rejected — the size-change principle only sees arguments.
    let by_mutation = "
(define n 10)
(define (tick)
  (if (zero? n) 'done (begin (set! n (- n 1)) (tick))))
(tick)";
    assert_eq!(run_standard(by_mutation), Value::sym("done"));
    for strategy in both_strategies() {
        let err = run_monitored(by_mutation, strategy).unwrap_err();
        assert!(err.is_sc(), "{strategy:?}");
    }
    // Threading the state as an argument restores the descent evidence.
    let by_argument = "
(define (tick n) (if (zero? n) 'done (tick (- n 1))))
(tick 10)";
    for strategy in both_strategies() {
        assert_eq!(
            run_monitored(by_argument, strategy).unwrap(),
            Value::sym("done")
        );
    }
}

#[test]
fn ascending_but_terminating_is_a_false_positive() {
    // Climbs 0,1,2,3 then stops: terminates, but violates the |n| order —
    // the unavoidable wrinkle of enforcing a safety property (§1).
    let src = "(define (climb n) (if (< n 3) (climb (+ n 1)) n)) (climb 0)";
    assert_eq!(run_standard(src), Value::int(3));
    for strategy in both_strategies() {
        let err = run_monitored(src, strategy).unwrap_err();
        assert!(err.is_sc());
    }
}

#[test]
fn custom_order_rescues_ascending_loop() {
    // §3.3: replacing the default order (here: reversed integers) proves
    // the climb loop — the lh-range / acl2-fig-2 pattern of Table 1.
    let src = "(define (climb n) (if (< n 3) (climb (+ n 1)) n)) (climb 0)";
    let prog = compile_program(src).unwrap();
    for strategy in both_strategies() {
        let config = MachineConfig {
            mode: SemanticsMode::Monitored,
            monitor: MonitorConfig {
                strategy,
                ..MonitorConfig::default()
            },
            order: OrderHandle::new(ReverseIntOrder),
            ..MachineConfig::default()
        };
        assert_eq!(Machine::new(&prog, config).run().unwrap(), Value::int(3));
    }
}

#[test]
fn list_descent_is_proved_by_subterm_order() {
    let src = "
(define (sum-list l) (if (null? l) 0 (+ (car l) (sum-list (cdr l)))))
(sum-list '(1 2 3 4 5))";
    for strategy in both_strategies() {
        assert_eq!(run_monitored(src, strategy).unwrap(), Value::int(15));
    }
}

// ---------------------------------------------------------------------
// Tail calls and strategy trade-offs (§5, Figure 10's mechanism).
// ---------------------------------------------------------------------

#[test]
fn continuation_marks_preserve_tail_calls() {
    let src = "
(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))
(sum 5000 0)";
    let prog = compile_program(src).unwrap();
    let mut cm = Machine::new(
        &prog,
        MachineConfig::monitored(TableStrategy::ContinuationMark),
    );
    assert_eq!(cm.run().unwrap(), Value::int(12_502_500));
    assert!(
        cm.stats.max_kont_depth < 32,
        "CM strategy must run tail loops in constant continuation space, got {}",
        cm.stats.max_kont_depth
    );
    assert!(
        cm.stats.max_marks <= 2,
        "tail calls replace the mark, got {}",
        cm.stats.max_marks
    );

    let mut imp = Machine::new(&prog, MachineConfig::monitored(TableStrategy::Imperative));
    assert_eq!(imp.run().unwrap(), Value::int(12_502_500));
    assert!(
        imp.stats.max_kont_depth >= 5000,
        "imperative restore frames break proper tail calls, got {}",
        imp.stats.max_kont_depth
    );
}

#[test]
fn unmonitored_tail_calls_always_constant_space() {
    let src = "
(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))
(sum 5000 0)";
    let prog = compile_program(src).unwrap();
    let mut m = Machine::new(&prog, MachineConfig::standard());
    m.run().unwrap();
    assert!(
        m.stats.max_kont_depth < 16,
        "got {}",
        m.stats.max_kont_depth
    );
}

// ---------------------------------------------------------------------
// Monitoring optimizations (§5).
// ---------------------------------------------------------------------

#[test]
fn backoff_reduces_checks_but_catches_divergence() {
    let terminating = "
(define (down n) (if (zero? n) 'done (down (- n 1))))
(down 1000)";
    let prog = compile_program(terminating).unwrap();
    let strict = MachineConfig::monitored(TableStrategy::Imperative);
    let mut m1 = Machine::new(&prog, strict.clone());
    m1.run().unwrap();

    let mut backoff_cfg = strict.clone();
    backoff_cfg.monitor.backoff = BackoffPolicy::Exponential { factor: 2 };
    let mut m2 = Machine::new(&prog, backoff_cfg.clone());
    m2.run().unwrap();
    assert!(
        m2.stats.checks * 10 < m1.stats.checks,
        "backoff should cut checks by ~100x: {} vs {}",
        m2.stats.checks,
        m1.stats.checks
    );

    // Divergence still caught (later, but surely).
    let diverging = "(define (up n) (up (+ n 1))) (up 0)";
    let prog = compile_program(diverging).unwrap();
    let mut m3 = Machine::new(&prog, backoff_cfg);
    assert!(m3.run().unwrap_err().is_sc());
}

#[test]
fn loop_entry_detection_skips_non_loops() {
    // even?/odd? mutual recursion: with loop-entry detection only the
    // entry function accumulates graphs; divergence is still caught.
    let src = "
(define (even? n) (if (zero? n) #t (odd? (- n 1))))
(define (odd? n) (if (zero? n) #f (even? (- n 1))))
(even? 400)";
    let prog = compile_program(src).unwrap();
    let mut base_cfg = MachineConfig::monitored(TableStrategy::Imperative);
    let mut m1 = Machine::new(&prog, base_cfg.clone());
    m1.run().unwrap();

    base_cfg.monitor.loop_entries_only = true;
    let mut m2 = Machine::new(&prog, base_cfg.clone());
    m2.run().unwrap();
    assert!(
        m2.stats.checks < m1.stats.checks / 2 + 2,
        "loop-entry mode should roughly halve checks: {} vs {}",
        m2.stats.checks,
        m1.stats.checks
    );

    let diverging = "
(define (pingv n) (pongv n))
(define (pongv n) (pingv n))
(pingv 7)";
    let prog = compile_program(diverging).unwrap();
    let mut m3 = Machine::new(&prog, base_cfg);
    assert!(m3.run().unwrap_err().is_sc());
}

#[test]
fn whitelist_skips_monitoring() {
    let src = "
(define (helper n) (if (zero? n) 0 (helper (- n 1))))
(helper 50)";
    let prog = compile_program(src).unwrap();
    let mut cfg = MachineConfig::monitored(TableStrategy::Imperative);
    cfg.monitor = cfg.monitor.whitelisting("helper");
    let mut m = Machine::new(&prog, cfg);
    m.run().unwrap();
    assert_eq!(m.stats.checks, 0, "whitelisted functions are never checked");
    assert_eq!(m.stats.monitored_calls, 0);
}

// ---------------------------------------------------------------------
// Contracts (§2.3, §3.6): terminating/c, blame, and composition with
// partial-correctness contracts.
// ---------------------------------------------------------------------

#[test]
fn terminating_contract_selective_enforcement() {
    // Only f is under contract; unmonitored g runs free. f diverges → Sc
    // error blaming f's label.
    let src = "
(define f (terminating/c (lambda (x) (f x)) \"party-f\"))
(f 1)";
    let err = eval_str(src).unwrap_err();
    let EvalError::Sc(info) = err else {
        panic!("expected Sc")
    };
    assert_eq!(info.blame.as_deref(), Some("party-f"));
}

#[test]
fn terminating_contract_lets_terminating_run() {
    let src = format!(
        "{ACK}
         (define checked-ack (terminating/c ack))
         (checked-ack 2 3)"
    );
    assert_eq!(run_standard(&src), Value::int(9));
}

#[test]
fn outside_contract_no_monitoring() {
    // The same ascending loop that the monitor rejects is fine when run
    // outside any contract under the standard semantics.
    let src = "
(define (climb n) (if (< n 3) (climb (+ n 1)) n))
(define checked (terminating/c climb \"c\"))
(climb 0)";
    assert_eq!(run_standard(src), Value::int(3));
    // But through the contract it trips.
    let src2 = "
(define (climb n) (if (< n 3) (climb (+ n 1)) n))
(define checked (terminating/c climb \"c\"))
(checked 0)";
    let err = eval_str(src2).unwrap_err();
    assert!(err.is_sc());
}

#[test]
fn blame_names_innermost_contract() {
    // g is wrapped inside f's extent; g's violation blames g's label —
    // §2.3's "virtuous cycle": f protects itself by contracting g.
    let src = "
(define g-raw (lambda (x) (g-raw x)))
(define g (terminating/c g-raw \"party-g\"))
(define f (terminating/c (lambda (x) (g x)) \"party-f\"))
(f 1)";
    let err = eval_str(src).unwrap_err();
    let EvalError::Sc(info) = err else {
        panic!("expected Sc")
    };
    assert_eq!(info.blame.as_deref(), Some("party-g"));
}

#[test]
fn term_c_on_non_procedure_passes_through() {
    assert_eq!(run_standard("(terminating/c 42)"), Value::int(42));
    assert_eq!(
        run_standard("(terminating/c car)").to_write_string(),
        "#<primitive:car>"
    );
}

#[test]
fn flat_contracts_check_and_blame() {
    assert_eq!(
        run_standard("(contract (flat/c integer?) 5 \"server\")"),
        Value::int(5)
    );
    let err = eval_str("(contract (flat/c integer?) 'five \"server\")").unwrap_err();
    let EvalError::Contract(info) = err else {
        panic!("expected contract error")
    };
    assert_eq!(info.blame.as_ref(), "server");
    // User-defined predicates work too.
    assert_eq!(
        run_standard("(contract (flat/c (lambda (x) (> x 3))) 5 \"s\")"),
        Value::int(5)
    );
    assert!(eval_str("(contract (flat/c (lambda (x) (> x 3))) 2 \"s\")").is_err());
}

#[test]
fn arrow_contract_checks_domain_and_range() {
    let src = "
(define add3 (contract (->/c (flat/c integer?) (flat/c integer?)) (lambda (x) (+ x 3)) \"srv\" \"cli\"))
(add3 4)";
    assert_eq!(run_standard(src), Value::int(7));

    // Bad argument blames the client.
    let src = "
(define add3 (contract (->/c (flat/c integer?) (flat/c integer?)) (lambda (x) (+ x 3)) \"srv\" \"cli\"))
(add3 'a)";
    let EvalError::Contract(info) = eval_str(src).unwrap_err() else {
        panic!()
    };
    assert_eq!(info.blame.as_ref(), "cli");

    // Bad result blames the server.
    let src = "
(define bad (contract (->/c (flat/c integer?) (flat/c integer?)) (lambda (x) 'oops) \"srv\" \"cli\"))
(bad 4)";
    let EvalError::Contract(info) = eval_str(src).unwrap_err() else {
        panic!()
    };
    assert_eq!(info.blame.as_ref(), "srv");
}

#[test]
fn total_correctness_contract_composes() {
    // ->/c for partial correctness plus terminating/c for termination:
    // the paper's "contracts for total correctness".
    let src = "
(define total
  (contract (and/c (->/c (flat/c integer?) (flat/c integer?)) terminating/c)
            (lambda (x) (if (zero? x) 0 (total (- x 1))))
            \"total-party\"))
(total 5)";
    assert_eq!(run_standard(src), Value::int(0));

    let src_diverge = "
(define total
  (contract (and/c (->/c (flat/c integer?) (flat/c integer?)) terminating/c)
            (lambda (x) (total x))
            \"total-party\"))
(total 5)";
    let err = eval_str(src_diverge).unwrap_err();
    let EvalError::Sc(info) = err else {
        panic!("expected Sc, got {err}")
    };
    assert_eq!(info.blame.as_deref(), Some("total-party"));
}

// ---------------------------------------------------------------------
// Call-sequence semantics ↓↓ (Figure 6) and completeness (§3.5).
// ---------------------------------------------------------------------

#[test]
fn call_sequence_semantics_records_without_enforcing() {
    // The climb program violates SCP but terminates: ↓↓ runs it to the
    // value and records the violation the monitor would have raised.
    let src = "(define (climb n) (if (< n 3) (climb (+ n 1)) n)) (climb 0)";
    let prog = compile_program(src).unwrap();
    let mut m = Machine::new(
        &prog,
        MachineConfig {
            mode: SemanticsMode::CallSeqCollect,
            ..MachineConfig::default()
        },
    );
    assert_eq!(m.run().unwrap(), Value::int(3));
    assert!(!m.violations.is_empty(), "violation must be recorded");
    assert_eq!(m.violations[0].function, "climb");
}

#[test]
fn call_sequence_agrees_with_monitor_on_clean_runs() {
    // Soundness + SCT-completeness corollary: a program that the monitor
    // passes records no violations under ↓↓ and produces the same value.
    for src in [
        &format!("{ACK} (ack 2 3)") as &str,
        "(define (down n) (if (zero? n) 'done (down (- n 1)))) (down 30)",
        &format!("{LEN_CPS} (len '(9 8 7))"),
    ] {
        let prog = compile_program(src).unwrap();
        let mut collect = Machine::new(
            &prog,
            MachineConfig {
                mode: SemanticsMode::CallSeqCollect,
                ..MachineConfig::default()
            },
        );
        let collected = collect.run().unwrap();
        let monitored = run_monitored(src, TableStrategy::Imperative).unwrap();
        let standard = run_standard(src);
        assert_eq!(collected, monitored);
        assert_eq!(collected, standard);
        assert!(collect.violations.is_empty(), "{src}");
    }
}

// ---------------------------------------------------------------------
// Tracing (Figure 1).
// ---------------------------------------------------------------------

#[test]
fn trace_records_figure_1_graphs() {
    let prog = compile_program(&format!("{ACK} (ack 2 0)")).unwrap();
    let mut cfg = MachineConfig::monitored(TableStrategy::Imperative);
    cfg.trace = true;
    let mut m = Machine::new(&prog, cfg);
    m.run().unwrap();
    let events: Vec<_> = m
        .trace_events
        .iter()
        .filter(|e| e.function == "ack")
        .collect();
    // Figure 1: (ack 2 0) then 4 recursive calls.
    assert_eq!(events.len(), 5, "events: {:?}", m.trace_events);
    assert_eq!(events[0].args, vec!["2", "0"]);
    assert!(events[0].graph.is_none(), "first call has no predecessor");
    // (ack 2 0) ↝ (ack 1 1): {(m→m),(m→n)} in positional names.
    let g1 = events[1].graph.as_deref().unwrap();
    assert!(g1.contains("(x0→x0)") && g1.contains("(x0→x1)"), "got {g1}");
}

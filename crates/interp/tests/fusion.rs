//! Superinstruction honesty checks: the pair set baked into the IR
//! linker's fusion pass must track what the dispatch loop actually
//! executes, and fusing must change dispatch counts only — never results.

use sct_interp::{Machine, MachineConfig, Value};
use sct_lang::compile_program;
use std::rc::Rc;

/// A workload shaped like the fig10 inner loops: tight arithmetic
/// recursion (locals into primitives into branches) plus a list walk.
const HOT_LOOP: &str = "
(define (fact n acc) (if (zero? n) acc (fact (- n 1) (* n acc))))
(define (count xs n) (if (null? xs) n (count (cdr xs) (+ n 1))))
(define (build n) (if (zero? n) '() (cons n (build (- n 1)))))
(+ (fact 200 1) (count (build 150) 0))
";

/// The mnemonic pairs the linker fuses (see `fuse_pairs` in `sct-ir`).
const FUSED: [(&str, &str); 5] = [
    ("load-local", "load-local"),
    ("load-local", "call-prim"),
    ("const", "call-prim"),
    ("call-prim", "jump-if-false"),
    ("load-local", "return"),
];

fn run(code: sct_ir::CompiledProgram, profile: bool) -> (Value, Machine<'static>) {
    let prog = Box::leak(Box::new(compile_program(HOT_LOOP).expect("compiles")));
    let mut m = Machine::with_code(
        prog,
        Rc::new(code),
        MachineConfig {
            profile_pairs: profile,
            ..MachineConfig::standard()
        },
    );
    let v = m.run().expect("runs clean");
    (v, m)
}

/// The fused pair set covers the hottest dynamic fall-through pairs of
/// the *unfused* instruction stream: if dispatch profiles drift (new
/// compiler output, new workload shapes), this fails and the pair set
/// needs re-deriving.
#[test]
fn fused_pairs_cover_hot_profile() {
    let prog = compile_program(HOT_LOOP).expect("compiles");
    let code = sct_ir::compile_unfused(&prog, None);
    let (_, m) = run(code, true);
    let profile = m.pair_profile();
    assert!(!profile.is_empty(), "profiling must observe pairs");
    let total: u64 = profile.iter().map(|(_, n)| n).sum();
    let covered: u64 = profile
        .iter()
        .filter(|(p, _)| FUSED.contains(p))
        .map(|(_, n)| n)
        .sum();
    // The top three pairs of this loop-shaped workload must all be
    // fusible, and the fused set must cover a meaningful share of all
    // fall-through dispatch.
    for (pair, count) in profile.iter().take(3) {
        assert!(
            FUSED.contains(pair),
            "hot pair {pair:?} ({count} occurrences) is not in the fused set"
        );
    }
    assert!(
        covered * 3 >= total,
        "fused pairs cover {covered}/{total} fall-through dispatches; \
         expected at least a third"
    );
}

/// Fusion is observationally invisible and strictly reduces dispatch:
/// same value, same output, fewer executed instructions.
#[test]
fn fusion_preserves_results_and_reduces_steps() {
    let prog = compile_program(HOT_LOOP).expect("compiles");
    let (v_unfused, unfused) = run(sct_ir::compile_unfused(&prog, None), false);
    let (v_fused, fused) = run(sct_ir::compile(&prog, None), false);
    assert_eq!(v_fused.to_write_string(), v_unfused.to_write_string());
    assert_eq!(fused.output, unfused.output);
    assert!(
        fused.stats.steps < unfused.stats.steps,
        "fusion must reduce dispatch count ({} !< {})",
        fused.stats.steps,
        unfused.stats.steps
    );
}

/// The profile hook is pay-for-use: disabled (the default), it observes
/// nothing.
#[test]
fn pair_profile_empty_when_disabled() {
    let prog = compile_program(HOT_LOOP).expect("compiles");
    let (_, m) = run(sct_ir::compile_unfused(&prog, None), false);
    assert!(m.pair_profile().is_empty());
}

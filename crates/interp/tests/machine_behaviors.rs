//! Machine-level behavior battery: evaluation order, tail-call space,
//! fuel accounting, the quote cache, closure fingerprints, and stats.

use sct_core::monitor::TableStrategy;
use sct_interp::{eval_str, EvalError, Machine, MachineConfig, SemanticsMode, Value};
use sct_lang::compile_program;

fn ev(src: &str) -> Value {
    eval_str(src).unwrap_or_else(|e| panic!("{src}: {e}"))
}

#[test]
fn left_to_right_evaluation_order() {
    let v = ev("
(define order '())
(define (note x) (begin (set! order (cons x order)) x))
(begin ((lambda (a b c) 0) (note 1) (note 2) (note 3))
       (reverse order))");
    assert_eq!(v.to_write_string(), "(1 2 3)");
}

#[test]
fn operator_evaluated_before_operands() {
    let v = ev("
(define order '())
(define (note x) (begin (set! order (cons x order)) x))
(begin ((begin (note 'f) (lambda (a) 0)) (note 'a))
       (reverse order))");
    assert_eq!(v.to_write_string(), "(f a)");
}

#[test]
fn if_evaluates_only_taken_branch() {
    let v = ev("
(define hits 0)
(define (bump) (begin (set! hits (+ hits 1)) hits))
(begin (if #t 'ok (bump))
       (if #f (bump) 'ok)
       hits)");
    assert_eq!(v, Value::int(0));
}

#[test]
fn tail_position_inventory() {
    // All of these run 100k iterations in bounded continuation space:
    // if-branches, let/letrec bodies, begin tails, cond arms.
    let sources = [
        "(define (f n) (if (zero? n) 'done (f (- n 1)))) (f 100000)",
        "(define (f n) (cond [(zero? n) 'done] [else (f (- n 1))])) (f 100000)",
        "(define (f n) (if (zero? n) 'done (let ([m (- n 1)]) (f m)))) (f 100000)",
        "(define (f n) (if (zero? n) 'done (begin 'effect (f (- n 1))))) (f 100000)",
        "(define (f n) (if (zero? n) 'done (letrec ([m (- n 1)]) (f m)))) (f 100000)",
        "(define (f n) (if (zero? n) 'done (and #t (f (- n 1))))) (f 100000)",
        "(define (f n) (if (zero? n) 'done (or #f (f (- n 1))))) (f 100000)",
    ];
    for src in sources {
        let prog = compile_program(src).unwrap();
        let mut m = Machine::new(&prog, MachineConfig::standard());
        assert_eq!(m.run().unwrap(), Value::sym("done"), "{src}");
        assert!(
            m.stats.max_kont_depth < 24,
            "{src}: continuation grew to {}",
            m.stats.max_kont_depth
        );
    }
}

#[test]
fn fuel_is_counted_per_step() {
    let prog = compile_program("(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 100)").unwrap();
    let mut m = Machine::new(
        &prog,
        MachineConfig {
            fuel: Some(u64::MAX),
            ..MachineConfig::standard()
        },
    );
    m.run().unwrap();
    let steps = m.stats.steps;
    // With exactly that budget it succeeds; with one less it does not.
    let mut ok = Machine::new(
        &prog,
        MachineConfig {
            fuel: Some(steps),
            ..MachineConfig::standard()
        },
    );
    assert!(ok.run().is_ok());
    let mut short = Machine::new(
        &prog,
        MachineConfig {
            fuel: Some(steps - 1),
            ..MachineConfig::standard()
        },
    );
    assert!(matches!(short.run(), Err(EvalError::OutOfFuel)));
}

#[test]
fn wall_clock_deadline_stops_an_unfueled_diverging_run() {
    use std::time::{Duration, Instant};
    // No fuel at all: only the deadline bounds this loop.
    let prog = sct_lang::compile_program("(define (spin x) (spin x)) (spin 1)").unwrap();
    let mut m = Machine::new(
        &prog,
        MachineConfig {
            deadline: Some(Instant::now() + Duration::from_millis(50)),
            ..MachineConfig::standard()
        },
    );
    let started = Instant::now();
    assert!(matches!(m.run(), Err(EvalError::Deadline)));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline must bound the run tightly, took {:?}",
        started.elapsed()
    );
    // A deadline that never arrives changes nothing.
    let mut ok = Machine::new(
        &prog,
        MachineConfig {
            fuel: Some(10_000),
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
            ..MachineConfig::standard()
        },
    );
    assert!(matches!(ok.run(), Err(EvalError::OutOfFuel)));
}

#[test]
fn quoted_literals_are_shared_per_site() {
    // The same quote site yields eq? values across evaluations (cache),
    // distinct sites yield equal? but not eq? values.
    let v = ev("
(define (f) '(1 2))
(eq? (f) (f))");
    assert_eq!(v, Value::Bool(true));
    let v = ev("(eq? '(1 2) '(1 2))");
    assert_eq!(
        v,
        Value::Bool(false),
        "distinct quote sites are distinct allocations"
    );
}

#[test]
fn closure_fingerprints_depend_on_captures() {
    // Same λ, different captured values → different table entries under
    // structural keys; observed via the CPS pattern not being conflated.
    let src = "
(define (wrap v) (lambda () v))
(define a (wrap 1))
(define b (wrap 2))
(cons (a) (b))";
    assert_eq!(ev(src).to_write_string(), "(1 . 2)");
}

#[test]
fn stats_count_applications_and_checks() {
    let src = "(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 10)";
    let prog = compile_program(src).unwrap();
    let mut m = Machine::new(&prog, MachineConfig::monitored(TableStrategy::Imperative));
    m.run().unwrap();
    assert_eq!(m.stats.applications, 11, "11 calls of f");
    assert_eq!(m.stats.monitored_calls, 11);
    assert_eq!(m.stats.checks, 11);

    // Standard mode: applications counted, nothing monitored.
    let mut m = Machine::new(&prog, MachineConfig::standard());
    m.run().unwrap();
    assert_eq!(m.stats.applications, 11);
    assert_eq!(m.stats.monitored_calls, 0);
}

#[test]
fn call_api_reuses_final_global_environment() {
    let src = "(define counter 0)
               (define (bump) (begin (set! counter (+ counter 1)) counter))
               (define (get) counter)";
    let prog = compile_program(src).unwrap();
    let mut m = Machine::new(&prog, MachineConfig::standard());
    m.run().unwrap();
    let bump = m.global("bump").unwrap();
    let get = m.global("get").unwrap();
    assert_eq!(m.call(bump.clone(), vec![]).unwrap(), Value::int(1));
    assert_eq!(m.call(bump, vec![]).unwrap(), Value::int(2));
    assert_eq!(m.call(get, vec![]).unwrap(), Value::int(2));
}

#[test]
fn output_interleaves_with_evaluation() {
    let prog = compile_program(
        "(begin (display 1) (display \"-\") (display '(a b)) (newline) (display 2))",
    )
    .unwrap();
    let mut m = Machine::new(&prog, MachineConfig::standard());
    m.run().unwrap();
    assert_eq!(m.output, "1-(a b)\n2");
}

#[test]
fn mutual_recursion_deep_and_monitored() {
    let src = "
(define (pong n) (if (zero? n) 'pong (ping (- n 1))))
(define (ping n) (if (zero? n) 'ping (pong (- n 1))))
(ping 30001)";
    for strategy in [TableStrategy::Imperative, TableStrategy::ContinuationMark] {
        let prog = compile_program(src).unwrap();
        let mut m = Machine::new(&prog, MachineConfig::monitored(strategy));
        assert_eq!(m.run().unwrap(), Value::sym("pong"), "{strategy:?}");
    }
}

#[test]
fn shadowed_special_form_names_are_calls() {
    // A local binding named like a special form is an ordinary variable.
    assert_eq!(ev("(define (quote x) (+ x 1)) (quote 4)"), Value::int(5));
    assert_eq!(
        ev("(let ([if (lambda (a b c) 'shadowed)]) (if 1 2 3))"),
        Value::sym("shadowed")
    );
}

#[test]
fn callseq_mode_restores_like_the_others() {
    // ↓↓ threads tables with the same extent discipline: sibling calls do
    // not see each other, so this sequential pattern records nothing.
    let src = "
(define (id x) x)
(begin (id 1) (id 1) (id 1))";
    let prog = compile_program(src).unwrap();
    let mut m = Machine::new(
        &prog,
        MachineConfig {
            mode: SemanticsMode::CallSeqCollect,
            ..MachineConfig::default()
        },
    );
    m.run().unwrap();
    assert!(
        m.violations.is_empty(),
        "sequential equal calls are separate extents"
    );
}

#[test]
fn undefined_letrec_reference_is_a_clean_error() {
    let r = eval_str("(letrec ([x (+ x 1)]) x)");
    assert!(matches!(r, Err(EvalError::Rt(_))));
    let r = eval_str("(letrec ([f (lambda () g)] [g 1]) (f))");
    assert!(
        r.is_ok(),
        "forward reference used only after initialization is fine"
    );
}

//! Behavioral battery for the primitive library: every primitive exercised
//! through the full pipeline (reader → desugarer → resolver → machine),
//! including error behaviors. One assertion per distinct behavior.

use sct_interp::{eval_str, EvalError};

fn ev(src: &str) -> String {
    match eval_str(src) {
        Ok(v) => v.to_write_string(),
        Err(e) => panic!("{src} failed: {e}"),
    }
}

fn ev_err(src: &str) -> EvalError {
    eval_str(src).expect_err(&format!("{src} should fail"))
}

#[test]
fn arithmetic_basics() {
    assert_eq!(ev("(+)"), "0");
    assert_eq!(ev("(+ 1 2 3 4)"), "10");
    assert_eq!(ev("(- 10)"), "-10");
    assert_eq!(ev("(- 10 3 2)"), "5");
    assert_eq!(ev("(*)"), "1");
    assert_eq!(ev("(* 2 3 7)"), "42");
    assert_eq!(ev("(quotient 17 5)"), "3");
    assert_eq!(ev("(remainder 17 5)"), "2");
    assert_eq!(ev("(modulo -7 3)"), "2");
    assert_eq!(ev("(abs -9)"), "9");
    assert_eq!(ev("(min 3 1 2)"), "1");
    assert_eq!(ev("(max 3 1 2)"), "3");
    assert_eq!(ev("(add1 41)"), "42");
    assert_eq!(ev("(sub1 43)"), "42");
    assert_eq!(ev("(gcd 12 18 30)"), "6");
    assert_eq!(ev("(expt 3 4)"), "81");
    assert_eq!(ev("(expt 2 64)"), "18446744073709551616");
}

#[test]
fn numeric_predicates() {
    assert_eq!(ev("(= 2 2 2)"), "#t");
    assert_eq!(ev("(= 2 2 3)"), "#f");
    assert_eq!(ev("(< 1 2 3)"), "#t");
    assert_eq!(ev("(<= 1 1 2)"), "#t");
    assert_eq!(ev("(> 3 2 1)"), "#t");
    assert_eq!(ev("(>= 3 3 1)"), "#t");
    assert_eq!(ev("(zero? 0)"), "#t");
    assert_eq!(ev("(negative? -1)"), "#t");
    assert_eq!(ev("(positive? 0)"), "#f");
    assert_eq!(ev("(even? 4)"), "#t");
    assert_eq!(ev("(odd? -3)"), "#t");
    assert_eq!(ev("(number? 1)"), "#t");
    assert_eq!(ev("(integer? 'a)"), "#f");
}

#[test]
fn bignum_promotion_through_the_language() {
    assert_eq!(
        ev("(* 123456789123456789 987654321987654321)"),
        "121932631356500531347203169112635269"
    );
    assert_eq!(ev("(+ 9223372036854775807 1)"), "9223372036854775808");
    assert_eq!(ev("(- (+ 9223372036854775807 1) 1)"), "9223372036854775807");
    assert_eq!(
        ev("(quotient 123456789012345678901234567890 10)"),
        "12345678901234567890123456789"
    );
}

#[test]
fn pair_and_list_ops() {
    assert_eq!(ev("(cons 1 2)"), "(1 . 2)");
    assert_eq!(ev("(car '(a b))"), "a");
    assert_eq!(ev("(cdr '(a b))"), "(b)");
    assert_eq!(ev("(caar '((1) 2))"), "1");
    assert_eq!(ev("(cadr '(1 2 3))"), "2");
    assert_eq!(ev("(cdar '((1 x) 2))"), "(x)");
    assert_eq!(ev("(cddr '(1 2 3))"), "(3)");
    assert_eq!(ev("(caddr '(1 2 3))"), "3");
    assert_eq!(ev("(cdddr '(1 2 3 4))"), "(4)");
    assert_eq!(ev("(cadddr '(1 2 3 4))"), "4");
    assert_eq!(ev("(list 1 'a \"s\")"), "(1 a \"s\")");
    assert_eq!(ev("(length '())"), "0");
    assert_eq!(ev("(length '(1 2 3))"), "3");
    assert_eq!(ev("(append)"), "()");
    assert_eq!(ev("(append '(1) '(2 3) '(4))"), "(1 2 3 4)");
    assert_eq!(
        ev("(append '(1) 2)"),
        "(1 . 2)",
        "last argument may be improper"
    );
    assert_eq!(ev("(reverse '(1 2 3))"), "(3 2 1)");
    assert_eq!(ev("(list-ref '(a b c) 2)"), "c");
    assert_eq!(ev("(list-tail '(a b c) 1)"), "(b c)");
    assert_eq!(ev("(null? '())"), "#t");
    assert_eq!(ev("(pair? '(1))"), "#t");
    assert_eq!(ev("(pair? '())"), "#f");
    assert_eq!(ev("(list? '(1 2))"), "#t");
    assert_eq!(ev("(list? (cons 1 2))"), "#f");
}

#[test]
fn searching_lists() {
    assert_eq!(ev("(memq 'b '(a b c))"), "(b c)");
    assert_eq!(ev("(memq 'z '(a b c))"), "#f");
    assert_eq!(ev("(memv 2 '(1 2 3))"), "(2 3)");
    assert_eq!(ev("(member \"b\" '(\"a\" \"b\"))"), "(\"b\")");
    assert_eq!(ev("(assq 'y '((x . 1) (y . 2)))"), "(y . 2)");
    assert_eq!(ev("(assv 2 '((1 . a) (2 . b)))"), "(2 . b)");
    assert_eq!(ev("(assoc '(k) '(((k) . hit)))"), "((k) . hit)");
    assert_eq!(ev("(assq 'nope '((x . 1)))"), "#f");
}

#[test]
fn equality_trio() {
    assert_eq!(ev("(eq? 'a 'a)"), "#t");
    assert_eq!(ev("(eq? '(1) '(1))"), "#f", "fresh allocations are not eq?");
    assert_eq!(ev("(let ([l '(1)]) (eq? l l))"), "#t");
    assert_eq!(ev("(eqv? 100000000000 100000000000)"), "#t");
    assert_eq!(ev("(equal? '(1 (2 \"x\")) '(1 (2 \"x\")))"), "#t");
    assert_eq!(ev("(equal? '(1 2) '(1 3))"), "#f");
    assert_eq!(ev("(not #f)"), "#t");
    assert_eq!(ev("(not '())"), "#f");
}

#[test]
fn type_predicates() {
    assert_eq!(ev("(boolean? #f)"), "#t");
    assert_eq!(ev("(symbol? 'x)"), "#t");
    assert_eq!(ev("(string? \"s\")"), "#t");
    assert_eq!(ev("(char? #\\a)"), "#t");
    assert_eq!(ev("(procedure? car)"), "#t");
    assert_eq!(ev("(procedure? (lambda (x) x))"), "#t");
    assert_eq!(ev("(procedure? 3)"), "#f");
    assert_eq!(ev("(void? (void))"), "#t");
}

#[test]
fn char_ops() {
    assert_eq!(ev("(char=? #\\a #\\a #\\a)"), "#t");
    assert_eq!(ev("(char<? #\\a #\\b)"), "#t");
    assert_eq!(ev("(char->integer #\\A)"), "65");
    assert_eq!(ev("(integer->char 10)"), "#\\newline");
}

#[test]
fn string_ops() {
    assert_eq!(ev("(string=? \"ab\" \"ab\")"), "#t");
    assert_eq!(ev("(string<? \"ab\" \"b\")"), "#t");
    assert_eq!(ev("(string-length \"héllo\")"), "5");
    assert_eq!(ev("(string-append \"a\" \"b\" \"c\")"), "\"abc\"");
    assert_eq!(ev("(substring \"hello\" 1 3)"), "\"el\"");
    assert_eq!(ev("(substring \"hello\" 2)"), "\"llo\"");
    assert_eq!(ev("(string-ref \"abc\" 1)"), "#\\b");
    assert_eq!(ev("(string->symbol \"sym\")"), "sym");
    assert_eq!(ev("(symbol->string 'sym)"), "\"sym\"");
    assert_eq!(ev("(number->string 42)"), "\"42\"");
    assert_eq!(ev("(string->number \"42\")"), "42");
    assert_eq!(ev("(string->number \"4x\")"), "#f");
    assert_eq!(ev("(string->list \"ab\")"), "(#\\a #\\b)");
    assert_eq!(ev("(list->string '(#\\a #\\b))"), "\"ab\"");
}

#[test]
fn hash_ops() {
    assert_eq!(ev("(hash-count (hash))"), "0");
    assert_eq!(ev("(hash-ref (hash 'a 1 'b 2) 'b)"), "2");
    assert_eq!(ev("(hash-ref (hash) 'missing 'dflt)"), "dflt");
    assert_eq!(ev("(hash-has-key? (hash 'a 1) 'a)"), "#t");
    assert_eq!(ev("(hash-count (hash-set (hash 'a 1) 'b 2))"), "2");
    // Persistence: the original is untouched.
    assert_eq!(
        ev("(let ([h (hash 'a 1)]) (begin (hash-set h 'a 99) (hash-ref h 'a)))"),
        "1"
    );
    // Structural keys.
    assert_eq!(ev("(hash-ref (hash '(1 2) 'hit) (list 1 2))"), "hit");
}

#[test]
fn apply_and_higher_order() {
    assert_eq!(ev("(apply + '(1 2 3))"), "6");
    assert_eq!(ev("(apply max 1 '(5 3))"), "5");
    assert_eq!(ev("(apply (lambda (a b) (cons a b)) '(1 2))"), "(1 . 2)");
}

#[test]
fn error_behaviors() {
    for src in [
        "(car '())",
        "(cdr 5)",
        "(vector)", // unbound: no vectors in λSCT
        "(+ 'a)",
        "(quotient 1 0)",
        "(modulo 1 0)",
        "(string-ref \"ab\" 9)",
        "(substring \"ab\" 5)",
        "(integer->char -1)",
        "(list-ref '(1) 5)",
        "(hash-ref (hash) 'k)",
        "(apply + 1)",
        "(length (cons 1 2))",
        "(hash 'odd)",
        "(expt 2 -1)",
    ] {
        let e = ev_err(src);
        assert!(matches!(e, EvalError::Rt(_)), "{src}: got {e}");
    }
}

#[test]
fn display_write_roundtrip() {
    // write-form output re-reads to an equal value.
    assert_eq!(
        ev("(equal? '(1 \"a\" #\\b (c . 2)) '(1 \"a\" #\\b (c . 2)))"),
        "#t"
    );
}

#[test]
fn deep_structures() {
    // Build and fold a 50k-element list entirely in-language.
    assert_eq!(
        ev("
(define (iota n) (if (zero? n) '() (cons n (iota (- n 1)))))
(define (sum l acc) (if (null? l) acc (sum (cdr l) (+ acc (car l)))))
(sum (iota 50000) 0)"),
        "1250025000"
    );
}

#[test]
fn shadowing_prims_in_programs() {
    // Users may rebind primitive names; resolution prefers the binding.
    assert_eq!(ev("(define (car x) 'mine) (car '(1 2))"), "mine");
    assert_eq!(ev("(let ([+ *]) (+ 3 4))"), "12");
}

//! Contract-system tests: the λCSCT rules of Figure 7 / Figure 13, blame
//! polarity, and composition with partial-correctness contracts.

use sct_core::monitor::TableStrategy;
use sct_interp::{eval_str, EvalError, Machine, MachineConfig, SemanticsMode, Value};
use sct_lang::compile_program;

fn run(src: &str) -> Result<Value, EvalError> {
    eval_str(src)
}

// ---------------------------------------------------------------------
// Wrapping rules ([Wrap-Lam], [Wrap-Prim]).
// ---------------------------------------------------------------------

#[test]
fn wrap_lam_produces_wrapped_closure() {
    let v = run("(terminating/c (lambda (x) x))").unwrap();
    assert!(matches!(v, Value::Wrapped(_)));
    assert!(v.is_procedure());
}

#[test]
fn wrap_prim_returns_primitive_unchanged() {
    // [Wrap-Prim]: primitives terminate by construction.
    let v = run("(terminating/c cons)").unwrap();
    assert!(matches!(v, Value::Prim(_)));
}

#[test]
fn wrap_non_procedure_passes_through() {
    assert_eq!(run("(terminating/c 5)").unwrap(), Value::int(5));
    assert_eq!(run("(terminating/c 'a)").unwrap(), Value::sym("a"));
}

#[test]
fn double_wrapping_is_fine() {
    let v = run("
(define f (terminating/c (terminating/c (lambda (n) (if (zero? n) 0 (f (- n 1)))))))
(f 5)")
    .unwrap();
    assert_eq!(v, Value::int(0));
}

#[test]
fn wrapped_closure_still_applies_normally() {
    assert_eq!(
        run("((terminating/c (lambda (a b) (+ a b))) 3 4)").unwrap(),
        Value::int(7)
    );
    // Variadic wrapped closures keep their rest-arg behavior.
    assert_eq!(
        run("((terminating/c (lambda args (length args))) 1 2 3)").unwrap(),
        Value::int(3)
    );
}

// ---------------------------------------------------------------------
// Extent semantics ([App-Term] vs [SC-App-Term]).
// ---------------------------------------------------------------------

#[test]
fn app_term_seeds_fresh_table_per_extent() {
    // Sequential wrapped calls are separate extents: the second call's
    // arguments are not compared against the first call's.
    let v = run("
(define (id x) x)
(define w (terminating/c id))
(begin (w 1) (w 1) (w 2) (w 2))")
    .unwrap();
    assert_eq!(v, Value::int(2));
}

#[test]
fn sc_app_term_keeps_table_inside_monitored_extent() {
    // Figure 13's [SC-App-Term]: inside a monitored extent, applying a
    // wrapped closure continues with the *current* table. f's wrapped
    // self-call with an identical argument must therefore be caught on
    // the very first re-entry — with a fresh table it would spin.
    let src = "
(define (f x) (if (zero? x) 0 ((terminating/c f) x)))
(f 1)";
    let prog = compile_program(src).unwrap();
    let mut m = Machine::new(&prog, MachineConfig::monitored(TableStrategy::Imperative));
    let err = m.run().unwrap_err();
    assert!(err.is_sc(), "got {err}");
    assert!(
        m.stats.steps < 10_000,
        "the violation must be found via the kept table, not after unbounded unfolding; \
         took {} steps",
        m.stats.steps
    );
}

#[test]
fn nested_extents_inside_standard_semantics() {
    // An extent within an extent: the inner wrapped call continues the
    // outer table ([SC-App-Term] under λCSCT too), so the non-descending
    // inner call is caught and blames the inner label.
    let src = "
(define (g k) (if (< k 1) 0 (wg2 k)))
(define wg (terminating/c g \"outer\"))
(define wg2 (terminating/c g \"inner\"))
(wg 3)";
    let err = run(src).unwrap_err();
    let EvalError::Sc(info) = err else {
        panic!("expected Sc")
    };
    assert_eq!(info.blame.as_deref(), Some("inner"));
}

#[test]
fn descending_nested_extents_pass() {
    let src = "
(define (g k) (if (< k 1) 'done (wg2 (- k 1))))
(define wg (terminating/c g \"outer\"))
(define wg2 (terminating/c g \"inner\"))
(wg 5)";
    assert_eq!(run(src).unwrap(), Value::sym("done"));
}

#[test]
fn monitoring_ends_when_extent_ends() {
    // After a wrapped call returns, code runs unmonitored again: the
    // ascending climb is fine outside, even though an earlier extent ran.
    let src = "
(define (down n) (if (zero? n) 0 (down (- n 1))))
(define (climb n) (if (< n 3) (climb (+ n 1)) n))
(begin ((terminating/c down) 5) (climb 0))";
    assert_eq!(run(src).unwrap(), Value::int(3));
}

// ---------------------------------------------------------------------
// Blame polarity for ->/c (Findler–Felleisen).
// ---------------------------------------------------------------------

#[test]
fn arrow_arity_mismatch_blames_client() {
    let src = "
(define f (contract (->/c (flat/c integer?) (flat/c integer?)) (lambda (x) x) \"srv\" \"cli\"))
(f 1 2)";
    let EvalError::Contract(info) = run(src).unwrap_err() else {
        panic!()
    };
    assert_eq!(info.blame.as_ref(), "cli");
}

#[test]
fn higher_order_domain_swaps_blame() {
    // f takes a function that must return integers; when the *server*
    // calls the supplied function and it misbehaves, the fault is the
    // client's (it supplied the bad function).
    let src = "
(define use
  (contract (->/c (->/c (flat/c integer?) (flat/c integer?)) (flat/c integer?))
            (lambda (g) (g 1))
            \"srv\" \"cli\"))
(use (lambda (x) 'nope))";
    let EvalError::Contract(info) = run(src).unwrap_err() else {
        panic!()
    };
    assert_eq!(info.blame.as_ref(), "cli");
}

#[test]
fn and_c_checks_all_conjuncts_in_order() {
    let pass = "
(contract (and/c (flat/c integer?) (flat/c positive?)) 3 \"p\")";
    assert_eq!(run(pass).unwrap(), Value::int(3));
    let fail_first = "
(contract (and/c (flat/c integer?) (flat/c positive?)) 'a \"p\")";
    assert!(matches!(run(fail_first), Err(EvalError::Contract(_))));
    let fail_second = "
(contract (and/c (flat/c integer?) (flat/c positive?)) -3 \"p\")";
    assert!(matches!(run(fail_second), Err(EvalError::Contract(_))));
}

#[test]
fn bare_procedure_usable_as_flat_contract() {
    assert_eq!(run("(contract integer? 4 \"p\")").unwrap(), Value::int(4));
    assert_eq!(
        run("(contract (lambda (x) (> x 2)) 4 \"p\")").unwrap(),
        Value::int(4)
    );
    assert!(run("(contract (lambda (x) (> x 2)) 1 \"p\")").is_err());
}

#[test]
fn non_contract_value_is_a_runtime_error() {
    assert!(matches!(
        run("(contract 42 5 \"p\")"),
        Err(EvalError::Rt(_))
    ));
}

#[test]
fn range_check_runs_after_monitored_extent() {
    // terminating/c and ->/c compose in either order.
    let src = "
(define f
  (contract (and/c terminating/c (->/c (flat/c integer?) (flat/c integer?)))
            (lambda (x) (if (zero? x) 0 (f (- x 1))))
            \"srv\" \"cli\"))
(f 4)";
    assert_eq!(run(src).unwrap(), Value::int(0));
}

// ---------------------------------------------------------------------
// Interaction with the CM strategy and tail calls.
// ---------------------------------------------------------------------

#[test]
fn cm_strategy_handles_contract_extents() {
    let src = "
(define (down n acc) (if (zero? n) acc (down (- n 1) (+ acc 1))))
(define w (terminating/c down))
(w 2000 0)";
    let prog = compile_program(src).unwrap();
    let mut cfg = MachineConfig::standard();
    cfg.monitor.strategy = TableStrategy::ContinuationMark;
    let mut m = Machine::new(&prog, cfg);
    assert_eq!(m.run().unwrap(), Value::int(2000));
    // The loop inside the extent is tail-recursive; marks must not grow.
    assert!(m.stats.max_marks <= 2, "marks grew: {}", m.stats.max_marks);
}

#[test]
fn contract_extent_with_callseq_mode_records_not_aborts() {
    let src = "
(define (climb n) (if (< n 3) (climb (+ n 1)) n))
((terminating/c climb) 0)";
    let prog = compile_program(src).unwrap();
    let mut m = Machine::new(
        &prog,
        MachineConfig {
            mode: SemanticsMode::CallSeqCollect,
            ..MachineConfig::default()
        },
    );
    assert_eq!(m.run().unwrap(), Value::int(3));
    assert!(!m.violations.is_empty());
}

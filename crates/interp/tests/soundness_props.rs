//! Property tests for the paper's §3.5 soundness/completeness statements
//! over *randomly generated programs*.
//!
//! The generator produces two program families:
//!
//! * pure expressions (arithmetic, comparisons, pairs, conditionals) that
//!   always terminate — possibly with a run-time error (car of an int,
//!   division by zero), which is a legal standard-semantics answer;
//! * structurally descending recursions `f(n, acc)` whose step strictly
//!   decrements `n`, so they terminate and maintain the size-change
//!   principle on the default order.
//!
//! Properties checked, for both table strategies:
//!
//! * **Soundness (Thm 3.2)**: if the monitored run yields a value, the
//!   standard run yields the same value; run-time errors agree too.
//! * **Completeness (Lem 3.4/3.5)**: when the call-sequence semantics ↓↓
//!   records no violations, the monitored run does not raise `errorSC`
//!   and produces the standard answer.

use proptest::prelude::*;
use sct_core::monitor::TableStrategy;
use sct_interp::{EvalError, Machine, MachineConfig, SemanticsMode, Value};
use sct_lang::compile_program;

/// Generates a pure expression over variables `n` and `acc`.
fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(|n| n.to_string()),
        Just("n".to_string()),
        Just("acc".to_string()),
        Just("#t".to_string()),
        Just("#f".to_string()),
        Just("'()".to_string()),
        Just("'sym".to_string()),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(+ {a} {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(- {a} {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(* {a} {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(cons {a} {b})")),
            inner.clone().prop_map(|a| format!("(car {a})")),
            inner.clone().prop_map(|a| format!("(cdr {a})")),
            inner.clone().prop_map(|a| format!("(zero? {a})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, c)| format!("(if {a} {b} {c})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, c)| format!("(if (< {a} {b}) {b} {c})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(let ([t {a}]) {b})")),
        ]
    })
}

/// A descending recursive program: f counts n down to zero, with random
/// (possibly erroring, never diverging) base and step expressions.
fn descending_program() -> impl Strategy<Value = String> {
    (expr_strategy(), expr_strategy(), 0i64..12).prop_map(|(base, step, n0)| {
        format!(
            "(define (f n acc)
               (if (<= n 0) {base} (f (- n 1) {step})))
             (f {n0} 1)"
        )
    })
}

#[derive(Debug, PartialEq)]
enum Answer {
    Val(String),
    RtError,
    ScError,
    Fuel,
}

fn classify(r: Result<Value, EvalError>) -> Answer {
    match r {
        Ok(v) => Answer::Val(v.to_write_string()),
        Err(EvalError::Rt(_)) | Err(EvalError::Contract(_)) => Answer::RtError,
        Err(EvalError::Sc(_)) => Answer::ScError,
        Err(EvalError::OutOfFuel) => Answer::Fuel,
        // No test here configures a deadline; the arm exists only for
        // exhaustiveness.
        Err(EvalError::Deadline) => Answer::Fuel,
    }
}

fn run_mode(src: &str, mode: SemanticsMode, strategy: TableStrategy) -> (Answer, usize) {
    let prog =
        compile_program(src).unwrap_or_else(|e| panic!("generated program invalid: {e}\n{src}"));
    let config = MachineConfig {
        mode,
        fuel: Some(5_000_000),
        ..MachineConfig::monitored(strategy)
    };
    let mut m = Machine::new(&prog, config);
    let r = m.run();
    (classify(r), m.violations.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn soundness_on_pure_expressions(e in expr_strategy()) {
        // Close the free variables.
        let src = format!("(define n 3) (define acc '(1 2)) {e}");
        let (standard, _) = run_mode(&src, SemanticsMode::Standard, TableStrategy::Imperative);
        prop_assert_ne!(&standard, &Answer::Fuel, "pure expressions terminate");
        for strategy in [TableStrategy::Imperative, TableStrategy::ContinuationMark] {
            let (monitored, _) = run_mode(&src, SemanticsMode::Monitored, strategy);
            // No closures are applied, so monitoring cannot even trigger:
            // answers must agree exactly.
            prop_assert_eq!(&monitored, &standard, "strategy {:?} on {}", strategy, src);
        }
    }

    #[test]
    fn soundness_and_completeness_on_descending_recursion(src in descending_program()) {
        let (standard, _) = run_mode(&src, SemanticsMode::Standard, TableStrategy::Imperative);
        prop_assert_ne!(&standard, &Answer::Fuel, "descending recursion terminates: {}", src);

        let (collected, violations) =
            run_mode(&src, SemanticsMode::CallSeqCollect, TableStrategy::Imperative);
        prop_assert_eq!(&collected, &standard, "call-sequence runs in lock-step: {}", src);

        for strategy in [TableStrategy::Imperative, TableStrategy::ContinuationMark] {
            let (monitored, _) = run_mode(&src, SemanticsMode::Monitored, strategy);
            match &monitored {
                // Soundness: a monitored value/rt-error is the standard one.
                Answer::Val(_) | Answer::RtError => {
                    prop_assert_eq!(&monitored, &standard, "{}", src);
                    // SCT-completeness direction: a clean monitored run can
                    // only happen when ↓↓ recorded no violations.
                    prop_assert_eq!(violations, 0, "{}", src);
                }
                // Completeness: errorSC implies ↓↓ recorded the violation.
                Answer::ScError => prop_assert!(violations > 0, "{}", src),
                Answer::Fuel => prop_assert!(false, "monitored runs terminate (Thm 3.1): {}", src),
            }
        }
    }

    #[test]
    fn descending_recursion_on_n_is_never_rejected(
        n0 in 0i64..15,
        step in prop_oneof![Just("acc"), Just("(+ acc 1)"), Just("(cons n acc)"), Just("(* acc acc)")],
    ) {
        // The n-argument strictly descends every call, so whatever happens
        // in acc, prog? holds (the self-descending arc is always there).
        let src = format!(
            "(define (f n acc) (if (<= n 0) acc (f (- n 1) {step}))) (f {n0} 1)"
        );
        for strategy in [TableStrategy::Imperative, TableStrategy::ContinuationMark] {
            let (monitored, _) = run_mode(&src, SemanticsMode::Monitored, strategy);
            prop_assert!(
                !matches!(monitored, Answer::ScError),
                "spurious rejection of descending loop: {} ({:?})", src, strategy
            );
        }
    }
}

//! Implementations of the primitive operations `o` of Figure 3.
//!
//! Every primitive is total up to run-time type errors (`errorRT`); none
//! can diverge, which is why the monitor never instruments them (§5's
//! whitelist of known-terminating functions covers all primitives by
//! construction).
//!
//! `apply`, `contract`, and `terminating/c` need machine cooperation and
//! are intercepted in `machine.rs` before reaching [`call_prim`].

use crate::error::RtError;
use crate::value::{eq, equal, eqv, ContractData, HashData, Value};
use sct_bignum::Int;
use sct_lang::Prim;
use sct_persist::PMap;
use std::rc::Rc;

/// Result of a primitive call: a value, possibly with console output to
/// append to the machine's output buffer.
#[derive(Debug)]
pub enum PrimEffect {
    /// An ordinary result.
    Value(Value),
    /// Output text plus the result value.
    Output(String, Value),
}

fn rt(msg: impl Into<String>) -> RtError {
    RtError::new(msg)
}

fn want_int(p: Prim, v: &Value) -> Result<Int, RtError> {
    // Returns an owned Int: an i64 copy for fixnums, an Rc clone for
    // bignums — both cheap.
    match v {
        Value::Fix(n) => Ok(Int::Small(*n)),
        Value::Big(b) => Ok(Int::Big(b.clone())),
        other => Err(rt(format!(
            "{}: expected integer, got {}",
            p.name(),
            other.to_write_string()
        ))),
    }
}

fn want_char(p: Prim, v: &Value) -> Result<char, RtError> {
    match v {
        Value::Char(c) => Ok(*c),
        other => Err(rt(format!(
            "{}: expected char, got {}",
            p.name(),
            other.to_write_string()
        ))),
    }
}

fn want_str(p: Prim, v: &Value) -> Result<&Rc<str>, RtError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(rt(format!(
            "{}: expected string, got {}",
            p.name(),
            other.to_write_string()
        ))),
    }
}

fn want_pair(p: Prim, v: &Value) -> Result<(Value, Value), RtError> {
    match v {
        Value::Pair(d) => Ok((d.car.clone(), d.cdr.clone())),
        other => Err(rt(format!(
            "{}: expected pair, got {}",
            p.name(),
            other.to_write_string()
        ))),
    }
}

fn want_list(p: Prim, v: &Value) -> Result<Vec<Value>, RtError> {
    v.list_to_vec().ok_or_else(|| {
        rt(format!(
            "{}: expected a proper list, got {}",
            p.name(),
            v.to_write_string()
        ))
    })
}

fn want_hash(p: Prim, v: &Value) -> Result<&Rc<HashData>, RtError> {
    match v {
        Value::Hash(h) => Ok(h),
        other => Err(rt(format!(
            "{}: expected hash, got {}",
            p.name(),
            other.to_write_string()
        ))),
    }
}

fn arity(p: Prim, args: &[Value], n: usize) -> Result<(), RtError> {
    if args.len() != n {
        return Err(rt(format!(
            "{}: expected {n} arguments, got {}",
            p.name(),
            args.len()
        )));
    }
    Ok(())
}

fn at_least(p: Prim, args: &[Value], n: usize) -> Result<(), RtError> {
    if args.len() < n {
        return Err(rt(format!(
            "{}: expected at least {n} arguments, got {}",
            p.name(),
            args.len()
        )));
    }
    Ok(())
}

fn bool_val(b: bool) -> PrimEffect {
    PrimEffect::Value(Value::Bool(b))
}

fn val(v: Value) -> PrimEffect {
    PrimEffect::Value(v)
}

fn chained_int_cmp(
    p: Prim,
    args: &[Value],
    fix: impl Fn(i64, i64) -> bool,
    cmp: impl Fn(&Int, &Int) -> bool,
) -> Result<PrimEffect, RtError> {
    // Fixnum fast path for the overwhelmingly common two-argument case.
    if let [Value::Fix(a), Value::Fix(b)] = args {
        return Ok(bool_val(fix(*a, *b)));
    }
    at_least(p, args, 2)?;
    for w in args.windows(2) {
        if !cmp(&want_int(p, &w[0])?, &want_int(p, &w[1])?) {
            return Ok(bool_val(false));
        }
    }
    Ok(bool_val(true))
}

fn nth_cdr(p: Prim, v: &Value, path: &str) -> Result<Value, RtError> {
    // path like "ad" means (car (cdr v)), applied right to left.
    let mut cur = v.clone();
    for c in path.chars().rev() {
        let (car, cdr) = want_pair(p, &cur)?;
        cur = if c == 'a' { car } else { cdr };
    }
    Ok(cur)
}

fn search_list(
    p: Prim,
    needle: &Value,
    list: &Value,
    same: impl Fn(&Value, &Value) -> bool,
) -> Result<PrimEffect, RtError> {
    let mut cur = list.clone();
    loop {
        match cur {
            Value::Nil => return Ok(bool_val(false)),
            Value::Pair(d) => {
                if same(&d.car, needle) {
                    return Ok(val(Value::Pair(d)));
                }
                cur = d.cdr.clone();
            }
            other => {
                return Err(rt(format!(
                    "{}: expected a proper list, got {}",
                    p.name(),
                    other.to_write_string()
                )))
            }
        }
    }
}

fn search_assoc(
    p: Prim,
    needle: &Value,
    list: &Value,
    same: impl Fn(&Value, &Value) -> bool,
) -> Result<PrimEffect, RtError> {
    let mut cur = list.clone();
    loop {
        match cur {
            Value::Nil => return Ok(bool_val(false)),
            Value::Pair(d) => {
                let (key, _) = want_pair(p, &d.car)?;
                if same(&key, needle) {
                    return Ok(val(d.car.clone()));
                }
                cur = d.cdr.clone();
            }
            other => {
                return Err(rt(format!(
                    "{}: expected an association list, got {}",
                    p.name(),
                    other.to_write_string()
                )))
            }
        }
    }
}

/// Evaluates a primitive application.
///
/// # Errors
///
/// [`RtError`] on wrong arity, wrong argument types, division by zero,
/// index out of range, or a user `(error …)` call.
pub fn call_prim(p: Prim, args: &[Value]) -> Result<PrimEffect, RtError> {
    match p {
        // ----- numeric ---------------------------------------------------
        Prim::Add => {
            // Two fixnums in, fixnum out: no Int round-trip. Overflow
            // falls through to the bignum path.
            if let [Value::Fix(a), Value::Fix(b)] = args {
                if let Some(n) = a.checked_add(*b) {
                    return Ok(val(Value::Fix(n)));
                }
            }
            let mut acc = Int::zero();
            for a in args {
                acc = &acc + &want_int(p, a)?;
            }
            Ok(val(Value::from_int(acc)))
        }
        Prim::Sub => {
            if let [Value::Fix(a), Value::Fix(b)] = args {
                if let Some(n) = a.checked_sub(*b) {
                    return Ok(val(Value::Fix(n)));
                }
            }
            at_least(p, args, 1)?;
            let first = want_int(p, &args[0])?;
            if args.len() == 1 {
                return Ok(val(Value::from_int(-&first)));
            }
            let mut acc = first;
            for a in &args[1..] {
                acc = &acc - &want_int(p, a)?;
            }
            Ok(val(Value::from_int(acc)))
        }
        Prim::Mul => {
            if let [Value::Fix(a), Value::Fix(b)] = args {
                if let Some(n) = a.checked_mul(*b) {
                    return Ok(val(Value::Fix(n)));
                }
            }
            let mut acc = Int::one();
            for a in args {
                acc = &acc * &want_int(p, a)?;
            }
            Ok(val(Value::from_int(acc)))
        }
        Prim::Quotient | Prim::Remainder | Prim::Modulo => {
            arity(p, args, 2)?;
            let a = want_int(p, &args[0])?;
            let b = want_int(p, &args[1])?;
            let r = match p {
                Prim::Quotient => a.checked_quotient(&b),
                Prim::Remainder => a.checked_remainder(&b),
                _ => a.checked_modulo(&b),
            };
            match r {
                Some(n) => Ok(val(Value::from_int(n))),
                None => Err(rt(format!("{}: division by zero", p.name()))),
            }
        }
        Prim::Abs => {
            arity(p, args, 1)?;
            Ok(val(Value::from_int(want_int(p, &args[0])?.abs())))
        }
        Prim::Min | Prim::Max => {
            at_least(p, args, 1)?;
            let mut best = want_int(p, &args[0])?;
            for a in &args[1..] {
                let n = want_int(p, a)?;
                let take = if p == Prim::Min { n < best } else { n > best };
                if take {
                    best = n;
                }
            }
            Ok(val(Value::from_int(best)))
        }
        Prim::Add1 => {
            if let [Value::Fix(n)] = args {
                if let Some(n) = n.checked_add(1) {
                    return Ok(val(Value::Fix(n)));
                }
            }
            arity(p, args, 1)?;
            Ok(val(Value::from_int(&want_int(p, &args[0])? + &Int::one())))
        }
        Prim::Sub1 => {
            if let [Value::Fix(n)] = args {
                if let Some(n) = n.checked_sub(1) {
                    return Ok(val(Value::Fix(n)));
                }
            }
            arity(p, args, 1)?;
            Ok(val(Value::from_int(&want_int(p, &args[0])? - &Int::one())))
        }
        Prim::Gcd => {
            let mut acc = Int::zero();
            for a in args {
                acc = acc.gcd(&want_int(p, a)?);
            }
            Ok(val(Value::from_int(acc)))
        }
        Prim::Expt => {
            arity(p, args, 2)?;
            let base = want_int(p, &args[0])?;
            let exp = want_int(p, &args[1])?;
            if exp.is_negative() {
                return Err(rt("expt: negative exponent on exact integer"));
            }
            let Some(mut e) = exp.to_i64() else {
                return Err(rt("expt: exponent too large"));
            };
            let mut acc = Int::one();
            let mut b = base;
            while e > 0 {
                if e & 1 == 1 {
                    acc = &acc * &b;
                }
                b = &b * &b;
                e >>= 1;
            }
            Ok(val(Value::from_int(acc)))
        }
        Prim::NumEq => chained_int_cmp(p, args, |a, b| a == b, |a, b| a == b),
        Prim::Lt => chained_int_cmp(p, args, |a, b| a < b, |a, b| a < b),
        Prim::Le => chained_int_cmp(p, args, |a, b| a <= b, |a, b| a <= b),
        Prim::Gt => chained_int_cmp(p, args, |a, b| a > b, |a, b| a > b),
        Prim::Ge => chained_int_cmp(p, args, |a, b| a >= b, |a, b| a >= b),
        Prim::IsZero => {
            if let [Value::Fix(n)] = args {
                return Ok(bool_val(*n == 0));
            }
            arity(p, args, 1)?;
            Ok(bool_val(want_int(p, &args[0])?.is_zero()))
        }
        Prim::IsNegative => {
            arity(p, args, 1)?;
            Ok(bool_val(want_int(p, &args[0])?.is_negative()))
        }
        Prim::IsPositive => {
            arity(p, args, 1)?;
            let n = want_int(p, &args[0])?;
            Ok(bool_val(!n.is_negative() && !n.is_zero()))
        }
        Prim::IsEven | Prim::IsOdd => {
            arity(p, args, 1)?;
            let n = want_int(p, &args[0])?;
            let two = Int::from(2i64);
            let rem = n.checked_remainder(&two).expect("2 is nonzero");
            let even = rem.is_zero();
            Ok(bool_val(if p == Prim::IsEven { even } else { !even }))
        }
        Prim::IsNumber | Prim::IsInteger => {
            arity(p, args, 1)?;
            Ok(bool_val(matches!(args[0], Value::Fix(_) | Value::Big(_))))
        }

        // ----- pairs and lists -------------------------------------------
        Prim::Cons => {
            arity(p, args, 2)?;
            Ok(val(Value::cons(args[0].clone(), args[1].clone())))
        }
        Prim::Car => {
            arity(p, args, 1)?;
            Ok(val(want_pair(p, &args[0])?.0))
        }
        Prim::Cdr => {
            arity(p, args, 1)?;
            Ok(val(want_pair(p, &args[0])?.1))
        }
        Prim::Caar => {
            arity(p, args, 1)?;
            Ok(val(nth_cdr(p, &args[0], "aa")?))
        }
        Prim::Cadr => {
            arity(p, args, 1)?;
            Ok(val(nth_cdr(p, &args[0], "ad")?))
        }
        Prim::Cdar => {
            arity(p, args, 1)?;
            Ok(val(nth_cdr(p, &args[0], "da")?))
        }
        Prim::Cddr => {
            arity(p, args, 1)?;
            Ok(val(nth_cdr(p, &args[0], "dd")?))
        }
        Prim::Caddr => {
            arity(p, args, 1)?;
            Ok(val(nth_cdr(p, &args[0], "add")?))
        }
        Prim::Cdddr => {
            arity(p, args, 1)?;
            Ok(val(nth_cdr(p, &args[0], "ddd")?))
        }
        Prim::Cadddr => {
            arity(p, args, 1)?;
            Ok(val(nth_cdr(p, &args[0], "addd")?))
        }
        Prim::IsNull => {
            arity(p, args, 1)?;
            Ok(bool_val(matches!(args[0], Value::Nil)))
        }
        Prim::IsPair => {
            arity(p, args, 1)?;
            Ok(bool_val(matches!(args[0], Value::Pair(_))))
        }
        Prim::List => Ok(val(Value::list(args.to_vec()))),
        Prim::Length => {
            arity(p, args, 1)?;
            let items = want_list(p, &args[0])?;
            Ok(val(Value::int(items.len() as i64)))
        }
        Prim::Append => {
            if args.is_empty() {
                return Ok(val(Value::Nil));
            }
            let mut acc = args.last().unwrap().clone();
            for a in args[..args.len() - 1].iter().rev() {
                let items = want_list(p, a)?;
                for item in items.into_iter().rev() {
                    acc = Value::cons(item, acc);
                }
            }
            Ok(val(acc))
        }
        Prim::Reverse => {
            arity(p, args, 1)?;
            let mut acc = Value::Nil;
            for item in want_list(p, &args[0])? {
                acc = Value::cons(item, acc);
            }
            Ok(val(acc))
        }
        Prim::ListRef | Prim::ListTail => {
            arity(p, args, 2)?;
            let n = want_int(p, &args[1])?
                .to_i64()
                .filter(|n| *n >= 0)
                .ok_or_else(|| rt(format!("{}: bad index", p.name())))?;
            let mut cur = args[0].clone();
            for _ in 0..n {
                cur = want_pair(p, &cur)?.1;
            }
            if p == Prim::ListRef {
                Ok(val(want_pair(p, &cur)?.0))
            } else {
                Ok(val(cur))
            }
        }
        Prim::Memq => {
            arity(p, args, 2)?;
            search_list(p, &args[0], &args[1], eq)
        }
        Prim::Memv => {
            arity(p, args, 2)?;
            search_list(p, &args[0], &args[1], eqv)
        }
        Prim::Member => {
            arity(p, args, 2)?;
            search_list(p, &args[0], &args[1], equal)
        }
        Prim::Assq => {
            arity(p, args, 2)?;
            search_assoc(p, &args[0], &args[1], eq)
        }
        Prim::Assv => {
            arity(p, args, 2)?;
            search_assoc(p, &args[0], &args[1], eqv)
        }
        Prim::Assoc => {
            arity(p, args, 2)?;
            search_assoc(p, &args[0], &args[1], equal)
        }
        Prim::IsList => {
            arity(p, args, 1)?;
            Ok(bool_val(args[0].list_to_vec().is_some()))
        }

        // ----- equality and type predicates -------------------------------
        Prim::IsEq => {
            arity(p, args, 2)?;
            Ok(bool_val(eq(&args[0], &args[1])))
        }
        Prim::IsEqv => {
            arity(p, args, 2)?;
            Ok(bool_val(eqv(&args[0], &args[1])))
        }
        Prim::IsEqual => {
            arity(p, args, 2)?;
            Ok(bool_val(equal(&args[0], &args[1])))
        }
        Prim::Not => {
            arity(p, args, 1)?;
            Ok(bool_val(!args[0].is_truthy()))
        }
        Prim::IsBoolean => {
            arity(p, args, 1)?;
            Ok(bool_val(matches!(args[0], Value::Bool(_))))
        }
        Prim::IsSymbol => {
            arity(p, args, 1)?;
            Ok(bool_val(matches!(args[0], Value::Sym(_))))
        }
        Prim::IsString => {
            arity(p, args, 1)?;
            Ok(bool_val(matches!(args[0], Value::Str(_))))
        }
        Prim::IsChar => {
            arity(p, args, 1)?;
            Ok(bool_val(matches!(args[0], Value::Char(_))))
        }
        Prim::IsProcedure => {
            arity(p, args, 1)?;
            Ok(bool_val(args[0].is_procedure()))
        }
        Prim::IsVoid => {
            arity(p, args, 1)?;
            Ok(bool_val(matches!(args[0], Value::Void)))
        }

        // ----- characters --------------------------------------------------
        Prim::CharEq => {
            at_least(p, args, 2)?;
            for w in args.windows(2) {
                if want_char(p, &w[0])? != want_char(p, &w[1])? {
                    return Ok(bool_val(false));
                }
            }
            Ok(bool_val(true))
        }
        Prim::CharLt => {
            at_least(p, args, 2)?;
            for w in args.windows(2) {
                if want_char(p, &w[0])? >= want_char(p, &w[1])? {
                    return Ok(bool_val(false));
                }
            }
            Ok(bool_val(true))
        }
        Prim::CharToInteger => {
            arity(p, args, 1)?;
            Ok(val(Value::int(want_char(p, &args[0])? as i64)))
        }
        Prim::IntegerToChar => {
            arity(p, args, 1)?;
            let n = want_int(p, &args[0])?
                .to_i64()
                .and_then(|n| u32::try_from(n).ok())
                .and_then(char::from_u32)
                .ok_or_else(|| rt("integer->char: not a valid code point"))?;
            Ok(val(Value::Char(n)))
        }

        // ----- strings and symbols -----------------------------------------
        Prim::StringEq => {
            at_least(p, args, 2)?;
            for w in args.windows(2) {
                if want_str(p, &w[0])? != want_str(p, &w[1])? {
                    return Ok(bool_val(false));
                }
            }
            Ok(bool_val(true))
        }
        Prim::StringLt => {
            at_least(p, args, 2)?;
            for w in args.windows(2) {
                if want_str(p, &w[0])?.as_ref() >= want_str(p, &w[1])?.as_ref() {
                    return Ok(bool_val(false));
                }
            }
            Ok(bool_val(true))
        }
        Prim::StringLength => {
            arity(p, args, 1)?;
            Ok(val(Value::int(
                want_str(p, &args[0])?.chars().count() as i64
            )))
        }
        Prim::StringAppend => {
            let mut out = String::new();
            for a in args {
                out.push_str(want_str(p, a)?);
            }
            Ok(val(Value::str(out)))
        }
        Prim::Substring => {
            if args.len() != 2 && args.len() != 3 {
                return Err(rt("substring: expected 2 or 3 arguments"));
            }
            let s = want_str(p, &args[0])?;
            let chars: Vec<char> = s.chars().collect();
            let start = want_int(p, &args[1])?
                .to_i64()
                .filter(|n| *n >= 0 && *n as usize <= chars.len())
                .ok_or_else(|| rt("substring: start out of range"))?
                as usize;
            let end = if args.len() == 3 {
                want_int(p, &args[2])?
                    .to_i64()
                    .filter(|n| *n >= start as i64 && *n as usize <= chars.len())
                    .ok_or_else(|| rt("substring: end out of range"))? as usize
            } else {
                chars.len()
            };
            Ok(val(Value::str(
                chars[start..end].iter().collect::<String>(),
            )))
        }
        Prim::StringRef => {
            arity(p, args, 2)?;
            let s = want_str(p, &args[0])?;
            let i = want_int(p, &args[1])?
                .to_i64()
                .filter(|n| *n >= 0)
                .ok_or_else(|| rt("string-ref: bad index"))? as usize;
            s.chars()
                .nth(i)
                .map(|c| val(Value::Char(c)))
                .ok_or_else(|| rt("string-ref: index out of range"))
        }
        Prim::StringToSymbol => {
            arity(p, args, 1)?;
            Ok(val(Value::Sym(want_str(p, &args[0])?.clone())))
        }
        Prim::SymbolToString => {
            arity(p, args, 1)?;
            match &args[0] {
                Value::Sym(s) => Ok(val(Value::Str(s.clone()))),
                other => Err(rt(format!(
                    "symbol->string: expected symbol, got {}",
                    other.to_write_string()
                ))),
            }
        }
        Prim::NumberToString => {
            arity(p, args, 1)?;
            Ok(val(Value::str(want_int(p, &args[0])?.to_string())))
        }
        Prim::StringToNumber => {
            arity(p, args, 1)?;
            match want_str(p, &args[0])?.parse::<Int>() {
                Ok(n) => Ok(val(Value::from_int(n))),
                Err(_) => Ok(bool_val(false)),
            }
        }
        Prim::StringToList => {
            arity(p, args, 1)?;
            let chars: Vec<Value> = want_str(p, &args[0])?.chars().map(Value::Char).collect();
            Ok(val(Value::list(chars)))
        }
        Prim::ListToString => {
            arity(p, args, 1)?;
            let mut out = String::new();
            for c in want_list(p, &args[0])? {
                out.push(want_char(p, &c)?);
            }
            Ok(val(Value::str(out)))
        }

        // ----- immutable hashes ---------------------------------------------
        Prim::Hash => {
            if !args.len().is_multiple_of(2) {
                return Err(rt("hash: expected an even number of arguments"));
            }
            let mut map = PMap::new();
            for kv in args.chunks(2) {
                map = map.insert(kv[0].clone(), kv[1].clone());
            }
            Ok(val(Value::Hash(Rc::new(HashData::new(map)))))
        }
        Prim::HashSet => {
            arity(p, args, 3)?;
            let h = want_hash(p, &args[0])?;
            let map = h.map.insert(args[1].clone(), args[2].clone());
            Ok(val(Value::Hash(Rc::new(HashData::new(map)))))
        }
        Prim::HashRef => {
            if args.len() != 2 && args.len() != 3 {
                return Err(rt("hash-ref: expected 2 or 3 arguments"));
            }
            let h = want_hash(p, &args[0])?;
            match h.map.get(&args[1]) {
                Some(v) => Ok(val(v.clone())),
                None if args.len() == 3 => Ok(val(args[2].clone())),
                None => Err(rt(format!(
                    "hash-ref: no value for key {}",
                    args[1].to_write_string()
                ))),
            }
        }
        Prim::HashHasKey => {
            arity(p, args, 2)?;
            let h = want_hash(p, &args[0])?;
            Ok(bool_val(h.map.contains_key(&args[1])))
        }
        Prim::HashCount => {
            arity(p, args, 1)?;
            Ok(val(Value::int(want_hash(p, &args[0])?.map.len() as i64)))
        }

        // ----- output and control --------------------------------------------
        Prim::Display => {
            arity(p, args, 1)?;
            Ok(PrimEffect::Output(args[0].to_display_string(), Value::Void))
        }
        Prim::Write => {
            arity(p, args, 1)?;
            Ok(PrimEffect::Output(args[0].to_write_string(), Value::Void))
        }
        Prim::Newline => {
            arity(p, args, 0)?;
            Ok(PrimEffect::Output("\n".into(), Value::Void))
        }
        Prim::Error => {
            let mut msg = String::new();
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    msg.push(' ');
                }
                match a {
                    Value::Str(s) => msg.push_str(s),
                    Value::Sym(s) => {
                        msg.push_str(s);
                        if i == 0 {
                            msg.push(':');
                        }
                    }
                    other => msg.push_str(&other.to_write_string()),
                }
            }
            Err(rt(if msg.is_empty() {
                "error".to_string()
            } else {
                msg
            }))
        }
        Prim::Void => Ok(val(Value::Void)),

        // ----- contract constructors ------------------------------------------
        Prim::FlatC => {
            arity(p, args, 1)?;
            Ok(val(Value::Contract(Rc::new(ContractData::Flat(
                args[0].clone(),
            )))))
        }
        Prim::ArrowC => {
            at_least(p, args, 1)?;
            let rng = args.last().unwrap().clone();
            let doms = args[..args.len() - 1].to_vec();
            Ok(val(Value::Contract(Rc::new(ContractData::Arrow {
                doms,
                rng,
            }))))
        }
        Prim::AndC => Ok(val(Value::Contract(Rc::new(ContractData::And(
            args.to_vec(),
        ))))),

        // Handled by the machine; reaching here is an internal error.
        Prim::Apply | Prim::Contract | Prim::TerminatingC => Err(rt(format!(
            "{}: internal: must be applied by the machine",
            p.name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(effect: PrimEffect) -> Value {
        match effect {
            PrimEffect::Value(v) => v,
            PrimEffect::Output(_, v) => v,
        }
    }

    fn ints(ns: &[i64]) -> Vec<Value> {
        ns.iter().map(|n| Value::int(*n)).collect()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            v(call_prim(Prim::Add, &ints(&[1, 2, 3])).unwrap()),
            Value::int(6)
        );
        assert_eq!(v(call_prim(Prim::Add, &[]).unwrap()), Value::int(0));
        assert_eq!(
            v(call_prim(Prim::Sub, &ints(&[10, 1, 2])).unwrap()),
            Value::int(7)
        );
        assert_eq!(
            v(call_prim(Prim::Sub, &ints(&[5])).unwrap()),
            Value::int(-5)
        );
        assert_eq!(
            v(call_prim(Prim::Mul, &ints(&[2, 3, 4])).unwrap()),
            Value::int(24)
        );
        assert_eq!(
            v(call_prim(Prim::Quotient, &ints(&[-7, 2])).unwrap()),
            Value::int(-3)
        );
        assert_eq!(
            v(call_prim(Prim::Modulo, &ints(&[-7, 2])).unwrap()),
            Value::int(1)
        );
        assert!(call_prim(Prim::Quotient, &ints(&[1, 0])).is_err());
        assert_eq!(
            v(call_prim(Prim::Expt, &ints(&[2, 10])).unwrap()),
            Value::int(1024)
        );
        assert_eq!(
            v(call_prim(Prim::Gcd, &ints(&[12, 18])).unwrap()),
            Value::int(6)
        );
        assert_eq!(
            v(call_prim(Prim::Max, &ints(&[1, 9, 4])).unwrap()),
            Value::int(9)
        );
    }

    #[test]
    fn comparisons_chain() {
        assert_eq!(
            v(call_prim(Prim::Lt, &ints(&[1, 2, 3])).unwrap()),
            Value::Bool(true)
        );
        assert_eq!(
            v(call_prim(Prim::Lt, &ints(&[1, 3, 2])).unwrap()),
            Value::Bool(false)
        );
        assert_eq!(
            v(call_prim(Prim::NumEq, &ints(&[2, 2, 2])).unwrap()),
            Value::Bool(true)
        );
        assert!(call_prim(Prim::Lt, &ints(&[1])).is_err());
    }

    #[test]
    fn list_ops() {
        let l = Value::list(ints(&[1, 2, 3]));
        assert_eq!(
            v(call_prim(Prim::Length, std::slice::from_ref(&l)).unwrap()),
            Value::int(3)
        );
        assert_eq!(
            v(call_prim(Prim::Car, std::slice::from_ref(&l)).unwrap()),
            Value::int(1)
        );
        assert_eq!(
            v(call_prim(Prim::Cadr, std::slice::from_ref(&l)).unwrap()),
            Value::int(2)
        );
        assert_eq!(
            v(call_prim(Prim::Caddr, std::slice::from_ref(&l)).unwrap()),
            Value::int(3)
        );
        let r = v(call_prim(Prim::Reverse, std::slice::from_ref(&l)).unwrap());
        assert_eq!(r.to_write_string(), "(3 2 1)");
        let app = v(call_prim(Prim::Append, &[l.clone(), r]).unwrap());
        assert_eq!(app.to_write_string(), "(1 2 3 3 2 1)");
        assert_eq!(
            v(call_prim(Prim::ListRef, &[l.clone(), Value::int(1)]).unwrap()),
            Value::int(2)
        );
        assert!(call_prim(Prim::Car, &[Value::Nil]).is_err());
        assert!(call_prim(Prim::Length, &[Value::cons(Value::int(1), Value::int(2))]).is_err());
    }

    #[test]
    fn membership() {
        let l = Value::list(vec![Value::sym("a"), Value::sym("b")]);
        let hit = v(call_prim(Prim::Memq, &[Value::sym("b"), l.clone()]).unwrap());
        assert_eq!(hit.to_write_string(), "(b)");
        assert_eq!(
            v(call_prim(Prim::Memq, &[Value::sym("z"), l.clone()]).unwrap()),
            Value::Bool(false)
        );
        let alist = Value::list(vec![
            Value::cons(Value::sym("x"), Value::int(1)),
            Value::cons(Value::sym("y"), Value::int(2)),
        ]);
        let found = v(call_prim(Prim::Assq, &[Value::sym("y"), alist]).unwrap());
        assert_eq!(found.to_write_string(), "(y . 2)");
    }

    #[test]
    fn string_ops() {
        let s = Value::str("hello");
        assert_eq!(
            v(call_prim(Prim::StringLength, std::slice::from_ref(&s)).unwrap()),
            Value::int(5)
        );
        assert_eq!(
            v(call_prim(Prim::Substring, &[s.clone(), Value::int(1), Value::int(3)]).unwrap()),
            Value::str("el")
        );
        assert_eq!(
            v(call_prim(Prim::StringAppend, &[s.clone(), Value::str("!")]).unwrap()),
            Value::str("hello!")
        );
        assert_eq!(
            v(call_prim(Prim::StringLt, &[Value::str("abc"), Value::str("abd")]).unwrap()),
            Value::Bool(true)
        );
        assert_eq!(
            v(call_prim(Prim::StringToNumber, &[Value::str("42")]).unwrap()),
            Value::int(42)
        );
        assert_eq!(
            v(call_prim(Prim::StringToNumber, &[Value::str("nope")]).unwrap()),
            Value::Bool(false)
        );
        let l = v(call_prim(Prim::StringToList, &[Value::str("ab")]).unwrap());
        assert_eq!(l.to_write_string(), "(#\\a #\\b)");
        assert_eq!(
            v(call_prim(Prim::ListToString, &[l]).unwrap()),
            Value::str("ab")
        );
    }

    #[test]
    fn hash_ops() {
        let h = v(call_prim(Prim::Hash, &[Value::sym("x"), Value::int(1)]).unwrap());
        let h2 = v(call_prim(Prim::HashSet, &[h.clone(), Value::sym("y"), Value::int(2)]).unwrap());
        assert_eq!(
            v(call_prim(Prim::HashRef, &[h2.clone(), Value::sym("y")]).unwrap()),
            Value::int(2)
        );
        assert_eq!(v(call_prim(Prim::HashCount, &[h]).unwrap()), Value::int(1));
        assert_eq!(
            v(call_prim(Prim::HashCount, std::slice::from_ref(&h2)).unwrap()),
            Value::int(2)
        );
        assert!(call_prim(Prim::HashRef, &[h2.clone(), Value::sym("z")]).is_err());
        assert_eq!(
            v(call_prim(Prim::HashRef, &[h2, Value::sym("z"), Value::int(0)]).unwrap()),
            Value::int(0)
        );
    }

    #[test]
    fn output_prims() {
        match call_prim(Prim::Display, &[Value::str("hi")]).unwrap() {
            PrimEffect::Output(text, Value::Void) => assert_eq!(text, "hi"),
            other => panic!("expected output, got {other:?}"),
        }
        match call_prim(Prim::Write, &[Value::str("hi")]).unwrap() {
            PrimEffect::Output(text, _) => assert_eq!(text, "\"hi\""),
            other => panic!("expected output, got {other:?}"),
        }
    }

    #[test]
    fn error_prim() {
        let e = call_prim(Prim::Error, &[Value::sym("car"), Value::str("bad pair")]).unwrap_err();
        assert_eq!(e.message, "car: bad pair");
    }

    #[test]
    fn char_ops() {
        assert_eq!(
            v(call_prim(Prim::CharEq, &[Value::Char('a'), Value::Char('a')]).unwrap()),
            Value::Bool(true)
        );
        assert_eq!(
            v(call_prim(Prim::CharToInteger, &[Value::Char('A')]).unwrap()),
            Value::int(65)
        );
        assert_eq!(
            v(call_prim(Prim::IntegerToChar, &[Value::int(97)]).unwrap()),
            Value::Char('a')
        );
    }

    #[test]
    fn type_errors_name_the_prim() {
        let e = call_prim(Prim::Add, &[Value::str("x")]).unwrap_err();
        assert!(e.message.contains('+'), "got {}", e.message);
        let e = call_prim(Prim::Car, &[Value::int(1)]).unwrap_err();
        assert!(e.message.contains("car"), "got {}", e.message);
    }
}

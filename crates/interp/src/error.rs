//! Evaluation answers and errors (Figure 3's `α ::= a | errorSC`).

use sct_core::seq::ScViolation;
use std::fmt;
use std::rc::Rc;

/// A standard run-time error (`errorRT`): type errors, arity errors,
/// division by zero, user `(error …)` calls, and so on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtError {
    /// Lowercase description.
    pub message: String,
}

impl RtError {
    /// Creates a run-time error.
    pub fn new(message: impl Into<String>) -> RtError {
        RtError {
            message: message.into(),
        }
    }
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for RtError {}

/// A size-change termination error (`errorSC`) with blame information.
#[derive(Debug, Clone)]
pub struct ScErrorInfo {
    /// The blame party from the innermost enclosing `terminating/c`
    /// contract, or `None` for whole-program monitoring.
    pub blame: Option<Rc<str>>,
    /// Name of the function whose call sequence violated the principle.
    pub function: String,
    /// The violation witness.
    pub violation: ScViolation,
}

impl fmt::Display for ScErrorInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in calls to {}", self.violation, self.function)?;
        if let Some(b) = &self.blame {
            write!(f, "; blaming {b}")?;
        }
        Ok(())
    }
}

/// A contract violation from the partial-correctness contracts (`flat/c`,
/// `->/c`) that compose with `terminating/c` into contracts for total
/// correctness.
#[derive(Debug, Clone)]
pub struct ContractErrorInfo {
    /// The blamed party.
    pub blame: Rc<str>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ContractErrorInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "contract violation: {}; blaming {}",
            self.message, self.blame
        )
    }
}

/// The ways evaluation can end without producing a value.
#[derive(Debug, Clone)]
pub enum EvalError {
    /// `errorRT`.
    Rt(RtError),
    /// `errorSC` — the size-change monitor stopped the program.
    Sc(ScErrorInfo),
    /// A partial-correctness contract failed.
    Contract(ContractErrorInfo),
    /// The configured fuel ran out (used to bound *unmonitored* runs of
    /// diverging programs; monitored runs stop via [`EvalError::Sc`]).
    OutOfFuel,
    /// The configured wall-clock deadline passed mid-run. Unlike
    /// [`EvalError::OutOfFuel`] this depends on machine load, not on the
    /// program — servers use it to bound request latency, and nothing
    /// about the program's semantics may be inferred from it.
    Deadline,
}

impl EvalError {
    /// Convenience: true when this is a size-change error.
    pub fn is_sc(&self) -> bool {
        matches!(self, EvalError::Sc(_))
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Rt(e) => write!(f, "run-time error: {e}"),
            EvalError::Sc(e) => write!(f, "termination contract violation: {e}"),
            EvalError::Contract(e) => write!(f, "{e}"),
            EvalError::OutOfFuel => f.write_str("out of fuel"),
            EvalError::Deadline => f.write_str("deadline exceeded"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<RtError> for EvalError {
    fn from(e: RtError) -> Self {
        EvalError::Rt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::graph::ScGraph;

    #[test]
    fn displays() {
        let rt = EvalError::Rt(RtError::new("car: expected pair"));
        assert!(rt.to_string().contains("car"));
        let sc = EvalError::Sc(ScErrorInfo {
            blame: Some(Rc::from("main")),
            function: "loop".into(),
            violation: ScViolation {
                witness: ScGraph::empty(1, 1),
            },
        });
        assert!(sc.is_sc());
        let shown = sc.to_string();
        assert!(
            shown.contains("loop") && shown.contains("main"),
            "got {shown}"
        );
        assert!(!EvalError::OutOfFuel.is_sc());
    }
}

//! The retained *reference* tree-walking CEK machine for λSCT.
//!
//! This is the direct operational reading of the paper's rules — the
//! machine that executed every program before the flat-IR dispatch VM
//! ([`crate::machine::Machine`]) replaced it on the hot path. It is kept,
//! unoptimized and structurally close to Figures 3/6/7/13, as the
//! *differential oracle*: the root crate's oracle suite runs every corpus
//! and generated program through both machines and asserts identical
//! values, blame labels, and monitor-visible counters. When the VM and
//! this walker disagree, this walker is the specification.
//!
//! One machine implements all the semantics of the paper:
//!
//! * **Standard ⇓** ([`SemanticsMode::Standard`]): no monitoring, except
//!   inside the dynamic extent of a `terminating/c`-wrapped call, which is
//!   exactly λCSCT (Figure 7 / Figure 13).
//! * **Monitored ⬇** ([`SemanticsMode::Monitored`]): every closure
//!   application is guarded by `upd` (rule [SC-App-Clo] of Figure 3) — all
//!   programs terminate, by Theorem 3.1.
//! * **Call-sequence ↓↓** ([`SemanticsMode::CallSeqCollect`]): tables are
//!   extended with `ext` but never enforced (Figure 6); violations that
//!   *would* have fired are recorded in [`Machine::violations`].
//!
//! Because the continuation is an explicit heap vector, deep recursion
//! cannot overflow the Rust stack, and a tail call leaves the continuation
//! untouched — the same discipline the VM preserves.

use crate::env::{assign, lookup, Env, Frame};
use crate::error::{ContractErrorInfo, EvalError, RtError, ScErrorInfo};
use crate::machine::{
    arity_error, datum_to_value, in_domain, party_name, wrap_terminating, FastGuard, MachineConfig,
    SemanticsMode, Stats, TraceEvent,
};
use crate::prims::{call_prim, PrimEffect};
use crate::value::{
    mix2, value_hash, Closure, ClosureEnv, ContractData, Value, WrapKind, WrappedData,
};
use sct_core::graph::ScGraph;
use sct_core::intern::{FxBuildHasher, Interner};
use sct_core::monitor::{Backoff, KeyStrategy, TableStrategy};
use sct_core::table::{MutScTable, ScTable, TableUndo};
use sct_lang::ast::{Expr, Program, TopForm, VarRef};
use sct_lang::{LambdaDef, Prim};
use sct_sexpr::Datum;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

enum Ctrl {
    Eval(Expr, Env),
    Val(Value),
}

struct MarkEntry {
    depth: usize,
    table: ScTable<u64, Value>,
}

enum Kont {
    If {
        then_branch: Expr,
        else_branch: Expr,
        env: Env,
    },
    Seq {
        exprs: Rc<[Expr]>,
        index: usize,
        env: Env,
    },
    AppFunc {
        exprs: Rc<[Expr]>,
        env: Env,
    },
    AppArgs {
        func: Value,
        exprs: Rc<[Expr]>,
        index: usize,
        done: Vec<Value>,
        env: Env,
    },
    SetLocal {
        var: VarRef,
        env: Env,
    },
    SetGlobal {
        index: u32,
    },
    LetInit {
        inits: Rc<[Expr]>,
        index: usize,
        done: Vec<Value>,
        body: Rc<Expr>,
        env: Env,
    },
    LetRecInit {
        inits: Rc<[Expr]>,
        index: usize,
        body: Rc<Expr>,
        env: Env,
    },
    TermCWrap {
        label: Rc<str>,
    },
    Restore(TableUndo<u64, Value>),
    ContractExtent {
        saved: Option<MutScTable<u64, Value>>,
        started: bool,
    },
    FlatCheck {
        original: Value,
        rest: VecDeque<Value>,
        pos: Rc<str>,
        neg: Rc<str>,
    },
    ArrowCall {
        inner: Value,
        doms: Vec<Value>,
        args: Vec<Value>,
        receiving: usize,
        checked: Vec<Value>,
        pos: Rc<str>,
        neg: Rc<str>,
    },
    ArrowRng {
        rng: Value,
        pos: Rc<str>,
        neg: Rc<str>,
    },
}

/// The reference tree-walking machine (the differential-oracle baseline).
///
/// # Examples
///
/// ```
/// use sct_interp::reference::Machine;
/// use sct_interp::{MachineConfig, Value};
/// use sct_lang::compile_program;
///
/// let prog = compile_program("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)")
///     .unwrap();
/// let mut m = Machine::new(&prog, MachineConfig::standard());
/// assert_eq!(m.run().unwrap(), Value::int(3628800));
/// ```
pub struct Machine<'p> {
    program: &'p Program,
    /// The active configuration.
    pub config: MachineConfig,
    globals: Vec<Value>,
    /// Accumulated `display`/`write`/`newline` output.
    pub output: String,
    /// Counters.
    pub stats: Stats,
    /// Violations recorded by the call-sequence semantics.
    pub violations: Vec<ScErrorInfo>,
    /// Trace of checked calls when tracing is on.
    pub trace_events: Vec<TraceEvent>,
    whitelist: HashSet<String>,
    // λ id → fast-path rule, compiled once from `config.plan`.
    fast_path: HashMap<u32, FastGuard, FxBuildHasher>,
    quote_cache: HashMap<*const Datum, Value>,
    alloc_counter: u64,
    backoff: Backoff<u64>,
    // Loop-entry detection state (§5).
    designated: HashSet<u64>,
    last_seen_tick: HashMap<u64, u64>,
    guard_tick: u64,
    // Shared graph pool: every table this machine creates interns its
    // size-change graphs here, so `desc?` and composition are memoized
    // across the whole run (and across runs on this thread).
    interner: Interner,
    // Imperative-strategy table (also used by CallSeqCollect).
    imp_table: MutScTable<u64, Value>,
    // Continuation-mark-strategy table stack.
    marks: Vec<MarkEntry>,
    // Innermost-first blame labels for active terminating/c extents.
    blames: Vec<Rc<str>>,
    extent_depth: usize,
}

impl<'p> Machine<'p> {
    /// Creates a machine for a compiled program.
    pub fn new(program: &'p Program, config: MachineConfig) -> Machine<'p> {
        let whitelist = config.monitor.whitelist.iter().cloned().collect();
        let backoff = Backoff::new(config.monitor.backoff);
        let mut fast_path: HashMap<u32, FastGuard, FxBuildHasher> = HashMap::default();
        if let Some(plan) = &config.plan {
            for (id, guard) in plan.static_lambdas() {
                let rule = match guard {
                    None => FastGuard::Always,
                    Some(doms) => FastGuard::Domains(Rc::from(doms)),
                };
                fast_path.insert(id, rule);
            }
        }
        // The thread-local pool: `std::mem::take` on the imperative table
        // (contract extents) builds `MutScTable::new()`, which uses the
        // same pool — every table in this machine must agree on one.
        let interner = Interner::global();
        Machine {
            program,
            config,
            globals: vec![Value::Undefined; program.global_names.len()],
            output: String::new(),
            stats: Stats::default(),
            violations: Vec::new(),
            trace_events: Vec::new(),
            whitelist,
            fast_path,
            quote_cache: HashMap::new(),
            alloc_counter: 0,
            backoff,
            designated: HashSet::new(),
            last_seen_tick: HashMap::new(),
            guard_tick: 0,
            imp_table: MutScTable::with_interner(interner.clone()),
            interner,
            marks: Vec::new(),
            blames: Vec::new(),
            extent_depth: 0,
        }
    }

    /// Runs all top-level forms; the result is the last expression's value
    /// (or void when the program ends with a definition).
    ///
    /// # Errors
    ///
    /// [`EvalError`] as the program's non-value answers: `errorRT`,
    /// `errorSC`, contract violations, or fuel exhaustion.
    pub fn run(&mut self) -> Result<Value, EvalError> {
        let mut last = Value::Void;
        for (i, form) in self.program.top_level.iter().enumerate() {
            let _ = i;
            match form {
                TopForm::Define { index, expr } => {
                    let v = self.run_ctrl(Ctrl::Eval(expr.clone(), None))?;
                    self.globals[*index as usize] = v;
                    last = Value::Void;
                }
                TopForm::Expr(expr) => {
                    last = self.run_ctrl(Ctrl::Eval(expr.clone(), None))?;
                }
            }
        }
        Ok(last)
    }

    /// Looks up a global's current value by name (after [`Machine::run`]).
    pub fn global(&self, name: &str) -> Option<Value> {
        let i = self.program.global_index(name)?;
        Some(self.globals[i as usize].clone())
    }

    /// Applies a procedure value to arguments under the machine's
    /// configuration — how the benchmark harness drives compiled programs.
    ///
    /// # Errors
    ///
    /// [`EvalError`] exactly as [`Machine::run`].
    pub fn call(&mut self, f: Value, args: Vec<Value>) -> Result<Value, EvalError> {
        let mut kont = Vec::new();
        let ctrl = self.apply_value(f, args, &mut kont)?;
        self.run_loop(ctrl, kont)
    }

    fn run_ctrl(&mut self, ctrl: Ctrl) -> Result<Value, EvalError> {
        self.run_loop(ctrl, Vec::new())
    }

    fn run_loop(&mut self, mut ctrl: Ctrl, mut kont: Vec<Kont>) -> Result<Value, EvalError> {
        loop {
            self.stats.steps += 1;
            if let Some(fuel) = self.config.fuel {
                if self.stats.steps > fuel {
                    return Err(EvalError::OutOfFuel);
                }
            }
            if kont.len() > self.stats.max_kont_depth {
                self.stats.max_kont_depth = kont.len();
            }
            ctrl = match ctrl {
                Ctrl::Eval(e, env) => self.step_eval(e, env, &mut kont)?,
                Ctrl::Val(v) => match kont.pop() {
                    None => {
                        // A tail call at depth 0 legitimately leaves a mark;
                        // the session is over, so drop it.
                        self.marks.clear();
                        debug_assert!(self.blames.is_empty());
                        return Ok(v);
                    }
                    Some(frame) => {
                        // Marks deeper than the continuation are stale: the
                        // calls that installed them have returned.
                        while self.marks.last().is_some_and(|m| m.depth > kont.len()) {
                            self.marks.pop();
                        }
                        self.step_kont(v, frame, &mut kont)?
                    }
                },
            };
        }
    }

    fn step_eval(&mut self, e: Expr, env: Env, kont: &mut Vec<Kont>) -> Result<Ctrl, EvalError> {
        Ok(match e {
            Expr::Quote(d) => Ctrl::Val(self.datum_value(&d)),
            Expr::Var(v) => {
                let value = lookup(&env, v.depth, v.slot);
                if matches!(value, Value::Undefined) {
                    return Err(RtError::new("variable used before initialization").into());
                }
                Ctrl::Val(value)
            }
            Expr::Global(i) => {
                let value = self.globals[i as usize].clone();
                if matches!(value, Value::Undefined) {
                    return Err(RtError::new(format!(
                        "global {} used before definition",
                        self.program.global_names[i as usize]
                    ))
                    .into());
                }
                Ctrl::Val(value)
            }
            Expr::PrimRef(p) => Ctrl::Val(Value::Prim(p)),
            Expr::Lambda(def) => Ctrl::Val(self.make_closure(def, &env)),
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                kont.push(Kont::If {
                    then_branch: (*then_branch).clone(),
                    else_branch: (*else_branch).clone(),
                    env: env.clone(),
                });
                Ctrl::Eval((*cond).clone(), env)
            }
            Expr::App { func, args } => {
                kont.push(Kont::AppFunc {
                    exprs: args,
                    env: env.clone(),
                });
                Ctrl::Eval((*func).clone(), env)
            }
            Expr::Seq(exprs) => {
                let first = exprs[0].clone();
                if exprs.len() > 1 {
                    kont.push(Kont::Seq {
                        exprs,
                        index: 1,
                        env: env.clone(),
                    });
                }
                Ctrl::Eval(first, env)
            }
            Expr::SetLocal { var, value } => {
                kont.push(Kont::SetLocal {
                    var,
                    env: env.clone(),
                });
                Ctrl::Eval((*value).clone(), env)
            }
            Expr::SetGlobal { index, value } => {
                kont.push(Kont::SetGlobal { index });
                Ctrl::Eval((*value).clone(), env)
            }
            Expr::Let { inits, body } => {
                if inits.is_empty() {
                    self.stats.env_frames_allocated += 1;
                    let new_env = Frame::extend(&env, Vec::new());
                    Ctrl::Eval((*body).clone(), new_env)
                } else {
                    let first = inits[0].clone();
                    kont.push(Kont::LetInit {
                        inits,
                        index: 0,
                        done: Vec::new(),
                        body,
                        env: env.clone(),
                    });
                    Ctrl::Eval(first, env)
                }
            }
            Expr::LetRec { inits, body } => {
                self.stats.env_frames_allocated += 1;
                let new_env = Frame::extend_undefined(&env, inits.len());
                if inits.is_empty() {
                    Ctrl::Eval((*body).clone(), new_env)
                } else {
                    let first = inits[0].clone();
                    kont.push(Kont::LetRecInit {
                        inits,
                        index: 0,
                        body,
                        env: new_env.clone(),
                    });
                    Ctrl::Eval(first, new_env)
                }
            }
            Expr::TermC { body, label } => {
                kont.push(Kont::TermCWrap { label });
                Ctrl::Eval((*body).clone(), env)
            }
        })
    }

    fn step_kont(
        &mut self,
        v: Value,
        frame: Kont,
        kont: &mut Vec<Kont>,
    ) -> Result<Ctrl, EvalError> {
        Ok(match frame {
            Kont::If {
                then_branch,
                else_branch,
                env,
            } => {
                if v.is_truthy() {
                    Ctrl::Eval(then_branch, env)
                } else {
                    Ctrl::Eval(else_branch, env)
                }
            }
            Kont::Seq { exprs, index, env } => {
                let next = exprs[index].clone();
                if index + 1 < exprs.len() {
                    kont.push(Kont::Seq {
                        exprs,
                        index: index + 1,
                        env: env.clone(),
                    });
                }
                Ctrl::Eval(next, env)
            }
            Kont::AppFunc { exprs, env } => {
                if exprs.is_empty() {
                    self.apply_value(v, Vec::new(), kont)?
                } else {
                    let first = exprs[0].clone();
                    kont.push(Kont::AppArgs {
                        func: v,
                        exprs,
                        index: 0,
                        done: Vec::new(),
                        env: env.clone(),
                    });
                    Ctrl::Eval(first, env)
                }
            }
            Kont::AppArgs {
                func,
                exprs,
                index,
                mut done,
                env,
            } => {
                done.push(v);
                if index + 1 < exprs.len() {
                    let next = exprs[index + 1].clone();
                    kont.push(Kont::AppArgs {
                        func,
                        exprs,
                        index: index + 1,
                        done,
                        env: env.clone(),
                    });
                    Ctrl::Eval(next, env)
                } else {
                    self.apply_value(func, done, kont)?
                }
            }
            Kont::SetLocal { var, env } => {
                assign(&env, var.depth, var.slot, v);
                Ctrl::Val(Value::Void)
            }
            Kont::SetGlobal { index } => {
                self.globals[index as usize] = v;
                Ctrl::Val(Value::Void)
            }
            Kont::LetInit {
                inits,
                index,
                mut done,
                body,
                env,
            } => {
                done.push(v);
                if index + 1 < inits.len() {
                    let next = inits[index + 1].clone();
                    kont.push(Kont::LetInit {
                        inits,
                        index: index + 1,
                        done,
                        body,
                        env: env.clone(),
                    });
                    Ctrl::Eval(next, env)
                } else {
                    self.stats.env_frames_allocated += 1;
                    let new_env = Frame::extend(&env, done);
                    Ctrl::Eval((*body).clone(), new_env)
                }
            }
            Kont::LetRecInit {
                inits,
                index,
                body,
                env,
            } => {
                // Name the slot: letrec frame is the innermost (depth 0).
                assign(&env, 0, index as u16, v);
                if index + 1 < inits.len() {
                    let next = inits[index + 1].clone();
                    kont.push(Kont::LetRecInit {
                        inits,
                        index: index + 1,
                        body,
                        env: env.clone(),
                    });
                    Ctrl::Eval(next, env)
                } else {
                    Ctrl::Eval((*body).clone(), env)
                }
            }
            Kont::TermCWrap { label } => Ctrl::Val(wrap_terminating(v, label)),
            Kont::Restore(undo) => {
                self.imp_table.restore(undo);
                Ctrl::Val(v)
            }
            Kont::ContractExtent { saved, started } => {
                if let Some(table) = saved {
                    self.imp_table = table;
                }
                if started {
                    self.extent_depth -= 1;
                }
                self.blames.pop();
                Ctrl::Val(v)
            }
            Kont::FlatCheck {
                original,
                rest,
                pos,
                neg,
            } => {
                if v.is_truthy() {
                    self.attach_all(rest, original, pos, neg, kont)?
                } else {
                    return Err(EvalError::Contract(ContractErrorInfo {
                        blame: pos,
                        message: format!("predicate rejected {}", original.to_write_string()),
                    }));
                }
            }
            Kont::ArrowCall {
                inner,
                doms,
                args,
                receiving,
                mut checked,
                pos,
                neg,
            } => {
                checked.push(v);
                let next = receiving + 1;
                if next < args.len() {
                    let dom = doms[next].clone();
                    let arg = args[next].clone();
                    kont.push(Kont::ArrowCall {
                        inner,
                        doms,
                        args,
                        receiving: next,
                        checked,
                        pos: pos.clone(),
                        neg: neg.clone(),
                    });
                    // Domain obligations blame the caller: swap parties.
                    self.attach_all(VecDeque::from(vec![dom]), arg, neg, pos, kont)?
                } else {
                    self.apply_value(inner, checked, kont)?
                }
            }
            Kont::ArrowRng { rng, pos, neg } => {
                self.attach_all(VecDeque::from(vec![rng]), v, pos, neg, kont)?
            }
        })
    }

    // ----- values and environments -------------------------------------

    fn datum_value(&mut self, d: &Rc<Datum>) -> Value {
        let key = Rc::as_ptr(d);
        if let Some(v) = self.quote_cache.get(&key) {
            return v.clone();
        }
        let v = datum_to_value(d);
        self.quote_cache.insert(key, v.clone());
        v
    }

    fn make_closure(&mut self, def: Rc<LambdaDef>, env: &Env) -> Value {
        self.alloc_counter += 1;
        let mut fp = mix2(0x51_7e, def.id as u64);
        for fv in &def.free {
            fp = mix2(fp, value_hash(&lookup(env, fv.depth, fv.slot)));
        }
        Value::Closure(Rc::new(Closure {
            def,
            env: ClosureEnv::Chain(env.clone()),
            alloc_id: self.alloc_counter,
            fingerprint: fp,
        }))
    }

    // ----- application ---------------------------------------------------

    fn apply_value(
        &mut self,
        f: Value,
        args: Vec<Value>,
        kont: &mut Vec<Kont>,
    ) -> Result<Ctrl, EvalError> {
        match f {
            Value::Prim(p) => self.apply_prim(p, args, kont),
            Value::Closure(clo) => self.apply_closure(clo, args, kont),
            Value::Wrapped(w) => match &w.kind {
                WrapKind::Terminating { label } => {
                    let label = label.clone();
                    let inner = w.inner.clone();
                    self.apply_terminating(inner, label, args, kont)
                }
                WrapKind::Arrow {
                    doms,
                    rng,
                    positive,
                    negative,
                } => {
                    let (doms, rng) = (doms.clone(), rng.clone());
                    let (pos, neg) = (positive.clone(), negative.clone());
                    let inner = w.inner.clone();
                    self.apply_arrow(inner, doms, rng, pos, neg, args, kont)
                }
            },
            other => Err(RtError::new(format!(
                "application of non-procedure {}",
                other.to_write_string()
            ))
            .into()),
        }
    }

    fn apply_prim(
        &mut self,
        p: Prim,
        mut args: Vec<Value>,
        kont: &mut Vec<Kont>,
    ) -> Result<Ctrl, EvalError> {
        match p {
            Prim::Apply => {
                if args.len() < 2 {
                    return Err(RtError::new("apply: expects a procedure and a list").into());
                }
                let f = args.remove(0);
                let tail = args.pop().unwrap();
                let Some(spread) = tail.list_to_vec() else {
                    return Err(RtError::new("apply: last argument must be a list").into());
                };
                args.extend(spread);
                self.apply_value(f, args, kont)
            }
            Prim::Contract => {
                // (contract c v pos [neg])
                if !(args.len() == 3 || args.len() == 4) {
                    return Err(RtError::new("contract: expects contract, value, parties").into());
                }
                let neg = if args.len() == 4 {
                    party_name(&args.pop().unwrap())?
                } else {
                    Rc::from("the context")
                };
                let pos = party_name(&args.pop().unwrap())?;
                let value = args.pop().unwrap();
                let c = args.pop().unwrap();
                self.attach_all(VecDeque::from(vec![c]), value, pos, neg, kont)
            }
            Prim::TerminatingC => {
                if args.is_empty() || args.len() > 2 {
                    return Err(RtError::new("terminating/c: expects a value").into());
                }
                let label: Rc<str> = if args.len() == 2 {
                    party_name(&args.pop().unwrap())?
                } else {
                    Rc::from("terminating/c")
                };
                Ok(Ctrl::Val(wrap_terminating(args.pop().unwrap(), label)))
            }
            _ => match call_prim(p, &args)? {
                PrimEffect::Value(v) => Ok(Ctrl::Val(v)),
                PrimEffect::Output(text, v) => {
                    self.output.push_str(&text);
                    Ok(Ctrl::Val(v))
                }
            },
        }
    }

    fn apply_closure(
        &mut self,
        clo: Rc<Closure>,
        args: Vec<Value>,
        kont: &mut Vec<Kont>,
    ) -> Result<Ctrl, EvalError> {
        self.stats.applications += 1;
        if self.monitoring_active() && !self.whitelisted(&clo.def) {
            if self.statically_discharged(&clo.def, &args) {
                self.stats.static_skips += 1;
            } else {
                self.monitor_call(&clo, &args, kont)?;
            }
        }
        self.bind_and_enter(clo, args)
    }

    fn bind_and_enter(
        &mut self,
        clo: Rc<Closure>,
        mut args: Vec<Value>,
    ) -> Result<Ctrl, EvalError> {
        let def = &clo.def;
        let required = def.params as usize;
        if def.variadic {
            if args.len() < required {
                return Err(arity_error(def, args.len()));
            }
            let rest = Value::list(args.split_off(required));
            args.push(rest);
        } else if args.len() != required {
            return Err(arity_error(def, args.len()));
        }
        let ClosureEnv::Chain(chain) = &clo.env else {
            unreachable!("reference machine applied a flat (IR) closure");
        };
        self.stats.env_frames_allocated += 1;
        let env = Frame::extend(chain, args);
        Ok(Ctrl::Eval(def.body.clone(), env))
    }

    fn apply_terminating(
        &mut self,
        inner: Value,
        label: Rc<str>,
        args: Vec<Value>,
        kont: &mut Vec<Kont>,
    ) -> Result<Ctrl, EvalError> {
        // [App-Term]: outside a monitored extent, seed a *fresh* table;
        // [SC-App-Term]: inside one, keep the current table.
        let started = !self.monitoring_active();
        let saved = if started && !self.imp_table.is_empty() {
            Some(std::mem::take(&mut self.imp_table))
        } else {
            None
        };
        kont.push(Kont::ContractExtent { saved, started });
        self.blames.push(label);
        if started {
            self.extent_depth += 1;
        }
        self.apply_value(inner, args, kont)
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_arrow(
        &mut self,
        inner: Value,
        doms: Vec<Value>,
        rng: Value,
        pos: Rc<str>,
        neg: Rc<str>,
        args: Vec<Value>,
        kont: &mut Vec<Kont>,
    ) -> Result<Ctrl, EvalError> {
        if args.len() != doms.len() {
            return Err(EvalError::Contract(ContractErrorInfo {
                blame: neg,
                message: format!("expected {} arguments, got {}", doms.len(), args.len()),
            }));
        }
        kont.push(Kont::ArrowRng {
            rng,
            pos: pos.clone(),
            neg: neg.clone(),
        });
        if args.is_empty() {
            self.apply_value(inner, Vec::new(), kont)
        } else {
            let dom = doms[0].clone();
            let arg = args[0].clone();
            kont.push(Kont::ArrowCall {
                inner,
                doms,
                args,
                receiving: 0,
                checked: Vec::new(),
                pos: pos.clone(),
                neg: neg.clone(),
            });
            self.attach_all(VecDeque::from(vec![dom]), arg, neg, pos, kont)
        }
    }

    /// Attaches a conjunction of contracts to a value. Completes pure
    /// attachments (wrapping, primitive predicates) inline; defers to a
    /// [`Kont::FlatCheck`] frame when a predicate is a user closure.
    fn attach_all(
        &mut self,
        mut contracts: VecDeque<Value>,
        value: Value,
        pos: Rc<str>,
        neg: Rc<str>,
        kont: &mut Vec<Kont>,
    ) -> Result<Ctrl, EvalError> {
        let mut current = value;
        while let Some(c) = contracts.pop_front() {
            // Bare `terminating/c` is usable as a combinator in and/c etc.
            if matches!(c, Value::Prim(Prim::TerminatingC)) {
                current = wrap_terminating(current, pos.clone());
                continue;
            }
            // A bare procedure is usable as a flat contract, Racket-style.
            let flat_pred: Option<Value> = match &c {
                Value::Contract(data) => match data.as_ref() {
                    ContractData::Flat(pred) => Some(pred.clone()),
                    ContractData::Arrow { doms, rng } => {
                        if current.is_procedure() {
                            current = Value::Wrapped(Rc::new(WrappedData {
                                inner: current,
                                kind: WrapKind::Arrow {
                                    doms: doms.clone(),
                                    rng: rng.clone(),
                                    positive: pos.clone(),
                                    negative: neg.clone(),
                                },
                            }));
                            continue;
                        }
                        return Err(EvalError::Contract(ContractErrorInfo {
                            blame: pos,
                            message: format!(
                                "->/c expected a procedure, got {}",
                                current.to_write_string()
                            ),
                        }));
                    }
                    ContractData::And(cs) => {
                        for sub in cs.iter().rev() {
                            contracts.push_front(sub.clone());
                        }
                        continue;
                    }
                    ContractData::Terminating => {
                        current = wrap_terminating(current, pos.clone());
                        continue;
                    }
                },
                Value::Prim(_) | Value::Closure(_) | Value::Wrapped(_) => Some(c.clone()),
                _ => None,
            };
            let Some(pred) = flat_pred else {
                return Err(
                    RtError::new(format!("not a contract: {}", c.to_write_string())).into(),
                );
            };
            match pred {
                Value::Prim(p) => {
                    let ok = match call_prim(p, std::slice::from_ref(&current))? {
                        PrimEffect::Value(v) => v.is_truthy(),
                        PrimEffect::Output(text, v) => {
                            self.output.push_str(&text);
                            v.is_truthy()
                        }
                    };
                    if !ok {
                        return Err(EvalError::Contract(ContractErrorInfo {
                            blame: pos,
                            message: format!(
                                "predicate {} rejected {}",
                                p.name(),
                                current.to_write_string()
                            ),
                        }));
                    }
                }
                pred => {
                    kont.push(Kont::FlatCheck {
                        original: current.clone(),
                        rest: contracts,
                        pos: pos.clone(),
                        neg,
                    });
                    return self.apply_value(pred, vec![current], kont);
                }
            }
        }
        Ok(Ctrl::Val(current))
    }

    // ----- monitoring ----------------------------------------------------

    fn monitoring_active(&self) -> bool {
        match self.config.mode {
            SemanticsMode::Monitored | SemanticsMode::CallSeqCollect => true,
            SemanticsMode::Standard => self.extent_depth > 0,
        }
    }

    /// True when the enforcement plan statically discharged this λ and the
    /// actual arguments satisfy the proof's domain guard — the hybrid fast
    /// path: no graph, no table, no `CallSeq` push.
    fn statically_discharged(&self, def: &LambdaDef, args: &[Value]) -> bool {
        match self.fast_path.get(&def.id) {
            None => false,
            Some(FastGuard::Always) => true,
            Some(FastGuard::Domains(doms)) => {
                args.len() == doms.len()
                    && args.iter().zip(doms.iter()).all(|(a, d)| in_domain(*d, a))
            }
        }
    }

    fn whitelisted(&self, def: &LambdaDef) -> bool {
        match &def.name {
            Some(n) => self.whitelist.contains(n),
            None => false,
        }
    }

    fn closure_key(&self, clo: &Closure) -> u64 {
        match self.config.monitor.key_strategy {
            KeyStrategy::Allocation => mix2(0xA110C, clo.alloc_id),
            KeyStrategy::Structural => clo.fingerprint,
            KeyStrategy::LambdaOnly => mix2(0x001A_3BDA, clo.def.id as u64),
        }
    }

    fn monitor_call(
        &mut self,
        clo: &Rc<Closure>,
        args: &[Value],
        kont: &mut Vec<Kont>,
    ) -> Result<(), EvalError> {
        self.stats.monitored_calls += 1;
        let key = self.closure_key(clo);

        if self.config.monitor.loop_entries_only && !self.designated.contains(&key) {
            // Loop-entry detection: designate a function only when it
            // recurs with no intervening check of an already-designated
            // entry — its loop is not already guarded (§5).
            match self.last_seen_tick.get(&key) {
                Some(&t) if t == self.guard_tick => {
                    self.designated.insert(key);
                }
                _ => {
                    self.last_seen_tick.insert(key, self.guard_tick);
                    return Ok(());
                }
            }
        }

        if !self.backoff.should_check(&key) {
            return Ok(());
        }
        self.stats.checks += 1;
        self.guard_tick += 1;

        let snapshot: Rc<[Value]> = Rc::from(args.to_vec());
        if self.config.trace {
            self.record_trace(clo, key, &snapshot, kont.len());
        }

        match self.config.mode {
            SemanticsMode::CallSeqCollect => {
                let (undo, violation) =
                    self.imp_table
                        .extend_unchecked_mut(key, snapshot, &self.config.order.clone());
                kont.push(Kont::Restore(undo));
                if let Some(v) = violation {
                    self.violations.push(ScErrorInfo {
                        blame: self.blames.last().cloned(),
                        function: clo.def.describe(),
                        violation: v,
                    });
                }
                Ok(())
            }
            _ => match self.config.monitor.strategy {
                TableStrategy::Imperative => {
                    let order = self.config.order.clone();
                    match self.imp_table.update_mut(key, snapshot, &order) {
                        Ok(undo) => {
                            kont.push(Kont::Restore(undo));
                            Ok(())
                        }
                        Err(violation) => Err(EvalError::Sc(ScErrorInfo {
                            blame: self.blames.last().cloned(),
                            function: clo.def.describe(),
                            violation,
                        })),
                    }
                }
                TableStrategy::ContinuationMark => {
                    let order = self.config.order.clone();
                    let current = match self.marks.last() {
                        Some(m) => m.table.clone(),
                        None => ScTable::with_interner(self.interner.clone()),
                    };
                    match current.update(key, snapshot, &order) {
                        Ok(table) => {
                            let depth = kont.len();
                            match self.marks.last_mut() {
                                Some(top) if top.depth == depth => {
                                    // Tail call: replace the mark in place.
                                    top.table = table;
                                }
                                _ => self.marks.push(MarkEntry { depth, table }),
                            }
                            if self.marks.len() > self.stats.max_marks {
                                self.stats.max_marks = self.marks.len();
                            }
                            Ok(())
                        }
                        Err(violation) => Err(EvalError::Sc(ScErrorInfo {
                            blame: self.blames.last().cloned(),
                            function: clo.def.describe(),
                            violation,
                        })),
                    }
                }
            },
        }
    }

    fn record_trace(&mut self, clo: &Rc<Closure>, key: u64, args: &Rc<[Value]>, depth: usize) {
        let prev_entry = match self.config.monitor.strategy {
            TableStrategy::ContinuationMark => {
                self.marks.last().and_then(|m| m.table.get(&key).cloned())
            }
            TableStrategy::Imperative => self.imp_table.get(&key).cloned(),
        };
        let graph = prev_entry.map(|entry| {
            let g = ScGraph::from_args(&self.config.order, &entry.last_args, args);
            let names: Vec<String> = (0..args.len().max(entry.last_args.len()))
                .map(|i| format!("x{i}"))
                .collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            g.display_with(&name_refs, &name_refs)
        });
        self.trace_events.push(TraceEvent {
            function: clo.def.describe(),
            args: args.iter().map(|a| a.to_write_string()).collect(),
            graph,
            kont_depth: depth,
        });
    }
}

//! Environments `ρ` as linked frames of mutable slots.

use crate::value::Value;
use std::cell::RefCell;
use std::rc::Rc;

/// One environment frame: the slots bound by a lambda, `let`, or `letrec`.
#[derive(Debug)]
pub struct Frame {
    slots: RefCell<Vec<Value>>,
    parent: Env,
}

/// An environment: a chain of frames, innermost first. `None` is the empty
/// environment (top level; globals live in the machine, not here).
pub type Env = Option<Rc<Frame>>;

impl Frame {
    /// Pushes a new frame with the given slot values.
    pub fn extend(parent: &Env, slots: Vec<Value>) -> Env {
        Some(Rc::new(Frame {
            slots: RefCell::new(slots),
            parent: parent.clone(),
        }))
    }

    /// Pushes a frame of `n` undefined slots (for `letrec`).
    pub fn extend_undefined(parent: &Env, n: usize) -> Env {
        Frame::extend(parent, vec![Value::Undefined; n])
    }
}

/// Reads the slot at `depth` frames out.
///
/// # Panics
///
/// Panics if the address is out of range — the resolver guarantees validity,
/// so this indicates a compiler bug, not a user error.
pub fn lookup(env: &Env, depth: u16, slot: u16) -> Value {
    let mut frame = env.as_ref().expect("variable lookup in empty environment");
    for _ in 0..depth {
        frame = frame.parent.as_ref().expect("variable depth out of range");
    }
    frame.slots.borrow()[slot as usize].clone()
}

/// Writes the slot at `depth` frames out (for `set!` and `letrec` init).
///
/// # Panics
///
/// Panics if the address is out of range (compiler bug).
pub fn assign(env: &Env, depth: u16, slot: u16, value: Value) {
    let mut frame = env.as_ref().expect("assignment in empty environment");
    for _ in 0..depth {
        frame = frame.parent.as_ref().expect("variable depth out of range");
    }
    frame.slots.borrow_mut()[slot as usize] = value;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_across_frames() {
        let e0 = Frame::extend(&None, vec![Value::int(10), Value::int(20)]);
        let e1 = Frame::extend(&e0, vec![Value::int(30)]);
        assert_eq!(lookup(&e1, 0, 0), Value::int(30));
        assert_eq!(lookup(&e1, 1, 0), Value::int(10));
        assert_eq!(lookup(&e1, 1, 1), Value::int(20));
        assert_eq!(lookup(&e0, 0, 1), Value::int(20));
    }

    #[test]
    fn assignment_is_shared() {
        let e0 = Frame::extend(&None, vec![Value::int(1)]);
        let e1 = Frame::extend(&e0, vec![]);
        assign(&e1, 1, 0, Value::int(99));
        assert_eq!(
            lookup(&e0, 0, 0),
            Value::int(99),
            "frames are shared, not copied"
        );
    }

    #[test]
    fn letrec_frames_start_undefined() {
        let e = Frame::extend_undefined(&None, 2);
        assert!(matches!(lookup(&e, 0, 1), Value::Undefined));
    }
}

//! The default well-founded partial order on λSCT values (Figure 5), plus
//! customizable alternatives (§3.3 allows replacing the default).

use crate::value::{equal, value_hash, value_size, Value};
use sct_core::order::{SizeChange, WellFoundedOrder};
use std::rc::Rc;

/// Figure 5's order:
///
/// * `n₁ ≺ n₂` iff `|n₁| < |n₂|` on integers;
/// * a field of a data structure is smaller than any structure containing
///   it (the tail of a list is less than the list);
/// * equal values relate by `⪯` (emitting a `→=` arc);
/// * closures are mutually incomparable (§2.2), relating only when they are
///   the *same* closure.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultOrder;

/// `|new| < |old|` on two integer values (`None` when either is not an
/// integer), with a direct `i64` path for two fixnums.
fn int_abs_rel(old: &Value, new: &Value) -> Option<SizeChange> {
    match (old, new) {
        (Value::Fix(a), Value::Fix(b)) => Some(if a == b {
            SizeChange::Equal
        } else if b.unsigned_abs() < a.unsigned_abs() {
            SizeChange::Descend
        } else {
            SizeChange::Unknown
        }),
        (Value::Fix(_) | Value::Big(_), Value::Fix(_) | Value::Big(_)) => {
            let a = old.to_int().expect("matched integer");
            let b = new.to_int().expect("matched integer");
            Some(if a == b {
                SizeChange::Equal
            } else if b.cmp_abs(&a) == std::cmp::Ordering::Less {
                SizeChange::Descend
            } else {
                SizeChange::Unknown
            })
        }
        _ => None,
    }
}

impl WellFoundedOrder<Value> for DefaultOrder {
    fn relate(&self, old: &Value, new: &Value) -> SizeChange {
        if let Some(sc) = int_abs_rel(old, new) {
            return sc;
        }
        match (old, new) {
            // Structural containment: new ≺ old when new is a proper
            // subterm of the pair old; one walk answers both the equality
            // and the subterm question.
            (Value::Pair(_), _) => match subterm_rel(new, old) {
                SubtermRel::Equal => SizeChange::Equal,
                SubtermRel::Proper => SizeChange::Descend,
                SubtermRel::Unrelated => SizeChange::Unknown,
            },
            _ => {
                if equal(old, new) {
                    SizeChange::Equal
                } else {
                    SizeChange::Unknown
                }
            }
        }
    }
}

/// How `needle` sits inside `haystack` under Figure 5's structural
/// decomposition: equal to it, a proper subterm (`v ≺ (a, d)` if `v ⪯ a`
/// or `v ⪯ d`), or neither.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubtermRel {
    Equal,
    Proper,
    Unrelated,
}

/// One walk answering both `needle = haystack` and `needle ≺ haystack`.
///
/// Equal values have equal node counts, so the cached sizes split the
/// question: at `size(needle) == size(haystack)` only equality is possible
/// (pre-pruned by the cached structural hashes before the full comparison);
/// at `size(needle) < size(haystack)` only proper containment is. The
/// common case — a tail of the same list — stays linear in the distance
/// between the terms, and the old double traversal (`equal` at every spine
/// node *after* a separate top-level `equal`) is gone.
fn subterm_rel(needle: &Value, haystack: &Value) -> SubtermRel {
    let needle_size = value_size(needle);
    let haystack_size = value_size(haystack);
    if needle_size > haystack_size {
        return SubtermRel::Unrelated;
    }
    if needle_size == haystack_size {
        // Same node count: containment is impossible, equality possible.
        return if value_hash(needle) == value_hash(haystack) && equal(needle, haystack) {
            SubtermRel::Equal
        } else {
            SubtermRel::Unrelated
        };
    }
    // Strictly smaller: a proper subterm of some component (which itself
    // may be an `Equal` hit — still proper containment overall).
    match haystack {
        Value::Pair(p) => {
            if subterm_rel(needle, &p.car) != SubtermRel::Unrelated
                || subterm_rel(needle, &p.cdr) != SubtermRel::Unrelated
            {
                SubtermRel::Proper
            } else {
                SubtermRel::Unrelated
            }
        }
        _ => SubtermRel::Unrelated,
    }
}

/// Figure 5's order extended *pointwise* to pairs and hashes: in addition
/// to the subterm rule, `(a′, d′) ≺ (a, d)` when `a′ ⪯ a` and `d′ ⪯ d`
/// with at least one strict, and hash `h′ ≺ h` when both have the same
/// keys, every value relates by `⪯`, and at least one descends.
///
/// This is still well-founded: any infinite descending chain must either
/// descend infinitely often by the size-reducing rules (impossible: node
/// counts are well-ordered) or eventually keep a fixed shape, where the
/// pointwise rule is a finite product of well-founded orders.
///
/// The extension is what lets an *interpreter's* environments descend when
/// the interpreted program's variables descend — e.g. the environment
/// `((n . 2) . ρ)` is pointwise-below `((n . 3) . ρ)`. The paper's §2.4 /
/// Table-1 `scheme` benchmarks (a monitored interpreter running factorial,
/// sum, and merge-sort) rely on the interpreter's chains carrying exactly
/// this kind of descent; we document the substitution in DESIGN.md and use
/// this order for those rows.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtendedOrder;

impl ExtendedOrder {
    /// `new ⪯ old` under the extended order, with the strictness recorded.
    fn compare(&self, old: &Value, new: &Value) -> SizeChange {
        if let Some(sc) = int_abs_rel(old, new) {
            return sc;
        }
        match (old, new) {
            (Value::Pair(p), _) => {
                // Subterm rule first (cheap for list tails); the same walk
                // settles equality.
                match subterm_rel(new, old) {
                    SubtermRel::Equal => return SizeChange::Equal,
                    SubtermRel::Proper => return SizeChange::Descend,
                    SubtermRel::Unrelated => {}
                }
                if let Value::Pair(q) = new {
                    let car = self.compare(&p.car, &q.car);
                    let cdr = self.compare(&p.cdr, &q.cdr);
                    let ok = |c: SizeChange| matches!(c, SizeChange::Descend | SizeChange::Equal);
                    if ok(car) && ok(cdr) {
                        // Equal overall was excluded by the subterm walk,
                        // so at least one coordinate is strict.
                        return SizeChange::Descend;
                    }
                }
                SizeChange::Unknown
            }
            (Value::Hash(h), Value::Hash(g)) => {
                if h.map.len() != g.map.len() {
                    return SizeChange::Unknown;
                }
                let mut strict = false;
                for (k, old_v) in h.map.iter() {
                    let Some(new_v) = g.map.get(k) else {
                        return SizeChange::Unknown;
                    };
                    match self.compare(old_v, new_v) {
                        SizeChange::Descend => strict = true,
                        SizeChange::Equal => {}
                        SizeChange::Unknown => return SizeChange::Unknown,
                    }
                }
                if strict {
                    SizeChange::Descend
                } else {
                    SizeChange::Equal
                }
            }
            _ => {
                if equal(old, new) {
                    SizeChange::Equal
                } else {
                    SizeChange::Unknown
                }
            }
        }
    }
}

impl WellFoundedOrder<Value> for ExtendedOrder {
    fn relate(&self, old: &Value, new: &Value) -> SizeChange {
        self.compare(old, new)
    }
}

/// The *reverse* order on integers: `n₁ ≺ n₂` iff `n₁ > n₂`. Not
/// well-founded on all of ℤ — the user asserts the program descends toward
/// a bound, as `lh-range` / `acl2-fig-2` in Table 1 require ("custom
/// partial order" annotations). Non-integers fall back to the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReverseIntOrder;

impl WellFoundedOrder<Value> for ReverseIntOrder {
    fn relate(&self, old: &Value, new: &Value) -> SizeChange {
        match (old, new) {
            (Value::Fix(a), Value::Fix(b)) => {
                if a == b {
                    SizeChange::Equal
                } else if b > a {
                    SizeChange::Descend
                } else {
                    SizeChange::Unknown
                }
            }
            (Value::Fix(_) | Value::Big(_), Value::Fix(_) | Value::Big(_)) => {
                let a = old.to_int().expect("matched integer");
                let b = new.to_int().expect("matched integer");
                if a == b {
                    SizeChange::Equal
                } else if b > a {
                    SizeChange::Descend
                } else {
                    SizeChange::Unknown
                }
            }
            _ => DefaultOrder.relate(old, new),
        }
    }
}

/// The comparison function type wrapped by [`CustomOrder`].
pub type OrderFn = Rc<dyn Fn(&Value, &Value) -> SizeChange>;

/// A custom order wrapping a closure over values, for per-program orders.
pub struct CustomOrder {
    f: OrderFn,
}

impl CustomOrder {
    /// Wraps `f` as the monitor's order.
    pub fn new(f: impl Fn(&Value, &Value) -> SizeChange + 'static) -> CustomOrder {
        CustomOrder { f: Rc::new(f) }
    }
}

impl WellFoundedOrder<Value> for CustomOrder {
    fn relate(&self, old: &Value, new: &Value) -> SizeChange {
        (self.f)(old, new)
    }
}

/// A boxed order handle carried in the machine configuration.
#[derive(Clone)]
pub struct OrderHandle(Rc<dyn WellFoundedOrder<Value>>);

impl OrderHandle {
    /// Wraps any order.
    pub fn new(order: impl WellFoundedOrder<Value> + 'static) -> OrderHandle {
        OrderHandle(Rc::new(order))
    }

    /// The Figure 5 default.
    pub fn default_order() -> OrderHandle {
        OrderHandle::new(DefaultOrder)
    }
}

impl std::fmt::Debug for OrderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OrderHandle(..)")
    }
}

impl WellFoundedOrder<Value> for OrderHandle {
    fn relate(&self, old: &Value, new: &Value) -> SizeChange {
        self.0.relate(old, new)
    }
}

impl Default for OrderHandle {
    fn default() -> Self {
        OrderHandle::default_order()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(old: &Value, new: &Value) -> SizeChange {
        DefaultOrder.relate(old, new)
    }

    #[test]
    fn extended_order_pointwise_pairs() {
        let o = ExtendedOrder;
        // ((n . 2) . rho) ≺ ((n . 3) . rho): the interpreter-env pattern.
        let rho = Value::list(vec![Value::sym("genv")]);
        let env3 = Value::cons(Value::cons(Value::sym("n"), Value::int(3)), rho.clone());
        let env2 = Value::cons(Value::cons(Value::sym("n"), Value::int(2)), rho.clone());
        assert_eq!(o.relate(&env3, &env2), SizeChange::Descend);
        assert_eq!(o.relate(&env3, &env3.clone()), SizeChange::Equal);
        assert_eq!(
            o.relate(&env2, &env3),
            SizeChange::Unknown,
            "ascent is not descent"
        );
        // Mixed: one coordinate descends, another ascends → unrelated.
        let bad = Value::cons(
            Value::cons(Value::sym("n"), Value::int(2)),
            Value::list(vec![Value::sym("genv"), Value::sym("extra")]),
        );
        assert_eq!(o.relate(&env3, &bad), SizeChange::Unknown);
        // Subterm still works.
        let l = Value::list(vec![Value::int(1), Value::int(2)]);
        let Value::Pair(p) = &l else { unreachable!() };
        assert_eq!(o.relate(&l, &p.cdr), SizeChange::Descend);
    }

    #[test]
    fn extended_order_pointwise_hashes() {
        use crate::value::HashData;
        use sct_persist::PMap;
        use std::rc::Rc;
        let mk = |n: i64| {
            let m = PMap::new()
                .insert(Value::sym("f"), Value::sym("const"))
                .insert(Value::sym("n"), Value::int(n));
            Value::Hash(Rc::new(HashData::new(m)))
        };
        let o = ExtendedOrder;
        assert_eq!(o.relate(&mk(3), &mk(2)), SizeChange::Descend);
        assert_eq!(o.relate(&mk(3), &mk(3)), SizeChange::Equal);
        assert_eq!(o.relate(&mk(2), &mk(3)), SizeChange::Unknown);
        // Different key sets are unrelated.
        let other = Value::Hash(Rc::new(HashData::new(
            PMap::new().insert(Value::sym("k"), Value::int(0)),
        )));
        assert_eq!(o.relate(&mk(3), &other), SizeChange::Unknown);
    }

    #[test]
    fn integer_abs_order() {
        assert_eq!(rel(&Value::int(5), &Value::int(4)), SizeChange::Descend);
        assert_eq!(rel(&Value::int(5), &Value::int(5)), SizeChange::Equal);
        assert_eq!(rel(&Value::int(5), &Value::int(-4)), SizeChange::Descend);
        assert_eq!(rel(&Value::int(-5), &Value::int(5)), SizeChange::Unknown);
        assert_eq!(rel(&Value::int(4), &Value::int(5)), SizeChange::Unknown);
    }

    #[test]
    fn list_tail_descends() {
        let l = Value::list(vec![Value::int(1), Value::int(2), Value::int(3)]);
        let Value::Pair(p) = &l else { unreachable!() };
        let tail = p.cdr.clone();
        assert_eq!(rel(&l, &tail), SizeChange::Descend);
        assert_eq!(
            rel(&l, &p.car),
            SizeChange::Descend,
            "car is also a subterm"
        );
        assert_eq!(
            rel(&tail, &l),
            SizeChange::Unknown,
            "growing is not descent"
        );
        assert_eq!(rel(&l, &l.clone()), SizeChange::Equal);
    }

    #[test]
    fn equal_but_not_subterm_lists() {
        // A freshly consed copy of the tail still counts: Figure 5's order
        // is on values, not allocations.
        let l = Value::list(vec![Value::int(1), Value::int(2)]);
        let fresh_tail = Value::list(vec![Value::int(2)]);
        assert_eq!(rel(&l, &fresh_tail), SizeChange::Descend);
    }

    #[test]
    fn unrelated_structures() {
        let l = Value::list(vec![Value::int(1)]);
        let m = Value::list(vec![Value::int(9), Value::int(9)]);
        assert_eq!(rel(&l, &m), SizeChange::Unknown);
        assert_eq!(rel(&Value::sym("a"), &Value::sym("a")), SizeChange::Equal);
        assert_eq!(rel(&Value::sym("a"), &Value::sym("b")), SizeChange::Unknown);
        assert_eq!(
            rel(&Value::str("ab"), &Value::str("a")),
            SizeChange::Unknown,
            "strings are atomic in the Figure 5 order"
        );
    }

    #[test]
    fn reverse_int_order() {
        let o = ReverseIntOrder;
        assert_eq!(
            o.relate(&Value::int(3), &Value::int(4)),
            SizeChange::Descend
        );
        assert_eq!(o.relate(&Value::int(4), &Value::int(4)), SizeChange::Equal);
        assert_eq!(
            o.relate(&Value::int(4), &Value::int(3)),
            SizeChange::Unknown
        );
    }

    #[test]
    fn custom_order_applies() {
        // Order strings by length.
        let o = CustomOrder::new(|old, new| match (old, new) {
            (Value::Str(a), Value::Str(b)) => {
                if a == b {
                    SizeChange::Equal
                } else if b.len() < a.len() {
                    SizeChange::Descend
                } else {
                    SizeChange::Unknown
                }
            }
            _ => SizeChange::Unknown,
        });
        assert_eq!(
            o.relate(&Value::str("ab"), &Value::str("a")),
            SizeChange::Descend
        );
    }
}

//! The λSCT interpreter: dynamic size-change termination monitoring as an
//! operational semantics, per the PLDI'19 paper.
//!
//! A single [`Machine`] — a dispatch loop over the plan-directed flat IR
//! of `sct-ir` — runs the paper's three semantics — the standard ⇓ (with
//! `terminating/c` extents, λCSCT), the fully monitored ⬇ (λSCT,
//! Figure 3), and the call-sequence ↓↓ (Figure 6) — under either of §5's
//! table-maintenance strategies (imperative or continuation-mark), with
//! the §5 optimizations (exponential backoff, loop-entry detection,
//! closure key strategies, known-terminating whitelist) and a replaceable
//! well-founded order (Figure 5). The tree-walking CEK machine it
//! replaced is retained verbatim as [`reference::Machine`], the
//! differential-oracle baseline the root crate tests the VM against.
//!
//! # Examples
//!
//! A diverging program is stopped by the monitor with a size-change error:
//!
//! ```
//! use sct_core::monitor::TableStrategy;
//! use sct_interp::{eval_str_monitored, EvalError};
//!
//! let result = eval_str_monitored("(define (loop x) (loop x)) (loop 1)",
//!     TableStrategy::Imperative);
//! assert!(matches!(result, Err(EvalError::Sc(_))));
//! ```
//!
//! A terminating one runs to its value:
//!
//! ```
//! use sct_core::monitor::TableStrategy;
//! use sct_interp::{eval_str_monitored, Value};
//!
//! let v = eval_str_monitored(
//!     "(define (ack m n)
//!        (cond [(= 0 m) (+ 1 n)]
//!              [(= 0 n) (ack (- m 1) 1)]
//!              [else (ack (- m 1) (ack m (- n 1)))]))
//!      (ack 2 3)",
//!     TableStrategy::ContinuationMark,
//! ).unwrap();
//! assert_eq!(v, Value::int(9));
//! ```

pub mod env;
pub mod error;
pub mod machine;
pub mod order;
pub mod prims;
pub mod reference;
pub mod value;

pub use error::{ContractErrorInfo, EvalError, RtError, ScErrorInfo};
pub use machine::{
    datum_to_value, wrap_terminating, Machine, MachineConfig, SemanticsMode, Stats, TraceEvent,
};
pub use order::{CustomOrder, DefaultOrder, ExtendedOrder, OrderHandle, ReverseIntOrder};
pub use value::{eq, equal, eqv, value_hash, value_size, Closure, ClosureEnv, Slot, Value};

use sct_core::monitor::TableStrategy;
use sct_lang::compile_program;

/// Compiles and runs a program under the standard semantics ⇓.
///
/// # Errors
///
/// Returns the compile error message or the evaluation error, stringified
/// on the compile side for convenience in tests and examples.
pub fn eval_str(source: &str) -> Result<Value, EvalError> {
    let prog = compile_program(source)
        .map_err(|e| EvalError::Rt(RtError::new(format!("compile error: {e}"))))?;
    Machine::new(&prog, MachineConfig::standard()).run()
}

/// Compiles and runs a program under the fully monitored semantics ⬇.
///
/// # Errors
///
/// As [`eval_str`], plus [`EvalError::Sc`] on size-change violations.
pub fn eval_str_monitored(source: &str, strategy: TableStrategy) -> Result<Value, EvalError> {
    let prog = compile_program(source)
        .map_err(|e| EvalError::Rt(RtError::new(format!("compile error: {e}"))))?;
    Machine::new(&prog, MachineConfig::monitored(strategy)).run()
}

//! The flat-IR dispatch machine for λSCT.
//!
//! [`Machine`] executes the instruction arena produced by `sct-ir` (see
//! that crate's docs for the compilation scheme): one contiguous code
//! vector, flat per-activation locals frames, flat-closure capture lists,
//! and call sites whose enforcement decisions were baked in at compile
//! time from the [`EnforcementPlan`]. The retained tree-walking CEK
//! machine lives in [`crate::reference`] and serves as the differential
//! oracle; this machine preserves its continuation, blame, and
//! size-change-table semantics bit-for-bit:
//!
//! * the continuation is still an explicit heap vector of continuation
//!   frames — return frames for non-tail calls, `Restore` frames for the
//!   imperative table strategy, contract extents, and contract-checking
//!   frames — so deep recursion cannot overflow the Rust stack and a tail
//!   call leaves the continuation untouched;
//! * the continuation-mark table strategy keys marks on continuation
//!   depth exactly as before (tail calls replace the top mark in place);
//! * monitor-visible counters ([`Stats::applications`],
//!   [`Stats::monitored_calls`], [`Stats::checks`],
//!   [`Stats::static_skips`]) are identical to the reference machine's on
//!   every program — the oracle suite asserts it. Representation-bound
//!   counters ([`Stats::steps`], the high-water marks,
//!   [`Stats::env_frames_allocated`]) legitimately differ.
//!
//! What changed is the per-step cost: no `Rc<Expr>` clones, no
//! continuation frame per evaluated argument, no environment-chain walk
//! per variable, and — at specialized call sites — no per-call decision
//! about whether the callee is discharged, guarded, or monitored.

use crate::error::{ContractErrorInfo, EvalError, RtError, ScErrorInfo};
use crate::order::OrderHandle;
use crate::prims::{call_prim, PrimEffect};
use crate::value::{mix2, Closure, ClosureEnv, ContractData, Slot, Value, WrapKind, WrappedData};
use sct_bignum::Int;
use sct_core::graph::ScGraph;
use sct_core::intern::{FxBuildHasher, Interner};
use sct_core::monitor::{Backoff, KeyStrategy, MonitorConfig, TableStrategy};
use sct_core::plan::{EnforcementPlan, PlanDomain};
use sct_core::table::{MutScTable, ScTable, TableUndo};
use sct_ir::pic::{Pic, PicAction, PicEntry};
use sct_ir::{CapSrc, CompiledProgram, Instr, SiteAction, TopCode};
use sct_lang::ast::Program;
use sct_lang::{LambdaDef, Prim};
use sct_sexpr::Datum;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

/// Which of the paper's semantics the machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SemanticsMode {
    /// The standard semantics ⇓ (monitoring only inside `terminating/c`
    /// extents).
    #[default]
    Standard,
    /// The terminating semantics ⬇ of Figure 3: every application checked.
    Monitored,
    /// The call-sequence semantics ↓↓ of Figure 6: tables extended, never
    /// enforced; would-be violations recorded.
    CallSeqCollect,
}

/// Step-count mask for wall-clock deadline checks: the clock is read when
/// `steps & MASK == 0`, i.e. once per 4096 dispatch steps.
pub const DEADLINE_CHECK_MASK: u64 = 0xFFF;

/// Complete machine configuration.
#[derive(Debug, Clone, Default)]
pub struct MachineConfig {
    /// Which semantics to run.
    pub mode: SemanticsMode,
    /// Monitor strategy and optimizations (§5).
    pub monitor: MonitorConfig,
    /// The well-founded order (Figure 5 by default, replaceable per §3.3).
    pub order: OrderHandle,
    /// Step budget; `None` is unbounded. Use for *unmonitored* runs of
    /// possibly-diverging programs.
    pub fuel: Option<u64>,
    /// Wall-clock deadline; `None` is unbounded. Checked every
    /// [`DEADLINE_CHECK_MASK`]+1 steps (one `Instant::now` per ~4k
    /// dispatches — noise next to an instruction), so a run ends within
    /// microseconds of the deadline with [`EvalError::Deadline`]. Servers
    /// use this to bound request latency even for `run` requests with no
    /// `fuel`, which fuel alone cannot do portably (steps/second varies
    /// with the program).
    pub deadline: Option<std::time::Instant>,
    /// When true, record a [`TraceEvent`] per checked call (Figure 1).
    pub trace: bool,
    /// The hybrid enforcement plan from the static pre-pass, when one was
    /// computed (`sct hybrid`, `run_hybrid`). [`Machine::new`] compiles the
    /// program against this plan, so statically discharged λs skip the
    /// monitor at specialized call sites with *zero* per-call decision
    /// work; first-class applications of discharged λs still take the
    /// per-λ fast path. `None` is plain monitoring.
    pub plan: Option<Rc<EnforcementPlan>>,
    /// Disables the polymorphic inline caches on `Generic` call sites,
    /// falling back to the per-λ fast-path probe on every call. The
    /// differential oracle runs every case both ways; results must be
    /// identical.
    pub disable_pics: bool,
    /// When true, count dynamically adjacent instruction pairs (by
    /// mnemonic) so the superinstruction set can be justified against a
    /// real dispatch profile; see [`Machine::pair_profile`].
    pub profile_pairs: bool,
}

impl MachineConfig {
    /// Standard semantics, no fuel.
    pub fn standard() -> MachineConfig {
        MachineConfig::default()
    }

    /// Fully monitored semantics (λSCT proper) with the given strategy.
    pub fn monitored(strategy: TableStrategy) -> MachineConfig {
        MachineConfig {
            mode: SemanticsMode::Monitored,
            monitor: MonitorConfig {
                strategy,
                ..MonitorConfig::default()
            },
            ..MachineConfig::default()
        }
    }
}

/// Counters exposed for tests and the benchmark harness.
///
/// `applications`, `monitored_calls`, `checks`, and `static_skips` are
/// *semantic* counters: the IR machine and the reference tree-walker
/// produce identical values for them on every program (the differential
/// oracle asserts it). `steps`, the high-water marks, and
/// `env_frames_allocated` are representation-bound: steps count IR
/// instructions here but CEK transitions in the reference machine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Machine steps executed (IR instructions dispatched).
    pub steps: u64,
    /// Closure applications performed.
    pub applications: u64,
    /// Applications that reached the monitor (monitoring active, not
    /// whitelisted).
    pub monitored_calls: u64,
    /// Calls whose size-change table was actually extended and checked
    /// (after backoff and loop-entry filtering).
    pub checks: u64,
    /// Monitored-mode applications that took the static fast path: the
    /// enforcement plan proved the λ terminating, so the monitor was
    /// skipped (after the guard check, when the proof was domain-guarded).
    pub static_skips: u64,
    /// Environment frames allocated: one per activation here, one per
    /// `lambda`/`let`/`letrec` frame in the reference machine — the
    /// allocation win of flat frames, reported by `report_fig10`.
    pub env_frames_allocated: u64,
    /// Applications dispatched through a `Generic` call site while
    /// monitoring was active (the calls a PIC can serve). With PICs on,
    /// `pic_hits + pic_misses == generic_calls` — the oracle asserts it.
    pub generic_calls: u64,
    /// Generic-site calls answered by a valid PIC entry.
    pub pic_hits: u64,
    /// Generic-site calls that re-resolved the fast path from the plan
    /// (cold, evicted, or freshly invalidated entries).
    pub pic_misses: u64,
    /// Cached PIC entries found stale (plan stamp mismatch) and
    /// re-resolved; each one also counts as a miss.
    pub pic_invalidations: u64,
    /// High-water mark of the continuation stack.
    pub max_kont_depth: usize,
    /// High-water mark of the continuation-mark stack.
    pub max_marks: usize,
}

impl Stats {
    /// Mirror this run's counters into the `vm.*` metric family of an
    /// observability registry: one `vm.runs` bump plus the semantic and
    /// PIC counters, so a `metrics` snapshot shows cumulative VM work
    /// and the PIC accounting identity
    /// (`vm.pic_hits + vm.pic_misses == vm.generic_calls`) stays
    /// checkable from the snapshot alone. High-water marks are exported
    /// as gauges holding the maximum seen across published runs.
    pub fn publish(&self, reg: &sct_obs::Registry) {
        reg.counter("vm.runs").inc();
        for (name, v) in [
            ("vm.steps", self.steps),
            ("vm.applications", self.applications),
            ("vm.monitored_calls", self.monitored_calls),
            ("vm.checks", self.checks),
            ("vm.static_skips", self.static_skips),
            ("vm.env_frames", self.env_frames_allocated),
            ("vm.generic_calls", self.generic_calls),
            ("vm.pic_hits", self.pic_hits),
            ("vm.pic_misses", self.pic_misses),
            ("vm.pic_invalidations", self.pic_invalidations),
        ] {
            reg.counter(name).add(v);
        }
        for (name, v) in [
            ("vm.max_kont_depth", self.max_kont_depth as i64),
            ("vm.max_marks", self.max_marks as i64),
        ] {
            let g = reg.gauge(name);
            g.set(g.get().max(v));
        }
    }
}

/// One record of a checked call, for Figure 1-style traces.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Name of the applied function.
    pub function: String,
    /// Rendered arguments.
    pub args: Vec<String>,
    /// Rendered size-change graph from the previous call, when one exists.
    pub graph: Option<String>,
    /// Continuation depth at the call (tail calls keep it flat).
    pub kont_depth: usize,
}

pub(crate) struct MarkEntry {
    pub(crate) depth: usize,
    pub(crate) table: ScTable<u64, Value>,
}

/// Per-λ fast-path rule compiled from the enforcement plan.
pub(crate) enum FastGuard {
    /// Skip the monitor unconditionally (proof assumed nothing).
    Always,
    /// Skip only when each argument is in the proof's assumed domain;
    /// out-of-domain calls fall back to the monitor.
    Domains(Rc<[PlanDomain]>),
}

/// Constant-time membership test backing the fast-path guard. `List` is a
/// shallow pair-or-nil check: pairs are immutable finite trees in λSCT, so
/// structural descent is well-founded on every value and the proof's
/// descent facts hold regardless of what the tail turns out to be.
pub(crate) fn in_domain(d: PlanDomain, v: &Value) -> bool {
    // A canonical Value::Big is always outside i64 range, hence nonzero,
    // so non-negative bigs are both Nat and Pos.
    match d {
        PlanDomain::Any => true,
        PlanDomain::Int => matches!(v, Value::Fix(_) | Value::Big(_)),
        PlanDomain::Nat => match v {
            Value::Fix(n) => *n >= 0,
            Value::Big(b) => !b.is_negative(),
            _ => false,
        },
        PlanDomain::Pos => match v {
            Value::Fix(n) => *n > 0,
            Value::Big(b) => !b.is_negative(),
            _ => false,
        },
        PlanDomain::List => matches!(v, Value::Nil | Value::Pair(_)),
    }
}

/// The whole domain guard of a static proof: the call matches the proved
/// arity and every argument is in its assumed domain. The one definition
/// behind the `Guarded` site action, the per-λ fast-path probe, and the
/// first-class application path.
pub(crate) fn guard_passes(doms: &[PlanDomain], args: &[Value]) -> bool {
    args.len() == doms.len() && args.iter().zip(doms.iter()).all(|(a, d)| in_domain(*d, a))
}

/// Applies a [`FastGuard`] rule to actual arguments.
pub(crate) fn fast_guard_passes(rule: Option<&FastGuard>, args: &[Value]) -> bool {
    match rule {
        None => false,
        Some(FastGuard::Always) => true,
        Some(FastGuard::Domains(doms)) => guard_passes(doms, args),
    }
}

/// Per-λ fast-path rules derived from an enforcement plan.
fn build_fast_path(plan: Option<&EnforcementPlan>, lambdas: usize) -> Vec<Option<FastGuard>> {
    let mut fast_path: Vec<Option<FastGuard>> = (0..lambdas).map(|_| None).collect();
    if let Some(plan) = plan {
        for (id, guard) in plan.static_lambdas() {
            let rule = match guard {
                None => FastGuard::Always,
                Some(doms) => FastGuard::Domains(Rc::from(doms)),
            };
            if let Some(entry) = fast_path.get_mut(id as usize) {
                *entry = Some(rule);
            }
        }
    }
    fast_path
}

/// The machine's continuation frames. `Return` replaces the tree-walker's
/// pending-expression frames (the caller's resumption is a program point,
/// not a subtree); everything else is carried over unchanged.
enum Kont {
    /// Resume the caller at `pc` with the callee's value on the stack.
    Return {
        pc: u32,
        locals_len: u32,
        locals_base: u32,
        caps: Rc<[Slot]>,
    },
    /// Undo an imperative-table extension when the checked call returns.
    Restore(TableUndo<u64, Value>),
    /// Leave a `terminating/c` extent ([App-Term]/[SC-App-Term]).
    ContractExtent {
        saved: Option<MutScTable<u64, Value>>,
        started: bool,
    },
    /// Pending flat-contract predicate result.
    FlatCheck {
        original: Value,
        rest: VecDeque<Value>,
        pos: Rc<str>,
        neg: Rc<str>,
    },
    /// Pending `->/c` domain checks.
    ArrowCall {
        inner: Value,
        doms: Vec<Value>,
        args: Vec<Value>,
        receiving: usize,
        checked: Vec<Value>,
        pos: Rc<str>,
        neg: Rc<str>,
    },
    /// Pending `->/c` range check.
    ArrowRng {
        rng: Value,
        pos: Rc<str>,
        neg: Rc<str>,
    },
}

/// Outcome of an application path: the machine either entered compiled
/// code (the dispatch loop continues) or produced a value immediately
/// (primitives, pure contract attachment) that must unwind the
/// continuation.
enum Step {
    Enter,
    Value(Value),
}

/// The λSCT machine: a dispatch loop over the plan-directed flat IR.
///
/// # Examples
///
/// ```
/// use sct_interp::{Machine, MachineConfig, Value};
/// use sct_lang::compile_program;
///
/// let prog = compile_program("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)")
///     .unwrap();
/// let mut m = Machine::new(&prog, MachineConfig::standard());
/// assert_eq!(m.run().unwrap(), Value::int(3628800));
/// ```
pub struct Machine<'p> {
    program: &'p Program,
    code: Rc<CompiledProgram>,
    /// The active configuration.
    pub config: MachineConfig,
    globals: Vec<Value>,
    /// Accumulated `display`/`write`/`newline` output.
    pub output: String,
    /// Counters.
    pub stats: Stats,
    /// Violations recorded by the call-sequence semantics.
    pub violations: Vec<ScErrorInfo>,
    /// Trace of checked calls when tracing is on.
    pub trace_events: Vec<TraceEvent>,
    // Constant pool, materialized once (shared per quote site, so `eq?`
    // semantics match the tree-walker's per-site cache).
    consts: Vec<Value>,
    // Per-λ whitelist membership and fast-path rule, both indexed by λ id
    // (a direct load instead of the tree-walker's per-call map probes).
    whitelisted: Vec<bool>,
    fast_path: Vec<Option<FastGuard>>,
    // Live per-site enforcement decisions, seeded from the baked
    // `code.sites` actions. `install_plan` re-derives them from the new
    // plan, so the hot loop never reads a stale baked decision.
    site_actions: Vec<SiteAction>,
    // One polymorphic inline cache per call site (only `Generic` sites
    // ever populate theirs).
    pics: Vec<Pic>,
    // PIC validity stamp: mix of the installed plan's decisions
    // fingerprint and the global-`set!` epoch. Any entry stamped
    // differently re-resolves before it can skip enforcement.
    plan_fingerprint: u64,
    store_epoch: u64,
    plan_stamp: u64,
    // Dynamic adjacent-pair dispatch profile (config.profile_pairs).
    pair_profile: HashMap<(&'static str, &'static str), u64>,
    prof_prev: Option<(usize, &'static str)>,
    // Dynamic state.
    stack: Vec<Value>,
    locals: Vec<Slot>,
    locals_base: usize,
    kont: Vec<Kont>,
    pc: usize,
    caps: Rc<[Slot]>,
    alloc_counter: u64,
    backoff: Backoff<u64>,
    // Loop-entry detection state (§5).
    designated: HashSet<u64, FxBuildHasher>,
    last_seen_tick: HashMap<u64, u64, FxBuildHasher>,
    guard_tick: u64,
    // Shared graph pool (see `Interner::global`).
    interner: Interner,
    // Imperative-strategy table (also used by CallSeqCollect).
    imp_table: MutScTable<u64, Value>,
    // Continuation-mark-strategy table stack.
    marks: Vec<MarkEntry>,
    // Innermost-first blame labels for active terminating/c extents.
    blames: Vec<Rc<str>>,
    extent_depth: usize,
}

impl<'p> Machine<'p> {
    /// Creates a machine for a compiled program, lowering it to the flat
    /// IR against `config.plan` (when present).
    pub fn new(program: &'p Program, config: MachineConfig) -> Machine<'p> {
        let code = Rc::new(sct_ir::compile(program, config.plan.as_deref()));
        Machine::with_code(program, code, config)
    }

    /// Creates a machine over an already-compiled IR image — the
    /// amortization entry point for the `sct serve` daemon and the bench
    /// harness, which compile once per distinct program and reuse the
    /// image across requests/repetitions. The image must have been
    /// produced by [`sct_ir::compile`] from this `program` and the same
    /// plan as `config.plan`; compiling against one plan and running
    /// under another would bake stale decisions into the call sites, so
    /// the pairing is *checked* (in release builds too) via the plan
    /// identity token the compiler stamped into the image.
    ///
    /// # Panics
    ///
    /// Panics when the image's plan token does not match `config.plan`
    /// (decisions fingerprint) — a `Skip` site baked from another plan
    /// could otherwise bypass the monitor for a λ this plan left
    /// monitored — or when the image's shape (lambda/top-form counts)
    /// does not match `program`. The shape check catches gross
    /// mispairings; an image from a *different but identically shaped*
    /// program is the caller's responsibility to avoid.
    pub fn with_code(
        program: &'p Program,
        code: Rc<CompiledProgram>,
        config: MachineConfig,
    ) -> Machine<'p> {
        let config_token = config
            .plan
            .as_deref()
            .map_or(0, EnforcementPlan::decisions_fingerprint);
        assert_eq!(
            (code.planned, code.plan_token),
            (config.plan.is_some(), config_token),
            "IR image was compiled against a different plan than MachineConfig carries"
        );
        assert_eq!(
            (code.templates.len(), code.top.len()),
            (program.lambda_count as usize, program.top_level.len()),
            "IR image was compiled from a different program"
        );
        let whitelist: HashSet<&str> = config
            .monitor
            .whitelist
            .iter()
            .map(String::as_str)
            .collect();
        let whitelisted = code
            .templates
            .iter()
            .map(|t| match &t.def.name {
                Some(n) => whitelist.contains(n.as_str()),
                None => false,
            })
            .collect();
        let fast_path = build_fast_path(config.plan.as_deref(), code.templates.len());
        let site_actions: Vec<SiteAction> = code.sites.iter().map(|s| s.action.clone()).collect();
        let pics = vec![Pic::new(); code.sites.len()];
        let consts = code.consts.iter().map(|d| datum_to_value(d)).collect();
        let backoff = Backoff::new(config.monitor.backoff);
        // The thread-local pool: `std::mem::take` on the imperative table
        // (contract extents) builds `MutScTable::new()`, which uses the
        // same pool — every table in this machine must agree on one.
        let interner = Interner::global();
        Machine {
            program,
            code,
            config,
            globals: vec![Value::Undefined; program.global_names.len()],
            output: String::new(),
            stats: Stats::default(),
            violations: Vec::new(),
            trace_events: Vec::new(),
            consts,
            whitelisted,
            fast_path,
            site_actions,
            pics,
            plan_fingerprint: config_token,
            store_epoch: 0,
            plan_stamp: mix2(config_token, 0),
            pair_profile: HashMap::new(),
            prof_prev: None,
            stack: Vec::new(),
            locals: Vec::new(),
            locals_base: 0,
            kont: Vec::new(),
            pc: 0,
            caps: Rc::from(Vec::new()),
            alloc_counter: 0,
            backoff,
            designated: HashSet::default(),
            last_seen_tick: HashMap::default(),
            guard_tick: 0,
            imp_table: MutScTable::with_interner(interner.clone()),
            interner,
            marks: Vec::new(),
            blames: Vec::new(),
            extent_depth: 0,
        }
    }

    /// The compiled IR image this machine dispatches over.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.code
    }

    /// Installs a (possibly different) enforcement plan on a live machine
    /// — the incremental re-plan path. The per-λ fast path and every
    /// baked site decision are re-derived from the new plan, and when its
    /// decisions fingerprint differs the PIC stamp moves, so every cached
    /// entry re-resolves before it can skip enforcement again. A no-op
    /// re-plan (same decisions) keeps the caches warm.
    pub fn install_plan(&mut self, plan: Option<Rc<EnforcementPlan>>) {
        let fp = plan
            .as_deref()
            .map_or(0, EnforcementPlan::decisions_fingerprint);
        if fp != self.plan_fingerprint {
            self.plan_fingerprint = fp;
            self.plan_stamp = mix2(fp, self.store_epoch);
        }
        self.fast_path = build_fast_path(plan.as_deref(), self.code.templates.len());
        // Re-derive each statically bound site's action for the λ the
        // compiler bound it to; a λ the new plan no longer discharges
        // goes back to Monitored, one it newly discharges skips.
        for (i, site) in self.code.sites.iter().enumerate() {
            let lambda = match site.action {
                SiteAction::Generic => continue,
                SiteAction::Skip { lambda }
                | SiteAction::Guarded { lambda, .. }
                | SiteAction::Monitored { lambda } => lambda,
            };
            self.site_actions[i] = match self.fast_path[lambda as usize].as_ref() {
                Some(FastGuard::Always) => SiteAction::Skip { lambda },
                Some(FastGuard::Domains(doms)) => SiteAction::Guarded {
                    lambda,
                    doms: doms.clone(),
                },
                None => SiteAction::Monitored { lambda },
            };
        }
        self.config.plan = plan;
    }

    /// The dynamic adjacent-pair dispatch profile collected under
    /// [`MachineConfig::profile_pairs`], hottest pair first. Pairs are
    /// only counted when the second instruction was reached by falling
    /// through from the first (jump targets never pair with their
    /// predecessor), which is exactly the fusibility condition the
    /// linker's superinstruction pass needs.
    pub fn pair_profile(&self) -> Vec<((&'static str, &'static str), u64)> {
        let mut pairs: Vec<_> = self.pair_profile.iter().map(|(k, v)| (*k, *v)).collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs
    }

    /// Runs all top-level forms; the result is the last expression's value
    /// (or void when the program ends with a definition).
    ///
    /// # Errors
    ///
    /// [`EvalError`] as the program's non-value answers: `errorRT`,
    /// `errorSC`, contract violations, or fuel exhaustion.
    pub fn run(&mut self) -> Result<Value, EvalError> {
        let code = self.code.clone();
        let mut last = Value::Void;
        for top in &code.top {
            let v = self.run_top(top)?;
            match top.define {
                Some(g) => {
                    self.globals[g as usize] = v;
                    last = Value::Void;
                }
                None => last = v,
            }
        }
        Ok(last)
    }

    fn run_top(&mut self, top: &TopCode) -> Result<Value, EvalError> {
        self.reset_activation_state();
        self.stats.env_frames_allocated += 1;
        self.locals
            .resize(top.frame_size as usize, Slot::Val(Value::Undefined));
        self.pc = top.entry as usize;
        self.execute()
    }

    /// Clears the per-evaluation dynamic state (a prior error may have
    /// left frames behind). The size-change `imp_table` deliberately
    /// survives — it is machine-level state, exactly as in the reference
    /// machine.
    fn reset_activation_state(&mut self) {
        self.kont.clear();
        self.stack.clear();
        self.locals.clear();
        self.locals_base = 0;
        self.caps = Rc::from(Vec::new());
    }

    /// Looks up a global's current value by name (after [`Machine::run`]).
    pub fn global(&self, name: &str) -> Option<Value> {
        let i = self.program.global_index(name)?;
        Some(self.globals[i as usize].clone())
    }

    /// Applies a procedure value to arguments under the machine's
    /// configuration — how the benchmark harness drives compiled programs.
    ///
    /// # Errors
    ///
    /// [`EvalError`] exactly as [`Machine::run`].
    pub fn call(&mut self, f: Value, args: Vec<Value>) -> Result<Value, EvalError> {
        self.reset_activation_state();
        match self.apply_value(f, args)? {
            Step::Enter => self.execute(),
            Step::Value(v) => match self.unwind(v)? {
                Some(done) => Ok(done),
                None => self.execute(),
            },
        }
    }

    // ----- the dispatch loop ---------------------------------------------

    fn execute(&mut self) -> Result<Value, EvalError> {
        let code = self.code.clone();
        loop {
            self.stats.steps += 1;
            if let Some(fuel) = self.config.fuel {
                if self.stats.steps > fuel {
                    return Err(EvalError::OutOfFuel);
                }
            }
            if let Some(deadline) = self.config.deadline {
                // Amortized: one clock read per ~4k dispatches keeps the
                // configured-but-unexpired cost unmeasurable.
                if self.stats.steps & DEADLINE_CHECK_MASK == 0
                    && std::time::Instant::now() >= deadline
                {
                    return Err(EvalError::Deadline);
                }
            }
            let instr = code.code[self.pc];
            if self.config.profile_pairs {
                let at = self.pc;
                let m = instr.mnemonic();
                if let Some((prev_pc, prev_m)) = self.prof_prev {
                    // Only fall-through adjacency counts: a pair split by
                    // a taken jump could not be fused anyway.
                    if prev_pc + 1 == at {
                        *self.pair_profile.entry((prev_m, m)).or_insert(0) += 1;
                    }
                }
                self.prof_prev = Some((at, m));
            }
            self.pc += 1;
            match instr {
                Instr::Const(ix) => self.stack.push(self.consts[ix as usize].clone()),
                Instr::Void => self.stack.push(Value::Void),
                Instr::LoadLocal(i) => {
                    let slot = &self.locals[self.locals_base + i as usize];
                    let Slot::Val(v) = slot else {
                        unreachable!("plain load from cell slot");
                    };
                    self.stack.push(v.clone());
                }
                Instr::LoadLocalChecked(i) => {
                    let slot = &self.locals[self.locals_base + i as usize];
                    let Slot::Val(v) = slot else {
                        unreachable!("checked load from cell slot");
                    };
                    if matches!(v, Value::Undefined) {
                        return Err(uninitialized());
                    }
                    self.stack.push(v.clone());
                }
                Instr::LoadLocalCell(i) => {
                    let slot = &self.locals[self.locals_base + i as usize];
                    let Slot::Cell(c) = slot else {
                        unreachable!("cell load from plain slot");
                    };
                    let v = c.borrow().clone();
                    if matches!(v, Value::Undefined) {
                        return Err(uninitialized());
                    }
                    self.stack.push(v);
                }
                Instr::LoadCapture(i) => {
                    let Slot::Val(v) = &self.caps[i as usize] else {
                        unreachable!("plain capture load from cell");
                    };
                    self.stack.push(v.clone());
                }
                Instr::LoadCaptureCell(i) => {
                    let Slot::Cell(c) = &self.caps[i as usize] else {
                        unreachable!("cell capture load from plain slot");
                    };
                    let v = c.borrow().clone();
                    if matches!(v, Value::Undefined) {
                        return Err(uninitialized());
                    }
                    self.stack.push(v);
                }
                Instr::StoreLocal(i) => {
                    let v = self.stack.pop().expect("store operand");
                    self.locals[self.locals_base + i as usize] = Slot::Val(v);
                    self.stack.push(Value::Void);
                }
                Instr::StoreLocalCell(i) => {
                    let v = self.stack.pop().expect("store operand");
                    let Slot::Cell(c) = &self.locals[self.locals_base + i as usize] else {
                        unreachable!("cell store to plain slot");
                    };
                    *c.borrow_mut() = v;
                    self.stack.push(Value::Void);
                }
                Instr::StoreCaptureCell(i) => {
                    let v = self.stack.pop().expect("store operand");
                    let Slot::Cell(c) = &self.caps[i as usize] else {
                        unreachable!("cell store to plain capture");
                    };
                    *c.borrow_mut() = v;
                    self.stack.push(Value::Void);
                }
                Instr::LoadGlobal(g) => {
                    let v = self.globals[g as usize].clone();
                    if matches!(v, Value::Undefined) {
                        return Err(RtError::new(format!(
                            "global {} used before definition",
                            self.program.global_names[g as usize]
                        ))
                        .into());
                    }
                    self.stack.push(v);
                }
                Instr::StoreGlobal(g) => {
                    let v = self.stack.pop().expect("store operand");
                    self.globals[g as usize] = v;
                    // A rebound global changes which callees flow into
                    // generic sites; bumping the epoch moves the plan
                    // stamp so every cached PIC entry re-resolves.
                    self.store_epoch += 1;
                    self.plan_stamp = mix2(self.plan_fingerprint, self.store_epoch);
                    self.stack.push(Value::Void);
                }
                Instr::PrimVal(p) => self.stack.push(Value::Prim(p)),
                Instr::MakeClosure(id) => self.make_closure(id),
                Instr::Jump(t) => self.pc = t as usize,
                Instr::JumpIfFalse(t) => {
                    let v = self.stack.pop().expect("branch operand");
                    if !v.is_truthy() {
                        self.pc = t as usize;
                    }
                }
                Instr::Pop => {
                    self.stack.pop();
                }
                Instr::PopLocal(i) => {
                    let v = self.stack.pop().expect("binding operand");
                    self.locals[self.locals_base + i as usize] = Slot::Val(v);
                }
                Instr::PopLocalCell(i) => {
                    let v = self.stack.pop().expect("binding operand");
                    self.locals[self.locals_base + i as usize] =
                        Slot::Cell(Rc::new(RefCell::new(v)));
                }
                Instr::InitLocalCell(i) => {
                    let v = self.stack.pop().expect("binding operand");
                    let Slot::Cell(c) = &self.locals[self.locals_base + i as usize] else {
                        unreachable!("letrec init to plain slot");
                    };
                    *c.borrow_mut() = v;
                }
                Instr::ClearLocal(i) => {
                    self.locals[self.locals_base + i as usize] = Slot::Val(Value::Undefined);
                }
                Instr::MakeCell(i) => {
                    self.locals[self.locals_base + i as usize] =
                        Slot::Cell(Rc::new(RefCell::new(Value::Undefined)));
                }
                Instr::BoxLocal(i) => {
                    let ix = self.locals_base + i as usize;
                    let old = std::mem::replace(&mut self.locals[ix], Slot::Val(Value::Undefined));
                    let Slot::Val(v) = old else {
                        unreachable!("boxing a cell slot");
                    };
                    self.locals[ix] = Slot::Cell(Rc::new(RefCell::new(v)));
                }
                Instr::WrapTerm(l) => {
                    let v = self.stack.pop().expect("wrap operand");
                    let label = self.code.labels[l as usize].clone();
                    self.stack.push(wrap_terminating(v, label));
                }
                Instr::CallPrim { prim, argc } => {
                    let args_start = self.stack.len() - argc as usize;
                    let result = call_prim(prim, &self.stack[args_start..])?;
                    self.stack.truncate(args_start);
                    match result {
                        PrimEffect::Value(v) => self.stack.push(v),
                        PrimEffect::Output(text, v) => {
                            self.output.push_str(&text);
                            self.stack.push(v);
                        }
                    }
                }
                Instr::Call { argc, site } => {
                    if let Some(done) = self.do_call(argc as usize, site as usize, false)? {
                        return Ok(done);
                    }
                }
                Instr::TailCall { argc, site } => {
                    if let Some(done) = self.do_call(argc as usize, site as usize, true)? {
                        return Ok(done);
                    }
                }
                Instr::Return => {
                    let v = self.stack.pop().expect("return value");
                    if let Some(done) = self.unwind(v)? {
                        return Ok(done);
                    }
                }
                // Superinstructions: each executes both fused operations
                // and then skips the intact second slot (`pc += 1`), so a
                // jump into that slot still runs the original instruction.
                Instr::LoadLocal2(a, b) => {
                    let base = self.locals_base;
                    let Slot::Val(va) = &self.locals[base + a as usize] else {
                        unreachable!("plain load from cell slot");
                    };
                    let va = va.clone();
                    let Slot::Val(vb) = &self.locals[base + b as usize] else {
                        unreachable!("plain load from cell slot");
                    };
                    let vb = vb.clone();
                    self.stack.push(va);
                    self.stack.push(vb);
                    self.pc += 1;
                }
                Instr::LoadLocalCallPrim { local, prim, argc } => {
                    let Slot::Val(v) = &self.locals[self.locals_base + local as usize] else {
                        unreachable!("plain load from cell slot");
                    };
                    self.stack.push(v.clone());
                    let args_start = self.stack.len() - argc as usize;
                    let result = call_prim(prim, &self.stack[args_start..])?;
                    self.stack.truncate(args_start);
                    match result {
                        PrimEffect::Value(v) => self.stack.push(v),
                        PrimEffect::Output(text, v) => {
                            self.output.push_str(&text);
                            self.stack.push(v);
                        }
                    }
                    self.pc += 1;
                }
                Instr::ConstCallPrim { cix, prim, argc } => {
                    self.stack.push(self.consts[cix as usize].clone());
                    let args_start = self.stack.len() - argc as usize;
                    let result = call_prim(prim, &self.stack[args_start..])?;
                    self.stack.truncate(args_start);
                    match result {
                        PrimEffect::Value(v) => self.stack.push(v),
                        PrimEffect::Output(text, v) => {
                            self.output.push_str(&text);
                            self.stack.push(v);
                        }
                    }
                    self.pc += 1;
                }
                Instr::CallPrimJumpIfFalse { prim, argc, target } => {
                    let args_start = self.stack.len() - argc as usize;
                    let result = call_prim(prim, &self.stack[args_start..])?;
                    self.stack.truncate(args_start);
                    let v = match result {
                        PrimEffect::Value(v) => v,
                        PrimEffect::Output(text, v) => {
                            self.output.push_str(&text);
                            v
                        }
                    };
                    if v.is_truthy() {
                        self.pc += 1;
                    } else {
                        self.pc = target as usize;
                    }
                }
                Instr::LoadLocalReturn(i) => {
                    let Slot::Val(v) = &self.locals[self.locals_base + i as usize] else {
                        unreachable!("plain load from cell slot");
                    };
                    let v = v.clone();
                    if let Some(done) = self.unwind(v)? {
                        return Ok(done);
                    }
                }
            }
        }
    }

    fn push_kont(&mut self, k: Kont) {
        self.kont.push(k);
        if self.kont.len() > self.stats.max_kont_depth {
            self.stats.max_kont_depth = self.kont.len();
        }
    }

    /// Unwinds the continuation with a value, exactly as the tree-walker's
    /// value steps: stale marks are trimmed as the continuation shrinks,
    /// `Restore`/extent frames replay their effects, contract frames may
    /// re-enter compiled code. Returns the final value once the
    /// continuation is empty, or `None` when execution resumes at `pc`.
    fn unwind(&mut self, mut v: Value) -> Result<Option<Value>, EvalError> {
        loop {
            let Some(frame) = self.kont.pop() else {
                // A tail call at depth 0 legitimately leaves a mark; the
                // session is over, so drop it.
                self.marks.clear();
                debug_assert!(self.blames.is_empty());
                return Ok(Some(v));
            };
            // Marks deeper than the continuation are stale: the calls
            // that installed them have returned.
            while self.marks.last().is_some_and(|m| m.depth > self.kont.len()) {
                self.marks.pop();
            }
            match frame {
                Kont::Return {
                    pc,
                    locals_len,
                    locals_base,
                    caps,
                } => {
                    self.locals.truncate(locals_len as usize);
                    self.locals_base = locals_base as usize;
                    self.caps = caps;
                    self.pc = pc as usize;
                    self.stack.push(v);
                    return Ok(None);
                }
                Kont::Restore(undo) => self.imp_table.restore(undo),
                Kont::ContractExtent { saved, started } => {
                    if let Some(table) = saved {
                        self.imp_table = table;
                    }
                    if started {
                        self.extent_depth -= 1;
                    }
                    self.blames.pop();
                }
                Kont::FlatCheck {
                    original,
                    rest,
                    pos,
                    neg,
                } => {
                    if v.is_truthy() {
                        match self.attach_all(rest, original, pos, neg)? {
                            Step::Enter => return Ok(None),
                            Step::Value(next) => v = next,
                        }
                    } else {
                        return Err(EvalError::Contract(ContractErrorInfo {
                            blame: pos,
                            message: format!("predicate rejected {}", original.to_write_string()),
                        }));
                    }
                }
                Kont::ArrowCall {
                    inner,
                    doms,
                    args,
                    receiving,
                    mut checked,
                    pos,
                    neg,
                } => {
                    checked.push(v);
                    let next = receiving + 1;
                    let step = if next < args.len() {
                        let dom = doms[next].clone();
                        let arg = args[next].clone();
                        self.push_kont(Kont::ArrowCall {
                            inner,
                            doms,
                            args,
                            receiving: next,
                            checked,
                            pos: pos.clone(),
                            neg: neg.clone(),
                        });
                        // Domain obligations blame the caller: swap parties.
                        self.attach_all(VecDeque::from(vec![dom]), arg, neg, pos)?
                    } else {
                        self.apply_value(inner, checked)?
                    };
                    match step {
                        Step::Enter => return Ok(None),
                        Step::Value(next_v) => v = next_v,
                    }
                }
                Kont::ArrowRng { rng, pos, neg } => {
                    match self.attach_all(VecDeque::from(vec![rng]), v, pos, neg)? {
                        Step::Enter => return Ok(None),
                        Step::Value(next_v) => v = next_v,
                    }
                }
            }
        }
    }

    // ----- values --------------------------------------------------------

    fn make_closure(&mut self, id: u32) {
        let tmpl = &self.code.templates[id as usize];
        let mut caps: Vec<Slot> = Vec::with_capacity(tmpl.captures.len());
        for c in &tmpl.captures {
            caps.push(match c {
                CapSrc::Local(i) => self.locals[self.locals_base + *i as usize].clone(),
                CapSrc::Capture(i) => self.caps[*i as usize].clone(),
            });
        }
        self.alloc_counter += 1;
        // Same fingerprint as the tree-walker: the capture list is ordered
        // exactly as `def.free`, and cells hash their current contents.
        let mut fp = mix2(0x51_7e, id as u64);
        for s in &caps {
            fp = mix2(fp, s.hash_current());
        }
        let value = Value::Closure(Rc::new(Closure {
            def: tmpl.def.clone(),
            env: ClosureEnv::Flat(Rc::from(caps)),
            alloc_id: self.alloc_counter,
            fingerprint: fp,
        }));
        self.stack.push(value);
    }

    // ----- application ---------------------------------------------------

    /// One `Call`/`TailCall` instruction. The stack holds
    /// `[callee, arg1..argN]`. Returns the final value when the call chain
    /// completed an empty continuation (tail position at depth 0).
    fn do_call(
        &mut self,
        argc: usize,
        site: usize,
        tail: bool,
    ) -> Result<Option<Value>, EvalError> {
        if !tail {
            self.push_kont(Kont::Return {
                pc: self.pc as u32,
                locals_len: self.locals.len() as u32,
                locals_base: self.locals_base as u32,
                caps: self.caps.clone(),
            });
        }
        let fpos = self.stack.len() - 1 - argc;
        if let Value::Closure(c) = &self.stack[fpos] {
            let clo = c.clone();
            self.call_closure_stack(clo, argc, site, tail)?;
            return Ok(None);
        }
        // Generic dispatch: primitives, wrapped procedures, non-procedure
        // errors. In tail position the current frame is dead — drop it so
        // wrapper chains keep tail space bounded.
        let args: Vec<Value> = self.stack.split_off(fpos + 1);
        let f = self.stack.pop().expect("callee");
        if tail {
            self.locals.truncate(self.locals_base);
        }
        match self.apply_value(f, args)? {
            Step::Enter => Ok(None),
            Step::Value(v) => self.unwind(v),
        }
    }

    /// The hot path: a closure callee with its arguments still on the
    /// operand stack. The call site's baked-in [`SiteAction`] replaces the
    /// tree-walker's per-call decision cascade whenever the runtime callee
    /// is the λ the compiler bound the site to.
    fn call_closure_stack(
        &mut self,
        clo: Rc<Closure>,
        argc: usize,
        site: usize,
        tail: bool,
    ) -> Result<(), EvalError> {
        self.stats.applications += 1;
        if self.monitoring_active() && !self.whitelisted[clo.def.id as usize] {
            let args_start = self.stack.len() - argc;
            let action = &self.site_actions[site];
            match action {
                SiteAction::Skip { lambda } if *lambda == clo.def.id => {
                    self.stats.static_skips += 1;
                }
                SiteAction::Guarded { lambda, doms } if *lambda == clo.def.id => {
                    if guard_passes(doms, &self.stack[args_start..]) {
                        self.stats.static_skips += 1;
                    } else {
                        self.monitor_call_stack(&clo, args_start)?;
                    }
                }
                SiteAction::Monitored { lambda } if *lambda == clo.def.id => {
                    self.monitor_call_stack(&clo, args_start)?;
                }
                _ => {
                    // First-class callee (or a site whose static binding
                    // does not match): resolve through the site's PIC, or
                    // — with caches disabled — the per-λ fast-path probe.
                    self.stats.generic_calls += 1;
                    if self.config.disable_pics {
                        if self.probe_discharged(&clo, args_start) {
                            self.stats.static_skips += 1;
                        } else {
                            self.monitor_call_stack(&clo, args_start)?;
                        }
                    } else {
                        match self.pic_action(site, &clo) {
                            PicAction::Skip => self.stats.static_skips += 1,
                            PicAction::Guard(doms) => {
                                if guard_passes(&doms, &self.stack[args_start..]) {
                                    self.stats.static_skips += 1;
                                } else {
                                    self.monitor_call_stack(&clo, args_start)?;
                                }
                            }
                            PicAction::Monitor => self.monitor_call_stack(&clo, args_start)?,
                        }
                    }
                }
            }
        }
        self.bind_stack_args(&clo, argc, tail)
    }

    /// Resolves (through the site's PIC) the fast path for this callee. A
    /// valid cached entry is a hit; a stamp mismatch counts an
    /// invalidation and re-resolves; anything else is a plain miss. The
    /// resolved action is re-cached under the current stamp, so the
    /// steady state is one λ-id comparison per call.
    fn pic_action(&mut self, site: usize, clo: &Closure) -> PicAction {
        let lambda = clo.def.id;
        let stamp = self.plan_stamp;
        if let Some(entry) = self.pics[site].lookup(lambda) {
            if entry.stamp == stamp {
                self.stats.pic_hits += 1;
                return entry.action.clone();
            }
            self.stats.pic_invalidations += 1;
        }
        self.stats.pic_misses += 1;
        let action = match self.fast_path[lambda as usize].as_ref() {
            Some(FastGuard::Always) => PicAction::Skip,
            Some(FastGuard::Domains(doms)) => PicAction::Guard(doms.clone()),
            None => PicAction::Monitor,
        };
        self.pics[site].insert(PicEntry {
            lambda,
            action: action.clone(),
            stamp,
        });
        action
    }

    /// True when the enforcement plan statically discharged this λ and the
    /// stacked arguments satisfy the proof's domain guard.
    fn probe_discharged(&self, clo: &Closure, args_start: usize) -> bool {
        fast_guard_passes(
            self.fast_path[clo.def.id as usize].as_ref(),
            &self.stack[args_start..],
        )
    }

    /// Binds stacked arguments into a fresh (or, for tail calls, reused)
    /// locals frame and enters the callee.
    fn bind_stack_args(
        &mut self,
        clo: &Rc<Closure>,
        argc: usize,
        tail: bool,
    ) -> Result<(), EvalError> {
        let def = &clo.def;
        let required = def.params as usize;
        if def.variadic {
            if argc < required {
                return Err(arity_error(def, argc));
            }
        } else if argc != required {
            return Err(arity_error(def, argc));
        }
        let tmpl = &self.code.templates[def.id as usize];
        let frame_size = tmpl.frame_size as usize;
        let entry = tmpl.entry as usize;
        let args_start = self.stack.len() - argc;
        if tail {
            self.locals.truncate(self.locals_base);
        } else {
            self.locals_base = self.locals.len();
        }
        self.stats.env_frames_allocated += 1;
        if def.variadic {
            let rest = Value::list(
                self.stack
                    .drain(args_start + required..)
                    .collect::<Vec<_>>(),
            );
            for v in self.stack.drain(args_start..) {
                self.locals.push(Slot::Val(v));
            }
            self.locals.push(Slot::Val(rest));
        } else {
            for v in self.stack.drain(args_start..) {
                self.locals.push(Slot::Val(v));
            }
        }
        self.locals
            .resize(self.locals_base + frame_size, Slot::Val(Value::Undefined));
        let callee = self.stack.pop();
        debug_assert!(matches!(callee, Some(Value::Closure(_))));
        let ClosureEnv::Flat(caps) = &clo.env else {
            unreachable!("IR machine applied a chained (reference) closure");
        };
        self.caps = caps.clone();
        self.pc = entry;
        Ok(())
    }

    /// Generic application of any value to a materialized argument vector:
    /// the `apply` primitive, contract machinery, wrapped procedures, and
    /// the [`Machine::call`] API.
    fn apply_value(&mut self, f: Value, args: Vec<Value>) -> Result<Step, EvalError> {
        match f {
            Value::Prim(p) => self.apply_prim(p, args),
            Value::Closure(clo) => {
                self.apply_closure_vec(clo, args)?;
                Ok(Step::Enter)
            }
            Value::Wrapped(w) => match &w.kind {
                WrapKind::Terminating { label } => {
                    let label = label.clone();
                    let inner = w.inner.clone();
                    self.apply_terminating(inner, label, args)
                }
                WrapKind::Arrow {
                    doms,
                    rng,
                    positive,
                    negative,
                } => {
                    let (doms, rng) = (doms.clone(), rng.clone());
                    let (pos, neg) = (positive.clone(), negative.clone());
                    let inner = w.inner.clone();
                    self.apply_arrow(inner, doms, rng, pos, neg, args)
                }
            },
            other => Err(RtError::new(format!(
                "application of non-procedure {}",
                other.to_write_string()
            ))
            .into()),
        }
    }

    fn apply_closure_vec(
        &mut self,
        clo: Rc<Closure>,
        mut args: Vec<Value>,
    ) -> Result<(), EvalError> {
        self.stats.applications += 1;
        if self.monitoring_active() && !self.whitelisted[clo.def.id as usize] {
            if fast_guard_passes(self.fast_path[clo.def.id as usize].as_ref(), &args) {
                self.stats.static_skips += 1;
            } else {
                self.monitor_call_slice(&clo, &args)?;
            }
        }
        // Bind the vector directly into a fresh frame.
        let def = &clo.def;
        let required = def.params as usize;
        if def.variadic {
            if args.len() < required {
                return Err(arity_error(def, args.len()));
            }
            let rest = Value::list(args.split_off(required));
            args.push(rest);
        } else if args.len() != required {
            return Err(arity_error(def, args.len()));
        }
        let tmpl = &self.code.templates[def.id as usize];
        let frame_size = tmpl.frame_size as usize;
        self.locals_base = self.locals.len();
        self.stats.env_frames_allocated += 1;
        for v in args {
            self.locals.push(Slot::Val(v));
        }
        self.locals
            .resize(self.locals_base + frame_size, Slot::Val(Value::Undefined));
        let ClosureEnv::Flat(caps) = &clo.env else {
            unreachable!("IR machine applied a chained (reference) closure");
        };
        self.caps = caps.clone();
        self.pc = tmpl.entry as usize;
        Ok(())
    }

    fn apply_prim(&mut self, p: Prim, mut args: Vec<Value>) -> Result<Step, EvalError> {
        match p {
            Prim::Apply => {
                if args.len() < 2 {
                    return Err(RtError::new("apply: expects a procedure and a list").into());
                }
                let f = args.remove(0);
                let tail = args.pop().unwrap();
                let Some(spread) = tail.list_to_vec() else {
                    return Err(RtError::new("apply: last argument must be a list").into());
                };
                args.extend(spread);
                self.apply_value(f, args)
            }
            Prim::Contract => {
                // (contract c v pos [neg])
                if !(args.len() == 3 || args.len() == 4) {
                    return Err(RtError::new("contract: expects contract, value, parties").into());
                }
                let neg = if args.len() == 4 {
                    party_name(&args.pop().unwrap())?
                } else {
                    Rc::from("the context")
                };
                let pos = party_name(&args.pop().unwrap())?;
                let value = args.pop().unwrap();
                let c = args.pop().unwrap();
                self.attach_all(VecDeque::from(vec![c]), value, pos, neg)
            }
            Prim::TerminatingC => {
                if args.is_empty() || args.len() > 2 {
                    return Err(RtError::new("terminating/c: expects a value").into());
                }
                let label: Rc<str> = if args.len() == 2 {
                    party_name(&args.pop().unwrap())?
                } else {
                    Rc::from("terminating/c")
                };
                Ok(Step::Value(wrap_terminating(args.pop().unwrap(), label)))
            }
            _ => match call_prim(p, &args)? {
                PrimEffect::Value(v) => Ok(Step::Value(v)),
                PrimEffect::Output(text, v) => {
                    self.output.push_str(&text);
                    Ok(Step::Value(v))
                }
            },
        }
    }

    fn apply_terminating(
        &mut self,
        inner: Value,
        label: Rc<str>,
        args: Vec<Value>,
    ) -> Result<Step, EvalError> {
        // [App-Term]: outside a monitored extent, seed a *fresh* table;
        // [SC-App-Term]: inside one, keep the current table.
        let started = !self.monitoring_active();
        let saved = if started && !self.imp_table.is_empty() {
            Some(std::mem::take(&mut self.imp_table))
        } else {
            None
        };
        self.push_kont(Kont::ContractExtent { saved, started });
        self.blames.push(label);
        if started {
            self.extent_depth += 1;
        }
        self.apply_value(inner, args)
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_arrow(
        &mut self,
        inner: Value,
        doms: Vec<Value>,
        rng: Value,
        pos: Rc<str>,
        neg: Rc<str>,
        args: Vec<Value>,
    ) -> Result<Step, EvalError> {
        if args.len() != doms.len() {
            return Err(EvalError::Contract(ContractErrorInfo {
                blame: neg,
                message: format!("expected {} arguments, got {}", doms.len(), args.len()),
            }));
        }
        self.push_kont(Kont::ArrowRng {
            rng,
            pos: pos.clone(),
            neg: neg.clone(),
        });
        if args.is_empty() {
            self.apply_value(inner, Vec::new())
        } else {
            let dom = doms[0].clone();
            let arg = args[0].clone();
            self.push_kont(Kont::ArrowCall {
                inner,
                doms,
                args,
                receiving: 0,
                checked: Vec::new(),
                pos: pos.clone(),
                neg: neg.clone(),
            });
            self.attach_all(VecDeque::from(vec![dom]), arg, neg, pos)
        }
    }

    /// Attaches a conjunction of contracts to a value. Completes pure
    /// attachments (wrapping, primitive predicates) inline; defers to a
    /// [`Kont::FlatCheck`] frame when a predicate is a user closure.
    fn attach_all(
        &mut self,
        mut contracts: VecDeque<Value>,
        value: Value,
        pos: Rc<str>,
        neg: Rc<str>,
    ) -> Result<Step, EvalError> {
        let mut current = value;
        while let Some(c) = contracts.pop_front() {
            // Bare `terminating/c` is usable as a combinator in and/c etc.
            if matches!(c, Value::Prim(Prim::TerminatingC)) {
                current = wrap_terminating(current, pos.clone());
                continue;
            }
            // A bare procedure is usable as a flat contract, Racket-style.
            let flat_pred: Option<Value> = match &c {
                Value::Contract(data) => match data.as_ref() {
                    ContractData::Flat(pred) => Some(pred.clone()),
                    ContractData::Arrow { doms, rng } => {
                        if current.is_procedure() {
                            current = Value::Wrapped(Rc::new(WrappedData {
                                inner: current,
                                kind: WrapKind::Arrow {
                                    doms: doms.clone(),
                                    rng: rng.clone(),
                                    positive: pos.clone(),
                                    negative: neg.clone(),
                                },
                            }));
                            continue;
                        }
                        return Err(EvalError::Contract(ContractErrorInfo {
                            blame: pos,
                            message: format!(
                                "->/c expected a procedure, got {}",
                                current.to_write_string()
                            ),
                        }));
                    }
                    ContractData::And(cs) => {
                        for sub in cs.iter().rev() {
                            contracts.push_front(sub.clone());
                        }
                        continue;
                    }
                    ContractData::Terminating => {
                        current = wrap_terminating(current, pos.clone());
                        continue;
                    }
                },
                Value::Prim(_) | Value::Closure(_) | Value::Wrapped(_) => Some(c.clone()),
                _ => None,
            };
            let Some(pred) = flat_pred else {
                return Err(
                    RtError::new(format!("not a contract: {}", c.to_write_string())).into(),
                );
            };
            match pred {
                Value::Prim(p) => {
                    let ok = match call_prim(p, std::slice::from_ref(&current))? {
                        PrimEffect::Value(v) => v.is_truthy(),
                        PrimEffect::Output(text, v) => {
                            self.output.push_str(&text);
                            v.is_truthy()
                        }
                    };
                    if !ok {
                        return Err(EvalError::Contract(ContractErrorInfo {
                            blame: pos,
                            message: format!(
                                "predicate {} rejected {}",
                                p.name(),
                                current.to_write_string()
                            ),
                        }));
                    }
                }
                pred => {
                    self.push_kont(Kont::FlatCheck {
                        original: current.clone(),
                        rest: contracts,
                        pos: pos.clone(),
                        neg,
                    });
                    return self.apply_value(pred, vec![current]);
                }
            }
        }
        Ok(Step::Value(current))
    }

    // ----- monitoring ----------------------------------------------------

    fn monitoring_active(&self) -> bool {
        match self.config.mode {
            SemanticsMode::Monitored | SemanticsMode::CallSeqCollect => true,
            SemanticsMode::Standard => self.extent_depth > 0,
        }
    }

    fn closure_key(&self, clo: &Closure) -> u64 {
        match self.config.monitor.key_strategy {
            KeyStrategy::Allocation => mix2(0xA110C, clo.alloc_id),
            KeyStrategy::Structural => clo.fingerprint,
            KeyStrategy::LambdaOnly => mix2(0x001A_3BDA, clo.def.id as u64),
        }
    }

    /// Steps 1–5 of the tree-walker's `monitor_call`: counters, loop-entry
    /// designation, backoff. Returns the table key when the call must
    /// actually be checked.
    fn monitor_gate(&mut self, clo: &Rc<Closure>) -> Option<u64> {
        self.stats.monitored_calls += 1;
        let key = self.closure_key(clo);

        if self.config.monitor.loop_entries_only && !self.designated.contains(&key) {
            // Loop-entry detection: designate a function only when it
            // recurs with no intervening check of an already-designated
            // entry — its loop is not already guarded (§5).
            match self.last_seen_tick.get(&key) {
                Some(&t) if t == self.guard_tick => {
                    self.designated.insert(key);
                }
                _ => {
                    self.last_seen_tick.insert(key, self.guard_tick);
                    return None;
                }
            }
        }

        if !self.backoff.should_check(&key) {
            return None;
        }
        self.stats.checks += 1;
        self.guard_tick += 1;
        Some(key)
    }

    fn monitor_call_stack(
        &mut self,
        clo: &Rc<Closure>,
        args_start: usize,
    ) -> Result<(), EvalError> {
        let Some(key) = self.monitor_gate(clo) else {
            return Ok(());
        };
        let snapshot: Rc<[Value]> = Rc::from(&self.stack[args_start..]);
        self.monitor_check(clo, key, snapshot)
    }

    fn monitor_call_slice(&mut self, clo: &Rc<Closure>, args: &[Value]) -> Result<(), EvalError> {
        let Some(key) = self.monitor_gate(clo) else {
            return Ok(());
        };
        let snapshot: Rc<[Value]> = Rc::from(args.to_vec());
        self.monitor_check(clo, key, snapshot)
    }

    /// Steps 6–7 of the tree-walker's `monitor_call`: trace, then extend
    /// the size-change table under the configured strategy.
    fn monitor_check(
        &mut self,
        clo: &Rc<Closure>,
        key: u64,
        snapshot: Rc<[Value]>,
    ) -> Result<(), EvalError> {
        if self.config.trace {
            self.record_trace(clo, key, &snapshot, self.kont.len());
        }

        match self.config.mode {
            SemanticsMode::CallSeqCollect => {
                let (undo, violation) =
                    self.imp_table
                        .extend_unchecked_mut(key, snapshot, &self.config.order.clone());
                self.push_kont(Kont::Restore(undo));
                if let Some(v) = violation {
                    self.violations.push(ScErrorInfo {
                        blame: self.blames.last().cloned(),
                        function: clo.def.describe(),
                        violation: v,
                    });
                }
                Ok(())
            }
            _ => match self.config.monitor.strategy {
                TableStrategy::Imperative => {
                    let order = self.config.order.clone();
                    match self.imp_table.update_mut(key, snapshot, &order) {
                        Ok(undo) => {
                            self.push_kont(Kont::Restore(undo));
                            Ok(())
                        }
                        Err(violation) => Err(EvalError::Sc(ScErrorInfo {
                            blame: self.blames.last().cloned(),
                            function: clo.def.describe(),
                            violation,
                        })),
                    }
                }
                TableStrategy::ContinuationMark => {
                    let order = self.config.order.clone();
                    let current = match self.marks.last() {
                        Some(m) => m.table.clone(),
                        None => ScTable::with_interner(self.interner.clone()),
                    };
                    match current.update(key, snapshot, &order) {
                        Ok(table) => {
                            let depth = self.kont.len();
                            match self.marks.last_mut() {
                                Some(top) if top.depth == depth => {
                                    // Tail call: replace the mark in place.
                                    top.table = table;
                                }
                                _ => self.marks.push(MarkEntry { depth, table }),
                            }
                            if self.marks.len() > self.stats.max_marks {
                                self.stats.max_marks = self.marks.len();
                            }
                            Ok(())
                        }
                        Err(violation) => Err(EvalError::Sc(ScErrorInfo {
                            blame: self.blames.last().cloned(),
                            function: clo.def.describe(),
                            violation,
                        })),
                    }
                }
            },
        }
    }

    fn record_trace(&mut self, clo: &Rc<Closure>, key: u64, args: &Rc<[Value]>, depth: usize) {
        let prev_entry = match self.config.monitor.strategy {
            TableStrategy::ContinuationMark => {
                self.marks.last().and_then(|m| m.table.get(&key).cloned())
            }
            TableStrategy::Imperative => self.imp_table.get(&key).cloned(),
        };
        let graph = prev_entry.map(|entry| {
            let g = ScGraph::from_args(&self.config.order, &entry.last_args, args);
            let names: Vec<String> = (0..args.len().max(entry.last_args.len()))
                .map(|i| format!("x{i}"))
                .collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            g.display_with(&name_refs, &name_refs)
        });
        self.trace_events.push(TraceEvent {
            function: clo.def.describe(),
            args: args.iter().map(|a| a.to_write_string()).collect(),
            graph,
            kont_depth: depth,
        });
    }
}

fn uninitialized() -> EvalError {
    RtError::new("variable used before initialization").into()
}

pub(crate) fn arity_error(def: &LambdaDef, got: usize) -> EvalError {
    RtError::new(format!(
        "{}: expected {}{} arguments, got {got}",
        def.describe(),
        def.params,
        if def.variadic { "+" } else { "" },
    ))
    .into()
}

pub(crate) fn party_name(v: &Value) -> Result<Rc<str>, EvalError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::Sym(s) => Ok(s.clone()),
        other => Err(RtError::new(format!(
            "blame party must be a string or symbol, got {}",
            other.to_write_string()
        ))
        .into()),
    }
}

/// Figure 7's wrapping rules: closures (and wrapped procedures) are
/// wrapped, primitives pass through ([Wrap-Prim]), and non-procedures are
/// returned as-is (§3.6).
pub fn wrap_terminating(v: Value, label: Rc<str>) -> Value {
    match v {
        Value::Closure(_) | Value::Wrapped(_) => Value::Wrapped(Rc::new(WrappedData {
            inner: v,
            kind: WrapKind::Terminating { label },
        })),
        other => other,
    }
}

/// Converts external representation (quoted data) into run-time values.
pub fn datum_to_value(d: &Datum) -> Value {
    match d {
        Datum::Int(n) => Value::int(*n),
        Datum::BigInt(s) => Value::from_int(s.parse::<Int>().expect("lexer produced valid bigint")),
        Datum::Bool(b) => Value::Bool(*b),
        Datum::Char(c) => Value::Char(*c),
        Datum::Str(s) => Value::str(s),
        Datum::Sym(s) => Value::sym(s),
        Datum::List(items) => Value::list(items.iter().map(datum_to_value).collect::<Vec<_>>()),
        Datum::Improper(items, tail) => {
            let mut acc = datum_to_value(tail);
            for item in items.iter().rev() {
                acc = Value::cons(datum_to_value(item), acc);
            }
            acc
        }
    }
}

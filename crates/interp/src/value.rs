//! Run-time values of λSCT (Figure 3's `v`), extended with the richer data
//! the evaluation corpus needs: characters, strings, symbols, immutable
//! hashes (Figure 2), first-class contracts, and contract-wrapped
//! procedures (Figure 7's `term/c⟨…⟩` values).
//!
//! Every compound value caches a structural hash at construction, so the
//! monitor can fingerprint a closure's captured environment in time
//! proportional to the number of free variables — the implementation trick
//! behind §5's "we hash the closure".

use sct_bignum::{BigInt, Int};
use sct_lang::{LambdaDef, Prim};
use sct_persist::PMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// A λSCT run-time value.
///
/// Exact integers are split across two variants mirroring
/// [`Int`]'s canonical form: [`Value::Fix`] for `i64`-range fixnums
/// (tagged inline — no allocation, no double dispatch through a nested
/// enum) and [`Value::Big`] for everything else. The canonical-form
/// invariant — `Big` never holds a value in `i64` range — is what makes
/// single-variant matches, structural equality, and hashing correct.
#[derive(Clone)]
pub enum Value {
    /// Exact integer in `i64` range (canonical: [`Value::Big`] is never
    /// used for these).
    Fix(i64),
    /// Exact integer outside `i64` range.
    Big(Rc<BigInt>),
    /// Boolean.
    Bool(bool),
    /// Character.
    Char(char),
    /// Immutable string.
    Str(Rc<str>),
    /// Symbol.
    Sym(Rc<str>),
    /// The empty list `'()`.
    Nil,
    /// The unspecified value returned by `(void)` and effects.
    Void,
    /// A pair.
    Pair(Rc<PairData>),
    /// A closure `(⃗x, e, ρ)`.
    Closure(Rc<Closure>),
    /// A primitive operation `o`.
    Prim(Prim),
    /// An immutable hash table (Figure 2's `hash` values).
    Hash(Rc<HashData>),
    /// A first-class contract (`flat/c`, `->/c`, `and/c`, `terminating/c`).
    Contract(Rc<ContractData>),
    /// A contract-wrapped procedure (Figure 7's wrapped closures).
    Wrapped(Rc<WrappedData>),
    /// The pre-initialization value of `letrec` slots; touching it is a
    /// run-time error.
    Undefined,
}

/// A cons cell with cached structural hash and node count.
pub struct PairData {
    /// The `car`.
    pub car: Value,
    /// The `cdr`.
    pub cdr: Value,
    hash: u64,
    size: u64,
}

impl PairData {
    /// Cached structural hash.
    pub fn hash_code(&self) -> u64 {
        self.hash
    }

    /// Total node count (pairs plus atoms), used to prune subterm search.
    pub fn size(&self) -> u64 {
        self.size
    }
}

impl Drop for PairData {
    /// Iterative teardown of long cdr-chains so dropping a million-element
    /// list does not overflow the Rust stack.
    fn drop(&mut self) {
        let mut cdr = std::mem::replace(&mut self.cdr, Value::Nil);
        while let Value::Pair(p) = cdr {
            match Rc::try_unwrap(p) {
                Ok(mut inner) => cdr = std::mem::replace(&mut inner.cdr, Value::Nil),
                Err(_) => break,
            }
        }
    }
}

/// A closure: compiled lambda plus captured environment.
pub struct Closure {
    /// The compiled lambda.
    pub def: Rc<LambdaDef>,
    /// The captured environment (the lambda's defining environment).
    pub env: ClosureEnv,
    /// Fresh identity assigned at allocation; the default size-change table
    /// key (the paper's implementation keys on Racket's `eq?` closure hash).
    pub alloc_id: u64,
    /// Structural fingerprint: hash of the lambda id and the values of the
    /// captured free variables at allocation time.
    pub fingerprint: u64,
}

/// One binding slot of the IR machine: a plain value, or — for bindings
/// the compiler assignment-converted because they are both captured by a
/// nested lambda and mutated (`set!` target or `letrec` binding) — a
/// shared mutable cell. Cells never escape as first-class values: every
/// cell-addressed instruction dereferences them, so user code only ever
/// sees their contents.
#[derive(Debug, Clone)]
pub enum Slot {
    /// An immutable (or at least unaliased) binding.
    Val(Value),
    /// A shared cell: mutation through any alias is visible to all.
    Cell(Rc<std::cell::RefCell<Value>>),
}

impl Slot {
    /// The slot's current value (cells are dereferenced).
    pub fn get(&self) -> Value {
        match self {
            Slot::Val(v) => v.clone(),
            Slot::Cell(c) => c.borrow().clone(),
        }
    }

    /// Structural hash of the current value — what closure fingerprints
    /// use, matching the tree-walker's hash-at-capture-time semantics.
    pub fn hash_current(&self) -> u64 {
        match self {
            Slot::Val(v) => value_hash(v),
            Slot::Cell(c) => value_hash(&c.borrow()),
        }
    }
}

/// The two closure-environment representations, one per machine. The
/// reference tree-walker chains frames; the IR machine stores a flat
/// capture list ordered exactly as [`LambdaDef::free`] (which is what
/// keeps the two machines' fingerprints — and therefore their structural
/// size-change-table keys — identical). Values never flow between
/// machines, so each machine only ever sees its own representation.
pub enum ClosureEnv {
    /// Chained frames (reference tree-walker).
    Chain(crate::env::Env),
    /// Flat captures (IR machine), one [`Slot`] per free variable.
    Flat(Rc<[Slot]>),
}

/// An immutable hash table value.
pub struct HashData {
    /// Key → value entries.
    pub map: PMap<Value, Value>,
    hash: std::cell::Cell<Option<u64>>,
}

impl HashData {
    /// Wraps a persistent map as a hash value.
    pub fn new(map: PMap<Value, Value>) -> HashData {
        HashData {
            map,
            hash: std::cell::Cell::new(None),
        }
    }

    /// Order-independent structural hash, computed lazily and cached.
    pub fn hash_code(&self) -> u64 {
        if let Some(h) = self.hash.get() {
            return h;
        }
        let mut acc = 0x4a5f_u64;
        for (k, v) in self.map.iter() {
            // XOR of entry hashes: independent of iteration order.
            acc ^= mix2(value_hash(k), value_hash(v));
        }
        let h = mix2(acc, self.map.len() as u64);
        self.hash.set(Some(h));
        h
    }
}

/// A contract value.
pub enum ContractData {
    /// `(flat/c pred)` — accepts values satisfying the predicate.
    Flat(Value),
    /// `(->/c dom ... rng)` — function contract.
    Arrow {
        /// Domain contracts, one per argument.
        doms: Vec<Value>,
        /// Range contract.
        rng: Value,
    },
    /// `(and/c c ...)` — conjunction.
    And(Vec<Value>),
    /// `terminating/c` used as a combinator.
    Terminating,
}

/// How a procedure is wrapped.
pub enum WrapKind {
    /// `term/c⟨…⟩`: applying the wrapped closure enforces size-change
    /// termination for the call's dynamic extent, blaming `label`.
    Terminating {
        /// Blame label (§2.3).
        label: Rc<str>,
    },
    /// An `->/c` wrapper: checks domain contracts on the way in, the range
    /// contract on the way out.
    Arrow {
        /// Domain contracts.
        doms: Vec<Value>,
        /// Range contract.
        rng: Value,
        /// Party blamed when the function breaks its promise (range,
        /// termination).
        positive: Rc<str>,
        /// Party blamed when the caller breaks the contract (domain).
        negative: Rc<str>,
    },
}

/// A wrapped procedure.
pub struct WrappedData {
    /// The underlying procedure (closure, primitive, or another wrapper).
    pub inner: Value,
    /// The wrapper semantics.
    pub kind: WrapKind,
}

impl Value {
    /// Builds an integer value from `i64`.
    pub fn int(n: i64) -> Value {
        Value::Fix(n)
    }

    /// Builds an integer value from an [`Int`], preserving canonical form.
    pub fn from_int(n: Int) -> Value {
        match n {
            Int::Small(n) => Value::Fix(n),
            Int::Big(b) => Value::Big(b),
        }
    }

    /// The value as an [`Int`], when it is an integer.
    pub fn to_int(&self) -> Option<Int> {
        match self {
            Value::Fix(n) => Some(Int::Small(*n)),
            Value::Big(b) => Some(Int::Big(b.clone())),
            _ => None,
        }
    }

    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Builds a symbol value.
    pub fn sym(s: impl AsRef<str>) -> Value {
        Value::Sym(Rc::from(s.as_ref()))
    }

    /// Conses a pair, computing the cached hash and size.
    pub fn cons(car: Value, cdr: Value) -> Value {
        let hash = mix2(mix2(0xC0_4599, value_hash(&car)), value_hash(&cdr));
        let size = 1 + value_size(&car) + value_size(&cdr);
        Value::Pair(Rc::new(PairData {
            car,
            cdr,
            hash,
            size,
        }))
    }

    /// Builds a proper list from values.
    ///
    /// ```
    /// use sct_interp::Value;
    /// let l = Value::list(vec![Value::int(1), Value::int(2)]);
    /// assert_eq!(l.to_write_string(), "(1 2)");
    /// ```
    pub fn list(items: impl IntoIterator<Item = Value, IntoIter: DoubleEndedIterator>) -> Value {
        let mut acc = Value::Nil;
        for v in items.into_iter().rev() {
            acc = Value::cons(v, acc);
        }
        acc
    }

    /// Scheme truthiness: everything but `#f` is true.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Bool(false))
    }

    /// True for procedures (closures, primitives, wrapped procedures).
    pub fn is_procedure(&self) -> bool {
        matches!(self, Value::Closure(_) | Value::Prim(_) | Value::Wrapped(_))
    }

    /// Collects a proper list into a vector; `None` when improper.
    pub fn list_to_vec(&self) -> Option<Vec<Value>> {
        let mut out = Vec::new();
        let mut cur = self.clone();
        loop {
            match cur {
                Value::Nil => return Some(out),
                Value::Pair(p) => {
                    out.push(p.car.clone());
                    cur = p.cdr.clone();
                }
                _ => return None,
            }
        }
    }

    /// Type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Fix(_) | Value::Big(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::Char(_) => "char",
            Value::Str(_) => "string",
            Value::Sym(_) => "symbol",
            Value::Nil => "empty list",
            Value::Void => "void",
            Value::Pair(_) => "pair",
            Value::Closure(_) => "procedure",
            Value::Prim(_) => "primitive",
            Value::Hash(_) => "hash",
            Value::Contract(_) => "contract",
            Value::Wrapped(_) => "wrapped procedure",
            Value::Undefined => "undefined",
        }
    }

    /// `write`-style rendering (strings quoted, chars as `#\x`).
    pub fn to_write_string(&self) -> String {
        let mut s = String::new();
        write_value(&mut s, self, true);
        s
    }

    /// `display`-style rendering (strings and chars raw).
    pub fn to_display_string(&self) -> String {
        let mut s = String::new();
        write_value(&mut s, self, false);
        s
    }
}

/// Structural hash of any value (cached on compound values).
pub fn value_hash(v: &Value) -> u64 {
    match v {
        Value::Fix(n) => mix2(1, *n as u64),
        Value::Big(b) => {
            // Canonical form keeps Fix and Big disjoint, so only
            // in-process consistency for equal bignums is needed.
            let mut h = std::collections::hash_map::DefaultHasher::new();
            b.hash(&mut h);
            mix2(1, h.finish())
        }
        Value::Bool(b) => mix2(2, *b as u64),
        Value::Char(c) => mix2(3, *c as u64),
        Value::Str(s) => mix2(4, str_hash(s)),
        Value::Sym(s) => mix2(5, str_hash(s)),
        Value::Nil => 6,
        Value::Void => 7,
        Value::Pair(p) => p.hash_code(),
        Value::Closure(c) => mix2(8, c.fingerprint),
        Value::Prim(p) => mix2(9, *p as u64),
        Value::Hash(h) => h.hash_code(),
        Value::Contract(c) => mix2(10, Rc::as_ptr(c) as u64),
        Value::Wrapped(w) => mix2(11, Rc::as_ptr(w) as u64),
        Value::Undefined => 12,
    }
}

/// Node count of a value (pairs cached; everything else 1).
pub fn value_size(v: &Value) -> u64 {
    match v {
        Value::Pair(p) => p.size(),
        _ => 1,
    }
}

fn str_hash(s: &str) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

/// 64-bit mixing function (splitmix-style).
pub(crate) fn mix2(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// `eqv?`: identity, except numbers / chars / booleans / symbols compare by
/// value.
pub fn eqv(a: &Value, b: &Value) -> bool {
    match (a, b) {
        // Canonical form: an i64-range integer is always Fix, so a
        // Fix/Big cross pairing is never equal and falls to the catchall.
        (Value::Fix(x), Value::Fix(y)) => x == y,
        (Value::Big(x), Value::Big(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Char(x), Value::Char(y)) => x == y,
        (Value::Sym(x), Value::Sym(y)) => x == y,
        (Value::Nil, Value::Nil) | (Value::Void, Value::Void) => true,
        (Value::Str(x), Value::Str(y)) => Rc::ptr_eq(x, y),
        (Value::Pair(x), Value::Pair(y)) => Rc::ptr_eq(x, y),
        (Value::Closure(x), Value::Closure(y)) => Rc::ptr_eq(x, y),
        (Value::Prim(x), Value::Prim(y)) => x == y,
        (Value::Hash(x), Value::Hash(y)) => Rc::ptr_eq(x, y),
        (Value::Contract(x), Value::Contract(y)) => Rc::ptr_eq(x, y),
        (Value::Wrapped(x), Value::Wrapped(y)) => Rc::ptr_eq(x, y),
        (Value::Undefined, Value::Undefined) => true,
        _ => false,
    }
}

/// `eq?`: we implement it as [`eqv`], which is a legal refinement (R5RS
/// leaves `eq?` on numbers and chars unspecified).
pub fn eq(a: &Value, b: &Value) -> bool {
    eqv(a, b)
}

/// `equal?`: structural equality. Pair comparison short-circuits via cached
/// hashes and is iterative along cdr chains.
pub fn equal(a: &Value, b: &Value) -> bool {
    let mut stack = vec![(a.clone(), b.clone())];
    while let Some((x, y)) = stack.pop() {
        match (&x, &y) {
            (Value::Pair(p), Value::Pair(q)) => {
                if Rc::ptr_eq(p, q) {
                    continue;
                }
                if p.hash_code() != q.hash_code() || p.size() != q.size() {
                    return false;
                }
                stack.push((p.car.clone(), q.car.clone()));
                stack.push((p.cdr.clone(), q.cdr.clone()));
            }
            (Value::Str(s), Value::Str(t)) => {
                if s != t {
                    return false;
                }
            }
            (Value::Hash(hx), Value::Hash(hy)) => {
                if Rc::ptr_eq(hx, hy) {
                    continue;
                }
                if hx.map.len() != hy.map.len() {
                    return false;
                }
                for (k, v) in hx.map.iter() {
                    match hy.map.get(k) {
                        Some(w) if equal(v, w) => {}
                        _ => return false,
                    }
                }
            }
            (Value::Closure(c), Value::Closure(d)) => {
                // Structural closure equality: same lambda and captured
                // environment fingerprint (the formal model's (⃗x,e,ρ) = (⃗x,e,ρ′)
                // approximated as in §5 by hashing).
                if !(c.def.id == d.def.id && c.fingerprint == d.fingerprint) {
                    return false;
                }
            }
            _ => {
                if !eqv(&x, &y) {
                    return false;
                }
            }
        }
    }
    true
}

/// `PartialEq`/`Hash` for [`Value`] use *structural* semantics (`equal?` and
/// [`value_hash`]) so values can key persistent maps.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        equal(self, other)
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(value_hash(self));
    }
}

fn write_value(out: &mut String, v: &Value, write_mode: bool) {
    match v {
        Value::Fix(n) => out.push_str(&n.to_string()),
        Value::Big(b) => out.push_str(&b.to_string()),
        Value::Bool(true) => out.push_str("#t"),
        Value::Bool(false) => out.push_str("#f"),
        Value::Char(c) => {
            if write_mode {
                match c {
                    ' ' => out.push_str("#\\space"),
                    '\n' => out.push_str("#\\newline"),
                    '\t' => out.push_str("#\\tab"),
                    c => {
                        out.push_str("#\\");
                        out.push(*c);
                    }
                }
            } else {
                out.push(*c);
            }
        }
        Value::Str(s) => {
            if write_mode {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            } else {
                out.push_str(s);
            }
        }
        Value::Sym(s) => out.push_str(s),
        Value::Nil => out.push_str("()"),
        Value::Void => out.push_str("#<void>"),
        Value::Pair(p) => {
            out.push('(');
            write_value(out, &p.car, write_mode);
            let mut cur = p.cdr.clone();
            loop {
                match cur {
                    Value::Nil => break,
                    Value::Pair(q) => {
                        out.push(' ');
                        write_value(out, &q.car, write_mode);
                        cur = q.cdr.clone();
                    }
                    other => {
                        out.push_str(" . ");
                        write_value(out, &other, write_mode);
                        break;
                    }
                }
            }
            out.push(')');
        }
        Value::Closure(c) => {
            out.push_str("#<procedure:");
            out.push_str(&c.def.describe());
            out.push('>');
        }
        Value::Prim(p) => {
            out.push_str("#<primitive:");
            out.push_str(p.name());
            out.push('>');
        }
        Value::Hash(h) => {
            out.push_str("#<hash");
            let mut entries: Vec<String> = h
                .map
                .iter()
                .map(|(k, v)| {
                    let mut s = String::new();
                    s.push_str(" (");
                    write_value(&mut s, k, true);
                    s.push_str(" . ");
                    write_value(&mut s, v, true);
                    s.push(')');
                    s
                })
                .collect();
            entries.sort();
            for e in entries {
                out.push_str(&e);
            }
            out.push('>');
        }
        Value::Contract(c) => match c.as_ref() {
            ContractData::Flat(_) => out.push_str("#<contract:flat/c>"),
            ContractData::Arrow { .. } => out.push_str("#<contract:->/c>"),
            ContractData::And(_) => out.push_str("#<contract:and/c>"),
            ContractData::Terminating => out.push_str("#<contract:terminating/c>"),
        },
        Value::Wrapped(w) => match &w.kind {
            WrapKind::Terminating { label } => {
                out.push_str("#<terminating/c ");
                out.push_str(label);
                out.push('>');
            }
            WrapKind::Arrow { .. } => out.push_str("#<->/c-wrapped>"),
        },
        Value::Undefined => out.push_str("#<undefined>"),
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_write_string())
    }
}

impl fmt::Display for Value {
    /// `display` form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_display_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(Value::int(0).is_truthy(), "0 is true in Scheme");
        assert!(Value::Nil.is_truthy());
    }

    #[test]
    fn list_roundtrip() {
        let l = Value::list(vec![Value::int(1), Value::sym("a"), Value::Nil]);
        assert_eq!(l.to_write_string(), "(1 a ())");
        let v = l.list_to_vec().unwrap();
        assert_eq!(v.len(), 3);
        let improper = Value::cons(Value::int(1), Value::int(2));
        assert_eq!(improper.to_write_string(), "(1 . 2)");
        assert!(improper.list_to_vec().is_none());
    }

    #[test]
    fn equal_structural() {
        let a = Value::list(vec![Value::int(1), Value::str("x")]);
        let b = Value::list(vec![Value::int(1), Value::str("x")]);
        assert!(equal(&a, &b));
        assert!(!eqv(&a, &b), "distinct allocations are not eqv?");
        assert!(eqv(&a, &a.clone()));
        let c = Value::list(vec![Value::int(2), Value::str("x")]);
        assert!(!equal(&a, &c));
    }

    #[test]
    fn eqv_on_atoms() {
        assert!(eqv(&Value::int(42), &Value::int(42)));
        assert!(eqv(&Value::sym("a"), &Value::sym("a")));
        assert!(!eqv(&Value::int(1), &Value::Bool(true)));
        assert!(eqv(&Value::Char('x'), &Value::Char('x')));
    }

    #[test]
    fn hashes_agree_with_equal() {
        let a = Value::list(vec![Value::int(1), Value::list(vec![Value::sym("q")])]);
        let b = Value::list(vec![Value::int(1), Value::list(vec![Value::sym("q")])]);
        assert_eq!(value_hash(&a), value_hash(&b));
    }

    #[test]
    fn sizes_cached() {
        let l = Value::list(vec![Value::int(1), Value::int(2), Value::int(3)]);
        // (1 2 3) = 3 pairs + 3 atoms + nil = 7 nodes.
        assert_eq!(value_size(&l), 7);
        assert_eq!(value_size(&Value::int(5)), 1);
    }

    #[test]
    fn display_vs_write() {
        let v = Value::list(vec![Value::str("hi"), Value::Char('c')]);
        assert_eq!(v.to_write_string(), "(\"hi\" #\\c)");
        assert_eq!(v.to_display_string(), "(hi c)");
    }

    #[test]
    fn deep_list_drop_does_not_overflow() {
        let mut l = Value::Nil;
        for i in 0..200_000 {
            l = Value::cons(Value::int(i), l);
        }
        drop(l); // must not overflow the stack
    }

    #[test]
    fn hash_values() {
        let h0 = Value::Hash(Rc::new(HashData::new(PMap::new())));
        let Value::Hash(hd) = &h0 else { unreachable!() };
        let m1 = hd.map.insert(Value::sym("x"), Value::int(1));
        let h1 = Value::Hash(Rc::new(HashData::new(m1.clone())));
        let h1b = Value::Hash(Rc::new(HashData::new(m1)));
        assert!(equal(&h1, &h1b));
        assert!(!equal(&h0, &h1));
        assert_eq!(value_hash(&h1), value_hash(&h1b));
    }
}

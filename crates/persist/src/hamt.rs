//! Hash array mapped trie with 32-way branching.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

const BITS: u32 = 5;
const FANOUT: u32 = 1 << BITS; // 32
const MASK: u64 = (FANOUT - 1) as u64;
/// Levels before the 64-bit hash is exhausted and we fall back to a
/// collision bucket.
const MAX_DEPTH: u32 = 64 / BITS; // 12

fn hash_of<K: Hash>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

enum Node<K, V> {
    /// Interior node: `bitmap` has a bit per occupied slot; `children` holds
    /// the occupied slots in slot order.
    Branch {
        bitmap: u32,
        children: Vec<Rc<Node<K, V>>>,
    },
    /// One or more entries whose hashes collide down to this depth.
    Leaf { hash: u64, entries: Vec<(K, V)> },
}

fn slot(hash: u64, depth: u32) -> u32 {
    ((hash >> (depth * BITS)) & MASK) as u32
}

/// A persistent hash map: every mutating operation returns a new map that
/// shares almost all structure with its parent.
///
/// Requires `K: Hash + Eq + Clone` and `V: Clone`; clones happen only along
/// the modified path.
///
/// # Examples
///
/// ```
/// use sct_persist::PMap;
///
/// let base: PMap<u32, &str> = PMap::new().insert(1, "one").insert(2, "two");
/// let updated = base.insert(1, "uno");
/// assert_eq!(base.get(&1), Some(&"one"));
/// assert_eq!(updated.get(&1), Some(&"uno"));
/// ```
pub struct PMap<K, V> {
    root: Option<Rc<Node<K, V>>>,
    len: usize,
}

impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        PMap {
            root: self.root.clone(),
            len: self.len,
        }
    }
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap::new()
    }
}

impl<K, V> PMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> PMap<K, V> {
        PMap { root: None, len: 0 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<K: Hash + Eq + Clone, V: Clone> PMap<K, V> {
    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        let h = hash_of(key);
        let mut depth = 0;
        loop {
            match node {
                Node::Leaf { hash, entries } => {
                    if *hash != h {
                        return None;
                    }
                    return entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
                }
                Node::Branch { bitmap, children } => {
                    let s = slot(h, depth);
                    let bit = 1u32 << s;
                    if bitmap & bit == 0 {
                        return None;
                    }
                    let idx = (bitmap & (bit - 1)).count_ones() as usize;
                    node = &children[idx];
                    depth += 1;
                }
            }
        }
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Returns a map extended (or overwritten) with `key → value`.
    #[must_use = "PMap is persistent; insert returns the new map"]
    pub fn insert(&self, key: K, value: V) -> PMap<K, V> {
        let h = hash_of(&key);
        let (root, added) = match &self.root {
            None => (
                Rc::new(Node::Leaf {
                    hash: h,
                    entries: vec![(key, value)],
                }),
                true,
            ),
            Some(node) => insert_node(node, 0, h, key, value),
        };
        PMap {
            root: Some(root),
            len: self.len + usize::from(added),
        }
    }

    /// Returns a map without `key` (unchanged if absent).
    #[must_use = "PMap is persistent; remove returns the new map"]
    pub fn remove(&self, key: &K) -> PMap<K, V> {
        let h = hash_of(key);
        match &self.root {
            None => self.clone(),
            Some(node) => match remove_node(node, 0, h, key) {
                RemoveResult::NotFound => self.clone(),
                RemoveResult::Empty => PMap {
                    root: None,
                    len: self.len - 1,
                },
                RemoveResult::Replaced(n) => PMap {
                    root: Some(n),
                    len: self.len - 1,
                },
            },
        }
    }

    /// Iterates over entries in unspecified order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut stack = Vec::new();
        if let Some(r) = &self.root {
            stack.push(NodeIter::new(r));
        }
        Iter { stack }
    }

    /// Iterates over keys in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates over values in unspecified order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

enum NodeIter<'a, K, V> {
    Branch(&'a [Rc<Node<K, V>>], usize),
    Leaf(&'a [(K, V)], usize),
}

impl<'a, K, V> NodeIter<'a, K, V> {
    fn new(node: &'a Node<K, V>) -> Self {
        match node {
            Node::Branch { children, .. } => NodeIter::Branch(children, 0),
            Node::Leaf { entries, .. } => NodeIter::Leaf(entries, 0),
        }
    }
}

/// Iterator over a [`PMap`]'s entries. Order is unspecified.
pub struct Iter<'a, K, V> {
    stack: Vec<NodeIter<'a, K, V>>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let top = self.stack.last_mut()?;
            match top {
                NodeIter::Leaf(entries, i) => {
                    if *i < entries.len() {
                        let (k, v) = &entries[*i];
                        *i += 1;
                        return Some((k, v));
                    }
                    self.stack.pop();
                }
                NodeIter::Branch(children, i) => {
                    if *i < children.len() {
                        let child = &children[*i];
                        *i += 1;
                        let it = NodeIter::new(child);
                        self.stack.push(it);
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

fn insert_node<K: Hash + Eq + Clone, V: Clone>(
    node: &Rc<Node<K, V>>,
    depth: u32,
    h: u64,
    key: K,
    value: V,
) -> (Rc<Node<K, V>>, bool) {
    match node.as_ref() {
        Node::Leaf { hash, entries } => {
            if *hash == h {
                let mut entries = entries.clone();
                match entries.iter_mut().find(|(k, _)| *k == key) {
                    Some(entry) => {
                        entry.1 = value;
                        (Rc::new(Node::Leaf { hash: h, entries }), false)
                    }
                    None => {
                        entries.push((key, value));
                        (Rc::new(Node::Leaf { hash: h, entries }), true)
                    }
                }
            } else if depth >= MAX_DEPTH {
                // Hash exhausted but hashes differ — cannot happen, since
                // equal slots at every level imply equal hashes; defensive:
                let mut entries = entries.clone();
                entries.push((key, value));
                (Rc::new(Node::Leaf { hash: h, entries }), true)
            } else {
                // Split: push the existing leaf down one level and retry.
                let old_slot = slot(*hash, depth);
                let branch = Rc::new(Node::Branch {
                    bitmap: 1 << old_slot,
                    children: vec![node.clone()],
                });
                insert_node(&branch, depth, h, key, value)
            }
        }
        Node::Branch { bitmap, children } => {
            let s = slot(h, depth);
            let bit = 1u32 << s;
            let idx = (bitmap & (bit - 1)).count_ones() as usize;
            if bitmap & bit != 0 {
                let (new_child, added) = insert_node(&children[idx], depth + 1, h, key, value);
                let mut children = children.clone();
                children[idx] = new_child;
                (
                    Rc::new(Node::Branch {
                        bitmap: *bitmap,
                        children,
                    }),
                    added,
                )
            } else {
                let mut children = children.clone();
                children.insert(
                    idx,
                    Rc::new(Node::Leaf {
                        hash: h,
                        entries: vec![(key, value)],
                    }),
                );
                (
                    Rc::new(Node::Branch {
                        bitmap: bitmap | bit,
                        children,
                    }),
                    true,
                )
            }
        }
    }
}

enum RemoveResult<K, V> {
    NotFound,
    Empty,
    Replaced(Rc<Node<K, V>>),
}

fn remove_node<K: Hash + Eq + Clone, V: Clone>(
    node: &Rc<Node<K, V>>,
    depth: u32,
    h: u64,
    key: &K,
) -> RemoveResult<K, V> {
    match node.as_ref() {
        Node::Leaf { hash, entries } => {
            if *hash != h {
                return RemoveResult::NotFound;
            }
            let Some(pos) = entries.iter().position(|(k, _)| k == key) else {
                return RemoveResult::NotFound;
            };
            if entries.len() == 1 {
                RemoveResult::Empty
            } else {
                let mut entries = entries.clone();
                entries.remove(pos);
                RemoveResult::Replaced(Rc::new(Node::Leaf { hash: h, entries }))
            }
        }
        Node::Branch { bitmap, children } => {
            let s = slot(h, depth);
            let bit = 1u32 << s;
            if bitmap & bit == 0 {
                return RemoveResult::NotFound;
            }
            let idx = (bitmap & (bit - 1)).count_ones() as usize;
            match remove_node(&children[idx], depth + 1, h, key) {
                RemoveResult::NotFound => RemoveResult::NotFound,
                RemoveResult::Replaced(child) => {
                    let mut children = children.clone();
                    children[idx] = child;
                    RemoveResult::Replaced(Rc::new(Node::Branch {
                        bitmap: *bitmap,
                        children,
                    }))
                }
                RemoveResult::Empty => {
                    if children.len() == 1 {
                        RemoveResult::Empty
                    } else {
                        let mut children = children.clone();
                        children.remove(idx);
                        // Collapse a single-leaf branch into the leaf itself.
                        if children.len() == 1 {
                            if let Node::Leaf { .. } = children[0].as_ref() {
                                return RemoveResult::Replaced(children[0].clone());
                            }
                        }
                        RemoveResult::Replaced(Rc::new(Node::Branch {
                            bitmap: bitmap & !bit,
                            children,
                        }))
                    }
                }
            }
        }
    }
}

impl<K: Hash + Eq + Clone + fmt::Debug, V: Clone + fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Hash + Eq + Clone, V: Clone + PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl<K: Hash + Eq + Clone, V: Clone + Eq> Eq for PMap<K, V> {}

impl<K: Hash + Eq + Clone, V: Clone> FromIterator<(K, V)> for PMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        iter.into_iter()
            .fold(PMap::new(), |m, (k, v)| m.insert(k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map() {
        let m: PMap<u64, u64> = PMap::new();
        assert_eq!(m.len(), 0);
        assert!(m.is_empty());
        assert_eq!(m.get(&1), None);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn insert_get_overwrite() {
        let m = PMap::new().insert(1u64, "a").insert(2, "b");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&1), Some(&"a"));
        let m2 = m.insert(1, "z");
        assert_eq!(m2.len(), 2);
        assert_eq!(m2.get(&1), Some(&"z"));
        assert_eq!(m.get(&1), Some(&"a"), "old version unchanged");
    }

    #[test]
    fn remove_cases() {
        let m: PMap<u64, u64> = (0..100).map(|i| (i, i * i)).collect();
        assert_eq!(m.len(), 100);
        let m2 = m.remove(&50);
        assert_eq!(m2.len(), 99);
        assert_eq!(m2.get(&50), None);
        assert_eq!(m.get(&50), Some(&2500));
        let m3 = m2.remove(&50);
        assert_eq!(m3.len(), 99, "removing absent key is identity");
        let mut shrinking = m;
        for i in 0..100 {
            shrinking = shrinking.remove(&i);
        }
        assert!(shrinking.is_empty());
    }

    #[test]
    fn many_keys() {
        let n = 10_000u64;
        let m: PMap<u64, u64> = (0..n).map(|i| (i, i + 1)).collect();
        assert_eq!(m.len(), n as usize);
        for i in (0..n).step_by(371) {
            assert_eq!(m.get(&i), Some(&(i + 1)));
        }
        assert_eq!(m.iter().count(), n as usize);
        let sum: u64 = m.values().sum();
        assert_eq!(sum, (1..=n).sum());
    }

    #[test]
    fn equality_is_structural() {
        let a: PMap<u64, u64> = (0..50).map(|i| (i, i)).collect();
        let b: PMap<u64, u64> = (0..50).rev().map(|i| (i, i)).collect();
        assert_eq!(a, b);
        assert_ne!(a, b.insert(1, 99));
        assert_ne!(a, b.remove(&0));
    }

    /// Keys engineered to collide in the low bits exercise deep splitting.
    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Colliding(u64);

    impl Hash for Colliding {
        fn hash<H: Hasher>(&self, state: &mut H) {
            // Only 2 distinct hashes for all keys: mass collisions.
            (self.0 % 2).hash(state);
        }
    }

    #[test]
    fn hash_collisions() {
        let mut m = PMap::new();
        for i in 0..64u64 {
            m = m.insert(Colliding(i), i);
        }
        assert_eq!(m.len(), 64);
        for i in 0..64u64 {
            assert_eq!(m.get(&Colliding(i)), Some(&i), "lookup collided key {i}");
        }
        for i in (0..64u64).step_by(2) {
            m = m.remove(&Colliding(i));
        }
        assert_eq!(m.len(), 32);
        for i in 0..64u64 {
            assert_eq!(m.get(&Colliding(i)).is_some(), i % 2 == 1);
        }
    }
}

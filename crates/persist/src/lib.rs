//! Persistent (immutable, structurally shared) hash maps and sets.
//!
//! The continuation-mark implementation strategy of §5 stores the *entire*
//! size-change table in a continuation mark: a tail call replaces the mark,
//! a return discards it, so the table seen after a call returns is exactly
//! the caller's — the dynamic-extent discipline of the formal semantics,
//! for free. That only works if tables are persistent values, like Racket's
//! immutable hashes. This crate is that substrate: a hash array mapped trie
//! ([`PMap`]) and a set wrapper ([`PSet`]), both with O(log₃₂ n) insert /
//! lookup / remove and full structural sharing.
//!
//! # Examples
//!
//! ```
//! use sct_persist::PMap;
//!
//! let m0: PMap<&str, i32> = PMap::new();
//! let m1 = m0.insert("x", 1);
//! let m2 = m1.insert("y", 2);
//! assert_eq!(m0.len(), 0);            // older versions are untouched
//! assert_eq!(m2.get(&"x"), Some(&1));
//! assert_eq!(m2.len(), 2);
//! ```

mod hamt;
mod pset;

pub use hamt::PMap;
pub use pset::PSet;

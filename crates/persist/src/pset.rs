//! Persistent set built on [`PMap`].

use crate::PMap;
use std::fmt;
use std::hash::Hash;

/// A persistent hash set with structural sharing.
///
/// Used by the size-change core to hold the deduplicated set of composed
/// size-change graphs per monitored function.
///
/// # Examples
///
/// ```
/// use sct_persist::PSet;
///
/// let s = PSet::new().insert(3).insert(5);
/// assert!(s.contains(&3));
/// let s2 = s.insert(3);
/// assert_eq!(s2.len(), 2);
/// ```
pub struct PSet<T> {
    map: PMap<T, ()>,
}

impl<T> Clone for PSet<T> {
    fn clone(&self) -> Self {
        PSet {
            map: self.map.clone(),
        }
    }
}

impl<T> Default for PSet<T> {
    fn default() -> Self {
        PSet::new()
    }
}

impl<T> PSet<T> {
    /// Creates an empty set.
    pub fn new() -> PSet<T> {
        PSet { map: PMap::new() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl<T: Hash + Eq + Clone> PSet<T> {
    /// True when the element is present.
    pub fn contains(&self, value: &T) -> bool {
        self.map.contains_key(value)
    }

    /// Returns a set extended with `value`.
    #[must_use = "PSet is persistent; insert returns the new set"]
    pub fn insert(&self, value: T) -> PSet<T> {
        PSet {
            map: self.map.insert(value, ()),
        }
    }

    /// Returns a set without `value`.
    #[must_use = "PSet is persistent; remove returns the new set"]
    pub fn remove(&self, value: &T) -> PSet<T> {
        PSet {
            map: self.map.remove(value),
        }
    }

    /// Iterates in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.map.keys()
    }
}

impl<T: Hash + Eq + Clone + fmt::Debug> fmt::Debug for PSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<T: Hash + Eq + Clone> PartialEq for PSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|v| other.contains(v))
    }
}

impl<T: Hash + Eq + Clone> Eq for PSet<T> {}

impl<T: Hash + Eq + Clone> FromIterator<T> for PSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        iter.into_iter().fold(PSet::new(), |s, v| s.insert(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let s: PSet<u32> = (0..10).collect();
        assert_eq!(s.len(), 10);
        assert!(s.contains(&7));
        assert!(!s.contains(&10));
        let s2 = s.remove(&7);
        assert!(!s2.contains(&7));
        assert!(s.contains(&7));
        assert_eq!(s.insert(3).len(), 10, "duplicate insert is identity on len");
    }

    #[test]
    fn equality() {
        let a: PSet<u32> = (0..5).collect();
        let b: PSet<u32> = (0..5).rev().collect();
        assert_eq!(a, b);
        assert_ne!(a, b.insert(99));
    }
}

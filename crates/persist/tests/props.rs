//! Property tests: PMap agrees with std::collections::HashMap under random
//! operation sequences, and persistence never mutates old versions.

use proptest::prelude::*;
use sct_persist::PMap;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 256, v)),
            any::<u16>().prop_map(|k| Op::Remove(k % 256)),
        ],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn agrees_with_hashmap(ops in ops_strategy()) {
        let mut reference: HashMap<u16, u32> = HashMap::new();
        let mut pmap: PMap<u16, u32> = PMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    reference.insert(*k, *v);
                    pmap = pmap.insert(*k, *v);
                }
                Op::Remove(k) => {
                    reference.remove(k);
                    pmap = pmap.remove(k);
                }
            }
            prop_assert_eq!(pmap.len(), reference.len());
        }
        for (k, v) in &reference {
            prop_assert_eq!(pmap.get(k), Some(v));
        }
        prop_assert_eq!(pmap.iter().count(), reference.len());
        for (k, v) in pmap.iter() {
            prop_assert_eq!(reference.get(k), Some(v));
        }
    }

    #[test]
    fn old_versions_are_frozen(ops in ops_strategy()) {
        // Record every intermediate version plus the reference state at that
        // point; at the end, each snapshot must still agree.
        let mut reference: HashMap<u16, u32> = HashMap::new();
        let mut pmap: PMap<u16, u32> = PMap::new();
        let mut snapshots: Vec<(PMap<u16, u32>, HashMap<u16, u32>)> = Vec::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    reference.insert(*k, *v);
                    pmap = pmap.insert(*k, *v);
                }
                Op::Remove(k) => {
                    reference.remove(k);
                    pmap = pmap.remove(k);
                }
            }
            if snapshots.len() < 20 {
                snapshots.push((pmap.clone(), reference.clone()));
            }
        }
        for (snap, reference) in &snapshots {
            prop_assert_eq!(snap.len(), reference.len());
            for (k, v) in reference {
                prop_assert_eq!(snap.get(k), Some(v));
            }
        }
    }
}

//! Criterion measurements behind Table 1: dynamic-check latency on
//! representative corpus rows and static-verification latency on the
//! paper's running example.

use criterion::{criterion_group, criterion_main, Criterion};
use sct_core::monitor::TableStrategy;
use sct_corpus::{run_dynamic, table1};
use sct_symbolic::{verify_function, SymDomain, VerifyConfig};

fn dynamic_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/dynamic");
    group.sample_size(10);
    for id in ["sct-3", "lh-merge", "nfa", "scheme"] {
        let p = table1::all().into_iter().find(|p| p.id == id).unwrap();
        group.bench_function(id, |b| {
            b.iter(|| run_dynamic(&p, TableStrategy::Imperative).unwrap());
        });
    }
    group.finish();
}

fn static_ack(c: &mut Criterion) {
    let p = table1::all().into_iter().find(|p| p.id == "sct-3").unwrap();
    let prog = sct_lang::compile_program(p.source).unwrap();
    let mut group = c.benchmark_group("table1/static");
    group.sample_size(10);
    group.bench_function("verify-ack", |b| {
        b.iter(|| {
            let v = verify_function(
                &prog,
                "ack",
                &[SymDomain::Nat, SymDomain::Nat],
                SymDomain::Nat,
                &VerifyConfig::default(),
            );
            assert!(v.is_verified());
        });
    });
    group.finish();
}

criterion_group!(benches, dynamic_rows, static_ack);
criterion_main!(benches);

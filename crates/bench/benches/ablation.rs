//! Ablations of the §5 design choices: backoff policy, loop-entry
//! detection, closure key strategy, and the table strategy itself, on a
//! tight loop where monitoring costs are maximally visible.

use criterion::{criterion_group, criterion_main, Criterion};
use sct_core::monitor::{BackoffPolicy, KeyStrategy, MonitorConfig, TableStrategy};
use sct_interp::{Machine, MachineConfig, SemanticsMode, Value};
use sct_lang::compile_program;

const SUM: &str = "
(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))";

fn run_sum(prog: &sct_lang::ast::Program, config: MachineConfig, n: i64) {
    let mut m = Machine::new(prog, config);
    m.run().unwrap();
    let f = m.global("sum").unwrap();
    let v = m.call(f, vec![Value::int(n), Value::int(0)]).unwrap();
    assert_eq!(v, Value::int(n * (n + 1) / 2));
}

fn ablation(c: &mut Criterion) {
    let prog = compile_program(SUM).unwrap();
    let n = 10_000i64;
    let mut group = c.benchmark_group("ablation/sum");
    group.sample_size(10);

    let base = MachineConfig {
        mode: SemanticsMode::Monitored,
        monitor: MonitorConfig::default(),
        ..MachineConfig::default()
    };

    group.bench_function("monitored-baseline", |b| {
        b.iter(|| run_sum(&prog, base.clone(), n));
    });
    group.bench_function("backoff-exponential", |b| {
        let mut cfg = base.clone();
        cfg.monitor.backoff = BackoffPolicy::Exponential { factor: 2 };
        b.iter(|| run_sum(&prog, cfg.clone(), n));
    });
    group.bench_function("loop-entries-only", |b| {
        let mut cfg = base.clone();
        cfg.monitor.loop_entries_only = true;
        b.iter(|| run_sum(&prog, cfg.clone(), n));
    });
    group.bench_function("backoff-plus-loop-entries", |b| {
        let mut cfg = base.clone();
        cfg.monitor.backoff = BackoffPolicy::Exponential { factor: 2 };
        cfg.monitor.loop_entries_only = true;
        b.iter(|| run_sum(&prog, cfg.clone(), n));
    });
    group.bench_function("key-lambda-only", |b| {
        let mut cfg = base.clone();
        cfg.monitor.key_strategy = KeyStrategy::LambdaOnly;
        b.iter(|| run_sum(&prog, cfg.clone(), n));
    });
    group.bench_function("key-allocation", |b| {
        let mut cfg = base.clone();
        cfg.monitor.key_strategy = KeyStrategy::Allocation;
        b.iter(|| run_sum(&prog, cfg.clone(), n));
    });
    group.bench_function("strategy-continuation-mark", |b| {
        let mut cfg = base.clone();
        cfg.monitor.strategy = TableStrategy::ContinuationMark;
        b.iter(|| run_sum(&prog, cfg.clone(), n));
    });
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);

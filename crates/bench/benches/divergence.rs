//! Criterion measurements behind §5.1.2: time from program start to the
//! size-change error on the diverging corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use sct_bench::time_to_detection;
use sct_core::monitor::TableStrategy;
use sct_corpus::diverging;

fn detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("divergence/detect");
    group.sample_size(10);
    for p in diverging::all() {
        group.bench_function(p.id, |b| {
            b.iter(|| time_to_detection(&p, TableStrategy::Imperative));
        });
    }
    group.finish();
}

criterion_group!(benches, detection);
criterion_main!(benches);

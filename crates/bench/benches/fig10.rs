//! Criterion measurements behind Figure 10: each workload at a fixed
//! representative size under the three configurations. The report binary
//! (`report_fig10`) sweeps sizes; this bench gives statistically solid
//! numbers at one point per curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sct_bench::{CompiledWorkload, Setup};
use sct_corpus::workloads;

fn bench_size(id: &str) -> u64 {
    match id {
        "fact" => 300,
        "sum" => 10_000,
        "ack" => 150,
        "msort" => 400,
        "interp-fact" => 60,
        "interp-sum" => 150,
        "interp-msort" => 64,
        _ => 100,
    }
}

fn fig10(c: &mut Criterion) {
    for w in workloads::fig10() {
        let n = bench_size(w.id);
        let id = w.id;
        let compiled = CompiledWorkload::new(w);
        let mut group = c.benchmark_group(format!("fig10/{id}"));
        group.sample_size(10);
        for setup in Setup::all() {
            group.bench_with_input(BenchmarkId::new(setup.label(), n), &n, |b, &n| {
                b.iter(|| compiled.run_once(n, setup));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, fig10);
criterion_main!(benches);

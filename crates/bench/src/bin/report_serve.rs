//! Load driver for the `sct serve` daemon: starts a real daemon on a
//! Unix socket, hammers it from concurrent clients with a mixed
//! `hybrid`/`plan`/`run` workload, and reports throughput plus per-op
//! latency — every latency number read back from the daemon's own
//! `metrics` op (the `sct-obs` histograms), not measured client-side.
//! The result is recorded as `BENCH_serve.json` at the repo root
//! (schema `sct-serve/1`):
//!
//! ```json
//! {
//!   "schema": "sct-serve/1",
//!   "fast": false, "clients": 8, "requests": 2000,
//!   "duration_ms": 1234.5, "throughput_rps": 1620.1,
//!   "warm_hit_rate": 0.99,
//!   "ops": [ { "op": "hybrid", "count": 800, "p50_us": 120, "p99_us": 900 }, … ]
//! }
//! ```
//!
//! `warm_hit_rate` is the decision-store hit fraction
//! (`cache.hits / (cache.hits + cache.misses)`): the workload repeats a
//! small source set, so after each source's first plan every later
//! request should load its decisions warm — the daemon's whole point.
//!
//! Run: `cargo run --release -p sct-bench --bin report_serve
//! [--fast] [--clients N] [--requests N] [--out PATH]`
//!
//! `--fast` is the CI smoke mode (2 clients × 25 requests);
//! `--requests` is per client.

use sct_contracts::serve::{serve_unix, ServeOptions, Server};
use sct_core::json::{parse, Json};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The request mix, cycled per client: two plan-heavy ops that exercise
/// the decision store (same sources every time, so the store warms after
/// the first pass) and one pure-execution op.
const MIX: [&str; 3] = [
    r#"{"op":"hybrid","source":"(define (sum i a) (if (zero? i) a (sum (- i 1) (+ a i)))) (sum 200 0)"}"#,
    r#"{"op":"plan","source":"(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))"}"#,
    r#"{"op":"run","source":"(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 12)","fuel":1000000}"#,
];

/// One client connection driving `requests` pipelimited (send, read,
/// repeat) requests through the socket. Returns how many responses came
/// back `"ok":true`.
fn client_loop(path: &std::path::Path, requests: usize, who: usize) -> usize {
    let stream = UnixStream::connect(path).expect("connect to bench daemon");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut ok = 0;
    for i in 0..requests {
        let req = MIX[(who + i) % MIX.len()];
        writeln!(writer, "{req}").expect("write request");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        if line.contains("\"ok\":true") {
            ok += 1;
        }
    }
    ok
}

/// Asks the daemon for its registry snapshot, parsed.
fn fetch_metrics(path: &std::path::Path) -> Json {
    let stream = UnixStream::connect(path).expect("connect for metrics");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    writeln!(writer, r#"{{"op":"metrics"}}"#).expect("write metrics request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read metrics response");
    let doc = parse(line.trim()).expect("metrics response is JSON");
    assert_eq!(
        doc.get("ok"),
        Some(&Json::Bool(true)),
        "metrics op failed: {line}"
    );
    doc.get("metrics").expect("metrics payload").clone()
}

struct OpRow {
    op: &'static str,
    count: i64,
    p50_us: i64,
    p99_us: i64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let fast = args.iter().any(|a| a == "--fast");
    let clients: usize = flag_value("--clients")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if fast { 2 } else { 8 });
    let per_client: usize = flag_value("--requests")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if fast { 25 } else { 250 });
    let out_path = flag_value("--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(sct_bench::serve_json_path);

    let socket = std::env::temp_dir().join(format!("sct-bench-serve-{}.sock", std::process::id()));
    let server = Arc::new(
        Server::new(ServeOptions {
            threads: 0,
            ..ServeOptions::default()
        })
        .expect("start bench daemon"),
    );
    let daemon = {
        let server = Arc::clone(&server);
        let socket = socket.clone();
        std::thread::spawn(move || serve_unix(server, &socket))
    };
    // The listener binds on the daemon thread; wait for the socket file.
    let bound = Instant::now();
    while !socket.exists() {
        assert!(
            bound.elapsed() < Duration::from_secs(10),
            "daemon never bound {}",
            socket.display()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    println!(
        "sct serve load driver: {clients} clients x {per_client} requests (mix: hybrid/plan/run)"
    );
    let started = Instant::now();
    let socket_ref = &socket;
    let oks: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|who| s.spawn(move || client_loop(socket_ref, per_client, who)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    let elapsed = started.elapsed();
    let total = clients * per_client;
    assert_eq!(oks, total, "every request in the mix must succeed");

    // Latency comes from the daemon's own histograms, post-hoc — the
    // load phase pays zero instrumentation cost beyond the atomics.
    let metrics = fetch_metrics(&socket);
    let hists = metrics.get("histograms").expect("histograms in snapshot");
    let ops: Vec<OpRow> = ["hybrid", "plan", "run"]
        .into_iter()
        .map(|op| {
            let h = hists
                .get(&format!("serve.latency.{op}_us"))
                .unwrap_or_else(|| panic!("no latency histogram for {op}"));
            let int = |k: &str| h.get(k).and_then(Json::as_i64).unwrap_or(0);
            OpRow {
                op,
                count: int("count"),
                p50_us: int("p50"),
                p99_us: int("p99"),
            }
        })
        .collect();
    let counters = metrics.get("counters").expect("counters in snapshot");
    let counter = |k: &str| {
        counters
            .get(k)
            .and_then(Json::as_i64)
            .unwrap_or_else(|| panic!("no counter {k}"))
    };
    let (hits, misses) = (counter("cache.hits"), counter("cache.misses"));
    let warm_hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    let served: i64 = ops.iter().map(|o| o.count).sum();
    assert_eq!(
        served, total as i64,
        "daemon histograms must account for every request sent"
    );

    // Shut the daemon down over the protocol, like any client would.
    {
        let stream = UnixStream::connect(&socket).expect("connect for shutdown");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut writer = stream;
        writeln!(writer, r#"{{"op":"shutdown"}}"#).expect("write shutdown");
        let mut line = String::new();
        let _ = reader.read_line(&mut line);
    }
    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon exited cleanly");

    let duration_ms = elapsed.as_secs_f64() * 1e3;
    let throughput = total as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "{total} requests in {duration_ms:.1}ms = {throughput:.0} req/s, \
         warm hit rate {:.1}%",
        warm_hit_rate * 100.0
    );
    for o in &ops {
        println!(
            "  {:>6}: count {:>6}  p50 {:>7}us  p99 {:>7}us",
            o.op, o.count, o.p50_us, o.p99_us
        );
    }
    println!(
        "shape check: warm hit rate near 1.0 (the mix repeats {} sources,",
        MIX.len()
    );
    println!("so only the first pass plans cold) and hybrid p50 well under its p99");
    println!("(the cold plans live in the tail).");

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"sct-serve/1\",\n");
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"requests\": {total},\n"));
    json.push_str(&format!("  \"duration_ms\": {duration_ms:.1},\n"));
    json.push_str(&format!("  \"throughput_rps\": {throughput:.1},\n"));
    json.push_str(&format!("  \"warm_hit_rate\": {warm_hit_rate:.4},\n"));
    json.push_str("  \"ops\": [\n");
    for (i, o) in ops.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"op\": \"{}\", \"count\": {}, \"p50_us\": {}, \"p99_us\": {} }}{}\n",
            o.op,
            o.count,
            o.p50_us,
            o.p99_us,
            if i + 1 < ops.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", out_path.display()));
    println!("\nwrote {}", out_path.display());
}

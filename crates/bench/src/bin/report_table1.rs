//! Regenerates Table 1: dynamic and static verdicts for every corpus row,
//! side by side with the verdicts the paper reports (including the
//! external-tool columns, which are reproduced as reported constants —
//! Liquid Haskell, Isabelle, and ACL2 cannot be run here).
//!
//! Run: `cargo run --release -p sct-bench --bin report_table1`

use sct_bench::sym_domain as to_sym;
use sct_core::monitor::TableStrategy;
use sct_corpus::{run_dynamic, table1, Verdict};
use sct_symbolic::{verify_function, SymDomain, VerifyConfig};

fn main() {
    println!("Table 1 — Evaluation on terminating programs");
    println!("(paper cells: Y pass, YA annotated, YO custom order, YR rewritten,");
    println!(" N fail, -H no higher-order support, -T not typable, . not reported)\n");
    println!(
        "{:<15} {:>9} {:>9} | {:>9} {:>9} | {:>5} {:>9} {:>5}",
        "program", "dyn:paper", "dyn:ours", "st:paper", "st:ours", "LH", "Isabelle", "ACL2"
    );
    println!("{}", "-".repeat(84));

    let mut dynamic_agree = 0usize;
    let mut static_agree = 0usize;
    let mut static_total = 0usize;
    let rows = table1::all();
    let total = rows.len();

    for p in rows {
        let dyn_ours = match run_dynamic(&p, TableStrategy::Imperative) {
            Ok(_) => {
                if p.order == sct_corpus::OrderSpec::Default {
                    "Y"
                } else {
                    "YO"
                }
            }
            Err(_) => "N",
        };
        if (dyn_ours != "N") == p.paper.dynamic.is_pass() {
            dynamic_agree += 1;
        }

        let st_ours = match p.static_spec {
            None => "N".to_string(),
            Some(spec) => {
                let prog = sct_lang::compile_program(p.source).expect("compiles");
                let domains: Vec<SymDomain> = spec.domains.iter().map(|d| to_sym(*d)).collect();
                let verdict = verify_function(
                    &prog,
                    spec.function,
                    &domains,
                    to_sym(spec.result),
                    &VerifyConfig::default(),
                );
                if verdict.is_verified() {
                    "Y".to_string()
                } else {
                    "N".to_string()
                }
            }
        };
        static_total += 1;
        if (st_ours == "Y") == (p.paper.static_ == Verdict::Pass) {
            static_agree += 1;
        }

        println!(
            "{:<15} {:>9} {:>9} | {:>9} {:>9} | {:>5} {:>9} {:>5}",
            p.id,
            p.paper.dynamic.cell(),
            dyn_ours,
            p.paper.static_.cell(),
            st_ours,
            p.paper.liquid_haskell.cell(),
            p.paper.isabelle.cell(),
            p.paper.acl2.cell(),
        );
    }

    println!("{}", "-".repeat(84));
    println!("dynamic column agreement: {dynamic_agree}/{total}");
    println!(
        "static column agreement:  {static_agree}/{static_total}  \
         (deviations are precision wins; see EXPERIMENTS.md)"
    );
}

//! Regenerates Figure 10: monitoring slowdown for Ackermann, factorial,
//! sum, and merge-sort — direct and interpreted — across input sizes,
//! under the three paper configurations (unchecked, continuation-mark,
//! imperative) plus the *hybrid* ablation (static pre-pass discharges
//! provably terminating functions; the monitor guards only the residual),
//! and records the sweep as `BENCH_fig10.json` at the repo root so future
//! PRs can track the performance trajectory (schema `sct-fig10/5` in the
//! `sct_bench` crate docs).
//!
//! The paper's absolute sizes targeted Racket on the authors' machine; the
//! sweep here uses scaled decades. The claims to check are the *shapes*:
//!
//! * factorial: overhead negligible (bignum work dominates);
//! * ack / sum: large overhead in tight loops — the monitor hot path laid
//!   bare, and the curves the graph-interning work is measured against;
//! * merge-sort: overhead dominated by data-structure order checks;
//! * interpreted rows: the interpreter's own monitored calls multiply the
//!   cost but stay within a constant factor as input grows;
//! * hybrid: workloads the §4 verifier proves (fact, sum, ack) collapse
//!   to ~unchecked speed; residual workloads track the imperative curve.
//!
//! Run: `cargo run --release -p sct-bench --bin report_fig10 [--scale N]
//! [--reps N] [--fast] [--only ID] [--out PATH]`
//!
//! `--fast` is the CI smoke mode: smallest size per workload, one rep;
//! `--only ID` restricts the sweep to one workload (e.g. `--only ack`).

use sct_bench::{
    fig10_json, fig10_json_path, CompiledWorkload, EvalTiming, Fig10Entry, PlanTiming, Setup,
};
use sct_corpus::workloads;
use std::time::Duration;

/// Median cold/warm planning cost over `reps` measurements (each rep
/// plans from a fresh cache, then re-plans through it).
fn median_plan_cost(compiled: &CompiledWorkload, reps: usize) -> (Duration, Duration) {
    let mut colds = Vec::new();
    let mut warms = Vec::new();
    for _ in 0..reps.max(1) {
        let (cold, warm) = compiled.plan_cost_once();
        colds.push(cold);
        warms.push(warm);
    }
    colds.sort_unstable();
    warms.sort_unstable();
    (colds[colds.len() / 2], warms[warms.len() / 2])
}

fn sizes_for(id: &str, scale: u64, fast: bool) -> Vec<u64> {
    let base: &[u64] = match id {
        "fact" => &[200, 400, 800, 1600],
        "sum" => &[2_000, 8_000, 32_000, 128_000],
        "ack" => &[40, 80, 160, 320],
        "msort" => &[200, 400, 800, 1600],
        "interp-fact" => &[60, 120, 240, 480],
        "interp-sum" => &[100, 200, 400, 800],
        "interp-msort" => &[64, 128, 256, 512],
        _ => &[100, 200],
    };
    let take = if fast { 1 } else { base.len() };
    base.iter().take(take).map(|n| n * scale).collect()
}

/// Median of `reps` timed runs per setup, with the setups *interleaved*:
/// each rep times all four setups back-to-back before the next rep
/// starts. A transient load burst on the host then inflates the same
/// rep of every column rather than one setup's whole block, so the
/// slowdown *ratios* — the numbers the figure is about — stay stable on
/// noisy machines even when absolute times wander.
fn median_times(compiled: &CompiledWorkload, n: u64, reps: usize) -> [Duration; 4] {
    const SETUPS: [Setup; 4] = [
        Setup::Unchecked,
        Setup::ContinuationMark,
        Setup::Imperative,
        Setup::Hybrid,
    ];
    let mut times: [Vec<Duration>; 4] = [vec![], vec![], vec![], vec![]];
    for _ in 0..reps.max(1) {
        for (i, &setup) in SETUPS.iter().enumerate() {
            times[i].push(compiled.run_once(n, setup).0);
        }
    }
    times.map(|mut t| {
        t.sort_unstable();
        t[t.len() / 2]
    })
}

/// The unchecked-baseline evaluator row: reference tree-walker vs. the
/// flat-IR VM at the workload's largest sweep size (median of `reps`).
/// PIC counters come from one *hybrid* run at the same size — inline
/// caches are only consulted while monitoring is active, so the
/// unchecked timing runs cannot observe them.
fn eval_timing(compiled: &CompiledWorkload, n: u64, reps: usize) -> EvalTiming {
    let mut vm: Vec<(Duration, u64)> = (0..reps.max(1))
        .map(|_| {
            let (d, stats) = compiled.run_once(n, Setup::Unchecked);
            (d, stats.steps)
        })
        .collect();
    let mut reference: Vec<Duration> = (0..reps.max(1))
        .map(|_| compiled.run_once_reference(n).0)
        .collect();
    vm.sort_unstable_by_key(|(d, _)| *d);
    reference.sort_unstable();
    let (vm_t, vm_steps) = vm[vm.len() / 2];
    let ref_t = reference[reference.len() / 2];
    let (_, hybrid_stats) = compiled.run_once(n, Setup::Hybrid);
    let consulted = hybrid_stats.pic_hits + hybrid_stats.pic_misses;
    EvalTiming {
        workload: compiled.workload.id,
        n,
        reference_ns: ref_t.as_nanos(),
        vm_ns: vm_t.as_nanos(),
        speedup: ref_t.as_secs_f64() / vm_t.as_secs_f64().max(1e-9),
        steps_per_sec: vm_steps as f64 / vm_t.as_secs_f64().max(1e-9),
        pic_hits: hybrid_stats.pic_hits,
        pic_misses: hybrid_stats.pic_misses,
        pic_hit_rate: if consulted == 0 {
            1.0
        } else {
            hybrid_stats.pic_hits as f64 / consulted as f64
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let fast = args.iter().any(|a| a == "--fast");
    let scale: u64 = flag_value("--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let reps: usize = flag_value("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if fast { 1 } else { 3 });
    let out_path = flag_value("--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(fig10_json_path);
    let only = flag_value("--only").cloned();
    if let Some(id) = &only {
        let known: Vec<&str> = workloads::fig10().iter().map(|w| w.id).collect();
        if !known.contains(&id.as_str()) {
            eprintln!("unknown workload {id:?}; expected one of {known:?}");
            std::process::exit(2);
        }
    }

    let mut entries: Vec<Fig10Entry> = Vec::new();
    let mut planning: Vec<PlanTiming> = Vec::new();
    let mut eval: Vec<EvalTiming> = Vec::new();
    println!("Figure 10 — slowdown of monitoring (times in ms; slowdown vs unchecked)\n");
    for w in workloads::fig10() {
        if only.as_deref().is_some_and(|id| id != w.id) {
            continue;
        }
        let label = w.label;
        let id = w.id;
        let compiled = CompiledWorkload::new(w);
        let (plan_cold, plan_warm) = median_plan_cost(&compiled, reps);
        planning.push(PlanTiming {
            workload: id,
            plan_ms: plan_cold.as_secs_f64() * 1e3,
            plan_warm_ms: plan_warm.as_secs_f64() * 1e3,
        });
        println!("== {label} ==");
        println!(
            "   plan: {}   (pre-pass: cold {}, warm {})",
            compiled.plan,
            sct_bench::fmt_ms(plan_cold),
            sct_bench::fmt_ms(plan_warm)
        );
        println!(
            "{:>10} {:>12} {:>16} {:>9} {:>16} {:>9} {:>16} {:>9}",
            "n", "unchecked", "cont-mark", "x", "imperative", "x", "hybrid", "x"
        );
        let sizes = sizes_for(id, scale, fast);
        for &n in &sizes {
            let [t_unchecked, t_cm, t_imp, t_hyb] = median_times(&compiled, n, reps);
            let base = t_unchecked.as_secs_f64().max(1e-9);
            for (setup, t) in [
                (Setup::Unchecked, t_unchecked),
                (Setup::ContinuationMark, t_cm),
                (Setup::Imperative, t_imp),
                (Setup::Hybrid, t_hyb),
            ] {
                entries.push(Fig10Entry {
                    workload: id,
                    setup: setup.label(),
                    n,
                    median_ns: t.as_nanos(),
                    slowdown: t.as_secs_f64() / base,
                });
            }
            println!(
                "{:>10} {:>12} {:>16} {:>8.1}x {:>16} {:>8.1}x {:>16} {:>8.1}x",
                n,
                sct_bench::fmt_ms(t_unchecked),
                sct_bench::fmt_ms(t_cm),
                t_cm.as_secs_f64() / base,
                sct_bench::fmt_ms(t_imp),
                t_imp.as_secs_f64() / base,
                sct_bench::fmt_ms(t_hyb),
                t_hyb.as_secs_f64() / base,
            );
        }
        // The evaluator row: reference walker vs. VM, unchecked, at the
        // largest size — plus the VM's dispatch throughput.
        let n_eval = *sizes.last().expect("at least one size");
        let e = eval_timing(&compiled, n_eval, reps);
        println!(
            "   eval (n={}): reference {}  vm {}  speedup {:.2}x  ({:.1}M steps/s)  \
             pic {:.1}% ({} hits, {} misses)",
            e.n,
            sct_bench::fmt_ms(Duration::from_nanos(e.reference_ns as u64)),
            sct_bench::fmt_ms(Duration::from_nanos(e.vm_ns as u64)),
            e.speedup,
            e.steps_per_sec / 1e6,
            e.pic_hit_rate * 100.0,
            e.pic_hits,
            e.pic_misses,
        );
        eval.push(e);
        println!();
    }
    println!("paper shape check: factorial ~1x; ack/sum/msort overhead large and");
    println!(
        "roughly flat in n (constant factor), continuation-mark >= imperative on tight loops."
    );
    println!("hybrid shape check: statically discharged workloads (fact, sum, ack) ~1x;");
    println!("residual workloads track the imperative curve.");

    println!("planning shape check: plan_warm_ms well under plan_ms on every workload");
    println!("(the memoized pre-pass is what `sct serve` and `--cache-dir` amortize).");
    println!("eval shape check: the flat-IR VM beats the reference tree-walker on the");
    println!("unchecked baseline of every workload (the PR 5 dispatch-loop win).");

    let json = fig10_json(&entries, &planning, &eval, fast, scale, reps);
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", out_path.display()));
    println!(
        "\nwrote {} entries to {}",
        entries.len(),
        out_path.display()
    );
}

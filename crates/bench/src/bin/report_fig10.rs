//! Regenerates Figure 10: monitoring slowdown for factorial, sum, and
//! merge-sort — direct and interpreted — across input sizes, under the
//! three configurations (unchecked, continuation-mark, imperative).
//!
//! The paper's absolute sizes targeted Racket on the authors' machine; the
//! sweep here uses scaled decades (pass `--scale N` to multiply them). The
//! claims to check are the *shapes*:
//!
//! * factorial: overhead negligible (bignum work dominates);
//! * sum: large overhead in tight loops, continuation-mark worst;
//! * merge-sort: overhead dominated by data-structure order checks;
//! * interpreted rows: the interpreter's own monitored calls multiply the
//!   cost but stay within a constant factor as input grows.
//!
//! Run: `cargo run --release -p sct-bench --bin report_fig10 [--scale N]`

use sct_bench::{CompiledWorkload, Setup};
use sct_corpus::workloads;

fn sizes_for(id: &str, scale: u64) -> Vec<u64> {
    let base: &[u64] = match id {
        "fact" => &[200, 400, 800, 1600],
        "sum" => &[2_000, 8_000, 32_000, 128_000],
        "msort" => &[200, 400, 800, 1600],
        "interp-fact" => &[60, 120, 240, 480],
        "interp-sum" => &[100, 200, 400, 800],
        "interp-msort" => &[64, 128, 256, 512],
        _ => &[100, 200],
    };
    base.iter().map(|n| n * scale).collect()
}

fn main() {
    let scale: u64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    println!("Figure 10 — slowdown of monitoring (times in ms; slowdown vs unchecked)\n");
    for w in workloads::fig10() {
        let label = w.label;
        let id = w.id;
        let compiled = CompiledWorkload::new(w);
        println!("== {label} ==");
        println!(
            "{:>10} {:>12} {:>16} {:>9} {:>16} {:>9}",
            "n", "unchecked", "cont-mark", "x", "imperative", "x"
        );
        for n in sizes_for(id, scale) {
            let (t_unchecked, _) = compiled.run_once(n, Setup::Unchecked);
            let (t_cm, _) = compiled.run_once(n, Setup::ContinuationMark);
            let (t_imp, _) = compiled.run_once(n, Setup::Imperative);
            let base = t_unchecked.as_secs_f64().max(1e-9);
            println!(
                "{:>10} {:>12} {:>16} {:>8.1}x {:>16} {:>8.1}x",
                n,
                sct_bench::fmt_ms(t_unchecked),
                sct_bench::fmt_ms(t_cm),
                t_cm.as_secs_f64() / base,
                sct_bench::fmt_ms(t_imp),
                t_imp.as_secs_f64() / base,
            );
        }
        println!();
    }
    println!("paper shape check: factorial ~1x; sum/msort overhead large and");
    println!(
        "roughly flat in n (constant factor), continuation-mark >= imperative on tight loops."
    );
}

//! Ablation report for the §5 design choices: how each optimization and
//! configuration knob changes the cost and the check count of a fully
//! monitored tight loop.
//!
//! Run: `cargo run --release -p sct-bench --bin report_ablation`

use sct_core::monitor::{BackoffPolicy, KeyStrategy, MonitorConfig, TableStrategy};
use sct_interp::{Machine, MachineConfig, SemanticsMode, Value};
use sct_lang::compile_program;
use std::time::Instant;

const SUM: &str = "
(define (sum i acc) (if (zero? i) acc (sum (- i 1) (+ acc i))))";

fn measure(label: &str, config: MachineConfig, n: i64, base_ms: Option<f64>) -> f64 {
    let prog = compile_program(SUM).unwrap();
    let mut m = Machine::new(&prog, config);
    m.run().unwrap();
    let f = m.global("sum").unwrap();
    let start = Instant::now();
    let v = m.call(f, vec![Value::int(n), Value::int(0)]).unwrap();
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(v, Value::int(n * (n + 1) / 2));
    let rel = base_ms.map(|b| ms / b).unwrap_or(1.0);
    println!(
        "{:<28} {:>10.2}ms {:>7.2}x   checks={:<8} monitored={:<8} max-kont={}",
        label, ms, rel, m.stats.checks, m.stats.monitored_calls, m.stats.max_kont_depth
    );
    ms
}

fn main() {
    let n = 50_000i64;
    println!("Ablations on (sum {n} 0), fully monitored\n");

    let unchecked = MachineConfig::standard();
    let base = measure("unchecked", unchecked, n, None);

    let monitored = MachineConfig {
        mode: SemanticsMode::Monitored,
        monitor: MonitorConfig::default(),
        ..MachineConfig::default()
    };
    measure("monitored (imperative)", monitored.clone(), n, Some(base));

    let mut cm = monitored.clone();
    cm.monitor.strategy = TableStrategy::ContinuationMark;
    measure("monitored (cont-mark)", cm, n, Some(base));

    let mut backoff = monitored.clone();
    backoff.monitor.backoff = BackoffPolicy::Exponential { factor: 2 };
    measure("  + exponential backoff", backoff.clone(), n, Some(base));

    let mut loops = monitored.clone();
    loops.monitor.loop_entries_only = true;
    measure("  + loop entries only", loops, n, Some(base));

    let mut both = backoff;
    both.monitor.loop_entries_only = true;
    measure("  + both", both, n, Some(base));

    let mut wl = monitored.clone();
    wl.monitor = wl.monitor.whitelisting("sum");
    measure("  + whitelist sum", wl, n, Some(base));

    let mut lam = monitored.clone();
    lam.monitor.key_strategy = KeyStrategy::LambdaOnly;
    measure("key: lambda-only", lam, n, Some(base));

    let mut alloc = monitored;
    alloc.monitor.key_strategy = KeyStrategy::Allocation;
    measure("key: allocation", alloc, n, Some(base));

    println!("\nthe key-strategy rows trade soundness/precision, not just speed:");
    println!("lambda-only spuriously rejects CPS code (§2.2); allocation misses");
    println!("Y-combinator divergence — see tests named in EXPERIMENTS.md.");
}

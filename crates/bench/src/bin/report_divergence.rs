//! Regenerates the §5.1.2 experiment: how quickly dynamic monitoring
//! catches diverging programs. The paper reports "immeasurable delay";
//! the table below gives machine steps and wall time to `errorSC` for
//! both table strategies.
//!
//! Run: `cargo run --release -p sct-bench --bin report_divergence [--fast]`
//!
//! `--fast` (the CI smoke mode) measures the imperative strategy only;
//! detection is sub-millisecond either way, so the full report is nearly
//! as quick.

use sct_bench::time_to_detection;
use sct_core::monitor::TableStrategy;
use sct_corpus::diverging;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    println!("§5.1.2 — time to catch divergence (dynamic monitoring)\n");
    println!(
        "{:<20} {:>16} {:>12} {:>16} {:>12}",
        "program", "imp: steps", "time", "cm: steps", "time"
    );
    println!("{}", "-".repeat(80));
    for p in diverging::all() {
        let (t_imp, steps_imp) = time_to_detection(&p, TableStrategy::Imperative);
        let (cm_steps, cm_time) = if fast {
            ("-".to_string(), "skipped".to_string())
        } else {
            let (t_cm, steps_cm) = time_to_detection(&p, TableStrategy::ContinuationMark);
            (steps_cm.to_string(), sct_bench::fmt_ms(t_cm))
        };
        println!(
            "{:<20} {:>16} {:>12} {:>16} {:>12}",
            p.id,
            steps_imp,
            sct_bench::fmt_ms(t_imp),
            cm_steps,
            cm_time,
        );
    }
    println!("{}", "-".repeat(80));
    println!("every divergence is caught; violations surface within the first iterations,");
    println!("so detection cost is constant — the paper's \"immeasurable delay\".");
}

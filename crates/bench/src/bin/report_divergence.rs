//! Regenerates the §5.1.2 experiment: how quickly dynamic monitoring
//! catches diverging programs. The paper reports "immeasurable delay";
//! the table below gives machine steps and wall time to `errorSC` for
//! both table strategies.
//!
//! Run: `cargo run --release -p sct-bench --bin report_divergence`

use sct_bench::time_to_detection;
use sct_core::monitor::TableStrategy;
use sct_corpus::diverging;

fn main() {
    println!("§5.1.2 — time to catch divergence (dynamic monitoring)\n");
    println!(
        "{:<20} {:>16} {:>12} {:>16} {:>12}",
        "program", "imp: steps", "time", "cm: steps", "time"
    );
    println!("{}", "-".repeat(80));
    for p in diverging::all() {
        let (t_imp, steps_imp) = time_to_detection(&p, TableStrategy::Imperative);
        let (t_cm, steps_cm) = time_to_detection(&p, TableStrategy::ContinuationMark);
        println!(
            "{:<20} {:>16} {:>12} {:>16} {:>12}",
            p.id,
            steps_imp,
            sct_bench::fmt_ms(t_imp),
            steps_cm,
            sct_bench::fmt_ms(t_cm),
        );
    }
    println!("{}", "-".repeat(80));
    println!("every divergence is caught; violations surface within the first iterations,");
    println!("so detection cost is constant — the paper's \"immeasurable delay\".");
}

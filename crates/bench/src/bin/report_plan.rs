//! Contract-summary scaling driver: generates layered call-DAG corpora
//! (every `define` a single-parameter list recursion that also applies a
//! few defines from the layer below), plans each corpus with verified
//! contract summaries on and off, and reports the scaling trajectory.
//! The result is recorded as `BENCH_plan.json` at the repo root (schema
//! `sct-plan-bench/1`):
//!
//! ```json
//! {
//!   "schema": "sct-plan-bench/1",
//!   "fast": false, "layers": 6, "fanout": 3, "seed": 7, "reps": 3,
//!   "corpora": [
//!     { "defines": 1000,
//!       "cold_full_ms": 1234.5, "cold_summary_ms": 56.7,
//!       "speedup": 21.8,
//!       "warm_ms": 12.3, "incremental_ms": 4.5,
//!       "incremental_misses": 9,
//!       "summary_hits": 1000, "summary_misses": 0,
//!       "stubbed_applications": 2500,
//!       "static_summary": 1000, "static_full": 1000 }
//!   ]
//! }
//! ```
//!
//! One entry per corpus size. `cold_full_ms` is a fresh plan with full
//! body descent (`summaries: false`, no store), `cold_summary_ms` the
//! same fresh plan with summary stubbing on — the tentpole number;
//! `speedup` is their ratio (`null` for sizes where the full-descent
//! pass was skipped as too slow, in which case `cold_full_ms` is `null`
//! too). `warm_ms` replans the unchanged corpus against a store populated
//! by a prior summaries-on pass (every decision a content-address hit,
//! every summary replayed — `summary_hits`/`summary_misses` are the
//! `plan.summary.*` counters from that run). `incremental_ms` edits one
//! base-layer helper and replans warm: exactly the edited define and its
//! transitive dependents miss (`incremental_misses`).
//! `stubbed_applications` counts callee applications answered by a
//! summary during the cold summaries-on pass. `static_*` are the
//! discharged-decision counts per mode — on this corpus the summary mode
//! is *stronger*, not just faster: whole-body descent of a
//! multiple-callee body trips the executor's recursive-value kind check
//! at the `Any` rung and falls to a vacuous guarded discharge, while the
//! modular proof discharges at `Any` with real size-change graphs (the
//! pinned strictly-stronger class — see
//! `stub_proofs_are_never_weaker_than_descent` in `sct-symbolic`).
//!
//! Sub-quadratic check: `cold_summary_ms` must grow no worse than
//! `defines^1.5` across successive corpus sizes — with summaries each
//! define's exploration is local (its own body plus one stub per
//! callee), so whole-program planning is near-linear; without them the
//! per-define cost multiplies through the callee closure.
//!
//! Run: `cargo run --release -p sct-bench --bin report_plan
//! [--fast] [--out PATH]`
//!
//! `--fast` is the CI smoke mode (64/128-define corpora, 1 rep).

use sct_contracts::{plan_program_incremental, PlanCache, PlanConfig};
use sct_core::plan::EnforcementPlan;
use sct_fuzz::Rng;
use sct_lang::ast::Program;
use sct_obs::Registry;
use sct_symbolic::{NullStore, PlanObs};
use std::sync::Arc;
use std::time::Instant;

/// Corpus structure: depth of the call DAG and callees per define. Six
/// layers of fanout three keep every define's reachable closure bounded
/// (≤ 3 + 9 + … + 243 defines regardless of corpus width), so content
/// digests and summary registration stay linear in corpus size while
/// full descent pays the multiplied closure walk.
const LAYERS: usize = 6;
const FANOUT: usize = 3;
const SEED: u64 = 7;

/// Generates a layered call-DAG corpus of `n` single-parameter list
/// recursions: layer 0 is `len` clones, and each define in layer `k > 0`
/// applies `FANOUT` distinct defines from layer `k - 1` to `(cdr l)`
/// alongside its own self-recursion. `base` is the base-case constant of
/// define `f0` — the knob the incremental measurement edits.
fn layered_corpus(n: usize, seed: u64, base: i64) -> String {
    let mut rng = Rng::new(seed);
    let per = (n / LAYERS).max(FANOUT);
    let mut prev: Vec<usize> = Vec::new();
    let mut out = String::new();
    let mut idx = 0usize;
    for layer in 0..LAYERS {
        let count = if layer == LAYERS - 1 {
            n.saturating_sub(idx).max(per)
        } else {
            per
        };
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            let name = format!("f{idx}");
            if layer == 0 {
                let b = if idx == 0 { base } else { 0 };
                out.push_str(&format!(
                    "(define ({name} l) (if (null? l) {b} (+ 1 ({name} (cdr l)))))\n"
                ));
            } else {
                let mut callees: Vec<usize> = Vec::with_capacity(FANOUT);
                while callees.len() < FANOUT {
                    let c = prev[rng.below(prev.len() as u64) as usize];
                    if !callees.contains(&c) {
                        callees.push(c);
                    }
                }
                let calls: Vec<String> =
                    callees.iter().map(|c| format!("(f{c} (cdr l))")).collect();
                out.push_str(&format!(
                    "(define ({name} l) (if (null? l) 0 (+ {} ({name} (cdr l)))))\n",
                    calls.join(" ")
                ));
            }
            ids.push(idx);
            idx += 1;
        }
        prev = ids;
        if idx >= n {
            break;
        }
    }
    out
}

fn cfg_with(summaries: bool, reg: &Arc<Registry>) -> PlanConfig {
    PlanConfig {
        summaries,
        obs: PlanObs::registered(reg.clone()),
        ..PlanConfig::default()
    }
}

fn counter(reg: &Registry, name: &str) -> u64 {
    reg.snapshot().counter(name).unwrap_or(0)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

struct Row {
    defines: usize,
    cold_full_ms: Option<f64>,
    cold_summary_ms: f64,
    warm_ms: f64,
    incremental_ms: f64,
    incremental_misses: usize,
    summary_hits: u64,
    summary_misses: u64,
    stubbed_applications: u64,
    static_summary: usize,
    static_full: Option<usize>,
}

fn time_plan(
    prog: &Program,
    cfg: &PlanConfig,
    store: &mut dyn sct_symbolic::DecisionStore,
) -> (f64, EnforcementPlan, usize) {
    let t = Instant::now();
    let (plan, stats) = plan_program_incremental(prog, cfg, &mut PlanCache::new(), store);
    (t.elapsed().as_secs_f64() * 1e3, plan, stats.misses())
}

fn measure(n: usize, reps: usize, skip_full: bool) -> Row {
    let src = layered_corpus(n, SEED, 0);
    let prog = sct_lang::compile_program(&src).expect("generated corpus compiles");

    // Cold, summaries on, no store: the tentpole number. The stub counter
    // comes from the last rep's registry.
    let mut cold_summary = Vec::new();
    let mut stubbed = 0;
    let mut static_summary = 0;
    for _ in 0..reps {
        let reg = Arc::new(Registry::new());
        let (ms, plan, _) = time_plan(&prog, &cfg_with(true, &reg), &mut NullStore);
        cold_summary.push(ms);
        stubbed = counter(&reg, "plan.summary.stubbed_applications");
        static_summary = plan.count("static");
    }

    // Cold, full descent, no store: the baseline the summaries replace.
    let (cold_full_ms, static_full) = if skip_full {
        (None, None)
    } else {
        let reg = Arc::new(Registry::new());
        let (ms, plan, _) = time_plan(&prog, &cfg_with(false, &reg), &mut NullStore);
        (Some(ms), Some(plan.count("static")))
    };

    // Warm: populate a MemStore once (unmeasured), then replan the
    // unchanged corpus — every decision hits, every summary replays.
    let mut store = sct_cache::MemStore::new();
    let reg = Arc::new(Registry::new());
    time_plan(&prog, &cfg_with(true, &reg), &mut store);
    let mut warm = Vec::new();
    let mut summary_hits = 0;
    let mut summary_misses = 0;
    for _ in 0..reps {
        let reg = Arc::new(Registry::new());
        let (ms, _, misses) = time_plan(&prog, &cfg_with(true, &reg), &mut store);
        assert_eq!(misses, 0, "warm replay must hit every decision");
        warm.push(ms);
        summary_hits = counter(&reg, "plan.summary.hits");
        summary_misses = counter(&reg, "plan.summary.misses");
    }

    // Incremental: edit f0's base constant, replan against the warm
    // store. Exactly f0 and its transitive dependents miss.
    let edited = sct_lang::compile_program(&layered_corpus(n, SEED, 1)).unwrap();
    let reg = Arc::new(Registry::new());
    let (incremental_ms, _, incremental_misses) =
        time_plan(&edited, &cfg_with(true, &reg), &mut store);
    assert!(
        incremental_misses > 0 && incremental_misses < n,
        "the edit must invalidate some but not all defines \
         ({incremental_misses} of {n} missed)"
    );

    Row {
        defines: n,
        cold_full_ms,
        cold_summary_ms: median(cold_summary),
        warm_ms: median(warm),
        incremental_ms,
        incremental_misses,
        summary_hits,
        summary_misses,
        stubbed_applications: stubbed,
        static_summary,
        static_full,
    }
}

fn json_num(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "null".into(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(sct_bench::plan_json_path);

    let (sizes, reps): (&[usize], usize) = if fast {
        (&[64, 128], 1)
    } else {
        (&[1000, 3000, 10000], 3)
    };

    println!("contract-summary scaling (layers={LAYERS}, fanout={FANOUT}, reps={reps})\n");
    println!(
        "{:>8} {:>14} {:>16} {:>9} {:>10} {:>13} {:>8} {:>9}",
        "defines",
        "cold full",
        "cold summaries",
        "speedup",
        "warm",
        "incremental",
        "misses",
        "stubs"
    );

    let mut rows = Vec::new();
    for &n in sizes {
        let row = measure(n, reps, false);
        let speedup = row.cold_full_ms.map(|f| f / row.cold_summary_ms);
        println!(
            "{:>8} {:>14} {:>16} {:>9} {:>10} {:>13} {:>8} {:>9}",
            row.defines,
            row.cold_full_ms
                .map(|v| format!("{v:.1}ms"))
                .unwrap_or_else(|| "—".into()),
            format!("{:.1}ms", row.cold_summary_ms),
            speedup
                .map(|v| format!("{v:.1}x"))
                .unwrap_or_else(|| "—".into()),
            format!("{:.1}ms", row.warm_ms),
            format!("{:.1}ms", row.incremental_ms),
            row.incremental_misses,
            row.stubbed_applications,
        );
        rows.push(row);
    }

    // Machine-readable trajectory document.
    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("  \"schema\": \"sct-plan-bench/1\",\n");
    doc.push_str(&format!("  \"fast\": {fast},\n"));
    doc.push_str(&format!(
        "  \"layers\": {LAYERS},\n  \"fanout\": {FANOUT},\n  \"seed\": {SEED},\n  \"reps\": {reps},\n"
    ));
    doc.push_str("  \"corpora\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = r.cold_full_ms.map(|f| f / r.cold_summary_ms);
        doc.push_str(&format!(
            "    {{ \"defines\": {}, \"cold_full_ms\": {}, \"cold_summary_ms\": {:.3}, \
             \"speedup\": {}, \"warm_ms\": {:.3}, \"incremental_ms\": {:.3}, \
             \"incremental_misses\": {}, \"summary_hits\": {}, \"summary_misses\": {}, \
             \"stubbed_applications\": {}, \"static_summary\": {}, \"static_full\": {} }}{}\n",
            r.defines,
            json_num(r.cold_full_ms),
            r.cold_summary_ms,
            json_num(speedup),
            r.warm_ms,
            r.incremental_ms,
            r.incremental_misses,
            r.summary_hits,
            r.summary_misses,
            r.stubbed_applications,
            r.static_summary,
            r.static_full
                .map(|v| v.to_string())
                .unwrap_or_else(|| "null".into()),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    doc.push_str("  ]\n}\n");
    std::fs::write(&out_path, &doc).expect("write BENCH_plan.json");
    println!("\nwrote {}", out_path.display());
}
